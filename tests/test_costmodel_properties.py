"""Property-based tests on cost-model invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import PartitionMap
from repro.costmodel import CostParams, evaluate_trace
from repro.costmodel.optypes import OpType
from repro.costmodel.rct import request_rct
from repro.namespace.builder import build_random
from repro.sim import SeedSequenceFactory
from repro.workloads.trace import TraceBuilder

SET = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def world(draw):
    """A random tree + scattered partition + mixed read trace."""
    seed = draw(st.integers(0, 10**6))
    n_mds = draw(st.integers(1, 6))
    ssf = SeedSequenceFactory(seed)
    rng = ssf.stream("w")
    built = build_random(rng, n_dirs=draw(st.integers(5, 45)), files_per_dir_mean=2)
    tree = built.tree
    pmap = PartitionMap(tree, n_mds=n_mds)
    dirs = [d for d in tree.iter_dirs() if d != 0]
    for _ in range(draw(st.integers(0, 8))):
        if dirs:
            pmap.migrate_subtree(
                dirs[draw(st.integers(0, len(dirs) - 1))], draw(st.integers(0, n_mds - 1))
            )
    tb = TraceBuilder()
    all_dirs = [0, *dirs]
    for i in range(draw(st.integers(1, 120))):
        d = all_dirs[draw(st.integers(0, len(all_dirs) - 1))]
        if draw(st.booleans()):
            tb.stat(d, f"n{i}")
        else:
            tb.readdir(d)
    return tree, pmap, tb.build()


@given(world())
@SET
def test_rct_is_positive_and_m_bounded(w):
    tree, pmap, trace = w
    params = CostParams()
    for i in range(len(trace)):
        rc = request_rct(tree, pmap, params, int(trace.op[i]), int(trace.dir_ino[i]))
        assert rc.rct > 0
        assert 1 <= rc.m <= pmap.n_mds
        assert rc.k_eff >= 0
        assert rc.primary in rc.owners


@given(world(), st.integers(0, 6))
@SET
def test_deeper_cache_never_costs_more(w, depth):
    """Monotonicity: increasing the cache depth can only reduce RPCs/JCT."""
    tree, pmap, trace = w
    shallow = evaluate_trace(trace, tree, pmap, CostParams(cache_depth=depth))
    deeper = evaluate_trace(trace, tree, pmap, CostParams(cache_depth=depth + 1))
    assert deeper.total_rpcs <= shallow.total_rpcs
    assert deeper.mean_m <= shallow.mean_m + 1e-12
    assert deeper.jct <= shallow.jct + 1e-9


@given(world())
@SET
def test_single_partition_is_cost_floor(w):
    """Everything on one MDS minimises total RCT mass (m = 1 everywhere):
    any scattered partition can only add crossing overheads."""
    tree, pmap, trace = w
    params = CostParams()
    scattered = evaluate_trace(trace, tree, pmap, params)
    mono = PartitionMap(tree, n_mds=pmap.n_mds)
    single = evaluate_trace(trace, tree, mono, params)
    assert single.rct_per_mds.sum() <= scattered.rct_per_mds.sum() + 1e-9
    # ...but its JCT (max bin) is the worst possible concentration
    assert single.jct >= scattered.rct_per_mds.sum() / pmap.n_mds - 1e-9


@given(world())
@SET
def test_colocating_subtree_with_parent_never_raises_total_cost(w):
    """Merging a boundary (child joins its parent's owner) removes crossings."""
    tree, pmap, trace = w
    params = CostParams()
    before = evaluate_trace(trace, tree, pmap, params).rct_per_mds.sum()
    boundary = np.nonzero(pmap.boundary_mask())[0]
    if boundary.size == 0:
        return
    s = int(boundary[0])
    pmap.migrate_subtree(s, pmap.owner(tree.parent(s)))
    after = evaluate_trace(trace, tree, pmap, params).rct_per_mds.sum()
    assert after <= before + 1e-9


@given(world())
@SET
def test_evaluate_conserves_requests(w):
    tree, pmap, trace = w
    load = evaluate_trace(trace, tree, pmap, CostParams())
    assert int(load.qps_per_mds.sum()) == len(trace)
    assert load.total_rpcs >= len(trace)
    assert load.jct <= load.rct_per_mds.sum() + 1e-9
    assert load.jct == pytest.approx(load.rct_per_mds.max())


@given(world(), st.integers(0, 3))
@SET
def test_per_request_rct_sums_to_cluster_load(w, cache_depth):
    tree, pmap, trace = w
    load = evaluate_trace(
        trace, tree, pmap, CostParams(cache_depth=cache_depth), collect_per_request=True
    )
    assert load.per_request_rct is not None
    assert load.per_request_rct.sum() == pytest.approx(load.rct_per_mds.sum())
    assert load.mean_rct == pytest.approx(load.per_request_rct.mean())
