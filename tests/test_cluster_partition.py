"""Unit tests for PartitionMap, migrations, and imbalance metrics."""

import numpy as np
import pytest

from repro.cluster import (
    ImbalanceReport,
    MigrationDecision,
    MigrationLog,
    PartitionMap,
    imbalance_factor,
)
from repro.namespace import ROOT_INO, NamespaceTree
from repro.namespace.builder import build_balanced


@pytest.fixture
def setup():
    built = build_balanced(depth=3, fanout=3, files_per_dir=2)
    tree = built.tree
    pmap = PartitionMap(tree, n_mds=4)
    return tree, pmap


def test_initial_all_on_mds0(setup):
    tree, pmap = setup
    for d in tree.iter_dirs():
        assert pmap.owner(d) == 0
    assert pmap.dirs_per_mds()[0] == tree.num_dirs


def test_owner_of_file_is_parent_owner(setup):
    tree, pmap = setup
    f = tree.lookup("/d0_0/f0")
    a = tree.lookup("/d0_0")
    pmap.migrate_subtree(a, 2)
    assert pmap.owner(f) == 2


def test_migrate_subtree_moves_all_descendants(setup):
    tree, pmap = setup
    a = tree.lookup("/d0_1")
    moved = pmap.migrate_subtree(a, 3)
    idx = tree.dfs_index()
    assert moved == idx.subtree_size(a)
    for d in tree.iter_subtree_dirs(a):
        assert pmap.owner(d) == 3
    # siblings untouched
    assert pmap.owner(tree.lookup("/d0_0")) == 0


def test_boundary_detection(setup):
    tree, pmap = setup
    a = tree.lookup("/d0_1")
    b = tree.lookup("/d0_1/d1_0")
    pmap.migrate_subtree(a, 1)
    assert pmap.is_boundary(a)
    assert not pmap.is_boundary(b)  # same owner as parent
    assert not pmap.is_boundary(ROOT_INO)
    mask = pmap.boundary_mask()
    assert mask[a] and not mask[b]


def test_uniform_subtree_mask(setup):
    tree, pmap = setup
    a = tree.lookup("/d0_0")
    inner = tree.lookup("/d0_0/d1_1")
    pmap.migrate_subtree(inner, 2)
    uniform = pmap.uniform_subtree_mask()
    assert not uniform[a]  # mixed: part on 0, part on 2
    assert uniform[inner]
    assert uniform[tree.lookup("/d0_1")]
    assert not uniform[ROOT_INO]


def test_uniform_mask_matches_bruteforce(setup):
    tree, pmap = setup
    rng = np.random.default_rng(7)
    dirs = list(tree.iter_dirs())
    for _ in range(6):
        pmap.migrate_subtree(int(rng.choice(dirs)), int(rng.integers(0, 4)))
    uniform = pmap.uniform_subtree_mask()
    for d in dirs:
        owners = {pmap.owner(x) for x in tree.iter_subtree_dirs(d)}
        assert uniform[d] == (len(owners) == 1), f"dir {d}"


def test_new_dir_inherits_parent_owner(setup):
    tree, pmap = setup
    a = tree.lookup("/d0_2")
    pmap.migrate_subtree(a, 1)
    new = tree.create_dir(a, "fresh")
    assert pmap.owner(new) == 1


def test_new_dir_with_placement_policy(setup):
    tree, _ = setup
    pmap = PartitionMap(tree, n_mds=4, placement=lambda pm, p, name: hash(name) % 4)
    new = tree.create_dir(tree.lookup("/d0_0"), "hashed")
    assert pmap.owner(new) == hash("hashed") % 4
    assert pmap.new_dir_owner(tree.lookup("/d0_0"), "hashed") == hash("hashed") % 4


def test_assign_bulk_and_ranges(setup):
    tree, pmap = setup
    owners = np.zeros(tree.capacity, dtype=np.int64)
    owners[tree.dir_mask()] = 3
    pmap.assign_bulk(owners)
    assert pmap.dirs_per_mds()[3] == tree.num_dirs
    bad = owners.copy()
    bad[tree.lookup("/d0_0")] = 9
    with pytest.raises(ValueError):
        pmap.assign_bulk(bad)


def test_inodes_per_mds_counts_files(setup):
    tree, pmap = setup
    total = pmap.inodes_per_mds().sum()
    assert total == tree.num_dirs + tree.num_files


def test_lsdir_fanout(setup):
    tree, pmap = setup
    a = tree.lookup("/d0_0")
    assert pmap.lsdir_fanout(a) == 0
    pmap.migrate_subtree(tree.lookup("/d0_0/d1_0"), 1)
    pmap.migrate_subtree(tree.lookup("/d0_0/d1_1"), 2)
    assert pmap.lsdir_fanout(a) == 2
    counts = pmap.child_owner_counts(a)
    assert counts == {0: 1, 1: 1, 2: 1}


def test_copy_is_independent(setup):
    tree, pmap = setup
    dup = pmap.copy()
    dup.migrate_subtree(tree.lookup("/d0_0"), 2)
    assert pmap.owner(tree.lookup("/d0_0")) == 0
    assert dup.owner(tree.lookup("/d0_0")) == 2


def test_migrate_invalid_dst(setup):
    tree, pmap = setup
    with pytest.raises(ValueError):
        pmap.migrate_subtree(tree.lookup("/d0_0"), 9)


def test_owner_array_tracks_removals(setup):
    tree, pmap = setup
    leaf = tree.lookup("/d0_0/d1_0/d2_0")
    for name in list(tree.children(leaf)):
        tree.remove(tree.children(leaf)[name])
    tree.remove(leaf)
    arr = pmap.owner_array()
    assert arr[leaf] == -1
    with pytest.raises(KeyError):
        pmap.owner(leaf)


# ----------------------------------------------------------- migration log


def test_migration_log_apply(setup):
    tree, pmap = setup
    log = MigrationLog()
    a = tree.lookup("/d0_0")
    dec = MigrationDecision(subtree_root=a, src=0, dst=2, predicted_benefit=1.5)
    rec = log.apply(pmap, dec, epoch=3)
    assert pmap.owner(a) == 2
    assert rec.dirs_moved == tree.dfs_index().subtree_size(a)
    assert rec.inodes_moved > rec.dirs_moved  # files came along
    assert log.total_migrations == 1
    assert log.in_epoch(3) == [rec]
    assert log.in_epoch(0) == []


def test_migration_decision_validation(setup):
    tree, pmap = setup
    a = tree.lookup("/d0_0")
    with pytest.raises(ValueError):
        MigrationDecision(a, src=0, dst=0).validate(pmap)
    with pytest.raises(ValueError):
        MigrationDecision(a, src=1, dst=2).validate(pmap)  # wrong src
    with pytest.raises(ValueError):
        MigrationDecision(a, src=0, dst=99).validate(pmap)


# -------------------------------------------------------------- imbalance


def test_imbalance_factor_extremes():
    assert imbalance_factor([10, 10, 10, 10, 10]) == 0.0
    assert imbalance_factor([50, 0, 0, 0, 0]) == 1.0
    assert imbalance_factor([0, 0, 0]) == 0.0
    assert imbalance_factor([7]) == 0.0


def test_imbalance_factor_monotone_in_skew():
    low = imbalance_factor([12, 11, 10, 9, 8])
    high = imbalance_factor([30, 8, 6, 4, 2])
    assert 0 < low < high < 1


def test_imbalance_factor_validation():
    with pytest.raises(ValueError):
        imbalance_factor([])
    with pytest.raises(ValueError):
        imbalance_factor([1, -2])


def test_imbalance_report():
    rep = ImbalanceReport.from_loads(
        qps=[5, 5], rpcs=[10, 0], inodes=[3, 3], busytime=[8, 2]
    )
    d = rep.as_dict()
    assert d["QPS"] == 0.0
    assert d["RPCs"] == 1.0
    assert 0 < d["BusyTime"] < 1
