"""Result store: stable JSON, fingerprint, schema validation."""

import json

import numpy as np
import pytest

from repro.bench.store import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactError,
    artifact_path,
    build_artifact,
    environment_fingerprint,
    load_artifact,
    stable_dumps,
    strip_volatile,
    write_artifact,
    write_json,
)


def minimal_artifact(scenario="demo", **overrides):
    art = build_artifact(
        scenario={"name": scenario, "kind": "rw"},
        scale_name="smoke",
        seeds=[1, 2],
        runs=[
            {"variant": "a", "seed": 1, "metrics": {"m": 1.0}},
            {"variant": "a", "seed": 2, "metrics": {"m": 2.0}},
        ],
        aggregates={"a": {"m": {"mean": 1.5, "n": 2.0}}},
        wall_s=0.5,
        workers=2,
    )
    art.update(overrides)
    return art


def test_stable_dumps_sorts_keys_everywhere():
    text = stable_dumps({"b": 1, "a": {"z": 1, "y": 2}})
    assert text.index('"a"') < text.index('"b"')
    assert text.index('"y"') < text.index('"z"')
    # numpy values serialise via tolist
    assert json.loads(stable_dumps({"x": np.float64(1.5), "v": np.arange(3)})) == {
        "x": 1.5,
        "v": [0, 1, 2],
    }


def test_write_json_trailing_newline_and_byte_stability(tmp_path):
    path = tmp_path / "sub" / "out.json"
    write_json(path, {"b": 2, "a": 1})
    first = path.read_bytes()
    assert first.endswith(b"\n") and not first.endswith(b"\n\n")
    assert first.index(b'"a"') < first.index(b'"b"')
    # writing the logically-identical dict in another key order is a no-op diff
    write_json(path, {"a": 1, "b": 2})
    assert path.read_bytes() == first


def test_environment_fingerprint_fields():
    fp = environment_fingerprint("smoke")
    assert fp["scale"] == "smoke"
    assert fp["python"] and fp["platform"] and fp["numpy"]
    assert fp["created_utc"]
    # inside this repo the sha resolves
    assert fp["git_sha"] is None or len(fp["git_sha"]) == 40


def test_artifact_write_load_round_trip(tmp_path):
    art = minimal_artifact()
    path = write_artifact(art, tmp_path)
    assert path == artifact_path(tmp_path, "demo")
    assert path.name == "BENCH_demo.json"
    loaded = load_artifact(path)
    assert loaded["schema_version"] == ARTIFACT_SCHEMA_VERSION
    assert strip_volatile(loaded) == strip_volatile(art)


def test_strip_volatile_drops_env_and_timing():
    core = strip_volatile(minimal_artifact())
    assert "environment" not in core and "timing" not in core
    assert core["runs"] and core["aggregates"]


def test_load_artifact_errors(tmp_path):
    with pytest.raises(ArtifactError, match="cannot read"):
        load_artifact(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(ArtifactError, match="not valid JSON"):
        load_artifact(bad)
    lst = tmp_path / "list.json"
    lst.write_text("[1, 2]\n")
    with pytest.raises(ArtifactError, match="JSON object"):
        load_artifact(lst)
    partial = tmp_path / "partial.json"
    write_json(partial, {"schema_version": 1, "scenario": "x"})
    with pytest.raises(ArtifactError, match="missing keys"):
        load_artifact(partial)
    future = tmp_path / "future.json"
    write_json(future, minimal_artifact(schema_version=ARTIFACT_SCHEMA_VERSION + 1))
    with pytest.raises(ArtifactError, match="newer than the supported"):
        load_artifact(future)
