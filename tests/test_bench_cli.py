"""End-to-end CLI coverage for ``repro bench run|list|compare|report``."""

import json

import pytest

from repro.bench.scenario import BenchScenario, BenchVariant, register_scenario
from repro.bench.store import load_artifact, write_json
from repro.cli import build_parser, main

register_scenario(
    BenchScenario(
        name="_test_cli_rw",
        description="CLI test scenario",
        kind="rw",
        variants=(
            BenchVariant("even", strategy="Even", n_mds=3, n_clients=16, ops_factor=0.1),
        ),
        seeds=(3,),
        scale="smoke",
    ),
    replace=True,
)


def test_parser_bench_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bench"])


def test_bench_list(capsys):
    assert main(["bench", "list"]) == 0
    out = capsys.readouterr().out
    assert "fig5_overall" in out
    assert "crash_failover_rw" in out
    assert "registered bench scenarios" in out


def test_experiments_lists_bench_scenarios(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "bench scenarios" in out
    assert "fig2_even_partitioning" in out
    assert "2 variants x 2 seeds" in out


def test_bench_run_report_compare_round_trip(tmp_path, capsys):
    out_dir = tmp_path / "artifacts"
    assert main([
        "bench", "run", "--scenario", "_test_cli_rw",
        "--workers", "2", "--out-dir", str(out_dir),
    ]) == 0
    out = capsys.readouterr().out
    assert "BENCH _test_cli_rw" in out
    path = out_dir / "BENCH__test_cli_rw.json"
    assert path.exists()
    raw = path.read_text()
    assert raw.endswith("\n")
    assert json.loads(raw)["schema_version"] == 1

    assert main(["bench", "report", str(path)]) == 0
    assert "per-variant aggregates" in capsys.readouterr().out

    # self-compare passes
    assert main(["bench", "compare", str(path), str(path)]) == 0
    assert "PASS" in capsys.readouterr().out

    # perturb the candidate beyond threshold -> non-zero exit
    art = load_artifact(path)
    art["aggregates"]["even"]["mean_latency_ms"]["mean"] *= 2.0
    worse = tmp_path / "BENCH__test_cli_rw.json"
    write_json(worse, art)
    assert main(["bench", "compare", str(path), str(worse)]) == 1
    assert "FAIL" in capsys.readouterr().out
    # ...unless the gate is explicitly loosened
    assert main([
        "bench", "compare", str(path), str(worse),
        "--threshold", "mean_latency_ms=2.0",
    ]) == 0


def test_bench_run_unknown_scenario(capsys):
    assert main(["bench", "run", "--scenario", "no_such_scenario"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_bench_run_bad_seeds(capsys):
    assert main([
        "bench", "run", "--scenario", "_test_cli_rw", "--seeds", "1,x",
    ]) == 2
    assert "bad --seeds" in capsys.readouterr().err


def test_bench_compare_bad_inputs(tmp_path, capsys):
    missing = tmp_path / "missing.json"
    assert main(["bench", "compare", str(missing), str(missing)]) == 2
    assert "cannot read" in capsys.readouterr().err

    good = tmp_path / "good.json"
    write_json(good, {
        "schema_version": 1, "scenario": "x", "scale": "smoke",
        "seeds": [1], "runs": [], "aggregates": {},
    })
    assert main([
        "bench", "compare", str(good), str(good), "--threshold", "oops",
    ]) == 2
    assert "bad --threshold" in capsys.readouterr().err


def test_bench_report_rejects_future_schema(tmp_path, capsys):
    future = tmp_path / "future.json"
    write_json(future, {
        "schema_version": 99, "scenario": "x", "scale": "smoke",
        "seeds": [1], "runs": [], "aggregates": {},
    })
    assert main(["bench", "report", str(future)]) == 2
    assert "newer than the supported" in capsys.readouterr().err
