"""Edge-case coverage for the DES kernel beyond the basics."""

import pytest

from repro.sim import Environment, Interrupt


def test_all_of_failure_propagates():
    env = Environment()
    caught = []

    def bad_child():
        yield env.timeout(2.0)
        raise ValueError("child exploded")

    def good_child():
        yield env.timeout(5.0)
        return "ok"

    def parent():
        kids = [env.process(bad_child()), env.process(good_child())]
        try:
            yield env.all_of(kids)
        except ValueError as e:
            caught.append(str(e))

    env.process(parent())
    env.run()
    assert caught == ["child exploded"]


def test_process_exception_reaches_waiter():
    env = Environment()
    caught = []

    def failing():
        yield env.timeout(1.0)
        raise RuntimeError("inner")

    def waiter():
        p = env.process(failing())
        try:
            yield p
        except RuntimeError as e:
            caught.append(str(e))

    env.process(waiter())
    env.run()
    assert caught == ["inner"]


def test_unwaited_process_exception_surfaces_from_run():
    env = Environment()

    def failing():
        yield env.timeout(1.0)
        raise RuntimeError("nobody listening")

    env.process(failing())
    with pytest.raises(RuntimeError, match="nobody listening"):
        env.run()


def test_interrupt_handled_and_process_continues():
    env = Environment()
    log = []

    def worker():
        try:
            yield env.timeout(100.0)
        except Interrupt:
            log.append(("interrupted", env.now))
        yield env.timeout(3.0)  # keeps going after handling
        log.append(("done", env.now))

    def boss(w):
        yield env.timeout(4.0)
        w.interrupt()

    w = env.process(worker())
    env.process(boss(w))
    env.run()
    assert log == [("interrupted", 4.0), ("done", 7.0)]


def test_nested_yield_from_generators():
    env = Environment()
    trace = []

    def inner(tag):
        yield env.timeout(1.0)
        trace.append((tag, env.now))
        return tag * 2

    def outer():
        a = yield from inner(1)
        b = yield from inner(10)
        trace.append(("sum", a + b))

    env.process(outer())
    env.run()
    assert trace == [(1, 1.0), (10, 2.0), ("sum", 22)]


def test_zero_delay_timeouts_preserve_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(0.0)
        order.append(tag)
        yield env.timeout(0.0)
        order.append(tag + 10)

    env.process(proc(0))
    env.process(proc(1))
    env.run()
    assert order == [0, 1, 10, 11]


def test_chained_immediate_events_terminate():
    """Already-processed events resumed synchronously must not recurse."""
    env = Environment()
    done = []

    def proc():
        ev = env.event()
        ev.succeed("v")
        yield env.timeout(0.0)
        # ev is processed by now; waiting resumes synchronously many times
        for _ in range(2000):
            v = yield ev
            assert v == "v"
        done.append(True)

    env.process(proc())
    env.run()
    assert done == [True]


def test_run_until_between_events():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(10.0)
        seen.append(env.now)
        yield env.timeout(10.0)
        seen.append(env.now)

    env.process(proc())
    env.run(until=15.0)
    assert seen == [10.0]
    assert env.now == 15.0
    env.run()  # resume to completion
    assert seen == [10.0, 20.0]
