"""Tests for Meta-OPT benefit label generation (§4.3)."""

import numpy as np
import pytest

from repro.cluster import PartitionMap
from repro.core import generate_labels
from repro.costmodel import CostParams, evaluate_trace
from repro.namespace.builder import build_random
from repro.sim import SeedSequenceFactory
from tests.test_costmodel_evaluate import random_trace


@pytest.fixture
def world():
    ssf = SeedSequenceFactory(21)
    rng = ssf.stream("w")
    built = build_random(rng, n_dirs=40, files_per_dir_mean=2)
    tree = built.tree
    pmap = PartitionMap(tree, n_mds=3)
    trace = random_trace(rng, tree, n_ops=400, include_rmdir=False)
    return tree, pmap, trace, CostParams()


def test_labels_cover_all_candidates(world):
    tree, pmap, trace, params = world
    lab = generate_labels(trace, tree, pmap, params, delta=1e9, epoch=4)
    uniform = pmap.uniform_subtree_mask()
    uniform[0] = False
    assert set(lab.candidates.tolist()) == set(np.nonzero(uniform)[0].tolist())
    assert lab.epoch == 4
    assert lab.benefits.shape == lab.candidates.shape
    assert np.all(lab.benefits >= 0)


def test_labels_match_ground_truth_benefit(world):
    """Each label equals the JCT improvement of actually applying the move."""
    tree, pmap, trace, params = world
    lab = generate_labels(trace, tree, pmap, params, delta=1e9)
    base = evaluate_trace(trace, tree, pmap, params).jct
    assert lab.base_jct == pytest.approx(base)
    rng = np.random.default_rng(0)
    for j in rng.choice(lab.candidates.size, size=15, replace=False):
        j = int(j)
        if lab.best_dst[j] < 0:
            continue
        what_if = pmap.copy()
        what_if.migrate_subtree(int(lab.candidates[j]), int(lab.best_dst[j]))
        jct = evaluate_trace(trace, tree, what_if, params).jct
        assert lab.benefits[j] == pytest.approx(base - jct)


def test_labels_best_dst_is_argmax(world):
    tree, pmap, trace, params = world
    lab = generate_labels(trace, tree, pmap, params, delta=1e9)
    base = lab.base_jct
    rng = np.random.default_rng(1)
    for j in rng.choice(lab.candidates.size, size=10, replace=False):
        j = int(j)
        s = int(lab.candidates[j])
        best = 0.0
        for dst in range(pmap.n_mds):
            if dst == pmap.owner(s):
                continue
            what_if = pmap.copy()
            what_if.migrate_subtree(s, dst)
            best = max(best, base - evaluate_trace(trace, tree, what_if, params).jct)
        assert lab.benefits[j] == pytest.approx(best)


def test_tight_delta_prunes_labels_and_respects_guard(world):
    tree, pmap, trace, params = world
    loose = generate_labels(trace, tree, pmap, params, delta=1e9)
    tight = generate_labels(trace, tree, pmap, params, delta=1e-6)
    assert tight.benefits.sum() <= loose.benefits.sum()
    # every admissible tight-label move must actually satisfy the guard
    for j in range(tight.candidates.size):
        if tight.best_dst[j] < 0:
            continue
        s, dst = int(tight.candidates[j]), int(tight.best_dst[j])
        src = pmap.owner(s)
        what_if = pmap.copy()
        what_if.migrate_subtree(s, dst)
        loads = evaluate_trace(trace, tree, what_if, params).rct_per_mds
        assert loads[dst] - loads[src] < 1e-6


def test_positive_fraction_and_validation(world):
    tree, pmap, trace, params = world
    lab = generate_labels(trace, tree, pmap, params, delta=1e9)
    assert 0.0 < lab.positive_fraction() <= 1.0
    with pytest.raises(ValueError):
        generate_labels(trace, tree, pmap, params, delta=0.0)
