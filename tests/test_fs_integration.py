"""Integration tests of the full OrigamiFS simulation."""

import numpy as np
import pytest

from repro.balancers import LunulePolicy, SingleMdsPolicy
from repro.costmodel import CostParams
from repro.fs import NearRootCache, SimConfig, run_simulation
from repro.fs.filesystem import OrigamiFS
from repro.sim import SeedSequenceFactory
from repro.workloads import generate_trace_rw, generate_trace_wi


def make_world(seed=0, n_ops=8000, kind="rw"):
    ssf = SeedSequenceFactory(seed)
    gen = generate_trace_rw if kind == "rw" else generate_trace_wi
    return gen(ssf.stream("w"), n_ops=n_ops)


def test_full_run_completes_all_ops():
    built, trace = make_world()
    cfg = SimConfig(n_mds=3, n_clients=20, epoch_ms=50.0, params=CostParams(cache_depth=2))
    r = run_simulation(built.tree, trace, LunulePolicy(), cfg)
    assert r.ops_completed + 0 == len(trace)  # best-effort failures still count issued ops
    assert r.duration_ms > 0
    assert r.throughput_ops_per_sec > 0
    assert len(r.per_epoch) >= 1
    assert r.engine_events > len(trace)


def test_epoch_metrics_account_for_all_requests():
    built, trace = make_world(seed=1)
    cfg = SimConfig(n_mds=3, n_clients=10, epoch_ms=50.0, params=CostParams(cache_depth=2))
    r = run_simulation(built.tree, trace, SingleMdsPolicy(), cfg)
    assert int(r.total_qps_per_mds().sum()) == r.ops_completed
    # single policy with 3 MDS: everything stays on MDS 0
    assert r.total_qps_per_mds()[1] == 0
    assert r.migrations == 0


def test_migrations_move_kvstore_records():
    built, trace = make_world(seed=2, kind="rw")
    cfg = SimConfig(
        n_mds=3, n_clients=20, epoch_ms=50.0,
        params=CostParams(cache_depth=2), use_kvstore=True,
    )
    fs = OrigamiFS(built.tree, trace, LunulePolicy(), cfg)
    r = fs.run()
    assert r.migrations > 0, "the skewed start must trigger migrations"
    # every directory's records must live exactly on its current owner
    tree = fs.tree
    owner_arr = fs.pmap.owner_array()
    checked = 0
    rng = np.random.default_rng(0)
    dirs = [d for d in tree.iter_dirs() if tree.n_child_files(d) > 0]
    for d in rng.choice(dirs, size=min(40, len(dirs)), replace=False):
        d = int(d)
        names = [n for n, c in tree.children(d).items() if not tree.is_dir(c)]
        name = names[0]
        key = b"%020d/%s" % (d, name.encode())
        home = int(owner_arr[d])
        assert fs.servers[home].kv_get(key) is not None, tree.path_of(d)
        for other in range(cfg.n_mds):
            if other != home:
                assert fs.servers[other].kv_get(key) is None
        checked += 1
    assert checked > 10


def test_namespace_mutations_applied():
    built, trace = make_world(seed=3, kind="wi", n_ops=6000)
    before_files = built.tree.num_files
    n_creates = int((trace.op == 4).sum())  # OpType.CREATE
    n_unlinks = int((trace.op == 6).sum())  # OpType.UNLINK
    cfg = SimConfig(n_mds=2, n_clients=10, epoch_ms=50.0, params=CostParams(cache_depth=2))
    r = run_simulation(built.tree, trace, SingleMdsPolicy(), cfg)
    after = built.tree.num_files
    # every create lands unless raced; unlinks remove existing files
    assert after == before_files + n_creates - n_unlinks - r.failed_ops


def test_datapath_transfers_for_file_ops():
    built, trace = make_world(seed=4, n_ops=4000)
    n_dataops = int(np.isin(trace.op, [1, 4]).sum())  # OPEN, CREATE
    cfg = SimConfig(
        n_mds=2, n_clients=10, epoch_ms=50.0, params=CostParams(cache_depth=2),
        datapath=dict(n_servers=3, bandwidth_mb_per_s=500.0),
    )
    r = run_simulation(built.tree, trace, SingleMdsPolicy(), cfg)
    assert r.data_ops_completed == n_dataops
    assert r.end_to_end_throughput > 0
    # the data path adds latency -> lower metadata throughput than without
    built2, trace2 = make_world(seed=4, n_ops=4000)
    cfg2 = SimConfig(n_mds=2, n_clients=10, epoch_ms=50.0, params=CostParams(cache_depth=2))
    r2 = run_simulation(built2.tree, trace2, SingleMdsPolicy(), cfg2)
    assert r.throughput_ops_per_sec < r2.throughput_ops_per_sec


def test_near_root_cache_object():
    built, _ = make_world(seed=5, n_ops=100)
    tree = built.tree
    cache = NearRootCache(tree, depth_threshold=2)
    assert cache.enabled
    assert cache.covers(tree.lookup("/src"))
    assert not cache.covers(tree.lookup("/src/mod000"))
    assert 0 < cache.hit_rate < 1
    off = NearRootCache(tree, 0)
    assert not off.enabled
    assert not off.covers(tree.lookup("/src"))
    with pytest.raises(ValueError):
        NearRootCache(tree, -1)


def test_cache_reduces_rpcs_end_to_end():
    def run(depth):
        built, trace = make_world(seed=6, n_ops=5000)
        cfg = SimConfig(
            n_mds=4, n_clients=10, epoch_ms=50.0, params=CostParams(cache_depth=depth)
        )
        from repro.balancers import FineHashPolicy

        return run_simulation(built.tree, trace, FineHashPolicy(), cfg)

    cold = run(0)
    warm = run(3)
    assert warm.total_rpcs < cold.total_rpcs
    assert warm.cache_hit_rate > 0
    assert cold.cache_hit_rate == 0


def test_sim_config_validation():
    with pytest.raises(ValueError):
        SimConfig(n_mds=0)
    with pytest.raises(ValueError):
        SimConfig(epoch_ms=0)
    with pytest.raises(ValueError):
        SimConfig(n_clients=0)


def test_empty_trace_run():
    built, trace = make_world(seed=7, n_ops=100)
    empty = trace[0:0]
    cfg = SimConfig(n_mds=2, n_clients=3, epoch_ms=50.0)
    r = run_simulation(built.tree, empty, SingleMdsPolicy(), cfg)
    assert r.ops_completed == 0
    assert r.duration_ms == 0.0
    assert r.throughput_ops_per_sec == 0.0


def test_migration_cost_charged():
    built, trace = make_world(seed=8)
    cfg = SimConfig(
        n_mds=3, n_clients=20, epoch_ms=50.0, params=CostParams(cache_depth=2),
        migration_cost_per_inode_ms=0.01,
    )
    r = run_simulation(built.tree, trace, LunulePolicy(), cfg)
    built2, trace2 = make_world(seed=8)
    cfg2 = SimConfig(
        n_mds=3, n_clients=20, epoch_ms=50.0, params=CostParams(cache_depth=2),
        migration_cost_per_inode_ms=0.0,
    )
    r2 = run_simulation(built2.tree, trace2, LunulePolicy(), cfg2)
    if r.migrations and r2.migrations:
        # charged migrations consume server time: total busy goes up
        assert r.total_busy_per_mds().sum() > r2.total_busy_per_mds().sum()


def test_stale_decision_dropped():
    """A decision whose subtree moved under it is skipped, not crashed on."""
    from repro.balancers.base import BalancePolicy
    from repro.cluster.migration import MigrationDecision

    class StalePolicy(BalancePolicy):
        name = "stale"

        def rebalance(self, ctx):
            # claim a subtree belongs to MDS 2 when it is on 0
            some_dir = next(d for d in ctx.tree.iter_dirs() if d != 0)
            return [MigrationDecision(some_dir, src=2, dst=1)]

    built, trace = make_world(seed=9, n_ops=3000)
    cfg = SimConfig(n_mds=3, n_clients=5, epoch_ms=20.0, params=CostParams())
    fs = OrigamiFS(built.tree, trace, StalePolicy(), cfg)
    r = fs.run()
    assert fs.stale_decisions > 0
    assert r.migrations == 0
