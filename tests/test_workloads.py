"""Tests for trace containers and the three workload generators."""

import numpy as np
import pytest

from repro.costmodel.optypes import OpType
from repro.sim import SeedSequenceFactory
from repro.workloads import (
    Trace,
    TraceBuilder,
    generate_trace_ro,
    generate_trace_rw,
    generate_trace_wi,
)
from repro.workloads.zipfian import DriftingZipf, zipf_sample


def stream(name="w", seed=0):
    return SeedSequenceFactory(seed).stream(name)


# ----------------------------------------------------------------- container


def test_trace_builder_roundtrip():
    tb = TraceBuilder(label="t")
    tb.stat(1, "a")
    tb.readdir(2)
    tb.create(3, "new")
    tb.rmdir(4, target_dir=9)
    tr = tb.build()
    assert len(tr) == 4
    assert tr.label == "t"
    assert list(tr.op) == [OpType.STAT, OpType.READDIR, OpType.CREATE, OpType.RMDIR]
    assert list(tr.dir_ino) == [1, 2, 3, 4]
    assert list(tr.aux) == [-1, -1, -1, 9]
    assert tr.names == ["a", "", "new", ""]


def test_trace_slicing_and_epochs():
    tb = TraceBuilder()
    for i in range(10):
        tb.stat(i, f"n{i}")
    tr = tb.build()
    sub = tr[3:7]
    assert len(sub) == 4
    assert list(sub.dir_ino) == [3, 4, 5, 6]
    assert sub.names == ["n3", "n4", "n5", "n6"]
    epochs = list(tr.epochs(4))
    assert [e for e, _ in epochs] == [0, 1, 2]
    assert [len(w) for _, w in epochs] == [4, 4, 2]
    with pytest.raises(ValueError):
        list(tr.epochs(0))


def test_trace_concat_and_mix():
    a = TraceBuilder()
    a.stat(1, "x")
    b = TraceBuilder()
    b.create(2, "y")
    both = a.build().concat(b.build())
    assert len(both) == 2
    assert both.write_fraction() == 0.5
    assert both.op_mix() == {"STAT": 1, "CREATE": 1}


def test_trace_concat_many_matches_chained_concat():
    pieces = []
    for k in range(5):
        tb = TraceBuilder(label=f"p{k}")
        for i in range(3):
            tb.stat(10 * k + i, f"n{k}_{i}")
        tb.create(10 * k + 9, f"c{k}")
        pieces.append(tb.build())
    many = Trace.concat_many(pieces)
    chained = pieces[0]
    for p in pieces[1:]:
        chained = chained.concat(p)
    assert len(many) == sum(len(p) for p in pieces)
    np.testing.assert_array_equal(many.op, chained.op)
    np.testing.assert_array_equal(many.dir_ino, chained.dir_ino)
    np.testing.assert_array_equal(many.aux, chained.aux)
    assert many.names == chained.names
    assert many.label == chained.label


def test_trace_concat_many_column_rules():
    with pytest.raises(ValueError):
        Trace.concat_many([])
    a = TraceBuilder()
    a.stat(1, "x")
    a.think(1.5)
    b = TraceBuilder()
    b.create(2, "y")
    ta, tb_ = a.build(), b.build()
    # think on any piece zero-fills the pieces without one
    both = Trace.concat_many([ta, tb_])
    assert both.think_ms is not None
    np.testing.assert_allclose(both.think_ms, [1.5, 0.0])
    # names survive only when every piece carries them
    tb_.names = None
    assert Trace.concat_many([ta, tb_]).names is None


def test_trace_column_validation():
    with pytest.raises(ValueError):
        Trace(np.zeros(2, np.int8), np.zeros(3, np.int64), np.zeros(2, np.int64))
    with pytest.raises(ValueError):
        Trace(np.zeros(2, np.int8), np.zeros(2, np.int64), np.zeros(2, np.int64), names=["a"])


# ------------------------------------------------------------------ samplers


def test_zipf_sample_skews_to_low_ranks():
    rng = stream()
    items = list(range(100))
    out = zipf_sample(rng, items, alpha=1.5, size=5000)
    # rank-1 item should dominate
    counts = np.bincount(out, minlength=100)
    assert counts[0] == counts.max()
    assert counts[:10].sum() > counts[50:].sum()


def test_drifting_zipf_changes_hot_set():
    rng = stream()
    dz = DriftingZipf(rng, list(range(50)), alpha=1.3, drift=1.0)
    before = dz.hot_set(5)
    for _ in range(3):
        dz.advance()
    after = dz.hot_set(5)
    assert dz.segments_advanced == 3
    assert before != after  # full drift virtually guarantees a reshuffle


def test_drifting_zipf_zero_drift_stable():
    rng = stream()
    dz = DriftingZipf(rng, list(range(50)), alpha=1.3, drift=0.0)
    before = dz.hot_set(5)
    dz.advance()
    assert dz.hot_set(5) == before


def test_drifting_zipf_validation():
    rng = stream()
    with pytest.raises(ValueError):
        DriftingZipf(rng, [1], alpha=1.0, drift=2.0)
    with pytest.raises(ValueError):
        DriftingZipf(rng, [], alpha=1.0)


# ---------------------------------------------------------------- generators


def test_trace_rw_characteristics():
    built, tr = generate_trace_rw(stream(), n_ops=20000)
    assert len(tr) == 20000
    # mixed read/write: a substantial but minority write share
    assert 0.15 < tr.write_fraction() < 0.6
    mix = tr.op_mix()
    assert mix.get("CREATE", 0) > 0
    assert mix.get("STAT", 0) > 0
    assert mix.get("READDIR", 0) > 0
    # all referenced dirs are live directories of the built tree
    for d in np.unique(tr.dir_ino):
        assert built.tree.is_dir(int(d))
    # the namespace is deep (the §2.4 "exceeding ten levels" flavour)
    depths = built.tree.depth_array()[built.tree.dir_mask()]
    assert depths.max() >= 6


def test_trace_ro_read_only_and_skewed():
    built, tr = generate_trace_ro(stream(), n_ops=15000, n_dirs=800)
    assert len(tr) == 15000
    assert tr.write_fraction() == 0.0
    # significant skew: top-5% of dirs carry a large share of ops
    dirs, counts = np.unique(tr.dir_ino, return_counts=True)
    counts = np.sort(counts)[::-1]
    top = counts[: max(1, len(counts) // 20)].sum()
    assert top / counts.sum() > 0.25
    depths = built.tree.depth_array()[built.tree.dir_mask()]
    assert depths.max() >= 10


def test_trace_wi_write_intensive_and_drifting():
    built, tr = generate_trace_wi(stream(), n_ops=15000, segments=6)
    assert len(tr) == 15000
    assert tr.write_fraction() > 0.6  # the paper's >2/3 write share
    # hot tenants drift: the busiest *write target* of the first third
    # differs from that of the last third (reads share /shared, so restrict
    # to creates, which always land in tenant shards)
    creates = tr.op == int(OpType.CREATE)
    first = tr.dir_ino[:5000][creates[:5000]]
    last = tr.dir_ino[10000:][creates[10000:]]
    assert np.bincount(first).argmax() != np.bincount(last).argmax()


def test_generators_deterministic():
    _, t1 = generate_trace_rw(stream(seed=5), n_ops=3000)
    _, t2 = generate_trace_rw(stream(seed=5), n_ops=3000)
    assert np.array_equal(t1.op, t2.op)
    assert np.array_equal(t1.dir_ino, t2.dir_ino)
    assert t1.names == t2.names


def test_generators_distinct_seeds_differ():
    _, t1 = generate_trace_rw(stream(seed=1), n_ops=3000)
    _, t2 = generate_trace_rw(stream(seed=2), n_ops=3000)
    assert not np.array_equal(t1.dir_ino, t2.dir_ino)


def test_mdtest_phases_and_uniformity():
    from repro.workloads import generate_trace_mdtest

    built, tr = generate_trace_mdtest(stream(), n_ops=12000, n_ranks=8, files_per_rank=16, depth=2)
    assert len(tr) == 12000
    mix = tr.op_mix()
    # the four mdtest phases all appear, creates ~= unlinks within a cycle
    for op in ("CREATE", "STAT", "READDIR", "UNLINK"):
        assert mix.get(op, 0) > 0
    # per-rank load is uniform: each rank dir sees close to the mean
    import numpy as np

    counts = np.bincount(tr.dir_ino, minlength=built.tree.capacity)
    rank_counts = counts[built.read_dirs]
    assert rank_counts.min() > rank_counts.max() * 0.8
    # rank dirs nest `depth` levels below /mdtest
    assert all(built.tree.depth(d) == 3 for d in built.read_dirs)


def test_mdtest_replayable_in_simulator():
    from repro.balancers import EvenPartitionPolicy
    from repro.costmodel import CostParams
    from repro.fs import SimConfig, run_simulation
    from repro.workloads import generate_trace_mdtest

    built, tr = generate_trace_mdtest(stream(seed=7), n_ops=6000, n_ranks=6, files_per_rank=8)
    r = run_simulation(
        built.tree, tr, EvenPartitionPolicy(),
        SimConfig(n_mds=3, n_clients=12, epoch_ms=50.0, params=CostParams(cache_depth=2)),
    )
    assert r.ops_completed == 6000
    # uniform workload on an even partition: balance must be good
    assert r.imbalance().qps < 0.25


def test_mdtest_validation():
    from repro.workloads import generate_trace_mdtest
    import pytest as _pytest

    with _pytest.raises(ValueError):
        generate_trace_mdtest(stream(), n_ranks=0)
