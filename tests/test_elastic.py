"""Elastic MDS pool: spec round-trip, drain-aware dst masking, pool
breathing, determinism, and the cost/latency frontier."""

import json

import numpy as np
import pytest

from repro.balancers.base import EpochContext, plan_evacuations
from repro.balancers.lunule import LunulePolicy
from repro.costmodel import CostParams
from repro.fs.elastic import (
    DRAINING,
    GONE,
    UP,
    WARMING,
    AutoscaleSpec,
    MDSLiveness,
    ScaleEvent,
)
from repro.namespace.builder import build_software_project
from repro.namespace.stats import AccessStats
from repro.sim import SeedSequenceFactory


def stream(seed=0):
    return SeedSequenceFactory(seed).stream("policy")


# ------------------------------------------------------------------- spec


def test_spec_round_trips_through_json():
    spec = AutoscaleSpec(
        policy="schedule",
        min_mds=2,
        max_mds=6,
        warmup_ms=12.5,
        warmup_factor=3.0,
        cooldown_epochs=1,
        scale_out_util=0.7,
        scale_in_util=0.2,
        horizon_epochs=4,
        events=(ScaleEvent(1, "join", 2), ScaleEvent(5, "drain")),
    )
    assert AutoscaleSpec.from_json(spec.to_json()) == spec
    # canonical: sorted keys, schema-versioned
    d = json.loads(spec.to_json())
    assert d["schema_version"] == 1
    assert list(d) == sorted(d)


def test_spec_file_round_trip(tmp_path):
    spec = AutoscaleSpec(policy="threshold", min_mds=1, max_mds=3)
    path = tmp_path / "spec.json"
    spec.save(str(path))
    assert AutoscaleSpec.load(str(path)) == spec


@pytest.mark.parametrize(
    "kwargs",
    [
        {"policy": "nope"},
        {"min_mds": 0},
        {"min_mds": 5, "max_mds": 3},
        {"warmup_ms": -1.0},
        {"warmup_factor": 0.5},
        {"cooldown_epochs": -1},
        {"scale_out_util": 0.3, "scale_in_util": 0.3},
        {"scale_in_util": 0.0},
        {"horizon_epochs": 0},
    ],
)
def test_spec_rejects_bad_fields(kwargs):
    with pytest.raises(ValueError):
        AutoscaleSpec(**kwargs)


def test_spec_validate_initial_bounds_and_schedule_events():
    spec = AutoscaleSpec(min_mds=2, max_mds=4)
    spec.validate(3)
    with pytest.raises(ValueError):
        spec.validate(1)
    with pytest.raises(ValueError):
        spec.validate(5)
    with pytest.raises(ValueError):
        AutoscaleSpec(policy="schedule").validate(2)


def test_schedule_events_reject_bad_values():
    with pytest.raises(ValueError):
        ScaleEvent(-1, "join")
    with pytest.raises(ValueError):
        ScaleEvent(0, "leave")
    with pytest.raises(ValueError):
        ScaleEvent(0, "drain", count=0)


# ------------------------------------------------------- liveness view


class _FakeServer:
    def __init__(self, up=True):
        self.up = up


def test_liveness_masks_split_voluntary_and_involuntary():
    servers = [_FakeServer() for _ in range(4)]
    lv = MDSLiveness(servers, n_active=3)
    assert lv.states().tolist() == [UP, UP, UP, GONE]
    assert lv.n_active() == 3
    lv.set_state(1, DRAINING)
    servers[2].up = False  # crash is orthogonal to voluntary state
    assert lv.serving_mask().tolist() == [True, True, False, False]
    assert lv.dst_mask().tolist() == [True, False, False, False]
    assert lv.draining_mask().tolist() == [False, True, False, False]
    assert lv.active_mask().tolist() == [True, True, True, False]
    lv.set_state(3, WARMING)
    assert lv.can_receive(3) and not lv.can_receive(1)


# --------------------------------------------- drain-aware dst masking


def _ctx_with_liveness(tree, pmap, loads, liveness, reads_on=None):
    stats = AccessStats(tree)
    for dir_ino, n in (reads_on or {}).items():
        stats.record_read(dir_ino, n)
    return EpochContext(
        tree=tree,
        pmap=pmap,
        epoch=1,
        snapshot=stats.snapshot_and_reset(),
        mds_load=np.asarray(loads, dtype=np.float64),
        params=CostParams(cache_depth=2),
        rng=stream(),
        mds_up=liveness.serving_mask() if liveness is not None else None,
        liveness=liveness,
    )


@pytest.fixture
def world():
    rng = stream()
    built = build_software_project(rng, n_modules=6, dirs_per_module=3, files_per_dir=4)
    return built.tree, rng


def test_plan_evacuations_moves_draining_owners_to_eligible_dsts(world):
    """The regression the liveness split fixes: a *draining* MDS still
    reports up (it serves while evacuating), so the old up-mask view never
    evacuated it and happily kept exporting onto it."""
    from repro.cluster.partition import PartitionMap

    tree, rng = world
    n = 4
    pmap = PartitionMap(tree, n_mds=n)
    LunulePolicy().setup(tree, n, rng)
    roots = [d for d in tree.iter_dirs()][1:]
    for i, d in enumerate(roots):
        pmap.assign_dir(d, i % n)
    lv = MDSLiveness([_FakeServer() for _ in range(n)])
    lv.set_state(3, DRAINING)
    ctx = _ctx_with_liveness(tree, pmap, [10.0, 10.0, 10.0, 10.0], lv,
                             reads_on={d: 5 for d in roots})
    decisions = plan_evacuations(ctx)
    # every decision leaves the drainer and lands on an UP member
    assert decisions, "the drainer owned dirs, so something must move"
    assert all(d.src == 3 and d.dst in (0, 1, 2) for d in decisions)
    # anything not covered by a pending subtree move was repinned in place:
    # every dir still owned by MDS 3 sits inside some decision's subtree
    owner = pmap.owner_array()
    covered = set()
    for dec in decisions:
        covered.update(int(x) for x in tree.iter_subtree_dirs(dec.subtree_root))
    for d in roots:
        if owner[d] == 3:
            assert d in covered


def test_lunule_never_exports_to_draining_mds(world):
    tree, rng = world
    from repro.cluster.partition import PartitionMap

    n = 3
    policy = LunulePolicy()
    policy.setup(tree, n, rng)
    pmap = PartitionMap(tree, n_mds=n)
    dirs = [d for d in tree.iter_dirs()]
    for i, d in enumerate(dirs):
        pmap.assign_dir(d, 0)  # everything on MDS 0: maximal imbalance
    lv = MDSLiveness([_FakeServer() for _ in range(n)])
    lv.set_state(2, DRAINING)
    ctx = _ctx_with_liveness(
        tree, pmap, [100.0, 0.0, 0.0], lv, reads_on={d: 50 for d in dirs}
    )
    decisions = policy.rebalance(ctx)
    assert decisions, "skewed cluster must rebalance"
    assert all(d.dst != 2 for d in decisions), "draining MDS must not receive"


def test_origami_never_exports_to_draining_mds(world):
    tree, rng = world
    from repro.cluster.partition import PartitionMap
    from repro.core.origami import OrigamiPolicy

    class _UniformModel:
        def predict(self, X):
            return np.ones(len(X))

    n = 3
    policy = OrigamiPolicy(_UniformModel(), max_moves_per_epoch=8, cooldown_epochs=0)
    policy.setup(tree, n, rng)
    pmap = PartitionMap(tree, n_mds=n)
    dirs = [d for d in tree.iter_dirs()]
    for d in dirs:
        pmap.assign_dir(d, 0)
    lv = MDSLiveness([_FakeServer() for _ in range(n)])
    lv.set_state(2, DRAINING)
    ctx = _ctx_with_liveness(
        tree, pmap, [100.0, 0.0, 0.0], lv, reads_on={d: 50 for d in dirs}
    )
    decisions = policy.rebalance(ctx)
    assert all(d.dst != 2 for d in decisions)


# --------------------------------------------------- end-to-end elastic


def _run_elastic(spec, kind="diurnal", seed=42, n_mds=2, n_ops=8000, **kw):
    from repro.harness.config import get_scale
    from repro.harness.experiments import run_strategy

    return run_strategy(
        "Lunule", kind, get_scale("smoke"), seed=seed, n_mds=n_mds,
        n_ops=n_ops, autoscale=spec, **kw
    )


def test_pool_breathes_and_loses_no_ops():
    spec = AutoscaleSpec(
        policy="schedule", min_mds=1, max_mds=5, warmup_ms=5.0,
        events=(ScaleEvent(0, "join", 2), ScaleEvent(1, "drain", 2)),
    )
    n_ops = 12000
    r = _run_elastic(spec, kind="flash", seed=7, n_ops=n_ops)
    e = r.elastic
    assert e["scale_outs"] == 2.0
    assert e["drains_started"] == 2.0
    assert e["drains_completed"] == 2.0
    assert e["pool_peak"] == 4.0 and e["pool_final"] == 2.0
    assert r.ops_completed == n_ops  # graceful drains lose nothing
    assert e["mds_seconds"] > 2.0 * r.duration_ms / 1000.0  # > floor of 2


def test_threshold_policy_scales_out_under_load():
    spec = AutoscaleSpec(
        policy="threshold", min_mds=1, max_mds=4, warmup_ms=5.0,
        cooldown_epochs=1, scale_out_util=0.5, scale_in_util=0.35,
    )
    r = _run_elastic(spec, n_ops=12000)
    assert r.elastic["scale_outs"] >= 1.0
    assert r.elastic["pool_peak"] > r.elastic["pool_initial"]


def test_same_seed_and_spec_replay_identically():
    spec = AutoscaleSpec(
        policy="threshold", min_mds=1, max_mds=4, warmup_ms=5.0,
        cooldown_epochs=1, scale_out_util=0.5, scale_in_util=0.35,
    )
    a = _run_elastic(spec, n_ops=6000).to_dict()
    b = _run_elastic(spec, n_ops=6000).to_dict()
    assert a == b


def test_non_elastic_result_has_no_elastic_key():
    from repro.harness.config import get_scale
    from repro.harness.experiments import run_strategy

    r = run_strategy("Lunule", "rw", get_scale("smoke"), seed=42, n_ops=2000)
    assert r.elastic is None
    assert "elastic" not in r.to_dict()


def test_autoscale_rejects_hash_placement():
    from repro.harness.config import get_scale
    from repro.harness.experiments import run_strategy

    spec = AutoscaleSpec(policy="threshold", min_mds=1, max_mds=4)
    with pytest.raises(ValueError, match="hash"):
        run_strategy("C-Hash", "rw", get_scale("smoke"), seed=42,
                     n_ops=1000, n_mds=2, autoscale=spec)


# ------------------------------------------------------ frontier (bench)


def test_elastic_diurnal_threshold_dominates_static():
    """The acceptance frontier: threshold autoscaling must cut MDS-seconds
    by >= 20% while regressing p99 by <= 10% vs static provisioning."""
    from repro.bench.execute import extract_metrics, run_variant
    from repro.bench.scenario import get_scenario

    sc = get_scenario("elastic_diurnal")
    static_r, _ = run_variant(sc, sc.variant("static-4"), 42)
    elastic_r, _ = run_variant(sc, sc.variant("threshold"), 42)
    static_mds_s = 4 * static_r.duration_ms / 1000.0
    m = extract_metrics(elastic_r)
    assert m["elastic.mds_seconds"] <= 0.8 * static_mds_s
    assert m["p99_latency_ms"] <= 1.10 * static_r.p99_latency_ms
    # the pool actually breathed to get there
    assert m["elastic.drains_completed"] >= 1.0
    assert m["elastic.scale_outs"] >= 1.0
