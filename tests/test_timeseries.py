"""Unit tests for the windowed timeline collector (no full simulation).

The collector is duck-typed over ``fs``: these tests drive it unbound (no
cluster at all) or against a tiny stub, so the window mechanics — roll-over,
growth, latency sampling, trailing partials — are pinned independently of
the simulator.  End-to-end exactness lives in ``test_obs_parity.py``.
"""

import pytest

from repro.obs import NULL_TIMELINE, TimelineCollector
from repro.obs.timeseries import PER_MDS_COLUMNS, _imbalance


def test_constructor_validation():
    with pytest.raises(ValueError):
        TimelineCollector(window_ms=0.0)
    with pytest.raises(ValueError):
        TimelineCollector(window_ms=-1.0)
    with pytest.raises(ValueError):
        TimelineCollector(max_latency_samples=0)
    with pytest.raises(ValueError):
        TimelineCollector(initial_windows=0)


def test_unbound_collector_windows_ops_by_virtual_time():
    tl = TimelineCollector(window_ms=10.0)
    tl.record_op(1.0)
    tl.record_op(3.0)
    tl.advance(10.0)  # closes window 0
    tl.record_op(5.0)
    tl.finalize(15.0)  # closes the partial window 1 at 15ms

    rows = tl.to_rows()
    assert [r["ops"] for r in rows] == [2, 1]
    assert rows[0]["start_ms"] == 0.0 and rows[0]["end_ms"] == 10.0
    assert rows[1]["start_ms"] == 10.0 and rows[1]["end_ms"] == 15.0
    assert rows[0]["lat_mean_ms"] == pytest.approx(2.0)
    # partial window: rate uses the actual 5ms span, not the nominal 10ms
    assert rows[1]["ops_per_sec"] == pytest.approx(1 / 0.005)
    # unbound: no per-MDS columns
    assert not any(f"mds_{c}" in rows[0] for c in PER_MDS_COLUMNS)


def test_idle_gap_closes_empty_windows():
    tl = TimelineCollector(window_ms=10.0)
    tl.record_op(1.0)
    tl.advance(95.0)  # jump: windows 0..8 close, window 9 opens
    tl.record_op(1.0)
    tl.finalize(100.0)
    rows = tl.to_rows()
    assert len(rows) == 10
    assert rows[0]["ops"] == 1
    assert all(r["ops"] == 0 for r in rows[1:9])
    assert rows[9]["ops"] == 1


def test_window_array_growth_preserves_data():
    tl = TimelineCollector(window_ms=1.0, initial_windows=2)
    for w in range(50):
        tl.record_op(float(w))
        tl.advance(w + 1.0)
    tl.finalize(50.0)
    rows = tl.to_rows()
    assert len(rows) == 50
    assert all(r["ops"] == 1 for r in rows)
    assert [r["lat_mean_ms"] for r in rows] == [float(w) for w in range(50)]


def test_latency_sample_cap_counts_overflow():
    tl = TimelineCollector(window_ms=10.0, max_latency_samples=2)
    for lat in (1.0, 2.0, 9.0, 9.0, 9.0):
        tl.record_op(lat)
    tl.finalize(10.0)
    row = tl.to_rows()[0]
    assert row["ops"] == 5
    assert row["lat_samples"] == 2
    assert row["lat_dropped"] == 3
    # percentiles come from the deterministic first-N buffer only
    assert row["p99_ms"] <= 2.0
    # the mean is exact regardless of sampling
    assert row["lat_mean_ms"] == pytest.approx(30.0 / 5)


def test_finalize_is_idempotent_and_stops_advance():
    tl = TimelineCollector(window_ms=10.0)
    tl.record_op(1.0)
    tl.finalize(5.0)
    n = tl.n_windows
    tl.finalize(5.0)
    tl.advance(500.0)
    assert tl.n_windows == n == 1


def test_double_bind_rejected():
    class _Env:
        now = 0.0
        events_processed = 0

    class _Cache:
        @staticmethod
        def counters():
            return (0, 0)

    class _Fs:
        env = _Env()
        servers = ()
        cache = _Cache()

    tl = TimelineCollector()
    tl.bind(_Fs())
    with pytest.raises(RuntimeError):
        tl.bind(_Fs())


def test_summary_of_empty_collector():
    tl = TimelineCollector(window_ms=25.0)
    assert tl.summary() == {"windows": 0.0, "window_ms": 25.0}


def test_null_timeline_is_inert():
    assert not NULL_TIMELINE.enabled
    assert NULL_TIMELINE.window_end_ms == float("inf")
    NULL_TIMELINE.record_op(1.0)
    NULL_TIMELINE.record_migration(0, 1, 5)
    NULL_TIMELINE.advance(1e9)
    NULL_TIMELINE.finalize(1e9)
    assert NULL_TIMELINE.n_windows == 0
    assert NULL_TIMELINE.to_rows() == []
    assert NULL_TIMELINE.summary() == {}


def test_imbalance_factor_edge_cases():
    import numpy as np

    assert _imbalance(np.array([5.0, 5.0, 5.0])) == 0.0
    assert _imbalance(np.array([9.0, 0.0, 0.0])) == 1.0
    assert _imbalance(np.array([0.0, 0.0])) == 0.0
    assert _imbalance(np.array([3.0])) == 0.0
    mid = _imbalance(np.array([4.0, 2.0, 0.0]))
    assert 0.0 < mid < 1.0
