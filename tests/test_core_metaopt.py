"""Tests for Meta-OPT (Algorithm 1): improvement, guards, oracle comparison."""

import numpy as np
import pytest

from repro.cluster import PartitionMap
from repro.core import exhaustive_opt, meta_opt
from repro.costmodel import CostParams, evaluate_trace
from repro.namespace.builder import build_balanced, build_random
from repro.sim import SeedSequenceFactory
from repro.workloads.trace import TraceBuilder
from tests.test_costmodel_evaluate import random_trace


def skewed_world(seed=0, n_mds=4):
    """Everything on MDS 0 (OrigamiFS initial state) with a skewed trace."""
    ssf = SeedSequenceFactory(seed)
    rng = ssf.stream("w")
    built = build_random(rng, n_dirs=50, files_per_dir_mean=2)
    tree = built.tree
    pmap = PartitionMap(tree, n_mds=n_mds)
    trace = random_trace(rng, tree, n_ops=600, include_rmdir=False)
    return tree, pmap, trace, CostParams()


def test_metaopt_reduces_jct_from_single_mds():
    tree, pmap, trace, params = skewed_world()
    base = evaluate_trace(trace, tree, pmap, params)
    res = meta_opt(trace, tree, pmap, params, delta=base.jct)
    assert res.jct_before == pytest.approx(base.jct)
    assert res.jct_after < res.jct_before
    assert len(res.decisions) > 0
    assert res.improvement > 0.3  # 4 MDSs should cut the single bin a lot


def test_metaopt_does_not_mutate_input_partition():
    tree, pmap, trace, params = skewed_world()
    before = pmap.owner_array().copy()
    meta_opt(trace, tree, pmap, params, delta=1e9)
    np.testing.assert_array_equal(pmap.owner_array(), before)


def test_metaopt_final_partition_reproduces_jct():
    tree, pmap, trace, params = skewed_world(seed=1)
    res = meta_opt(trace, tree, pmap, params, delta=1e9)
    recomputed = evaluate_trace(trace, tree, res.final_partition, params)
    assert res.jct_after == pytest.approx(recomputed.jct)


def test_metaopt_decisions_replay_to_final_partition():
    tree, pmap, trace, params = skewed_world(seed=2)
    res = meta_opt(trace, tree, pmap, params, delta=1e9)
    replay = pmap.copy()
    for d in res.decisions:
        assert replay.owner(d.subtree_root) == d.src
        replay.migrate_subtree(d.subtree_root, d.dst)
    np.testing.assert_array_equal(
        replay.owner_array(), res.final_partition.owner_array()
    )


def test_metaopt_jct_history_monotone_decreasing():
    tree, pmap, trace, params = skewed_world(seed=3)
    res = meta_opt(trace, tree, pmap, params, delta=1e9)
    hist = [res.jct_before, *res.jct_history]
    assert all(b < a for a, b in zip(hist, hist[1:]))


def test_metaopt_respects_delta_guard():
    tree, pmap, trace, params = skewed_world(seed=4)
    delta = 0.5  # tight guard: post-move dst-src gap must stay below this
    res = meta_opt(trace, tree, pmap, params, delta=delta)
    # verify every intermediate state satisfied the guard when applied
    replay = pmap.copy()
    for d in res.decisions:
        replay.migrate_subtree(d.subtree_root, d.dst)
        loads = evaluate_trace(trace, tree, replay, params).rct_per_mds
        assert loads[d.dst] - loads[d.src] < delta


def test_metaopt_max_migrations_cap():
    tree, pmap, trace, params = skewed_world(seed=5)
    res = meta_opt(trace, tree, pmap, params, delta=1e9, max_migrations=2)
    assert len(res.decisions) <= 2


def test_metaopt_stop_threshold():
    tree, pmap, trace, params = skewed_world(seed=6)
    free = meta_opt(trace, tree, pmap, params, delta=1e9, stop_threshold=0.0)
    strict = meta_opt(trace, tree, pmap, params, delta=1e9, stop_threshold=1e9)
    assert len(strict.decisions) == 0
    assert strict.jct_after == strict.jct_before
    assert len(free.decisions) >= len(strict.decisions)


def test_metaopt_empty_trace():
    tree, pmap, _, params = skewed_world(seed=7)
    tb = TraceBuilder()
    res = meta_opt(tb.build(), tree, pmap, params, delta=1.0)
    assert res.decisions == []
    assert res.jct_after == 0.0


def test_metaopt_invalid_delta():
    tree, pmap, trace, params = skewed_world(seed=8)
    with pytest.raises(ValueError):
        meta_opt(trace, tree, pmap, params, delta=0.0)


def test_metaopt_single_mds_no_moves():
    ssf = SeedSequenceFactory(9)
    rng = ssf.stream("w")
    built = build_random(rng, n_dirs=20)
    pmap = PartitionMap(built.tree, n_mds=1)
    trace = random_trace(rng, built.tree, n_ops=100, include_rmdir=False)
    res = meta_opt(trace, built.tree, pmap, CostParams(), delta=1e9)
    assert res.decisions == []


# ------------------------------------------------------- exhaustive oracle


def tiny_world(seed=0):
    ssf = SeedSequenceFactory(seed)
    rng = ssf.stream("w")
    built = build_balanced(depth=2, fanout=2, files_per_dir=2)
    tree = built.tree
    pmap = PartitionMap(tree, n_mds=2)
    trace = random_trace(rng, tree, n_ops=200, include_rmdir=False)
    return tree, pmap, trace, CostParams()


def test_exhaustive_at_least_as_good_as_greedy():
    tree, pmap, trace, params = tiny_world()
    delta = evaluate_trace(trace, tree, pmap, params).jct  # loose guard
    greedy = meta_opt(trace, tree, pmap, params, delta=delta)
    optimal = exhaustive_opt(trace, tree, pmap, params, delta=delta, max_depth=3)
    assert optimal.jct_after <= greedy.jct_after + 1e-9


def test_greedy_gap_bounded_by_delta():
    """Theorem 1's guarantee observed on real small instances."""
    for seed in range(4):
        tree, pmap, trace, params = tiny_world(seed)
        delta = evaluate_trace(trace, tree, pmap, params).jct * 0.5
        greedy = meta_opt(trace, tree, pmap, params, delta=delta)
        optimal = exhaustive_opt(trace, tree, pmap, params, delta=delta, max_depth=3)
        gap = greedy.jct_after - optimal.jct_after  # >= 0, bounded by delta
        assert gap >= -1e-9
        assert gap < delta + 1e-9, f"seed {seed}: gap {gap} vs delta {delta}"


def test_exhaustive_candidate_limit():
    tree, pmap, trace, params = skewed_world(seed=10)
    with pytest.raises(ValueError):
        exhaustive_opt(trace, tree, pmap, params, delta=1e9, candidate_limit=3)
