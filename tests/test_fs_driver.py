"""Unit tests for the epoch driver and migrator plumbing."""

import numpy as np
import pytest

from repro.balancers.base import BalancePolicy
from repro.cluster.migration import MigrationDecision
from repro.costmodel import CostParams
from repro.fs import SimConfig
from repro.fs.filesystem import OrigamiFS
from repro.sim import SeedSequenceFactory
from repro.workloads import generate_trace_rw


class RecordingPolicy(BalancePolicy):
    """Captures every EpochContext it is handed."""

    name = "recorder"

    def __init__(self):
        self.contexts = []

    def rebalance(self, ctx):
        self.contexts.append(ctx)
        return []


def build_fs(policy, n_ops=6000, epoch_ms=40.0, seed=0, **cfg_kwargs):
    built, trace = generate_trace_rw(SeedSequenceFactory(seed).stream("w"), n_ops=n_ops)
    cfg = SimConfig(
        n_mds=3, n_clients=10, epoch_ms=epoch_ms,
        params=CostParams(cache_depth=2), **cfg_kwargs,
    )
    return OrigamiFS(built.tree, trace, policy, cfg)


def test_driver_delivers_contexts_every_epoch():
    policy = RecordingPolicy()
    fs = build_fs(policy)
    r = fs.run()
    assert len(policy.contexts) >= 2
    epochs = [c.epoch for c in policy.contexts]
    assert epochs == sorted(epochs)
    for ctx in policy.contexts:
        assert ctx.tree is fs.tree
        assert ctx.pmap is fs.pmap
        assert ctx.mds_load.shape == (3,)
        assert ctx.snapshot is not None


def test_driver_completed_windows_partition_the_trace():
    policy = RecordingPolicy()
    fs = build_fs(policy)
    fs.run()
    total = sum(len(c.completed_window) for c in policy.contexts)
    # the contexts cover everything issued up to the last epoch boundary
    assert 0 < total <= len(fs.trace)
    # windows are contiguous, non-overlapping slices
    seen = 0
    for c in policy.contexts:
        w = c.completed_window
        if len(w) == 0:
            continue
        assert int(w.dir_ino[0]) == int(fs.trace.dir_ino[seen])
        seen += len(w)


def test_driver_oracle_window_looks_ahead_only():
    policy = RecordingPolicy()
    fs = build_fs(policy, oracle_window_ops=500)
    fs.run()
    for ctx in policy.contexts:
        assert len(ctx.oracle_window) <= 500


def test_epoch_snapshot_counts_match_completed_window():
    policy = RecordingPolicy()
    fs = build_fs(policy)
    fs.run()
    for ctx in policy.contexts:
        # ops recorded by the collector == ops completed in the epoch
        # (issued-but-uncompleted ops land in the next snapshot)
        assert ctx.snapshot.total_ops <= len(fs.trace)


def test_migration_log_epochs_recorded():
    class OneShot(BalancePolicy):
        name = "oneshot"

        def __init__(self):
            self.fired = False

        def rebalance(self, ctx):
            if self.fired:
                return []
            uniform = ctx.pmap.uniform_subtree_mask()
            uniform[0] = False
            cands = np.nonzero(uniform)[0]
            src = ctx.pmap.owner(int(cands[0]))
            dst = (src + 1) % ctx.pmap.n_mds
            self.fired = True
            return [MigrationDecision(int(cands[0]), src, dst)]

    fs = build_fs(OneShot())
    r = fs.run()
    assert r.migrations == 1
    rec = fs.migrator.log.applied[0]
    assert rec.epoch >= 0
    assert rec.inodes_moved >= rec.dirs_moved >= 1


def test_policy_exception_propagates():
    class Broken(BalancePolicy):
        name = "broken"

        def rebalance(self, ctx):
            raise RuntimeError("policy bug")

    fs = build_fs(Broken())
    with pytest.raises(RuntimeError, match="policy bug"):
        fs.run()
