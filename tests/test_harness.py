"""Tests for the experiment harness plumbing (reporting, config, wiring)."""

import json
import os

import numpy as np
import pytest

from repro.fs import SimResult
from repro.fs.metrics import EpochMetrics
from repro.harness.config import SCALES, default_params, get_scale
from repro.harness.report import Report, format_table


# ------------------------------------------------------------------- report


def test_format_table_alignment_and_values():
    out = format_table(
        ["name", "value"],
        [["alpha", 1.2345], ["b", 10_000.0]],
        title="T",
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert "alpha" in lines[3]
    assert "1.234" in out  # float formatting
    assert "10,000" in out  # thousands grouping


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_report_render_and_json():
    rep = Report("exp", "desc")
    rep.add_table(["x"], [[1], [2]])
    rep.add_series("s", [1.0, 2.0])
    rep.put("k", {"nested": 3})
    text = rep.render()
    assert "=== exp ===" in text and "desc" in text
    blob = json.loads(rep.to_json())
    assert blob["experiment"] == "exp"
    assert blob["data"]["s"] == [1.0, 2.0]
    assert blob["data"]["k"]["nested"] == 3
    assert str(rep) == text


def test_report_json_handles_numpy():
    rep = Report("np")
    rep.put("arr", np.arange(3))
    blob = json.loads(rep.to_json())
    assert blob["data"]["arr"] == [0, 1, 2]


# ------------------------------------------------------------------- config


def test_get_scale_resolution(monkeypatch):
    assert get_scale("smoke").name == "smoke"
    monkeypatch.setenv("REPRO_SCALE", "full")
    assert get_scale().name == "full"
    monkeypatch.delenv("REPRO_SCALE")
    assert get_scale().name == "default"
    with pytest.raises(ValueError):
        get_scale("bogus")


def test_scales_are_ordered():
    assert SCALES["smoke"].n_ops < SCALES["default"].n_ops < SCALES["full"].n_ops


def test_default_params_cache():
    p = default_params()
    assert p.cache_depth == 2
    assert default_params(0).cache_depth == 0


# --------------------------------------------------------------- sim result


def make_result(busy_rows, qps_rows, epoch_ms=100.0):
    epochs = [
        EpochMetrics(
            epoch=i,
            duration_ms=epoch_ms,
            busy_ms=np.asarray(b, dtype=float),
            qps=np.asarray(q, dtype=float),
            rpcs=np.asarray(q, dtype=float),
            inodes=np.asarray(b, dtype=float),
        )
        for i, (b, q) in enumerate(zip(busy_rows, qps_rows))
    ]
    return SimResult(
        strategy="t",
        n_mds=len(busy_rows[0]),
        epoch_ms=epoch_ms,
        ops_completed=int(sum(sum(q) for q in qps_rows)),
        duration_ms=epoch_ms * len(busy_rows),
        mean_latency_ms=1.0,
        p50_latency_ms=1.0,
        p99_latency_ms=2.0,
        total_rpcs=100,
        per_epoch=epochs,
    )


def test_steady_state_skips_warmup():
    # warmup epoch has low qps; steady epochs are high
    r = make_result(
        busy_rows=[[10, 0], [50, 50], [50, 50], [50, 50]],
        qps_rows=[[100, 0], [500, 500], [500, 500], [500, 500]],
    )
    ss = r.steady_state_throughput(skip_fraction=0.5)
    # skips the first of the 3 non-trailing epochs -> 2000 ops / 0.2 s
    assert ss == pytest.approx(10_000.0)
    overall = r.throughput_ops_per_sec
    assert overall < ss


def test_efficiency_series_uses_actual_durations():
    r = make_result(
        busy_rows=[[50, 50], [100, 100]],
        qps_rows=[[1, 1], [1, 1]],
    )
    r.per_epoch[1].duration_ms = 200.0  # stretched epoch
    eff = r.efficiency_series()
    assert eff[0] == pytest.approx(0.5)
    assert eff[1] == pytest.approx(0.5)  # 100 busy over 200 ms


def test_imbalance_report_from_result():
    r = make_result(busy_rows=[[90, 10]], qps_rows=[[90, 10]])
    rep = r.imbalance()
    assert 0 < rep.qps < 1
    assert rep.busytime == rep.qps  # identical loads by construction


def test_throughput_zero_duration():
    r = make_result(busy_rows=[[1, 1]], qps_rows=[[1, 1]])
    r.duration_ms = 0.0
    assert r.throughput_ops_per_sec == 0.0
    assert r.end_to_end_throughput == 0.0
