"""Unit tests for the per-request RCT decomposition (Eq. 1 / Eq. 2)."""

import numpy as np
import pytest

from repro.cluster import PartitionMap
from repro.costmodel import CostParams, OpType, request_rct
from repro.costmodel.rct import contacted_owners, path_k
from repro.namespace import NamespaceTree


@pytest.fixture
def world():
    tree = NamespaceTree()
    # /a/b/c with files, plus /x
    a = tree.makedirs("/a")
    b = tree.makedirs("/a/b")
    c = tree.makedirs("/a/b/c")
    x = tree.makedirs("/x")
    tree.create_file(c, "f")
    tree.create_file(x, "g")
    pmap = PartitionMap(tree, n_mds=3)
    params = CostParams()
    return tree, pmap, params


def test_path_k_entry_vs_lsdir(world):
    tree, pmap, params = world
    c = tree.lookup("/a/b/c")
    assert path_k(tree, OpType.STAT, c) == 4  # /a/b/c/f has 4 components
    assert path_k(tree, OpType.READDIR, c) == 3
    assert path_k(tree, OpType.READDIR, 0) == 0


def test_single_partition_m_is_one(world):
    tree, pmap, params = world
    c = tree.lookup("/a/b/c")
    rc = request_rct(tree, pmap, params, OpType.STAT, c, "f")
    assert rc.m == 1
    assert rc.owners == frozenset({0})
    assert rc.primary == 0
    # RCT = (t_inode+t_rpc)*1 + t_inode*4 + exec_read + 1*rtt
    expected = (
        (params.t_inode + params.t_rpc) + params.t_inode * 4
        + params.t_exec_read + params.rtt
    )
    assert rc.rct == pytest.approx(expected)


def test_m_counts_distinct_partitions(world):
    tree, pmap, params = world
    b = tree.lookup("/a/b")
    c = tree.lookup("/a/b/c")
    pmap.migrate_subtree(b, 1)
    pmap.migrate_subtree(c, 2)
    rc = request_rct(tree, pmap, params, OpType.STAT, c, "f")
    # path owners: a->0, b->1, c->2
    assert rc.m == 3
    assert rc.owners == frozenset({0, 1, 2})
    assert rc.primary == 2
    expected = (
        (params.t_inode + params.t_rpc) * 3 + params.t_inode * 4
        + params.t_exec_read + 3 * params.rtt
    )
    assert rc.rct == pytest.approx(expected)


def test_near_root_cache_hides_shallow_dirs(world):
    tree, pmap, params = world
    b = tree.lookup("/a/b")
    c = tree.lookup("/a/b/c")
    pmap.migrate_subtree(b, 1)
    pmap.migrate_subtree(c, 2)
    cached = params.with_cache(3)  # depth <3 cached: a(1), b(2) hidden
    rc = request_rct(tree, pmap, cached, OpType.STAT, c, "f")
    assert rc.owners == frozenset({2})
    assert rc.m == 1
    # entries a,b cached -> k_eff = 4 - 2 = 2
    assert rc.k_eff == 2
    expected = (
        (cached.t_inode + cached.t_rpc) + cached.t_inode * 2
        + cached.t_exec_read + cached.rtt
    )
    assert rc.rct == pytest.approx(expected)


def test_cache_never_hides_target_owner(world):
    tree, pmap, params = world
    a = tree.lookup("/a")
    pmap.migrate_subtree(a, 1)
    deep_cache = params.with_cache(10)
    rc = request_rct(tree, pmap, deep_cache, OpType.STAT, a, "sub")
    assert rc.m == 1
    assert rc.owners == frozenset({1})


def test_lsdir_extra_rtt_per_other_mds(world):
    tree, pmap, params = world
    a = tree.lookup("/a")
    b = tree.lookup("/a/b")
    rc0 = request_rct(tree, pmap, params, OpType.READDIR, a)
    assert rc0.extra == 0.0
    pmap.migrate_subtree(b, 2)
    rc1 = request_rct(tree, pmap, params, OpType.READDIR, a)
    assert rc1.extra == pytest.approx((params.rtt + params.t_rpc) * 1)


def test_nsmut_file_ops_never_split(world):
    tree, pmap, params = world
    c = tree.lookup("/a/b/c")
    pmap.migrate_subtree(c, 2)
    rc = request_rct(tree, pmap, params, OpType.CREATE, c, "new")
    assert rc.extra == 0.0
    rc = request_rct(tree, pmap, params, OpType.UNLINK, c, "f")
    assert rc.extra == 0.0


def test_rmdir_split_at_boundary(world):
    tree, pmap, params = world
    b = tree.lookup("/a/b")
    c = tree.lookup("/a/b/c")
    # not a boundary: no coordination
    rc = request_rct(tree, pmap, params, OpType.RMDIR, b, aux=c)
    assert rc.extra == 0.0
    pmap.migrate_subtree(c, 1)
    rc = request_rct(tree, pmap, params, OpType.RMDIR, b, aux=c)
    assert rc.extra == pytest.approx(params.t_coor)


def test_mkdir_split_under_hash_placement(world):
    tree, _, params = world
    pmap = PartitionMap(tree, n_mds=3, placement=lambda pm, p, name: 2)
    # placement pins new dirs on MDS 2; parents on 2 -> no split
    a = tree.lookup("/a")
    # a was created before this pmap: initial_owner=0
    rc = request_rct(tree, pmap, params, OpType.MKDIR, a, "newdir")
    assert rc.extra == pytest.approx(params.t_coor)


def test_queue_delay_added_for_contacted_mds(world):
    tree, pmap, params = world
    b = tree.lookup("/a/b")
    pmap.migrate_subtree(b, 1)
    qp = params.with_queue_delay(np.array([0.5, 2.0, 0.0]))
    rc = request_rct(tree, pmap, qp, OpType.STAT, b, "x")
    base = request_rct(tree, pmap, params, OpType.STAT, b, "x")
    assert rc.rct == pytest.approx(base.rct + 0.5 + 2.0)


def test_params_validation():
    with pytest.raises(ValueError):
        CostParams(t_inode=-1)
    with pytest.raises(ValueError):
        CostParams(cache_depth=-2)


def test_t_exec_dispatch():
    p = CostParams()
    assert p.t_exec(OpType.STAT) == p.t_exec_read
    assert p.t_exec(OpType.READDIR) == p.t_exec_lsdir
    assert p.t_exec(OpType.MKDIR) == p.t_exec_nsmut
    by_cat = p.t_exec_by_category()
    assert list(by_cat) == [p.t_exec_read, p.t_exec_lsdir, p.t_exec_nsmut]


def test_contacted_owners_cache_zero_counts_all(world):
    tree, pmap, params = world
    c = tree.lookup("/a/b/c")
    pmap.migrate_subtree(tree.lookup("/a"), 1)
    pmap.migrate_subtree(c, 2)
    owners = contacted_owners(tree, pmap, c, cache_depth=0)
    assert owners == frozenset({1, 2})
