"""Round-trip tests for the trace/namespace bundle format."""

import numpy as np
import pytest

from repro.namespace import NamespaceTree
from repro.sim import SeedSequenceFactory
from repro.workloads import generate_trace_rw
from repro.workloads.serialize import load_bundle, save_bundle


def test_roundtrip_generated_workload(tmp_path):
    built, trace = generate_trace_rw(
        SeedSequenceFactory(5).stream("w"), n_ops=4000
    )
    path = str(tmp_path / "bundle.npz")
    save_bundle(path, built.tree, trace)
    tree2, trace2 = load_bundle(path)

    assert tree2.num_dirs == built.tree.num_dirs
    assert tree2.num_files == built.tree.num_files
    tree2.validate()
    # ino numbering preserved: paths resolve identically
    for d in built.tree.iter_dirs():
        assert tree2.path_of(d) == built.tree.path_of(d)
    assert trace2 is not None
    np.testing.assert_array_equal(trace2.op, trace.op)
    np.testing.assert_array_equal(trace2.dir_ino, trace.dir_ino)
    np.testing.assert_array_equal(trace2.aux, trace.aux)
    assert trace2.names == trace.names
    assert trace2.label == trace.label


def test_roundtrip_tree_only(tmp_path):
    tree = NamespaceTree()
    a = tree.makedirs("/a/b")
    tree.create_file(a, "f", size=77)
    path = str(tmp_path / "t.npz")
    save_bundle(path, tree)
    tree2, trace2 = load_bundle(path)
    assert trace2 is None
    f = tree2.lookup("/a/b/f")
    assert tree2.inode(f).size == 77


def test_roundtrip_with_deletions_and_name_reuse(tmp_path):
    tree = NamespaceTree()
    a = tree.makedirs("/a")
    f1 = tree.create_file(a, "x")
    tree.remove(f1)
    f2 = tree.create_file(a, "x")  # reuse the name with a new ino
    d = tree.create_dir(a, "sub")
    tree.remove(d)  # dead directory
    path = str(tmp_path / "d.npz")
    save_bundle(path, tree)
    tree2, _ = load_bundle(path)
    tree2.validate()
    assert tree2.lookup("/a/x") == f2
    assert not tree2.is_alive(f1)
    assert not tree2.is_alive(d)
    assert tree2.num_files == 1


def test_replay_loaded_bundle_in_simulator(tmp_path):
    """A loaded bundle must be directly replayable (the point of the format)."""
    from repro.balancers import SingleMdsPolicy
    from repro.costmodel import CostParams
    from repro.fs import SimConfig, run_simulation

    built, trace = generate_trace_rw(SeedSequenceFactory(6).stream("w"), n_ops=3000)
    path = str(tmp_path / "replay.npz")
    save_bundle(path, built.tree, trace)
    tree2, trace2 = load_bundle(path)
    r = run_simulation(
        tree2, trace2, SingleMdsPolicy(),
        SimConfig(n_mds=1, n_clients=5, epoch_ms=50.0, params=CostParams(cache_depth=2)),
    )
    assert r.ops_completed == len(trace2)


def test_load_rejects_bad_version(tmp_path):
    import json

    path = str(tmp_path / "bad.npz")
    header = np.frombuffer(json.dumps({"version": 99}).encode(), dtype=np.uint8)
    np.savez(path, header=header)
    with pytest.raises(ValueError):
        load_bundle(path)
