"""Smoke test: the quickstart example must run end-to-end as shipped."""

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def test_quickstart_runs():
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert out.returncode == 0, out.stderr
    assert "C-Hash" in out.stdout
    assert "aggregate throughput" in out.stdout


def test_metaopt_planner_runs():
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / "metaopt_planner.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert out.returncode == 0, out.stderr
    assert "migration plan" in out.stdout
    assert "JCT improvement" in out.stdout


def test_autoscale_demo_runs():
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / "autoscale_demo.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert out.returncode == 0, out.stderr
    # the demo asserts pool breathing + zero lost ops itself
    assert "pool breathed through both days" in out.stdout
    assert "fewer MDS-seconds" in out.stdout


def test_crash_failover_demo_runs():
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / "crash_failover_demo.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert out.returncode == 0, out.stderr
    # the demo asserts the zero-lost-ops invariant itself; check the summary
    assert "zero-lost-ops invariant holds" in out.stdout
    assert "crashes/restarts     : 1/1" in out.stdout
