"""Smoke test: the quickstart example must run end-to-end as shipped."""

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def test_quickstart_runs():
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert out.returncode == 0, out.stderr
    assert "C-Hash" in out.stdout
    assert "aggregate throughput" in out.stdout


def test_metaopt_planner_runs():
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / "metaopt_planner.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert out.returncode == 0, out.stderr
    assert "migration plan" in out.stdout
    assert "JCT improvement" in out.stdout
