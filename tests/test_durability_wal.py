"""Unit tests for the segmented, checksummed WAL (repro.durability.wal)."""

import os
import struct

import pytest

from repro.durability.errors import WalCorruptionError
from repro.durability.wal import (
    REC_DELETE,
    REC_PUT,
    WalWriter,
    encode_record,
    replay_wal,
    scan_segments,
)


def make_writer(tmp_path, **kw):
    kw.setdefault("use_fsync", False)
    return WalWriter(str(tmp_path / "wal"), **kw)


# ------------------------------------------------------------- append / sync


def test_append_assigns_dense_lsns(tmp_path):
    w = make_writer(tmp_path)
    lsns = [w.append(REC_PUT, b"k%d" % i, b"v") for i in range(5)]
    assert lsns == [1, 2, 3, 4, 5]
    assert w.last_appended_lsn == 5


def test_durable_lsn_advances_only_on_sync(tmp_path):
    w = make_writer(tmp_path, group_commit_records=100)
    w.append(REC_PUT, b"a", b"1")
    w.append(REC_PUT, b"b", b"2")
    assert w.durable_lsn == 0
    assert w.pending_records == 2
    assert w.sync() == 2
    assert w.durable_lsn == 2
    assert w.pending_records == 0
    assert w.sync() == 0  # idempotent when the batch is empty


def test_group_commit_auto_syncs_at_batch_size(tmp_path):
    w = make_writer(tmp_path, group_commit_records=3)
    w.append(REC_PUT, b"a", b"1")
    w.append(REC_PUT, b"b", b"2")
    assert w.durable_lsn == 0
    w.append(REC_PUT, b"c", b"3")  # third append trips the group commit
    assert w.durable_lsn == 3


def test_stats_counters_bump_in_place(tmp_path):
    class Stats:
        wal_appends = 0
        wal_bytes = 0
        fsyncs = 0

    st = Stats()
    w = make_writer(tmp_path, group_commit_records=2)
    w.stats = st
    w.append(REC_PUT, b"a", b"1")
    w.append(REC_PUT, b"b", b"2")
    assert st.wal_appends == 2
    assert st.wal_bytes > 0
    assert st.fsyncs == 1  # one group commit for the pair


def test_closed_writer_rejects_appends(tmp_path):
    w = make_writer(tmp_path)
    w.append(REC_PUT, b"a", b"1")
    assert not w.closed
    w.close()
    assert w.closed
    with pytest.raises(RuntimeError):
        w.append(REC_PUT, b"b", b"2")
    with pytest.raises(RuntimeError):
        w.sync()
    w.close()  # second close is a no-op


def test_crash_drops_unsynced_batch(tmp_path):
    w = make_writer(tmp_path, group_commit_records=100)
    w.append(REC_PUT, b"a", b"1")
    w.sync()
    w.append(REC_PUT, b"b", b"2")  # never synced
    w.crash()
    replay = replay_wal(str(tmp_path / "wal"))
    assert [r.key for r in replay.records] == [b"a"]
    assert replay.last_lsn == 1


# ------------------------------------------------------------------- replay


def test_replay_roundtrip_types_and_order(tmp_path):
    w = make_writer(tmp_path)
    w.append(REC_PUT, b"k1", b"v1")
    w.append(REC_DELETE, b"k1")
    w.append(REC_PUT, b"k2", b"v2")
    w.close()
    replay = replay_wal(str(tmp_path / "wal"))
    assert [(r.lsn, r.rec_type, r.key, r.value) for r in replay.records] == [
        (1, REC_PUT, b"k1", b"v1"),
        (2, REC_DELETE, b"k1", b""),
        (3, REC_PUT, b"k2", b"v2"),
    ]
    assert not replay.torn_tail
    assert replay.bytes_scanned > 0


def test_replay_start_lsn_skips_checkpointed_prefix(tmp_path):
    w = make_writer(tmp_path)
    for i in range(6):
        w.append(REC_PUT, b"k%d" % i, b"v")
    w.close()
    replay = replay_wal(str(tmp_path / "wal"), start_lsn=4)
    assert [r.lsn for r in replay.records] == [5, 6]
    assert replay.last_lsn == 6  # watermark still tracks everything seen


def test_replay_empty_dir(tmp_path):
    replay = replay_wal(str(tmp_path / "nowhere"))
    assert replay.records == [] and replay.last_lsn == 0


# ----------------------------------------------------------------- segments


def test_segment_rollover_and_scan(tmp_path):
    # tiny segments force a rollover every couple of records
    w = make_writer(tmp_path, segment_bytes=64, group_commit_records=1)
    for i in range(10):
        w.append(REC_PUT, b"key%02d" % i, b"value")
    w.close()
    segs = scan_segments(str(tmp_path / "wal"))
    assert len(segs) > 1
    assert [s.seq for s in segs] == sorted(s.seq for s in segs)
    replay = replay_wal(str(tmp_path / "wal"))
    assert [r.key for r in replay.records] == [b"key%02d" % i for i in range(10)]
    assert replay.segments_scanned == len(segs)


def test_truncate_upto_retires_only_whole_obsolete_segments(tmp_path):
    w = make_writer(tmp_path, segment_bytes=64, group_commit_records=1)
    for i in range(10):
        w.append(REC_PUT, b"key%02d" % i, b"value")
    w.close()
    before = scan_segments(str(tmp_path / "wal"))
    assert len(before) > 2
    # retire the prefix up to LSN 5: only segments fully <= 5 disappear
    w2 = WalWriter(str(tmp_path / "wal"), use_fsync=False,
                   start_lsn=11, start_seq=before[-1].seq + 1)
    removed = w2.truncate_upto(5)
    assert removed >= 1
    replay = replay_wal(str(tmp_path / "wal"), start_lsn=5)
    assert [r.lsn for r in replay.records] == [6, 7, 8, 9, 10]


def test_truncate_upto_never_deletes_the_active_segment(tmp_path):
    w = make_writer(tmp_path, group_commit_records=1)
    w.append(REC_PUT, b"a", b"1")
    w.close()
    w2 = WalWriter(str(tmp_path / "wal"), use_fsync=False, start_lsn=2, start_seq=2)
    assert w2.truncate_upto(10) == 0
    assert len(scan_segments(str(tmp_path / "wal"))) == 1


# -------------------------------------------------- torn tails vs corruption


def _only_segment(tmp_path):
    segs = scan_segments(str(tmp_path / "wal"))
    assert len(segs) == 1
    return segs[0].path


def test_torn_tail_in_final_segment_is_tolerated(tmp_path):
    w = make_writer(tmp_path, group_commit_records=1)
    for i in range(4):
        w.append(REC_PUT, b"k%d" % i, b"v%d" % i)
    w.close()
    path = _only_segment(tmp_path)
    size = os.path.getsize(path)
    with open(path, "r+b") as f:
        f.truncate(size - 3)  # tear the last record mid-body
    replay = replay_wal(str(tmp_path / "wal"))
    assert replay.torn_tail
    assert [r.key for r in replay.records] == [b"k0", b"k1", b"k2"]
    # final_valid_bytes points exactly at the end of the last good record
    with open(path, "rb") as f:
        good = f.read(replay.final_valid_bytes)
    assert good.endswith(encode_record(REC_PUT, b"k2", b"v2"))


def test_bitflip_in_final_segment_stops_cleanly(tmp_path):
    w = make_writer(tmp_path, group_commit_records=1)
    for i in range(3):
        w.append(REC_PUT, b"k%d" % i, b"v")
    w.close()
    path = _only_segment(tmp_path)
    data = bytearray(open(path, "rb").read())
    data[-5] ^= 0xFF  # flip a byte inside the last record
    open(path, "wb").write(bytes(data))
    replay = replay_wal(str(tmp_path / "wal"))
    assert replay.torn_tail
    assert [r.key for r in replay.records] == [b"k0", b"k1"]


def test_corruption_in_sealed_segment_raises_typed(tmp_path):
    w = make_writer(tmp_path, segment_bytes=64, group_commit_records=1)
    for i in range(8):
        w.append(REC_PUT, b"key%02d" % i, b"value")
    w.close()
    segs = scan_segments(str(tmp_path / "wal"))
    assert len(segs) > 1
    data = bytearray(open(segs[0].path, "rb").read())
    data[-1] ^= 0xFF  # damage the *sealed* first segment
    open(segs[0].path, "wb").write(bytes(data))
    with pytest.raises(WalCorruptionError):
        replay_wal(str(tmp_path / "wal"))


def test_lsn_gap_between_segments_raises_typed(tmp_path):
    w = make_writer(tmp_path, segment_bytes=64, group_commit_records=1)
    for i in range(8):
        w.append(REC_PUT, b"key%02d" % i, b"value")
    w.close()
    segs = scan_segments(str(tmp_path / "wal"))
    assert len(segs) > 2
    os.unlink(segs[1].path)  # a missing middle segment leaves an LSN gap
    with pytest.raises(WalCorruptionError):
        replay_wal(str(tmp_path / "wal"))


def test_missing_oldest_segment_raises_typed(tmp_path):
    # deleting the OLDEST segment is not a legitimate truncate_upto trace:
    # the first surviving segment starts past start_lsn + 1
    w = make_writer(tmp_path, segment_bytes=64, group_commit_records=1)
    for i in range(8):
        w.append(REC_PUT, b"key%02d" % i, b"value")
    w.close()
    segs = scan_segments(str(tmp_path / "wal"))
    assert len(segs) > 1
    os.unlink(segs[0].path)
    with pytest.raises(WalCorruptionError):
        replay_wal(str(tmp_path / "wal"))
    # but the same layout IS legitimate when the checkpoint covers the hole
    with open(segs[1].path, "rb") as f:
        first_lsn = struct.unpack("<4sIQ", f.read(16))[2]
    replay = replay_wal(str(tmp_path / "wal"), start_lsn=first_lsn - 1)
    assert [r.lsn for r in replay.records][0] == first_lsn


def test_implausible_record_length_rejected(tmp_path):
    w = make_writer(tmp_path, group_commit_records=1)
    w.append(REC_PUT, b"a", b"1")
    w.close()
    path = _only_segment(tmp_path)
    with open(path, "ab") as f:  # append a frame claiming a 1GiB payload
        f.write(struct.pack("<II", 0, 1 << 30))
    replay = replay_wal(str(tmp_path / "wal"))
    assert replay.torn_tail
    assert [r.key for r in replay.records] == [b"a"]


def test_writer_param_validation(tmp_path):
    with pytest.raises(ValueError):
        make_writer(tmp_path, segment_bytes=4)
    with pytest.raises(ValueError):
        make_writer(tmp_path, group_commit_records=0)
