"""Determinism and independence of named RNG streams."""

import numpy as np

from repro.sim import SeedSequenceFactory


def test_same_seed_same_stream():
    a = SeedSequenceFactory(42).stream("network").random(10)
    b = SeedSequenceFactory(42).stream("network").random(10)
    assert np.array_equal(a, b)


def test_different_names_independent():
    f = SeedSequenceFactory(42)
    a = f.stream("network").random(1000)
    b = f.stream("workload").random(1000)
    assert not np.array_equal(a, b)
    # statistically independent-ish: correlation near zero
    assert abs(np.corrcoef(a, b)[0, 1]) < 0.1


def test_different_seeds_differ():
    a = SeedSequenceFactory(1).stream("x").random(10)
    b = SeedSequenceFactory(2).stream("x").random(10)
    assert not np.array_equal(a, b)


def test_stream_cached_continues_sequence():
    f = SeedSequenceFactory(7)
    first = f.stream("s").random(5)
    second = f.stream("s").random(5)
    # cached stream continues rather than restarting
    assert not np.array_equal(first, second)


def test_fresh_restarts_sequence():
    f = SeedSequenceFactory(7)
    first = f.stream("s").random(5)
    f.stream("s").random(100)
    restarted = f.fresh("s").random(5)
    assert np.array_equal(first, restarted)


def test_adding_stream_does_not_shift_existing():
    f1 = SeedSequenceFactory(3)
    a_only = f1.stream("a").random(20)

    f2 = SeedSequenceFactory(3)
    f2.stream("b").random(50)  # interleave another stream
    a_with_b = f2.stream("a").random(20)
    assert np.array_equal(a_only, a_with_b)


def test_zipf_weights_normalised_and_decreasing():
    f = SeedSequenceFactory(0)
    w = f.stream("z").zipf_weights(100, 1.2)
    assert abs(w.sum() - 1.0) < 1e-12
    assert np.all(np.diff(w) < 0)


def test_zipf_weights_alpha_zero_uniform():
    w = SeedSequenceFactory(0).stream("z").zipf_weights(10, 0.0)
    assert np.allclose(w, 0.1)


def test_zipf_weights_invalid_n():
    import pytest

    with pytest.raises(ValueError):
        SeedSequenceFactory(0).stream("z").zipf_weights(0, 1.0)


def test_spawn_returns_all_names():
    f = SeedSequenceFactory(0)
    streams = f.spawn(["a", "b", "c"])
    assert set(streams) == {"a", "b", "c"}
    assert streams["a"] is f.stream("a")
