"""Fault-injection tests: schedules, crash semantics, retries, evacuation.

The first half exercises the legacy ``SlowdownInjector`` shim (both its
DeprecationWarning and its equivalence with the schedule model); the second
half covers the schedule-model subsystem: JSON round-trips, crash windows
with zero lost ops, drop/partition paths, restart warm-up, and dead-MDS
evacuation by the balancer.
"""

import math

import numpy as np
import pytest

from repro.balancers import CoarseHashPolicy, LunulePolicy
from repro.costmodel import CostParams
from repro.fs import SimConfig
from repro.fs.faults import (
    Crash,
    FaultInjector,
    FaultSchedule,
    Partition,
    RetryPolicy,
    RpcDelay,
    RpcDrop,
    Slowdown,
    SlowdownInjector,
)
from repro.fs.filesystem import OrigamiFS, run_simulation
from repro.sim import SeedSequenceFactory
from repro.workloads import generate_trace_rw


def run_with_faults(policy, slowdowns, seed=0, n_ops=30000):
    built, trace = generate_trace_rw(SeedSequenceFactory(seed).stream("w"), n_ops=n_ops)
    cfg = SimConfig(n_mds=4, n_clients=100, epoch_ms=80.0, params=CostParams(cache_depth=2))
    fs = OrigamiFS(built.tree, trace, policy, cfg)
    if slowdowns:
        SlowdownInjector(fs, slowdowns)
    return fs.run()


def test_slowdown_validation():
    with pytest.raises(ValueError):
        Slowdown(mds=0, start_ms=0, end_ms=10, factor=0.5)
    with pytest.raises(ValueError):
        Slowdown(mds=0, start_ms=10, end_ms=5, factor=2.0)


def test_injector_rejects_unknown_mds():
    built, trace = generate_trace_rw(SeedSequenceFactory(0).stream("w"), n_ops=100)
    fs = OrigamiFS(built.tree, trace, LunulePolicy(), SimConfig(n_mds=2, n_clients=2))
    with pytest.raises(ValueError):
        SlowdownInjector(fs, [Slowdown(mds=9, start_ms=0, end_ms=1, factor=2.0)])


def test_factor_window():
    built, trace = generate_trace_rw(SeedSequenceFactory(0).stream("w"), n_ops=100)
    fs = OrigamiFS(built.tree, trace, LunulePolicy(), SimConfig(n_mds=2, n_clients=2))
    inj = SlowdownInjector(fs, [Slowdown(mds=1, start_ms=10, end_ms=20, factor=3.0)])
    assert inj.factor_for(1, 5.0) == 1.0
    assert inj.factor_for(1, 15.0) == 3.0
    assert inj.factor_for(1, 25.0) == 1.0
    assert inj.factor_for(0, 15.0) == 1.0


def test_late_injector_install_disengages_fastpath():
    """An injector attached after construction must void the fast path.

    ``OrigamiFS`` decides fast-path engagement in ``__init__`` while
    ``fs.faults`` is still None; the inlined replay loop never consults a
    later-installed injector, so installation has to clear the flag."""
    built, trace = generate_trace_rw(SeedSequenceFactory(0).stream("w"), n_ops=200)
    fs = OrigamiFS(built.tree, trace, LunulePolicy(), SimConfig(n_mds=2, n_clients=2))
    assert fs.fastpath_engaged, "eligible healthy config should engage"
    with pytest.warns(DeprecationWarning):
        SlowdownInjector(fs, [Slowdown(mds=0, start_ms=0, end_ms=1e9, factor=2.0)])
    assert not fs.fastpath_engaged, "late fault install must force the general loop"


def test_slowdown_degrades_static_partitioning():
    """A static hash cannot escape a degraded MDS: throughput must drop."""
    healthy = run_with_faults(CoarseHashPolicy(), [], seed=4)
    degraded = run_with_faults(
        CoarseHashPolicy(),
        [Slowdown(mds=0, start_ms=0.0, end_ms=1e9, factor=4.0)],
        seed=4,
    )
    assert degraded.throughput_ops_per_sec < healthy.throughput_ops_per_sec * 0.9


def test_balancer_routes_around_degraded_mds():
    """A busy-time-driven balancer sheds load off the slow MDS."""
    slow = [Slowdown(mds=0, start_ms=0.0, end_ms=1e9, factor=4.0)]
    static = run_with_faults(CoarseHashPolicy(), slow, seed=5)
    balanced = run_with_faults(LunulePolicy(), slow, seed=5)
    # the reactive balancer must end with little load on the degraded server
    share_static = static.total_qps_per_mds()[0] / static.ops_completed
    share_balanced = balanced.total_qps_per_mds()[0] / balanced.ops_completed
    assert share_balanced < share_static
    # ...and the migrations must actually have happened
    assert balanced.migrations > 0


# --------------------------------------------------------------- shim model


def test_legacy_shim_warns_and_matches_schedule_path():
    """SlowdownInjector must behave exactly like the schedule it wraps."""
    slow = [Slowdown(mds=0, start_ms=20.0, end_ms=60.0, factor=3.0)]

    def build(seed=3, n_ops=3000):
        built, trace = generate_trace_rw(
            SeedSequenceFactory(seed).stream("w"), n_ops=n_ops
        )
        cfg = SimConfig(
            n_mds=3, n_clients=10, epoch_ms=40.0, params=CostParams(cache_depth=2)
        )
        return OrigamiFS(built.tree, trace, LunulePolicy(), cfg)

    fs_legacy = build()
    with pytest.warns(DeprecationWarning):
        SlowdownInjector(fs_legacy, slow)
    legacy = fs_legacy.run().to_dict()

    fs_new = build()
    FaultInjector(fs_new, FaultSchedule(slow))
    new = fs_new.run().to_dict()
    assert legacy == new


def test_legacy_shim_refuses_double_install():
    built, trace = generate_trace_rw(SeedSequenceFactory(0).stream("w"), n_ops=100)
    fs = OrigamiFS(built.tree, trace, LunulePolicy(), SimConfig(n_mds=2, n_clients=2))
    FaultInjector(fs, FaultSchedule([]))
    with pytest.warns(DeprecationWarning):
        with pytest.raises(RuntimeError):
            SlowdownInjector(fs, [Slowdown(mds=0, start_ms=0, end_ms=1, factor=2.0)])


# ----------------------------------------------------------- schedule model


def test_schedule_json_roundtrip(tmp_path):
    sched = FaultSchedule(
        [
            Crash(mds=0, start_ms=10.0, end_ms=20.0, warmup_ms=5.0, warmup_factor=2.0),
            Slowdown(mds=1, start_ms=0.0, end_ms=math.inf, factor=4.0),
            RpcDrop(mds=2, start_ms=5.0, end_ms=15.0, probability=0.5),
            RpcDelay(mds=0, start_ms=30.0, end_ms=40.0, extra_ms=0.1),
            Partition(mds=1, start_ms=50.0, end_ms=60.0),
        ],
        retry=RetryPolicy(max_attempts=4, backoff_base_ms=0.5),
    )
    path = tmp_path / "sched.json"
    sched.save(str(path))
    loaded = FaultSchedule.load(str(path))
    assert loaded == sched
    assert loaded.retry.max_attempts == 4
    # the permanent slowdown survived the "inf" round trip
    slow = next(e for e in loaded.events if isinstance(e, Slowdown))
    assert math.isinf(slow.end_ms)
    assert FaultSchedule.from_json(sched.to_json()) == sched


def test_schedule_queries():
    sched = FaultSchedule(
        [
            Slowdown(mds=0, start_ms=10.0, end_ms=20.0, factor=3.0),
            Slowdown(mds=0, start_ms=15.0, end_ms=25.0, factor=2.0),
            Crash(mds=1, start_ms=10.0, end_ms=20.0, warmup_ms=10.0, warmup_factor=5.0),
            RpcDelay(mds=0, start_ms=10.0, end_ms=20.0, extra_ms=0.1),
            RpcDelay(mds=0, start_ms=12.0, end_ms=18.0, extra_ms=0.2),
        ]
    )
    # overlapping slowdowns: the worst factor wins
    assert sched.slowdown_factor(0, 17.0) == 3.0
    assert sched.slowdown_factor(0, 22.0) == 2.0
    assert sched.slowdown_factor(0, 30.0) == 1.0
    # a restarting crash serves at the warm-up factor after its window
    assert sched.is_down(1, 15.0)
    assert not sched.is_down(1, 25.0)
    assert sched.slowdown_factor(1, 25.0) == 5.0
    assert sched.slowdown_factor(1, 35.0) == 1.0
    # extra delays stack
    assert sched.extra_delay_ms(0, 15.0) == pytest.approx(0.3)
    assert sched.extra_delay_ms(0, 19.0) == pytest.approx(0.1)


def test_schedule_validation_rejects_unservable_cluster():
    # simultaneously crashing every MDS would deadlock the closed loop
    sched = FaultSchedule(
        [
            Crash(mds=0, start_ms=10.0, end_ms=20.0),
            Crash(mds=1, start_ms=15.0, end_ms=25.0),
        ]
    )
    with pytest.raises(ValueError):
        sched.validate(2)
    sched.validate(3)  # a third, live MDS makes it servable
    with pytest.raises(ValueError):
        FaultSchedule([Slowdown(mds=5, start_ms=0, end_ms=1, factor=2.0)]).validate(3)


def run_scheduled(schedule, policy=None, seed=0, n_ops=2500, n_mds=3, epoch_ms=20.0):
    built, trace = generate_trace_rw(SeedSequenceFactory(seed).stream("w"), n_ops=n_ops)
    cfg = SimConfig(
        n_mds=n_mds,
        n_clients=12,
        epoch_ms=epoch_ms,
        params=CostParams(cache_depth=2),
        seed=seed,
        faults=schedule,
    )
    return run_simulation(built.tree, trace, policy or LunulePolicy(), cfg), len(trace)


def test_crash_window_zero_lost_ops():
    """An MDS crash mid-run: every op completes or fails typed — none lost."""
    sched = FaultSchedule(
        [Crash(mds=0, start_ms=25.0, end_ms=45.0, warmup_ms=10.0, warmup_factor=2.0)]
    )
    result, n_ops = run_scheduled(sched)
    d = result.to_dict()
    fl = d["faults"]
    assert fl["crashes"] == 1 and fl["restarts"] == 1
    assert fl["retries"] > 0
    assert fl["connection_refusals"] > 0
    assert d["ops_completed"] + d["fault_failed_ops"] + d["vanished_ops"] == n_ops
    # the balancer evacuated the dead MDS, so clients failed over
    assert fl["failovers"] > 0
    assert fl["ops_recovered"] > 0


def test_permanent_crash_evacuates_and_completes():
    """A crash that never restarts: survivors absorb everything."""
    sched = FaultSchedule(
        [Crash(mds=0, start_ms=30.0, end_ms=math.inf)],
        retry=RetryPolicy(max_attempts=12, backoff_max_ms=8.0),
    )
    result, n_ops = run_scheduled(sched, epoch_ms=15.0)
    d = result.to_dict()
    assert d["ops_completed"] + d["fault_failed_ops"] + d["vanished_ops"] == n_ops
    assert result.migrations > 0  # the evacuation happened via the Migrator
    # after the crash the dead MDS must not accumulate any service time
    crash_epoch = int(30.0 // 15.0)
    late_busy = sum(float(e.busy_ms[0]) for e in result.per_epoch[crash_epoch + 2 :])
    assert late_busy == 0.0


def test_rpc_drop_and_partition_paths():
    sched = FaultSchedule(
        [
            RpcDrop(mds=1, start_ms=10.0, end_ms=40.0, probability=0.6),
            Partition(mds=2, start_ms=50.0, end_ms=70.0),
        ]
    )
    result, n_ops = run_scheduled(sched, seed=1)
    fl = result.to_dict()["faults"]
    assert fl["rpc_drops"] > 0
    assert fl["rpc_timeouts"] > 0
    assert result.ops_completed + result.fault_failed_ops + result.vanished_ops == n_ops


def test_restart_warmup_slows_service():
    """After a restart the MDS serves at warmup_factor until caches re-heat."""
    built, trace = generate_trace_rw(SeedSequenceFactory(0).stream("w"), n_ops=200)
    sched = FaultSchedule(
        [Crash(mds=0, start_ms=5.0, end_ms=10.0, warmup_ms=20.0, warmup_factor=6.0)]
    )
    cfg = SimConfig(n_mds=2, n_clients=2, epoch_ms=50.0, seed=0, faults=sched)
    fs = OrigamiFS(built.tree, trace, LunulePolicy(), cfg)
    inj = fs.faults
    assert inj.service_factor(0, 7.0) == 1.0  # down, not slow (gate handles it)
    assert inj.service_factor(0, 15.0) == 6.0  # warm-up window
    assert inj.service_factor(0, 40.0) == 1.0


def test_typed_failure_after_retry_budget():
    """With every retry doomed (long crash, no failover target for the root),
    ops surface typed failures instead of hanging or vanishing."""
    # crash never restarts and the retry budget is tiny; the first epoch's
    # ops mostly target MDS 0 (everything starts there under subtree policies)
    sched = FaultSchedule(
        [Crash(mds=0, start_ms=2.0, end_ms=math.inf)],
        retry=RetryPolicy(max_attempts=2, backoff_base_ms=0.1, backoff_max_ms=0.2),
    )
    result, n_ops = run_scheduled(sched, epoch_ms=500.0)  # balancer far too late
    d = result.to_dict()
    assert d["fault_failed_ops"] > 0
    assert d["faults"]["failed_mds_down"] > 0
    assert d["ops_completed"] + d["fault_failed_ops"] + d["vanished_ops"] == n_ops


def test_empty_schedule_installs_cleanly():
    built, trace = generate_trace_rw(SeedSequenceFactory(0).stream("w"), n_ops=300)
    cfg = SimConfig(n_mds=2, n_clients=4, seed=0, faults=FaultSchedule([]))
    result = run_simulation(built.tree, trace, LunulePolicy(), cfg)
    fl = result.to_dict()["faults"]
    assert fl["events_scheduled"] == 0
    assert fl["retries"] == 0 and fl["crashes"] == 0
    assert result.ops_completed == len(trace)
