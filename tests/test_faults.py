"""Fault-injection tests: balancers must route around a degraded MDS."""

import numpy as np
import pytest

from repro.balancers import CoarseHashPolicy, LunulePolicy
from repro.costmodel import CostParams
from repro.fs import SimConfig
from repro.fs.faults import Slowdown, SlowdownInjector
from repro.fs.filesystem import OrigamiFS
from repro.sim import SeedSequenceFactory
from repro.workloads import generate_trace_rw


def run_with_faults(policy, slowdowns, seed=0, n_ops=30000):
    built, trace = generate_trace_rw(SeedSequenceFactory(seed).stream("w"), n_ops=n_ops)
    cfg = SimConfig(n_mds=4, n_clients=100, epoch_ms=80.0, params=CostParams(cache_depth=2))
    fs = OrigamiFS(built.tree, trace, policy, cfg)
    if slowdowns:
        SlowdownInjector(fs, slowdowns)
    return fs.run()


def test_slowdown_validation():
    with pytest.raises(ValueError):
        Slowdown(mds=0, start_ms=0, end_ms=10, factor=0.5)
    with pytest.raises(ValueError):
        Slowdown(mds=0, start_ms=10, end_ms=5, factor=2.0)


def test_injector_rejects_unknown_mds():
    built, trace = generate_trace_rw(SeedSequenceFactory(0).stream("w"), n_ops=100)
    fs = OrigamiFS(built.tree, trace, LunulePolicy(), SimConfig(n_mds=2, n_clients=2))
    with pytest.raises(ValueError):
        SlowdownInjector(fs, [Slowdown(mds=9, start_ms=0, end_ms=1, factor=2.0)])


def test_factor_window():
    built, trace = generate_trace_rw(SeedSequenceFactory(0).stream("w"), n_ops=100)
    fs = OrigamiFS(built.tree, trace, LunulePolicy(), SimConfig(n_mds=2, n_clients=2))
    inj = SlowdownInjector(fs, [Slowdown(mds=1, start_ms=10, end_ms=20, factor=3.0)])
    assert inj.factor_for(1, 5.0) == 1.0
    assert inj.factor_for(1, 15.0) == 3.0
    assert inj.factor_for(1, 25.0) == 1.0
    assert inj.factor_for(0, 15.0) == 1.0


def test_slowdown_degrades_static_partitioning():
    """A static hash cannot escape a degraded MDS: throughput must drop."""
    healthy = run_with_faults(CoarseHashPolicy(), [], seed=4)
    degraded = run_with_faults(
        CoarseHashPolicy(),
        [Slowdown(mds=0, start_ms=0.0, end_ms=1e9, factor=4.0)],
        seed=4,
    )
    assert degraded.throughput_ops_per_sec < healthy.throughput_ops_per_sec * 0.9


def test_balancer_routes_around_degraded_mds():
    """A busy-time-driven balancer sheds load off the slow MDS."""
    slow = [Slowdown(mds=0, start_ms=0.0, end_ms=1e9, factor=4.0)]
    static = run_with_faults(CoarseHashPolicy(), slow, seed=5)
    balanced = run_with_faults(LunulePolicy(), slow, seed=5)
    # the reactive balancer must end with little load on the degraded server
    share_static = static.total_qps_per_mds()[0] / static.ops_completed
    share_balanced = balanced.total_qps_per_mds()[0] / balanced.ops_completed
    assert share_balanced < share_static
    # ...and the migrations must actually have happened
    assert balanced.migrations > 0
