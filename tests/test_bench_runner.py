"""Parallel runner: worker-count invariance, typed failure surfacing.

The determinism contract is the subsystem's core guarantee: a scenario's
artifact must be byte-identical for ``--workers 1`` and ``--workers N``
once the volatile (environment/timing) fields are stripped.
"""

import pytest

from repro.bench.runner import BenchError, WorkerCrashError, run_scenario
from repro.bench.scenario import BenchScenario, BenchVariant, register_scenario
from repro.bench.store import stable_dumps, strip_volatile

#: tiny but real scenario: two balancers, two seeds, ~1.5k-op traces
TINY = register_scenario(
    BenchScenario(
        name="_test_tiny_rw",
        description="runner test scenario",
        kind="rw",
        variants=(
            BenchVariant("chash", strategy="C-Hash", n_mds=3, n_clients=16, ops_factor=0.1),
            BenchVariant("lunule", strategy="Lunule", n_mds=3, n_clients=16, ops_factor=0.1),
        ),
        seeds=(1, 2),
        scale="smoke",
    ),
    replace=True,
)

BROKEN = register_scenario(
    BenchScenario(
        name="_test_broken_strategy",
        description="runner failure-path scenario",
        kind="rw",
        variants=(BenchVariant("nope", strategy="NoSuchStrategy", ops_factor=0.05),),
        seeds=(1,),
        scale="smoke",
    ),
    replace=True,
)


@pytest.fixture(scope="module")
def serial_artifact():
    return run_scenario(TINY, workers=1)


def test_artifact_shape(serial_artifact):
    art = serial_artifact
    assert art["schema_version"] == 1
    assert art["scenario"] == "_test_tiny_rw"
    assert art["scale"] == "smoke"
    assert art["seeds"] == [1, 2]
    assert len(art["runs"]) == 4
    # canonical (variant, seed) order
    assert [(r["variant"], r["seed"]) for r in art["runs"]] == [
        ("chash", 1), ("chash", 2), ("lunule", 1), ("lunule", 2),
    ]
    for run in art["runs"]:
        m = run["metrics"]
        assert m["ops_completed"] > 0
        assert m["steady_state_throughput"] > 0
        assert "obs.epochs_total" in m  # per-seed obs-registry counters ride along
    for variant in ("chash", "lunule"):
        agg = art["aggregates"][variant]["steady_state_throughput"]
        assert agg["n"] == 2.0
        assert agg["ci95_lo"] <= agg["mean"] <= agg["ci95_hi"]
    assert art["environment"]["python"]
    assert art["timing"]["workers"] == 1


def test_workers_do_not_change_the_artifact(serial_artifact):
    parallel = run_scenario(TINY, workers=4)
    assert stable_dumps(strip_volatile(parallel)) == stable_dumps(
        strip_volatile(serial_artifact)
    )
    assert parallel["timing"]["workers"] == 4


def test_seed_override_changes_matrix_only(serial_artifact):
    art = run_scenario(TINY, workers=1, seeds=[1])
    assert art["seeds"] == [1]
    assert len(art["runs"]) == 2
    # the seed-1 rows are identical to the full run's seed-1 rows
    full_seed1 = [r for r in serial_artifact["runs"] if r["seed"] == 1]
    assert art["runs"] == full_seed1


def test_duplicate_seeds_rejected():
    with pytest.raises(BenchError, match="duplicate seeds"):
        run_scenario(TINY, workers=1, seeds=[1, 1])


def test_worker_exception_surfaces_as_typed_error():
    with pytest.raises(WorkerCrashError, match="_test_broken_strategy/nope seed=1"):
        run_scenario(BROKEN, workers=2)


def test_worker_hard_crash_surfaces_as_typed_error(monkeypatch):
    # the env hook makes workers exit without reporting back, simulating a
    # SIGKILL/OOM death; the runner must raise, not hang
    monkeypatch.setenv("REPRO_BENCH_TEST_CRASH", "1")
    with pytest.raises(WorkerCrashError, match="died|failed"):
        run_scenario(TINY, workers=2, seeds=[1])


def test_deadline_is_typed_not_a_hang(monkeypatch):
    import repro.bench.runner as runner_mod

    real_run_cell = runner_mod._run_cell

    with pytest.raises(WorkerCrashError, match="deadline"):
        run_scenario(TINY, workers=2, seeds=[1], deadline_s=0.0)
    # the module-level worker fn is untouched for later tests
    assert runner_mod._run_cell is real_run_cell


def test_perf_section_is_volatile_and_well_formed(serial_artifact):
    art = serial_artifact
    # rows carry no wall-clock residue: wall_s was popped into "perf"
    assert all("wall_s" not in r for r in art["runs"])
    assert "perf" not in strip_volatile(art)
    for variant in ("chash", "lunule"):
        per = art["perf"][variant]
        assert per["wall_s"]["n"] == 2.0
        assert per["wall_s"]["mean"] > 0.0
        assert per["engine_events_per_wall_sec"]["mean"] > 0.0
    # timeline roll-ups and engine counts made it into the deterministic core
    for run in art["runs"]:
        m = run["metrics"]
        assert m["engine_events"] > 0
        assert m["engine_events_per_virtual_sec"] > 0
        assert m["timeline.windows"] >= 1.0
        assert m["timeline.peak_ops_per_sec"] > 0.0
