"""LatencyRecorder: exact streaming moments + reservoir-sampled percentiles."""

import numpy as np
import pytest

from repro.fs.metrics import LatencyRecorder


def test_exact_below_capacity():
    rec = LatencyRecorder(reservoir=100)
    xs = np.linspace(1.0, 50.0, 50)
    for x in xs:
        rec.record(float(x))
    assert rec.count == 50
    assert rec.mean == pytest.approx(xs.mean())
    assert rec.percentile(50) == pytest.approx(np.percentile(xs, 50))
    assert rec.percentile(99) == pytest.approx(np.percentile(xs, 99))


def test_count_and_mean_stay_exact_past_capacity():
    rec = LatencyRecorder(reservoir=64, seed=1)
    rng = np.random.default_rng(0)
    xs = rng.exponential(2.0, size=5000)
    for x in xs:
        rec.record(float(x))
    # the reservoir subsamples, but count/mean are streamed exactly
    assert rec.count == 5000
    assert rec.mean == pytest.approx(xs.mean(), rel=1e-12)


def test_percentiles_within_tolerance_past_capacity():
    rec = LatencyRecorder(reservoir=5000, seed=2)
    rng = np.random.default_rng(3)
    xs = rng.lognormal(mean=0.0, sigma=0.5, size=50_000)
    for x in xs:
        rec.record(float(x))
    for q in (50, 90, 99):
        true = np.percentile(xs, q)
        est = rec.percentile(q)
        assert est == pytest.approx(true, rel=0.1), f"p{q}"


def test_seeded_determinism():
    def fill(seed):
        rec = LatencyRecorder(reservoir=32, seed=seed)
        rng = np.random.default_rng(7)
        for x in rng.uniform(0, 10, 1000):
            rec.record(float(x))
        return rec

    a, b = fill(seed=5), fill(seed=5)
    assert a.percentile(50) == b.percentile(50)
    assert a.percentile(99) == b.percentile(99)
    # a different reservoir seed may keep a different sample
    c = fill(seed=6)
    assert a.count == c.count and a.mean == c.mean  # exact stats unaffected


def test_empty_recorder_is_zero():
    rec = LatencyRecorder()
    assert rec.count == 0
    assert rec.mean == 0.0
    assert rec.percentile(99) == 0.0
