"""Scenario model + registry: validation, lookup, built-ins."""

import pytest

from repro.bench.scenario import (
    BenchScenario,
    BenchVariant,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)
from repro.fs.faults import FaultSchedule, Slowdown


def make_scenario(name="tmp_scn", **kw):
    defaults = dict(
        description="test scenario",
        kind="rw",
        variants=(BenchVariant("a", strategy="C-Hash"),),
        seeds=(1, 2),
    )
    defaults.update(kw)
    return BenchScenario(name=name, **defaults)


def test_builtin_scenarios_registered():
    names = scenario_names()
    for expected in (
        "fig2_even_partitioning",
        "fig5_overall",
        "fig8_scalability",
        "crash_failover_rw",
        "mdtest_uniform",
        "cache_depth_origami",
    ):
        assert expected in names


def test_builtins_subsume_figure_configs():
    fig5 = get_scenario("fig5_overall")
    assert [v.strategy for v in fig5.variants] == [
        "Single", "C-Hash", "F-Hash", "ML-tree", "Origami",
    ]
    fig8 = get_scenario("fig8_scalability")
    sizes = sorted({v.n_mds for v in fig8.variants if v.strategy == "Origami"})
    assert sizes == [2, 3, 4, 5]
    faulted = get_scenario("crash_failover_rw")
    assert faulted.faults is not None and faulted.faults.has_crashes


def test_validation_rejects_bad_scenarios():
    with pytest.raises(ValueError, match="unknown workload kind"):
        make_scenario(kind="nope")
    with pytest.raises(ValueError, match="at least one variant"):
        make_scenario(variants=())
    with pytest.raises(ValueError, match="duplicate variant names"):
        make_scenario(
            variants=(BenchVariant("a", strategy="Even"), BenchVariant("a", strategy="C-Hash"))
        )
    with pytest.raises(ValueError, match="duplicate seeds"):
        make_scenario(seeds=(3, 3))
    with pytest.raises(ValueError, match="at least one seed"):
        make_scenario(seeds=())
    with pytest.raises(ValueError, match="ops_factor"):
        BenchVariant("a", strategy="Even", ops_factor=0.0)


def test_registry_lookup_and_replace():
    scn = make_scenario("tmp_registry_scn")
    register_scenario(scn, replace=True)
    assert get_scenario("tmp_registry_scn") is scn
    with pytest.raises(ValueError, match="already registered"):
        register_scenario(scn)
    register_scenario(make_scenario("tmp_registry_scn", kind="ro"), replace=True)
    assert get_scenario("tmp_registry_scn").kind == "ro"
    with pytest.raises(KeyError, match="unknown scenario"):
        get_scenario("never_registered")


def test_runs_matrix_order_and_overrides():
    scn = make_scenario(
        variants=(BenchVariant("a", strategy="Even"), BenchVariant("b", strategy="C-Hash")),
        seeds=(5, 6),
    )
    matrix = [(v.name, s) for v, s in scn.runs()]
    assert matrix == [("a", 5), ("a", 6), ("b", 5), ("b", 6)]
    assert scn.n_runs == 4
    assert [(v.name, s) for v, s in scn.runs(seeds=[9])] == [("a", 9), ("b", 9)]
    assert scn.with_seeds([7]).seeds == (7,)
    assert scn.variant("b").strategy == "C-Hash"
    with pytest.raises(KeyError):
        scn.variant("c")


def test_to_dict_round_trips_faults():
    faults = FaultSchedule([Slowdown(mds=0, start_ms=1.0, end_ms=2.0, factor=2.0)])
    scn = make_scenario("tmp_faulted", faults=faults)
    d = scn.to_dict()
    assert d["faults"] is not None
    assert FaultSchedule.from_dict(d["faults"]) == faults
    assert d["variants"][0]["strategy"] == "C-Hash"
    assert make_scenario().to_dict()["faults"] is None


def test_iter_scenarios_sorted():
    names = [s.name for s in iter_scenarios()]
    assert names == sorted(names)
