"""Unit tests for the declarative SLO evaluator (spec parsing, burn rates,
fault annotation) against synthesized timeline rows."""

import json
from types import SimpleNamespace

import pytest

from repro.obs import SloError, SloObjective, SloSpec, evaluate_slo


def _rows(p95_values, window_ms=10.0, ops=100):
    """Synth timeline rows: one per value, all with the same op count."""
    return [
        {
            "w": i,
            "start_ms": i * window_ms,
            "end_ms": (i + 1) * window_ms,
            "ops": ops,
            "p95_ms": float(v),
            "cache_hit_rate": 0.9,
        }
        for i, v in enumerate(p95_values)
    ]


def _spec(**kw):
    d = {"name": "o", "metric": "p95_ms", "target": 5.0, "error_budget": 0.25}
    d.update(kw)
    return SloSpec.from_dict({"name": "t", "objectives": [d]})


# ------------------------------------------------------------------ parsing
def test_objective_accepts_target_ms_alias():
    o = SloObjective.from_dict({"name": "p", "metric": "p95_ms", "target_ms": 7.5})
    assert o.target == 7.5


def test_objective_rejects_unknown_keys_and_metrics():
    with pytest.raises(SloError, match="unknown keys"):
        SloObjective.from_dict(
            {"name": "p", "metric": "p95_ms", "target": 1.0, "tresh": 2}
        )
    with pytest.raises(SloError, match="unknown metric"):
        SloObjective.from_dict({"name": "p", "metric": "cpu_temp", "target": 1.0})
    with pytest.raises(SloError, match="needs 'target'"):
        SloObjective.from_dict({"name": "p", "metric": "p95_ms"})


def test_objective_validates_budget_and_burn_params():
    base = {"name": "p", "metric": "p95_ms", "target": 1.0}
    with pytest.raises(SloError, match="error_budget"):
        SloObjective.from_dict({**base, "error_budget": 0.0})
    with pytest.raises(SloError, match="error_budget"):
        SloObjective.from_dict({**base, "error_budget": 1.5})
    with pytest.raises(SloError, match="burn_window"):
        SloObjective.from_dict({**base, "burn_window": 0})
    with pytest.raises(SloError, match="burn_alert"):
        SloObjective.from_dict({**base, "burn_alert": 0.0})


def test_spec_rejects_duplicates_and_empty():
    with pytest.raises(SloError, match="duplicate"):
        SloSpec.from_dict(
            {
                "objectives": [
                    {"name": "a", "metric": "p95_ms", "target": 1.0},
                    {"name": "a", "metric": "p99_ms", "target": 1.0},
                ]
            }
        )
    with pytest.raises(SloError, match="non-empty"):
        SloSpec.from_dict({"objectives": []})
    with pytest.raises(SloError, match="JSON object"):
        SloSpec.from_dict([1, 2])


def test_spec_load_roundtrip_and_bad_json(tmp_path):
    spec = _spec()
    path = tmp_path / "slo.json"
    path.write_text(json.dumps(spec.to_dict()))
    assert SloSpec.load(str(path)) == spec
    path.write_text("{nope")
    with pytest.raises(SloError, match="invalid JSON"):
        SloSpec.load(str(path))


def test_breach_direction_per_metric_kind():
    lat = SloObjective(name="l", metric="p95_ms", target=5.0)
    assert lat.breaches(5.1) and not lat.breaches(5.0)
    hit = SloObjective(name="h", metric="cache_hit_rate", target=0.5)
    assert hit.breaches(0.4) and not hit.breaches(0.5)


# --------------------------------------------------------------- evaluation
def test_evaluate_counts_breaches_and_budget():
    rows = _rows([1.0, 9.0, 1.0, 9.0])  # 2/4 breach, budget 0.25 -> consumed 2x
    report = evaluate_slo(rows, _spec())
    (res,) = report.results
    assert res.breaching == [1, 3]
    assert res.breach_fraction == 0.5
    assert res.budget_consumed == pytest.approx(2.0)
    assert not res.ok and not report.ok
    assert res.worst_value == 9.0


def test_lower_is_worse_worst_value_is_min():
    rows = _rows([1.0, 1.0])
    rows[0]["cache_hit_rate"] = 0.2
    spec = SloSpec.from_dict(
        {
            "objectives": [
                {"name": "h", "metric": "cache_hit_rate", "target": 0.5,
                 "error_budget": 0.6}
            ]
        }
    )
    (res,) = evaluate_slo(rows, spec).results
    assert res.breaching == [0]
    assert res.worst_value == 0.2
    assert res.ok  # 1/2 breach within the 0.6 budget


def test_zero_op_windows_are_not_measurements():
    rows = _rows([9.0, 9.0, 1.0])
    rows[0]["ops"] = 0  # idle window with a garbage metric value
    (res,) = evaluate_slo(rows, _spec()).results
    assert res.windows == 2
    assert res.breaching == [1]  # original indices, idle window skipped


def test_missing_metric_raises():
    rows = [{"w": 0, "start_ms": 0.0, "end_ms": 1.0, "ops": 5}]
    with pytest.raises(SloError, match="lack metric"):
        evaluate_slo(rows, _spec())


def test_empty_timeline_is_vacuously_ok():
    report = evaluate_slo([], _spec())
    assert report.ok
    assert report.results[0].windows == 0
    assert report.results[0].breach_fraction == 0.0


def test_burn_alert_runs_are_merged_with_original_indices():
    # budget 0.25, burn_window 2, alert at 2.0x: indices 2..5 breach, so a
    # sustained span burns at 4x; every rolling window *touching* the run
    # alerts, so the merged span covers windows 1..6
    values = [1.0, 1.0, 9.0, 9.0, 9.0, 9.0, 1.0, 1.0]
    spec = _spec(burn_window=2, burn_alert=2.0)
    (res,) = evaluate_slo(_rows(values), spec).results
    assert len(res.alerts) == 1
    alert = res.alerts[0]
    assert alert.start_window == 1
    assert alert.end_window == 6
    assert alert.burn_rate == pytest.approx(4.0)


def test_no_alert_below_threshold():
    values = [9.0 if i % 8 == 0 else 1.0 for i in range(32)]  # 12.5% breach
    spec = _spec(error_budget=0.25, burn_window=8, burn_alert=3.0)
    (res,) = evaluate_slo(_rows(values), spec).results
    assert res.alerts == []
    assert res.ok


def test_fault_annotations_split_explained_from_unexplained():
    rows = _rows([9.0, 1.0, 9.0])
    faults = SimpleNamespace(
        events=[SimpleNamespace(start_ms=0.0, end_ms=10.0, kind="crash")]
    )
    (res,) = evaluate_slo(rows, _spec(), faults=faults).results
    assert res.breaching == [0, 2]
    assert res.fault_annotations == {0: ["crash"]}
    assert res.unexplained_breaches == 1
    d = res.to_dict()
    assert d["fault_annotations"] == {"0": ["crash"]}


def test_report_render_and_dict_shape():
    rows = _rows([1.0, 9.0])
    report = evaluate_slo(rows, _spec(error_budget=0.6))
    text = report.render()
    assert "OK" in text and "p95_ms" in text
    d = report.to_dict()
    assert d["ok"] is True
    assert d["objectives"][0]["breaching_windows"] == [1]
