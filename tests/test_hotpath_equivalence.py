"""Hot-path equivalence suite: the optimized simulator must be bit-identical.

The million-entity hot-path PR rewrote the DES inner loop (packed heap keys,
inlined ``Environment.run``, flat event construction), the client planner
(memoised RPC plans), the namespace/partition read paths, and the workload
generators — all as *constant-factor* optimizations.  None of them may move a
single deterministic output bit.  This suite proves that along three axes:

1. **Golden differential cells** — ``tests/golden_hotpath/`` holds fixtures
   captured from the tree *before* any optimization landed (see
   ``capture.py`` there).  Each cell re-runs the same simulation through the
   optimized build and demands byte-identity of the full ``SimResult``,
   every finished span, every timeline window, and (one cell) a whole bench
   artifact — across seeds × workloads × {healthy, faults, durability}.

2. **Property tests** (hypothesis) — for *random* seeds and configurations
   the suite never saw at capture time, two fresh runs in the same process
   must be identical: determinism is a property of the simulator, not of the
   eleven captured points.

3. **Scheduler-ordering invariants** — the packed heap key
   (``priority << 62 | seq``) must order exactly like the old
   ``(time, priority, seq)`` tuple: FIFO among same-time/same-priority
   events, URGENT before NORMAL at equal time, and strictly increasing
   virtual time overall.
"""

import importlib.util
import json
import math
import pathlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden_hotpath"


def _load_matrix():
    spec = importlib.util.spec_from_file_location(
        "hotpath_matrix", GOLDEN_DIR / "matrix.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


MATRIX = _load_matrix()


def _assert_equal(path: str, old, new) -> None:
    """Recursive equality with bitwise floats and pinpointed diff paths."""
    if isinstance(old, float):
        # fixtures round-trip through JSON, so decimal repr is exact: demand
        # bitwise equality (isclose only as an inf/nan guard)
        assert old == new or math.isclose(old, new, rel_tol=0.0, abs_tol=0.0), (
            f"{path}: {old!r} != {new!r}"
        )
    elif isinstance(old, dict):
        assert isinstance(new, dict), f"{path}: expected dict, got {type(new)}"
        assert set(old) == set(new), (
            f"{path}: key drift (lost {set(old) - set(new)}, "
            f"gained {set(new) - set(old)})"
        )
        for k in old:
            _assert_equal(f"{path}.{k}", old[k], new[k])
    elif isinstance(old, list):
        assert isinstance(new, list) and len(old) == len(new), (
            f"{path}: length {len(old) if isinstance(old, list) else '?'} != {len(new)}"
        )
        for i, (a, b) in enumerate(zip(old, new)):
            _assert_equal(f"{path}[{i}]", a, b)
    else:
        assert old == new, f"{path}: {old!r} != {new!r}"


# --------------------------------------------------------------------------
# 1. golden differential cells (fixtures captured pre-optimization)
# --------------------------------------------------------------------------
def test_fixture_set_is_complete():
    """Every matrix cell has its pre-change fixture on disk (and vice versa)."""
    expected = set(MATRIX.CELLS) | {MATRIX.BENCH_CELL}
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk == expected, (
        f"fixture drift: missing {expected - on_disk}, stray {on_disk - expected}"
    )


@pytest.mark.parametrize("cell", sorted(MATRIX.CELLS))
def test_cell_matches_pre_optimization_fixture(cell: str):
    fixture = json.loads((GOLDEN_DIR / f"{cell}.json").read_text())
    fresh = MATRIX.run_cell(cell)
    _assert_equal(cell, fixture, fresh)


def test_bench_artifact_matches_pre_optimization_fixture():
    fixture = json.loads((GOLDEN_DIR / f"{MATRIX.BENCH_CELL}.json").read_text())
    fresh = MATRIX.run_bench_cell()
    _assert_equal(MATRIX.BENCH_CELL, fixture, fresh)


# --------------------------------------------------------------------------
# 2. determinism as a property: random seeds/configs the fixtures never saw
# --------------------------------------------------------------------------
def _tiny_run(kind: str, seed: int, with_faults: bool):
    """One small fully-observed run, reduced to its deterministic outputs."""
    from repro.balancers import LunulePolicy
    from repro.costmodel import CostParams
    from repro.fs import SimConfig, run_simulation
    from repro.harness.experiments import build_workload
    from repro.obs import Observability

    built, trace = build_workload(kind, 400, seed)
    obs = Observability(trace=True, timeline=True, timeline_window_ms=10.0)
    config = SimConfig(
        n_mds=3,
        n_clients=8,
        epoch_ms=40.0,
        params=CostParams(cache_depth=2),
        seed=seed,
        obs=obs,
        faults=MATRIX.fault_schedule() if with_faults else None,
    )
    result = run_simulation(built.tree, trace, LunulePolicy(), config)
    rd = result.to_dict()
    for key in MATRIX.VOLATILE_RESULT_KEYS:
        rd.pop(key, None)
    return {
        "result": rd,
        "spans": [s.to_dict() for s in obs.tracer.spans],
        "windows": obs.timeline.to_rows(),
    }


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    kind=st.sampled_from(["rw", "ro", "wi"]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    with_faults=st.booleans(),
)
def test_same_seed_runs_are_bit_identical(kind, seed, with_faults):
    first = _tiny_run(kind, seed, with_faults)
    second = _tiny_run(kind, seed, with_faults)
    _assert_equal(f"{kind}/seed{seed}/faults={with_faults}", first, second)


@settings(max_examples=10, deadline=None)
@given(
    seed_a=st.integers(min_value=0, max_value=2**31 - 1),
    seed_b=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_distinct_seeds_produce_distinct_traces(seed_a, seed_b):
    """Seed actually matters: different seeds give different op streams."""
    from repro.harness.experiments import build_workload

    if seed_a == seed_b:
        return
    _, ta = build_workload("rw", 300, seed_a)
    _, tb = build_workload("rw", 300, seed_b)
    assert ta.op.tolist() != tb.op.tolist() or ta.dir_ino.tolist() != tb.dir_ino.tolist()


# --------------------------------------------------------------------------
# 3. fast path vs general loop: forced-off parity
# --------------------------------------------------------------------------
def _eligible_replay(kind: str, seed: int, fastpath: bool):
    """One fastpath-eligible run (no tracer/faults/durability), both modes."""
    from repro.balancers import LunulePolicy
    from repro.costmodel import CostParams
    from repro.fs import SimConfig
    from repro.fs.filesystem import OrigamiFS
    from repro.harness.experiments import build_workload
    from repro.obs import Observability

    built, trace = build_workload(kind, 1500, seed)
    obs = Observability(trace=False, timeline=True, timeline_window_ms=12.0)
    config = SimConfig(
        n_mds=3,
        n_clients=8,
        epoch_ms=40.0,
        params=CostParams(cache_depth=2),
        seed=seed,
        obs=obs,
        fastpath=fastpath,
    )
    fs = OrigamiFS(built.tree, trace, LunulePolicy(), config)
    engaged = fs.fastpath_engaged
    rd = fs.run().to_dict()
    for key in MATRIX.VOLATILE_RESULT_KEYS:
        rd.pop(key, None)
    return engaged, {"result": rd, "windows": obs.timeline.to_rows()}


@pytest.mark.parametrize("kind,seed", [("rw", 0), ("wi", 1), ("ro", 0)])
def test_fastpath_bit_identical_to_general_loop(kind, seed):
    """SimConfig.fastpath=True vs False: every deterministic output bit,
    including the windowed timeline, must match — and the flag must actually
    flip which replay loop ran (guarding against silent disengagement)."""
    on_engaged, on = _eligible_replay(kind, seed, fastpath=True)
    off_engaged, off = _eligible_replay(kind, seed, fastpath=False)
    assert on_engaged, "eligible config must engage the fast path"
    assert not off_engaged, "fastpath=False must force the general loop"
    _assert_equal(f"fastpath-parity/{kind}/seed{seed}", off, on)


def test_fastpath_env_kill_switch(monkeypatch):
    """REPRO_FASTPATH=0 force-disables the fast path when the config defers."""
    from repro.sim import fastpath as fp

    class _Cfg:
        fastpath = None

    class _FS:
        config = _Cfg()

    monkeypatch.setenv("REPRO_FASTPATH", "0")
    assert fp.engaged(_FS()) is False


# --------------------------------------------------------------------------
# 4. ordering invariants of the packed-key scheduler
# --------------------------------------------------------------------------
def _fire_order(entries):
    """Schedule ``entries`` = [(delay, priority), ...] and return fire order."""
    from repro.sim.engine import Environment, Event

    env = Environment()
    fired = []

    def make(idx):
        ev = Event(env)
        ev._triggered = True
        ev._value = None
        ev.callbacks.append(lambda _e, i=idx: fired.append(i))
        return ev

    for idx, (delay, priority) in enumerate(entries):
        env._schedule(make(idx), priority, delay)
    env.run()
    return fired


@settings(max_examples=50, deadline=None)
@given(
    entries=st.lists(
        st.tuples(
            st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0]),  # collision-heavy times
            st.sampled_from([0, 1]),  # URGENT, NORMAL
        ),
        min_size=1,
        max_size=40,
    )
)
def test_packed_key_orders_like_time_priority_seq(entries):
    """Fire order == stable sort by (time, priority): the packed integer key
    must never reorder what the old 3-tuple key would have preserved."""
    fired = _fire_order(entries)
    expected = sorted(range(len(entries)), key=lambda i: (entries[i][0], entries[i][1]))
    assert fired == expected


def test_urgent_fires_before_normal_at_same_time():
    fired = _fire_order([(1.0, 1), (1.0, 0), (1.0, 1), (1.0, 0)])
    assert fired == [1, 3, 0, 2]


def test_same_priority_same_time_is_fifo():
    fired = _fire_order([(2.0, 1)] * 8 + [(1.0, 1)] * 3)
    assert fired == [8, 9, 10, 0, 1, 2, 3, 4, 5, 6, 7]


@settings(max_examples=100, deadline=None)
@given(
    p1=st.sampled_from([0, 1]),
    p2=st.sampled_from([0, 1]),
    s1=st.integers(min_value=0, max_value=2**62 - 1),
    s2=st.integers(min_value=0, max_value=2**62 - 1),
)
def test_packed_key_is_order_isomorphic_to_pair(p1, p2, s1, s2):
    """(p << 62) | s compares exactly like the tuple (p, s) for s < 2**62."""
    k1, k2 = (p1 << 62) | s1, (p2 << 62) | s2
    assert (k1 < k2) == ((p1, s1) < (p2, s2))
    assert (k1 == k2) == ((p1, s1) == (p2, s2))


def test_clock_is_monotonic_and_events_counted():
    """The inlined run loop advances time monotonically and flushes the
    event counter (the timeline reads it mid-run) exactly once per event."""
    from repro.sim.engine import Environment, Timeout

    env = Environment()
    times = []

    def proc():
        for d in (3.0, 0.0, 1.5, 0.0, 2.0):
            yield Timeout(env, d)
            times.append(env.now)

    env.process(proc())
    env.run()
    assert times == sorted(times)
    # bootstrap + 5 timeouts + process-termination event
    assert env.events_processed == 7
