"""Property tests for the named RNG stream hierarchy (:mod:`repro.sim.rng`).

The hot-path equivalence suite rests on one premise: every stochastic
component draws from its own named child stream, so determinism and
independence hold for *any* (seed, name) combination — not just the ones the
unit tests happen to spell out.  These hypothesis tests check that premise
over randomized seeds and stream names.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RngStream, SeedSequenceFactory, _stable_key

#: printable stream names like the codebase uses ("workload-rw", "jitter-3")
names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_./",
    min_size=1,
    max_size=24,
)
seeds = st.integers(min_value=0, max_value=2**63 - 1)


@settings(max_examples=50, deadline=None)
@given(seed=seeds, name=names)
def test_same_seed_same_name_is_bit_identical(seed, name):
    a = SeedSequenceFactory(seed).stream(name).integers(0, 2**63, size=16)
    b = SeedSequenceFactory(seed).stream(name).integers(0, 2**63, size=16)
    assert np.array_equal(a, b)


@settings(max_examples=50, deadline=None)
@given(seed=seeds, name_a=names, name_b=names)
def test_distinct_names_do_not_overlap(seed, name_a, name_b):
    """Different stream ids never replay each other's sequence: 32 draws of
    64-bit integers from each stream share no value (collision probability
    ~2**-54 per pair — a hit means the streams are correlated, not unlucky)."""
    if name_a == name_b:
        return
    ssf = SeedSequenceFactory(seed)
    a = ssf.stream(name_a).integers(0, 2**63, size=32)
    b = ssf.stream(name_b).integers(0, 2**63, size=32)
    assert not (set(a.tolist()) & set(b.tolist()))
    assert not np.array_equal(a, b)


@settings(max_examples=30, deadline=None)
@given(seed_a=seeds, seed_b=seeds, name=names)
def test_distinct_seeds_do_not_overlap(seed_a, seed_b, name):
    if seed_a == seed_b:
        return
    a = SeedSequenceFactory(seed_a).stream(name).integers(0, 2**63, size=32)
    b = SeedSequenceFactory(seed_b).stream(name).integers(0, 2**63, size=32)
    assert not (set(a.tolist()) & set(b.tolist()))


@settings(max_examples=30, deadline=None)
@given(seed=seeds, extra=st.lists(names, min_size=1, max_size=5, unique=True), name=names)
def test_other_streams_never_shift_a_stream(seed, extra, name):
    """Touching any number of sibling streams (in any order, before or
    after) must not move ``name``'s sequence — the no-shared-global-stream
    property that keeps A/B comparisons honest."""
    clean = SeedSequenceFactory(seed).stream(name).random(12)

    noisy_factory = SeedSequenceFactory(seed)
    for other in extra:
        if other != name:
            noisy_factory.stream(other).random(5)  # interleaved draws
    noisy = noisy_factory.stream(name).random(12)
    assert np.array_equal(clean, noisy)


@settings(max_examples=50, deadline=None)
@given(name=names)
def test_stable_key_is_deterministic_and_discriminating(name):
    """The name→seed-entropy map is a pure function (hash-seed independent)
    and 64 bits wide (fits SeedSequence's uint64 entropy words)."""
    k = _stable_key(name)
    assert k == _stable_key(name)
    assert 0 <= k < 2**64
    assert k != _stable_key(name + "x")


@settings(max_examples=20, deadline=None)
@given(seed=seeds, name=names, n=st.integers(min_value=1, max_value=400),
       alpha=st.floats(min_value=0.0, max_value=4.0, allow_nan=False))
def test_zipf_weights_are_a_distribution(seed, name, n, alpha):
    """zipf_weights draws nothing (stream state untouched) and returns a
    normalised, rank-decreasing probability vector."""
    stream = SeedSequenceFactory(seed).stream(name)
    before = stream.generator.bit_generator.state
    w = stream.zipf_weights(n, alpha)
    after = stream.generator.bit_generator.state
    assert before == after
    assert w.shape == (n,)
    assert abs(float(w.sum()) - 1.0) < 1e-12
    assert all(w[i] >= w[i + 1] for i in range(n - 1))


def test_stream_type_round_trip():
    s = SeedSequenceFactory(7).stream("x")
    assert isinstance(s, RngStream)
    assert s.name == "x"
    assert repr(s) == "RngStream('x')"
