"""Crash-consistent recovery tests (repro.durability.recovery).

The centrepiece is the crash-at-any-offset sweep: truncating the WAL at
EVERY byte offset must recover exactly the acknowledged prefix of writes —
never a partial record, never a lost acked record.
"""

import os
import shutil

import pytest

from repro.durability import DurabilityOptions, inspect_data_dir, open_store
from repro.durability.errors import (
    ManifestError,
    SSTableCorruptionError,
)
from repro.durability.wal import _SEG_HEADER, encode_record, scan_segments
from repro.kvstore import LSMStore

OPTS = DurabilityOptions(use_fsync=False)


def live(store):
    return dict(store.scan(b"", b"\xff" * 8))


# ------------------------------------------------------------ open lifecycle


def test_open_initialises_fresh_directory(tmp_path):
    s = open_store(str(tmp_path / "d"), options=OPTS)
    assert live(s) == {}
    assert s.stats.recoveries == 0
    assert s.backend is not None
    s.close()


def test_close_reopen_roundtrip_preserves_everything(tmp_path):
    d = str(tmp_path / "d")
    s = open_store(d, options=OPTS, memtable_limit=8)
    expect = {}
    for i in range(100):
        k, v = b"k%04d" % i, b"v%d" % i
        s.put(k, v)
        expect[k] = v
    for i in range(0, 100, 3):
        k = b"k%04d" % i
        s.delete(k)
        expect.pop(k)
    s.close()
    s2 = open_store(d, options=OPTS, memtable_limit=8)
    assert s2.stats.recoveries == 1
    assert live(s2) == expect
    for k, v in expect.items():
        assert s2.get(k) == v
    s2.close()


def test_reopen_cycles_accumulate(tmp_path):
    d = str(tmp_path / "d")
    expect = {}
    for cycle in range(5):
        s = open_store(d, options=OPTS, memtable_limit=4)
        assert live(s) == expect
        for i in range(20):
            k = b"c%d-k%02d" % (cycle, i)
            s.put(k, b"v")
            expect[k] = b"v"
        s.close()
    s = open_store(d, options=OPTS, memtable_limit=4)
    assert live(s) == expect
    assert s.stats.recoveries == 1  # per-open counter on fresh stats
    s.close()


def test_memtable_only_store_survives_reopen(tmp_path):
    # close() does not flush: the memtable must come back via WAL replay
    d = str(tmp_path / "d")
    s = open_store(d, options=OPTS, memtable_limit=1000)
    s.put(b"only", b"in-wal")
    s.close()
    assert not os.path.isdir(os.path.join(d, "sst")) or not os.listdir(
        os.path.join(d, "sst")
    )
    s2 = open_store(d, options=OPTS, memtable_limit=1000)
    assert s2.get(b"only") == b"in-wal"
    s2.close()


def test_recovery_report_records_work(tmp_path):
    d = str(tmp_path / "d")
    s = open_store(d, options=OPTS, memtable_limit=8)
    for i in range(80):
        s.put(b"k%04d" % i, b"x" * 32)
    s.close()
    s2 = open_store(d, options=OPTS, memtable_limit=8)
    rep = s2.last_recovery
    assert rep.tables_loaded > 0
    assert rep.sst_bytes_loaded > 0
    assert rep.wal_bytes_scanned >= 0
    assert rep.manifest_edits > 0
    d2 = rep.as_dict()
    assert d2["tables_loaded"] == float(rep.tables_loaded)
    s2.close()


# ----------------------------------------------------- crash-path semantics


def test_crash_loses_only_unacked_writes(tmp_path):
    d = str(tmp_path / "d")
    s = open_store(d, options=DurabilityOptions(use_fsync=False, group_commit_records=1000),
                   memtable_limit=1000)
    s.put(b"acked", b"1")
    s.sync()
    s.put(b"unacked", b"2")  # buffered, never group-committed
    s.crash()
    s2 = open_store(d, options=OPTS, memtable_limit=1000)
    assert s2.get(b"acked") == b"1"
    assert s2.get(b"unacked") is None
    s2.close()


def test_flush_makes_writes_durable_without_sync(tmp_path):
    # a flush persists SSTables + manifest, so even unsynced WAL records
    # whose data reached tables survive a crash
    d = str(tmp_path / "d")
    s = open_store(d, options=DurabilityOptions(use_fsync=False, group_commit_records=1000),
                   memtable_limit=4)
    for i in range(8):  # two flushes
        s.put(b"k%d" % i, b"v")
    s.crash()
    s2 = open_store(d, options=OPTS)
    for i in range(8):
        assert s2.get(b"k%d" % i) == b"v"
    s2.close()


def test_orphan_sstable_is_ignored(tmp_path):
    d = str(tmp_path / "d")
    s = open_store(d, options=OPTS, memtable_limit=4)
    for i in range(10):
        s.put(b"k%d" % i, b"v")
    s.close()
    # simulate a crash between persist_run (1) and manifest commit (2):
    # an .sst file exists that no manifest edit references
    from repro.durability.sstable_io import sstable_path, write_sstable

    orphan = sstable_path(os.path.join(d, "sst"), 9999)
    write_sstable(orphan, [(b"ghost", b"boo")], use_fsync=False)
    s2 = open_store(d, options=OPTS, memtable_limit=4)
    assert s2.get(b"ghost") is None
    s2.close()


def test_corrupt_live_sstable_raises_typed(tmp_path):
    d = str(tmp_path / "d")
    s = open_store(d, options=OPTS, memtable_limit=4)
    for i in range(30):
        s.put(b"k%04d" % i, b"x" * 16)
    s.close()
    sst_dir = os.path.join(d, "sst")
    victim = sorted(os.listdir(sst_dir))[0]
    path = os.path.join(sst_dir, victim)
    blob = bytearray(open(path, "rb").read())
    blob[len(blob) // 2] ^= 0xFF
    open(path, "wb").write(bytes(blob))
    with pytest.raises(SSTableCorruptionError):
        open_store(d, options=OPTS, memtable_limit=4)


def test_deep_compaction_state_survives_reopen(tmp_path):
    d = str(tmp_path / "d")
    s = open_store(d, options=OPTS, memtable_limit=4, runs_per_guard=2,
                   level0_limit=2, max_levels=4)
    expect = {}
    for i in range(400):
        k = b"k%05d" % i
        s.put(k, b"v%d" % i)
        expect[k] = b"v%d" % i
    for i in range(0, 100):
        k = b"k%05d" % i
        s.delete(k)
        expect.pop(k)
    assert s.stats.compactions > 0
    s.close()
    s2 = open_store(d, options=OPTS, memtable_limit=4, runs_per_guard=2,
                    level0_limit=2, max_levels=4)
    assert live(s2) == expect
    # guard structure came back too: reads don't devolve into full scans
    assert any(s2.levels[lv] for lv in range(1, s2.max_levels))
    s2.close()


# ------------------------------------- the invariant: crash at ANY offset


def test_recovery_exact_at_every_truncation_offset(tmp_path):
    """Truncate the (only) WAL segment at every byte offset; recovery must
    surface exactly the records whose frames are fully inside the prefix."""
    d = str(tmp_path / "origin")
    s = open_store(d, options=DurabilityOptions(use_fsync=False, group_commit_records=1),
                   memtable_limit=10_000)  # everything stays in the WAL
    writes = []
    for i in range(12):
        k, v = b"key%02d" % i, b"val%02d" % i
        s.put(k, v)
        writes.append((k, v))
    s.close()
    segs = scan_segments(os.path.join(d, "wal"))
    assert len(segs) == 1
    seg_path_rel = os.path.relpath(segs[0].path, d)
    full = open(segs[0].path, "rb").read()

    # frame boundaries: header, then one frame per record
    bounds = [_SEG_HEADER.size]
    for k, v in writes:
        from repro.durability.wal import REC_PUT

        bounds.append(bounds[-1] + len(encode_record(REC_PUT, k, v)))
    assert bounds[-1] == len(full)

    for cut in range(len(full) + 1):
        work = str(tmp_path / "work")
        if os.path.exists(work):
            shutil.rmtree(work)
        shutil.copytree(d, work)
        with open(os.path.join(work, seg_path_rel), "r+b") as f:
            f.truncate(cut)
        # number of records fully contained in the first `cut` bytes
        n_ok = sum(1 for b in bounds[1:] if b <= cut)
        s2 = open_store(work, options=OPTS, memtable_limit=10_000)
        assert live(s2) == dict(writes[:n_ok]), f"cut at byte {cut}"
        # recovery may continue appending: the store stays writable
        s2.put(b"after", b"crash")
        assert s2.get(b"after") == b"crash"
        s2.close()


def test_recovery_truncates_torn_tail_in_place(tmp_path):
    d = str(tmp_path / "d")
    s = open_store(d, options=DurabilityOptions(use_fsync=False, group_commit_records=1),
                   memtable_limit=1000)
    for i in range(5):
        s.put(b"k%d" % i, b"v")
    s.close()
    seg = scan_segments(os.path.join(d, "wal"))[0]
    size = os.path.getsize(seg.path)
    with open(seg.path, "r+b") as f:
        f.truncate(size - 2)
    s2 = open_store(d, options=OPTS, memtable_limit=1000)
    assert s2.last_recovery.torn_tail
    assert len(live(s2)) == 4
    s2.close()
    # the torn bytes are gone from disk: a third open sees a clean log
    s3 = open_store(d, options=OPTS, memtable_limit=1000)
    assert not s3.last_recovery.torn_tail
    assert len(live(s3)) == 4
    s3.close()


# -------------------------------------------------------------- inspection


def test_inspect_data_dir_summary(tmp_path):
    d = str(tmp_path / "d")
    s = open_store(d, options=OPTS, memtable_limit=8)
    for i in range(40):
        s.put(b"k%04d" % i, b"x" * 16)
    s.close()
    info = inspect_data_dir(d)
    assert info["data_dir"] == d
    assert info["manifest_edits"] > 0
    assert info["live_tables"] > 0
    assert info["sst_bytes"] > 0
    assert info["wal_last_lsn"] == 40
    assert info["torn_tail"] is False
    # inspection is read-only: a second call sees identical state
    assert inspect_data_dir(d) == info


def test_inspect_empty_dir_raises_typed(tmp_path):
    with pytest.raises(ManifestError):
        inspect_data_dir(str(tmp_path))


def test_lsmstore_open_classmethod_delegates(tmp_path):
    d = str(tmp_path / "d")
    s = LSMStore.open(d, options=OPTS)
    s.put(b"a", b"1")
    s.close()
    s2 = LSMStore.open(d, options=OPTS)
    assert s2.get(b"a") == b"1"
    s2.close()
