"""Property-based tests (hypothesis) on core data-structure invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import PartitionMap, imbalance_factor
from repro.kvstore import LSMStore
from repro.namespace import ROOT_INO, NamespaceTree

SET = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ------------------------------------------------------------- namespace ops


@st.composite
def tree_operations(draw):
    """A random sequence of namespace mutations (by construction valid)."""
    n = draw(st.integers(1, 60))
    ops = []
    for i in range(n):
        kind = draw(st.sampled_from(["mkdir", "create", "remove", "rename"]))
        ops.append((kind, draw(st.integers(0, 10**6)), f"e{i}"))
    return ops


def apply_ops(ops):
    tree = NamespaceTree()
    dirs = [ROOT_INO]
    files = []
    for kind, pick, name in ops:
        if kind == "mkdir":
            parent = dirs[pick % len(dirs)]
            dirs.append(tree.create_dir(parent, name))
        elif kind == "create":
            parent = dirs[pick % len(dirs)]
            files.append(tree.create_file(parent, name))
        elif kind == "remove" and files:
            ino = files.pop(pick % len(files))
            tree.remove(ino)
        elif kind == "rename" and files:
            ino = files[pick % len(files)]
            dest = dirs[pick % len(dirs)]
            try:
                tree.rename(ino, dest, name + "_r")
            except FileExistsError:
                pass
    return tree, dirs


@given(tree_operations())
@SET
def test_tree_internal_consistency_under_random_mutations(ops):
    tree, _ = apply_ops(ops)
    tree.validate()  # asserts all counters/links/depths


@given(tree_operations())
@SET
def test_path_roundtrip_for_every_live_inode(ops):
    tree, _ = apply_ops(ops)
    for ino in range(tree.capacity):
        if not tree.is_alive(ino):
            continue
        assert tree.lookup(tree.path_of(ino)) == ino


@given(tree_operations())
@SET
def test_dfs_index_intervals_partition_the_dirs(ops):
    tree, _ = apply_ops(ops)
    idx = tree.dfs_index()
    # preorder positions are a permutation of 0..num_dirs-1
    tins = sorted(int(idx.tin[d]) for d in tree.iter_dirs())
    assert tins == list(range(tree.num_dirs))
    # child intervals nest strictly inside parents
    for d in tree.iter_dirs():
        if d == ROOT_INO:
            continue
        p = tree.parent(d)
        assert idx.tin[p] < idx.tin[d]
        assert idx.tout[d] <= idx.tout[p]


@given(tree_operations(), st.integers(2, 5), st.data())
@SET
def test_partition_subtree_migration_invariants(ops, n_mds, data):
    tree, dirs = apply_ops(ops)
    pmap = PartitionMap(tree, n_mds=n_mds)
    live_dirs = [d for d in tree.iter_dirs()]
    n_moves = data.draw(st.integers(0, 6))
    for _ in range(n_moves):
        root = data.draw(st.sampled_from(live_dirs))
        dst = data.draw(st.integers(0, n_mds - 1))
        pmap.migrate_subtree(root, dst)
        # after the move the whole subtree is uniformly owned by dst
        for d in tree.iter_subtree_dirs(root):
            assert pmap.owner(d) == dst
    # every live dir has a valid owner; dead inos have none
    arr = pmap.owner_array()
    for ino in range(tree.capacity):
        if tree.is_alive(ino) and tree.is_dir(ino):
            assert 0 <= arr[ino] < n_mds
        else:
            assert arr[ino] == -1
    # ownership accounting is conserved
    assert pmap.dirs_per_mds().sum() == tree.num_dirs


@given(st.lists(st.floats(0, 1e6), min_size=1, max_size=20))
@SET
def test_imbalance_factor_bounds(loads):
    v = imbalance_factor(loads)
    assert 0.0 <= v <= 1.0 + 1e-12


@given(st.lists(st.floats(0.1, 1e6), min_size=2, max_size=12), st.floats(1.01, 3.0))
@SET
def test_imbalance_factor_scaling_invariant(loads, k):
    assert imbalance_factor(loads) == pytest.approx(
        imbalance_factor([x * k for x in loads])
    )


# ------------------------------------------------------------------ lsm store


@st.composite
def kv_commands(draw):
    n = draw(st.integers(1, 120))
    cmds = []
    for _ in range(n):
        kind = draw(st.sampled_from(["put", "put", "put", "delete", "overwrite"]))
        key = draw(st.integers(0, 40))
        cmds.append((kind, key, draw(st.integers(0, 10**9))))
    return cmds


@given(kv_commands(), st.integers(2, 16))
@SET
def test_lsm_matches_dict_model(cmds, memtable_limit):
    store = LSMStore(memtable_limit=memtable_limit, runs_per_guard=2, level0_limit=2)
    model = {}
    known = set()
    for kind, key, val in cmds:
        k = b"k%04d" % key
        known.add(k)
        if kind == "delete":
            store.delete(k)
            model.pop(k, None)
        else:
            v = b"v%d" % val
            store.put(k, v)
            model[k] = v
    for k in known:
        assert store.get(k) == model.get(k)
    assert dict(store.scan(b"", b"z")) == model


@st.composite
def kv_durable_commands(draw):
    """put/delete traffic interleaved with clean closes and simulated
    crashes (every append is group-committed, so a crash loses nothing
    acknowledged and the dict model stays exact)."""
    n = draw(st.integers(1, 80))
    cmds = []
    for _ in range(n):
        kind = draw(
            st.sampled_from(["put", "put", "put", "delete", "reopen", "crash"])
        )
        cmds.append((kind, draw(st.integers(0, 30)), draw(st.integers(0, 10**9))))
    return cmds


@given(kv_durable_commands(), st.integers(2, 12))
@settings(
    max_examples=30,  # each example does real file IO
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_durable_lsm_matches_dict_model_across_reopens(cmds, memtable_limit):
    import tempfile

    from repro.durability import DurabilityOptions, open_store

    opts = DurabilityOptions(use_fsync=False, group_commit_records=1, segment_bytes=1024)
    with tempfile.TemporaryDirectory() as d:
        store = open_store(d, options=opts, memtable_limit=memtable_limit)
        model = {}
        known = set()
        for kind, key, val in cmds:
            k = b"k%04d" % key
            if kind == "reopen":
                store.close()
                store = open_store(d, options=opts, memtable_limit=memtable_limit)
            elif kind == "crash":
                store.crash()
                store = open_store(d, options=opts, memtable_limit=memtable_limit)
            elif kind == "delete":
                known.add(k)
                store.delete(k)
                model.pop(k, None)
            else:
                known.add(k)
                v = b"v%d" % val
                store.put(k, v)
                model[k] = v
        for k in known:
            assert store.get(k) == model.get(k)
        assert dict(store.scan(b"", b"z")) == model
        store.close()


@given(kv_commands())
@SET
def test_lsm_scan_always_sorted(cmds):
    store = LSMStore(memtable_limit=4)
    for kind, key, val in cmds:
        k = b"k%04d" % key
        if kind == "delete":
            store.delete(k)
        else:
            store.put(k, b"v%d" % val)
    keys = [k for k, _ in store.scan(b"", b"z")]
    assert keys == sorted(keys)
    assert len(keys) == len(set(keys))


# ------------------------------------------------------------ fault schedules

SIM_SET = settings(
    max_examples=12,  # each example is a full (small) DES run
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_N_MDS = 3


@st.composite
def fault_schedules(draw):
    """Arbitrary (but servable) fault schedules for a 3-MDS cluster."""
    from repro.fs.faults import (
        Crash,
        FaultSchedule,
        Partition,
        RetryPolicy,
        RpcDelay,
        RpcDrop,
        Slowdown,
    )

    events = []
    for _ in range(draw(st.integers(0, 4))):
        kind = draw(st.sampled_from(["slowdown", "crash", "drop", "delay", "partition"]))
        start = draw(st.floats(0.0, 60.0, allow_nan=False, allow_infinity=False))
        length = draw(st.floats(0.5, 40.0, allow_nan=False, allow_infinity=False))
        end = start + length
        if kind == "crash":
            # crashes stay off MDS 2 so the cluster is always servable
            mds = draw(st.integers(0, 1))
            events.append(
                Crash(
                    mds=mds,
                    start_ms=start,
                    end_ms=end,
                    warmup_ms=draw(st.floats(0.0, 10.0)),
                    warmup_factor=draw(st.floats(1.0, 4.0)),
                )
            )
            continue
        mds = draw(st.integers(0, _N_MDS - 1))
        if kind == "slowdown":
            events.append(
                Slowdown(mds=mds, start_ms=start, end_ms=end, factor=draw(st.floats(1.0, 6.0)))
            )
        elif kind == "drop":
            events.append(
                RpcDrop(mds=mds, start_ms=start, end_ms=end, probability=draw(st.floats(0.05, 0.9)))
            )
        elif kind == "delay":
            events.append(
                RpcDelay(mds=mds, start_ms=start, end_ms=end, extra_ms=draw(st.floats(0.01, 0.5)))
            )
        else:
            events.append(Partition(mds=mds, start_ms=start, end_ms=end))
    retry = RetryPolicy(
        max_attempts=draw(st.integers(2, 6)),
        backoff_base_ms=draw(st.floats(0.05, 0.5)),
        backoff_max_ms=draw(st.floats(1.0, 5.0)),
        jitter=draw(st.floats(0.0, 1.0)),
    )
    return FaultSchedule(events, retry=retry)


def _run_faulty(schedule, seed):
    from repro.balancers import LunulePolicy
    from repro.costmodel import CostParams
    from repro.fs import SimConfig, run_simulation
    from repro.obs import Observability
    from repro.obs.tracing import JsonlTracer
    from repro.sim import SeedSequenceFactory
    from repro.workloads import generate_trace_rw

    built, trace = generate_trace_rw(SeedSequenceFactory(seed).stream("w"), n_ops=500)
    obs = Observability(tracer=JsonlTracer(None))
    cfg = SimConfig(
        n_mds=_N_MDS,
        n_clients=6,
        epoch_ms=15.0,
        params=CostParams(cache_depth=2),
        seed=seed,
        faults=schedule,
        obs=obs,
    )
    result = run_simulation(built.tree, trace, LunulePolicy(), cfg)
    return result, len(trace), obs.tracer.spans


@given(fault_schedules(), st.integers(0, 3))
@SIM_SET
def test_no_op_is_ever_lost_under_any_schedule(schedule, seed):
    """The zero-lost-ops invariant: under ANY fault schedule, every issued
    op completes, fails typed, or vanishes under a namespace race."""
    result, n_ops, spans = _run_faulty(schedule, seed)
    d = result.to_dict()
    assert d["ops_completed"] + d["fault_failed_ops"] + d["vanished_ops"] == n_ops
    assert len(spans) == n_ops
    # fault bookkeeping agrees with the result
    assert d["faults"]["ops_failed"] == d["fault_failed_ops"]


@given(fault_schedules(), st.integers(0, 3))
@SIM_SET
def test_span_identity_holds_under_faults(schedule, seed):
    """queue + service + net + fault_wait == latency, exactly, per span —
    fault waits (timeouts, backoff, aborted holds) never leak time."""
    result, n_ops, spans = _run_faulty(schedule, seed)
    for s in spans:
        d = s.to_dict()
        components = d["queue_ms"] + d["service_ms"] + d["net_ms"] + d["fault_wait_ms"]
        assert components == pytest.approx(d["latency_ms"], rel=1e-9, abs=1e-12)
        # failed spans carry a typed reason; successful ones carry none
        if d["failed"]:
            assert d["fault"] in (
                "vanished", "mds_down", "service_aborted", "rpc_timeout",
                "rpc_dropped", "retries_exhausted",
            )
        else:
            assert d["fault"] == ""
        assert d["retries"] >= d["failovers"] >= 0


@given(fault_schedules(), st.integers(0, 3))
@SIM_SET
def test_virtual_time_monotone_under_faults(schedule, seed):
    """Spans never run backwards and the run's duration bounds them all."""
    result, n_ops, spans = _run_faulty(schedule, seed)
    for s in spans:
        assert s.end_ms >= s.start_ms >= 0.0
    assert result.duration_ms == pytest.approx(max(s.end_ms for s in spans))
