"""Regenerate the hot-path equivalence fixtures.

    PYTHONPATH=src python tests/golden_hotpath/capture.py

IMPORTANT: these fixtures are the pre-optimization reference. They must
only be regenerated when a change is *intended* to alter simulation
behavior (and says so in its changelog); a hot-path/performance PR must
leave every fixture byte-identical.
"""

from __future__ import annotations

import json
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))

from matrix import BENCH_CELL, CELLS, run_bench_cell, run_cell  # noqa: E402


def main() -> None:
    for name in CELLS:
        payload = run_cell(name)
        out = HERE / f"{name}.json"
        out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"captured {out.name}: {payload['result']['engine_events']} events, "
              f"{payload['n_spans']} spans, {payload['n_windows']} windows")
    payload = run_bench_cell()
    out = HERE / f"{BENCH_CELL}.json"
    out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"captured {out.name}: {payload['n_runs']} bench runs")


if __name__ == "__main__":
    main()
