"""The differential-equivalence cell matrix for the hot-path golden suite.

Shared by ``capture.py`` (regenerates the fixtures) and
``tests/test_hotpath_equivalence.py`` (asserts fresh runs match them), so
both sides execute the *same* code path — the only difference is whether
the captured dict is written to disk or compared against it.

Each cell runs one small simulation with full observability (in-memory
span tracer + windowed timeline) and reduces every deterministic output to
a JSON-stable form:

* the full ``SimResult.to_dict()`` minus the volatile wall-clock keys;
* a SHA-256 over the canonical JSON of every finished span;
* the timeline meta plus a SHA-256 over the canonical JSON of its windows;
* (one dedicated cell) a benchmark artifact with its volatile sections and
  machine fingerprint stripped, reduced to a SHA-256.

The fixtures were captured BEFORE the hot-path optimization landed, so a
pass proves the optimized simulator is bit-identical to the pre-change
build in every deterministic output, across seeds × workloads ×
{healthy, faults, durability}.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from typing import Any, Dict

#: run shape — small enough for CI, large enough to cross several epochs,
#: exercise migrations, and (fault cells) straddle a crash + restart
N_OPS = 2500
N_MDS = 3
N_CLIENTS = 12
EPOCH_MS = 60.0
CACHE_DEPTH = 2

#: SimResult keys that are wall-clock (machine-speed) measurements
VOLATILE_RESULT_KEYS = ("wall_s", "engine_events_per_wall_sec")

#: cell name -> (workload kind, seed, config flavor)
CELLS = {
    "healthy_rw_seed0": ("rw", 0, "healthy"),
    "healthy_rw_seed1": ("rw", 1, "healthy"),
    "healthy_ro_seed0": ("ro", 0, "healthy"),
    "healthy_ro_seed1": ("ro", 1, "healthy"),
    "healthy_wi_seed0": ("wi", 0, "healthy"),
    "healthy_wi_seed1": ("wi", 1, "healthy"),
    "faults_rw_seed0": ("rw", 0, "faults"),
    "faults_rw_seed1": ("rw", 1, "faults"),
    "faults_wi_seed0": ("wi", 0, "faults"),
    "durability_wi_seed0": ("wi", 0, "durability"),
    "durability_rw_seed1": ("rw", 1, "durability"),
}

#: the dedicated bench-artifact cell (runs through repro.bench end to end)
BENCH_CELL = "bench_artifact"
BENCH_SCENARIO_NAME = "hotpath_equiv_micro"


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def fault_schedule():
    """A deterministic schedule landing inside a ~100-virtual-ms run."""
    from repro.fs.faults import Crash, FaultSchedule, RpcDelay, Slowdown

    return FaultSchedule(
        events=[
            Crash(mds=0, start_ms=30.0, end_ms=60.0, warmup_ms=10.0, warmup_factor=2.0),
            Slowdown(mds=1, start_ms=20.0, end_ms=50.0, factor=3.0),
            RpcDelay(mds=2, start_ms=25.0, end_ms=45.0, extra_ms=0.02),
        ]
    )


def run_cell(name: str) -> Dict[str, Any]:
    """Execute one matrix cell and reduce it to its comparable form."""
    from repro.balancers import LunulePolicy
    from repro.costmodel import CostParams
    from repro.fs import SimConfig, run_simulation
    from repro.harness.experiments import build_workload
    from repro.obs import Observability

    kind, seed, flavor = CELLS[name]
    built, trace = build_workload(kind, N_OPS, seed)
    obs = Observability(
        trace=True,  # in-memory tracer: spans retained, no file
        timeline=True,
        timeline_window_ms=EPOCH_MS / 5.0,
    )
    with tempfile.TemporaryDirectory(prefix="repro-hotpath-golden-") as scratch:
        config = SimConfig(
            n_mds=N_MDS,
            n_clients=N_CLIENTS,
            epoch_ms=EPOCH_MS,
            params=CostParams(cache_depth=CACHE_DEPTH),
            seed=seed,
            obs=obs,
            faults=fault_schedule() if flavor == "faults" else None,
            data_dir=f"{scratch}/stores" if flavor == "durability" else None,
        )
        result = run_simulation(built.tree, trace, LunulePolicy(), config)

    result_dict = result.to_dict()
    for key in VOLATILE_RESULT_KEYS:
        result_dict.pop(key, None)

    span_lines = [_canonical(s.to_dict()) for s in obs.tracer.spans]
    timeline_rows = obs.timeline.to_rows()
    return {
        "cell": name,
        "result": result_dict,
        "n_spans": len(span_lines),
        "spans_sha256": _sha256("\n".join(span_lines)),
        "timeline_meta": obs.timeline.meta(),
        "n_windows": len(timeline_rows),
        "timeline_sha256": _sha256("\n".join(_canonical(r) for r in timeline_rows)),
    }


def _ensure_bench_scenario():
    """Register (idempotently) the tiny scenario the bench cell runs."""
    from repro.bench.scenario import (
        BenchScenario,
        BenchVariant,
        get_scenario,
        register_scenario,
    )

    try:
        return get_scenario(BENCH_SCENARIO_NAME)
    except KeyError:
        pass
    scn = BenchScenario(
        name=BENCH_SCENARIO_NAME,
        description="micro scenario backing the hot-path equivalence fixture",
        kind="rw",
        variants=(
            BenchVariant(
                name="lunule", strategy="Lunule", n_mds=3, n_clients=12,
                ops_factor=0.2,
            ),
            BenchVariant(
                name="chash", strategy="C-Hash", n_mds=3, n_clients=12,
                ops_factor=0.2,
            ),
        ),
        seeds=(0,),
        scale="smoke",
        tags=("equivalence",),
    )
    register_scenario(scn)
    return scn


def run_bench_cell() -> Dict[str, Any]:
    """Run the micro bench scenario and reduce its deterministic core."""
    from repro.bench.runner import run_scenario
    from repro.bench.store import strip_volatile

    scn = _ensure_bench_scenario()
    artifact = strip_volatile(run_scenario(scn, workers=1))
    canon = _canonical(artifact)
    return {
        "cell": BENCH_CELL,
        "n_runs": len(artifact["runs"]),
        "artifact_sha256": _sha256(canon),
        # the headline rates are kept in the clear so a digest mismatch
        # still shows *what* moved without rerunning by hand
        "engine_events": {
            r["variant"]: r["metrics"]["engine_events"] for r in artifact["runs"]
        },
    }
