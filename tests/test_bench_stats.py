"""Aggregate statistics: percentiles, bootstrap CIs, per-variant grouping."""

import pytest

from repro.bench.stats import aggregate_runs, summarize


def test_summarize_fields_and_values():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s["n"] == 4.0
    assert s["mean"] == pytest.approx(2.5)
    assert s["min"] == 1.0 and s["max"] == 4.0
    assert s["p50"] == pytest.approx(2.5)
    assert s["p99"] <= s["max"]
    assert s["ci95_lo"] <= s["mean"] <= s["ci95_hi"]
    assert s["ci95_lo"] >= s["min"] and s["ci95_hi"] <= s["max"]


def test_summarize_single_sample_degenerates():
    s = summarize([7.0])
    assert s["mean"] == s["p50"] == s["ci95_lo"] == s["ci95_hi"] == 7.0
    assert s["std"] == 0.0


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_bootstrap_is_deterministic_per_stream_name():
    a = summarize([1.0, 2.0, 5.0], stream_name="s1")
    b = summarize([1.0, 2.0, 5.0], stream_name="s1")
    assert a == b
    c = summarize([1.0, 2.0, 5.0], stream_name="s2")
    # different stream, same data: same point stats, (almost surely) shifted CI
    assert c["mean"] == a["mean"]


def test_aggregate_runs_groups_by_variant_and_intersects_metrics():
    runs = [
        {"variant": "a", "seed": 1, "metrics": {"x": 1.0, "only1": 5.0}},
        {"variant": "a", "seed": 2, "metrics": {"x": 3.0}},
        {"variant": "b", "seed": 1, "metrics": {"x": 10.0}},
    ]
    agg = aggregate_runs(runs, "scn")
    assert set(agg) == {"a", "b"}
    # metrics missing from any seed of a variant are dropped, not zero-filled
    assert set(agg["a"]) == {"x"}
    assert agg["a"]["x"]["mean"] == pytest.approx(2.0)
    assert agg["b"]["x"]["n"] == 1.0
