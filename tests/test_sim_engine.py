"""Unit tests for the DES kernel: events, ordering, timeouts, run horizon."""

import pytest

from repro.sim import Environment, Interrupt


def test_timeout_fires_at_delay():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(5.0)
        seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == [5.0]


def test_timeout_value_passed_through():
    env = Environment()
    got = []

    def proc():
        v = yield env.timeout(1.0, value="payload")
        got.append(v)

    env.process(proc())
    env.run()
    assert got == ["payload"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_same_time_events_fifo_order():
    env = Environment()
    order = []

    def make(tag):
        def proc():
            yield env.timeout(3.0)
            order.append(tag)

        return proc

    for tag in range(10):
        env.process(make(tag)())
    env.run()
    assert order == list(range(10))


def test_run_until_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10.0)

    env.process(proc())
    env.run(until=35.0)
    assert env.now == 35.0


def test_run_until_past_raises():
    env = Environment()
    env.run(until=0.0)
    with pytest.raises(ValueError):
        env.run(until=-1.0)


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        v = yield ev
        got.append((env.now, v))

    def firer():
        yield env.timeout(7.0)
        ev.succeed(42)

    env.process(waiter())
    env.process(firer())
    env.run()
    assert got == [(7.0, 42)]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_failed_event_raises_in_waiter():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as e:
            caught.append(str(e))

    def firer():
        yield env.timeout(1.0)
        ev.fail(ValueError("boom"))

    env.process(waiter())
    env.process(firer())
    env.run()
    assert caught == ["boom"]


def test_failed_event_without_waiter_propagates():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("unobserved"))
    with pytest.raises(RuntimeError, match="unobserved"):
        env.run()


def test_process_is_event_fork_join():
    env = Environment()
    results = []

    def child(n):
        yield env.timeout(n)
        return n * 10

    def parent():
        c1 = env.process(child(3))
        c2 = env.process(child(5))
        r1 = yield c1
        r2 = yield c2
        results.append((r1, r2, env.now))

    env.process(parent())
    env.run()
    assert results == [(30, 50, 5.0)]


def test_wait_on_already_processed_event():
    env = Environment()
    results = []

    def child():
        yield env.timeout(1.0)
        return "done"

    def parent():
        c = env.process(child())
        yield env.timeout(10.0)
        # child finished long ago; waiting must resume immediately
        v = yield c
        results.append((v, env.now))

    env.process(parent())
    env.run()
    assert results == [("done", 10.0)]


def test_all_of_collects_values():
    env = Environment()
    results = []

    def child(n):
        yield env.timeout(n)
        return n

    def parent():
        kids = [env.process(child(n)) for n in (4.0, 2.0, 6.0)]
        vals = yield env.all_of(kids)
        results.append((vals, env.now))

    env.process(parent())
    env.run()
    assert results == [([4.0, 2.0, 6.0], 6.0)]


def test_any_of_returns_first():
    env = Environment()
    results = []

    def child(n):
        yield env.timeout(n)
        return n

    def parent():
        kids = [env.process(child(n)) for n in (4.0, 2.0, 6.0)]
        v = yield env.any_of(kids)
        results.append((v, env.now))

    env.process(parent())
    env.run()
    assert results == [(2.0, 2.0)]


def test_all_of_empty_fires_immediately():
    env = Environment()
    results = []

    def parent():
        vals = yield env.all_of([])
        results.append(vals)

    env.process(parent())
    env.run()
    assert results == [[]]


def test_interrupt_raises_in_target():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100.0)
            log.append("completed")
        except Interrupt as i:
            log.append(("interrupted", i.cause, env.now))

    def interrupter(target):
        yield env.timeout(5.0)
        target.interrupt(cause="deadline")

    t = env.process(sleeper())
    env.process(interrupter(t))
    env.run()
    assert log == [("interrupted", "deadline", 5.0)]


def test_interrupt_terminated_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    p = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_yield_non_event_type_error():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(TypeError):
        env.run()


def test_event_counter_and_peek():
    env = Environment()

    def proc():
        yield env.timeout(2.0)
        yield env.timeout(2.0)

    env.process(proc())
    assert env.peek() == 0.0  # bootstrap event
    env.run()
    assert env.events_processed >= 3
    assert env.peek() == float("inf")


def test_deterministic_replay():
    def run_once():
        env = Environment()
        trace = []

        def worker(tag, delays):
            for d in delays:
                yield env.timeout(d)
                trace.append((tag, env.now))

        env.process(worker("a", [1.0, 3.0, 2.0]))
        env.process(worker("b", [2.0, 2.0, 2.0]))
        env.run()
        return trace

    assert run_once() == run_once()
