"""Recovery fuzzing: random truncation/corruption of a data directory.

Every trial builds a durable store from a random op sequence, damages the
directory at random (WAL truncation, byte flips in WAL/SSTable/MANIFEST,
file deletion), then attempts recovery and asserts the two-sided contract:

* pure truncation of the WAL tail must SUCCEED and surface exactly an
  acknowledged prefix of the op sequence (the acked-prefix invariant);
* any other damage either succeeds with a consistent prefix state or
  raises a *typed* :class:`DurabilityError` — never a raw ``struct.error``,
  ``KeyError``, ``JSONDecodeError`` or friends.

The CI recovery-fuzz job sweeps ``REPRO_FUZZ_SEED`` over a seed matrix;
``REPRO_FUZZ_TRIALS`` scales the per-seed trial count.
"""

import os
import shutil

import numpy as np
import pytest

from repro.durability import DurabilityOptions, open_store
from repro.durability.errors import DurabilityError
from repro.durability.wal import scan_segments

SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))
N_TRIALS = int(os.environ.get("REPRO_FUZZ_TRIALS", "40"))

#: group_commit_records=1 acknowledges every append, so the model state
#: after op k IS the durable state at LSN k — prefix checking stays exact
OPTS = DurabilityOptions(use_fsync=False, group_commit_records=1, segment_bytes=2048)

KEYS = [b"key%02d" % i for i in range(24)]


def _build(rng, data_dir):
    """Random put/delete sequence; returns the model state after each op."""
    store = open_store(data_dir, options=OPTS, memtable_limit=int(rng.integers(4, 32)))
    model = {}
    states = [dict(model)]
    for _ in range(int(rng.integers(40, 160))):
        key = KEYS[int(rng.integers(len(KEYS)))]
        if rng.random() < 0.25:
            store.delete(key)
            model.pop(key, None)
        else:
            val = b"v%d" % int(rng.integers(10**9))
            store.put(key, val)
            model[key] = val
        states.append(dict(model))
    store.close()
    return states


def _recovered_state(data_dir):
    s = open_store(data_dir, options=OPTS)
    state = dict(s.scan(b"", b"\xff" * 8))
    # the recovered store must stay usable
    s.put(b"post-recovery", b"ok")
    assert s.get(b"post-recovery") == b"ok"
    s.close()
    return state


def _all_files(data_dir):
    out = []
    for root, _, names in os.walk(data_dir):
        for n in names:
            out.append(os.path.join(root, n))
    return sorted(out)


def _damage(rng, data_dir):
    """Apply one random mutation; returns True when it was a pure WAL-tail
    truncation (the case where recovery MUST succeed)."""
    kind = rng.choice(["truncate_wal", "flip_wal", "flip_sst", "flip_manifest", "drop_file"])
    wal_dir = os.path.join(data_dir, "wal")
    if kind == "truncate_wal":
        seg = scan_segments(wal_dir)[-1]  # the unsealed final segment
        size = os.path.getsize(seg.path)
        with open(seg.path, "r+b") as f:
            f.truncate(int(rng.integers(0, size + 1)))
        return True
    if kind == "flip_wal":
        seg = scan_segments(wal_dir)[int(rng.integers(len(scan_segments(wal_dir))))]
        path = seg.path
    elif kind == "flip_sst":
        sst_dir = os.path.join(data_dir, "sst")
        ssts = sorted(os.listdir(sst_dir)) if os.path.isdir(sst_dir) else []
        if not ssts:
            return False
        path = os.path.join(sst_dir, ssts[int(rng.integers(len(ssts)))])
    elif kind == "flip_manifest":
        path = os.path.join(data_dir, "MANIFEST")
    else:  # drop_file
        files = _all_files(data_dir)
        os.unlink(files[int(rng.integers(len(files)))])
        return False
    blob = bytearray(open(path, "rb").read())
    if not blob:
        return False
    blob[int(rng.integers(len(blob)))] ^= 1 << int(rng.integers(8))
    open(path, "wb").write(bytes(blob))
    return False


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_recovery_survives_random_damage(tmp_path, trial):
    rng = np.random.default_rng([SEED, trial])
    origin = str(tmp_path / "origin")
    states = _build(rng, origin)
    work = str(tmp_path / "work")
    shutil.copytree(origin, work)

    must_succeed = _damage(rng, work)
    try:
        recovered = _recovered_state(work)
    except DurabilityError:
        assert not must_succeed, "WAL-tail truncation must never fail recovery"
        return
    # no other exception type is acceptable: a raw struct.error / KeyError /
    # JSONDecodeError escaping recovery fails this test at collection above
    assert recovered in states, (
        f"trial {trial}: recovered state is not any acknowledged prefix"
    )


def test_undamaged_control_recovers_final_state(tmp_path):
    rng = np.random.default_rng([SEED, 10**6])
    origin = str(tmp_path / "origin")
    states = _build(rng, origin)
    assert _recovered_state(origin) == states[-1]
