"""Unit tests for the namespace tree: mutations, lookup, DFS index, rollups."""

import numpy as np
import pytest

from repro.namespace import ROOT_INO, NamespaceTree


@pytest.fixture
def tree():
    t = NamespaceTree()
    # /a/b/c , /a/d , /e ; files under several
    a = t.create_dir(ROOT_INO, "a")
    b = t.create_dir(a, "b")
    c = t.create_dir(b, "c")
    d = t.create_dir(a, "d")
    e = t.create_dir(ROOT_INO, "e")
    t.create_file(c, "f1")
    t.create_file(c, "f2")
    t.create_file(e, "f3")
    return t


def test_counts(tree):
    assert tree.num_dirs == 6  # root + 5
    assert tree.num_files == 3
    assert len(tree) == 9


def test_lookup_and_path_roundtrip(tree):
    for path in ("/", "/a", "/a/b/c", "/a/d", "/e", "/a/b/c/f1"):
        ino = tree.lookup(path)
        assert tree.path_of(ino) == path if path != "/" else tree.path_of(ino) == "/"


def test_lookup_missing_raises(tree):
    with pytest.raises(KeyError):
        tree.lookup("/a/zzz")


def test_lookup_through_file_raises(tree):
    with pytest.raises(NotADirectoryError):
        tree.lookup("/e/f3/deeper")


def test_depth(tree):
    assert tree.depth(ROOT_INO) == 0
    assert tree.depth(tree.lookup("/a/b/c")) == 3
    assert tree.depth(tree.lookup("/a/b/c/f1")) == 4


def test_resolve_chain(tree):
    f1 = tree.lookup("/a/b/c/f1")
    chain = tree.resolve(f1)
    assert chain[0] == ROOT_INO
    assert chain[-1] == f1
    assert [tree.path_of(i) for i in chain] == ["/", "/a", "/a/b", "/a/b/c", "/a/b/c/f1"]


def test_ancestors(tree):
    c = tree.lookup("/a/b/c")
    assert [tree.path_of(i) for i in tree.ancestors(c)] == ["/a/b", "/a", "/"]


def test_duplicate_name_rejected(tree):
    a = tree.lookup("/a")
    with pytest.raises(FileExistsError):
        tree.create_dir(a, "b")
    with pytest.raises(FileExistsError):
        tree.create_file(a, "d")


def test_invalid_name_rejected(tree):
    with pytest.raises(ValueError):
        tree.create_dir(ROOT_INO, "has/slash")
    with pytest.raises(ValueError):
        tree.create_file(ROOT_INO, "")


def test_create_under_file_rejected(tree):
    f1 = tree.lookup("/a/b/c/f1")
    with pytest.raises(NotADirectoryError):
        tree.create_file(f1, "child")


def test_remove_file(tree):
    f1 = tree.lookup("/a/b/c/f1")
    tree.remove(f1)
    assert tree.try_lookup("/a/b/c/f1") is None
    assert tree.num_files == 2
    tree.validate()


def test_remove_nonempty_dir_rejected(tree):
    with pytest.raises(OSError):
        tree.remove(tree.lookup("/a"))


def test_remove_empty_dir(tree):
    d = tree.lookup("/a/d")
    tree.remove(d)
    assert tree.try_lookup("/a/d") is None
    assert tree.num_dirs == 5
    tree.validate()


def test_remove_root_rejected(tree):
    with pytest.raises(ValueError):
        tree.remove(ROOT_INO)


def test_makedirs_idempotent(tree):
    x = tree.makedirs("/a/b/new1/new2")
    assert tree.path_of(x) == "/a/b/new1/new2"
    again = tree.makedirs("/a/b/new1/new2")
    assert again == x
    tree.validate()


def test_rename_file(tree):
    f3 = tree.lookup("/e/f3")
    dst = tree.lookup("/a/d")
    tree.rename(f3, dst, "moved")
    assert tree.path_of(f3) == "/a/d/moved"
    assert tree.depth(f3) == 3
    assert tree.try_lookup("/e/f3") is None
    tree.validate()


def test_rename_dir_updates_depths(tree):
    b = tree.lookup("/a/b")
    e = tree.lookup("/e")
    tree.rename(b, e, "b2")
    assert tree.path_of(tree.lookup("/e/b2/c")) == "/e/b2/c"
    assert tree.depth(tree.lookup("/e/b2/c")) == 3
    f1 = tree.lookup("/e/b2/c/f1")
    assert tree.depth(f1) == 4
    tree.validate()


def test_rename_into_own_subtree_rejected(tree):
    a = tree.lookup("/a")
    c = tree.lookup("/a/b/c")
    with pytest.raises(ValueError):
        tree.rename(a, c, "loop")
    with pytest.raises(ValueError):
        tree.rename(a, a, "self")


def test_owning_dir(tree):
    f1 = tree.lookup("/a/b/c/f1")
    c = tree.lookup("/a/b/c")
    assert tree.owning_dir(f1) == c
    assert tree.owning_dir(c) == c


def test_child_counts(tree):
    a = tree.lookup("/a")
    c = tree.lookup("/a/b/c")
    assert tree.n_child_dirs(a) == 2
    assert tree.n_child_files(a) == 0
    assert tree.n_child_files(c) == 2


# ---------------------------------------------------------------- DFS index


def test_dfs_index_covers_all_dirs(tree):
    idx = tree.dfs_index()
    assert idx.order.shape[0] == tree.num_dirs
    assert idx.tin[ROOT_INO] == 0
    assert idx.tout[ROOT_INO] == tree.num_dirs


def test_dfs_contains(tree):
    idx = tree.dfs_index()
    a, b, c, e = (tree.lookup(p) for p in ("/a", "/a/b", "/a/b/c", "/e"))
    assert idx.contains(a, c)
    assert idx.contains(a, a)
    assert not idx.contains(a, e)
    assert not idx.contains(c, a)
    assert idx.contains(ROOT_INO, e)


def test_dfs_subtree_size(tree):
    idx = tree.dfs_index()
    a = tree.lookup("/a")
    assert idx.subtree_size(a) == 4  # a, b, c, d
    assert idx.subtree_size(ROOT_INO) == 6


def test_dfs_subtree_sum_matches_bruteforce(tree):
    idx = tree.dfs_index()
    vals = np.zeros(tree.capacity)
    rng = np.random.default_rng(0)
    for d in tree.iter_dirs():
        vals[d] = rng.random()
    rolled = idx.subtree_sum(vals)
    for d in tree.iter_dirs():
        brute = sum(vals[x] for x in tree.iter_subtree_dirs(d))
        assert abs(rolled[d] - brute) < 1e-9


def test_dfs_cache_invalidation(tree):
    idx1 = tree.dfs_index()
    assert tree.dfs_index() is idx1  # cached
    tree.create_dir(ROOT_INO, "newdir")
    idx2 = tree.dfs_index()
    assert idx2 is not idx1
    assert idx2.order.shape[0] == tree.num_dirs


def test_file_creation_does_not_invalidate(tree):
    idx1 = tree.dfs_index()
    tree.create_file(tree.lookup("/a"), "newfile")
    assert tree.dfs_index() is idx1


def test_dirs_in_subtree_preorder(tree):
    idx = tree.dfs_index()
    a = tree.lookup("/a")
    inos = idx.dirs_in_subtree(a)
    assert inos[0] == a
    assert set(inos) == set(tree.iter_subtree_dirs(a))


def test_dir_mask_and_arrays(tree):
    mask = tree.dir_mask()
    assert mask.sum() == tree.num_dirs
    depths = tree.depth_array()
    assert depths[ROOT_INO] == 0
    parents = tree.parent_array()
    assert parents[tree.lookup("/a/b")] == tree.lookup("/a")


def test_version_bumps_on_structure(tree):
    v = tree.version
    tree.create_file(tree.lookup("/a"), "x")
    assert tree.version == v  # files don't bump
    tree.create_dir(tree.lookup("/a"), "y")
    assert tree.version == v + 1


def test_validate_clean(tree):
    tree.validate()
