"""Property-based invariants for the elastic pool: arbitrary join/drain
schedules, interleaved with fault schedules, never lose an op and never
leak time out of a span."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fs.elastic import AutoscaleSpec, ScaleEvent

SIM_SET = settings(
    max_examples=12,  # each example is a full (small) DES run
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_N_MDS = 2  # initial pool; schedules may grow it to 5
_MAX_MDS = 5


@st.composite
def scale_schedules(draw):
    """Arbitrary scripted join/drain sequences over the first few epochs.

    The controller enforces the [min_mds, max_mds] bounds and never drains
    MDS 0, so any generated schedule is servable by construction.
    """
    events = []
    for epoch in range(draw(st.integers(1, 6))):
        action = draw(st.sampled_from(["join", "drain", "none"]))
        if action == "none":
            continue
        events.append(ScaleEvent(epoch, action, count=draw(st.integers(1, 2))))
    if not events:
        events.append(ScaleEvent(0, "join"))
    return AutoscaleSpec(
        policy="schedule",
        min_mds=1,
        max_mds=_MAX_MDS,
        warmup_ms=draw(st.floats(0.0, 10.0)),
        warmup_factor=draw(st.floats(1.0, 4.0)),
        events=tuple(events),
    )


@st.composite
def fault_schedules(draw):
    """Fault schedules that stay servable alongside any drain schedule:
    crashes hit only MDS 1 (MDS 0 anchors the pool and never drains)."""
    from repro.fs.faults import Crash, FaultSchedule, RpcDelay, Slowdown

    events = []
    for _ in range(draw(st.integers(0, 3))):
        kind = draw(st.sampled_from(["slowdown", "crash", "delay"]))
        start = draw(st.floats(0.0, 60.0, allow_nan=False, allow_infinity=False))
        end = start + draw(st.floats(0.5, 40.0, allow_nan=False, allow_infinity=False))
        if kind == "crash":
            events.append(
                Crash(mds=1, start_ms=start, end_ms=end,
                      warmup_ms=draw(st.floats(0.0, 10.0)),
                      warmup_factor=draw(st.floats(1.0, 4.0)))
            )
        elif kind == "slowdown":
            mds = draw(st.integers(0, _MAX_MDS - 1))
            events.append(Slowdown(mds=mds, start_ms=start, end_ms=end,
                                   factor=draw(st.floats(1.0, 6.0))))
        else:
            mds = draw(st.integers(0, _MAX_MDS - 1))
            events.append(RpcDelay(mds=mds, start_ms=start, end_ms=end,
                                   extra_ms=draw(st.floats(0.01, 0.5))))
    return FaultSchedule(events)


def _run_elastic(autoscale, faults, seed):
    from repro.balancers import LunulePolicy
    from repro.costmodel import CostParams
    from repro.fs import SimConfig, run_simulation
    from repro.obs import Observability
    from repro.obs.tracing import JsonlTracer
    from repro.sim import SeedSequenceFactory
    from repro.workloads import generate_trace_rw

    built, trace = generate_trace_rw(SeedSequenceFactory(seed).stream("w"), n_ops=500)
    obs = Observability(tracer=JsonlTracer(None))
    cfg = SimConfig(
        n_mds=_N_MDS,
        n_clients=6,
        epoch_ms=15.0,
        params=CostParams(cache_depth=2),
        seed=seed,
        faults=faults,
        autoscale=autoscale,
        obs=obs,
    )
    result = run_simulation(built.tree, trace, LunulePolicy(), cfg)
    return result, len(trace), obs.tracer.spans


@given(scale_schedules(), fault_schedules(), st.integers(0, 3))
@SIM_SET
def test_no_op_lost_under_joins_drains_and_faults(autoscale, faults, seed):
    """Zero-lost-ops survives any interleaving of voluntary membership
    changes with involuntary faults."""
    result, n_ops, spans = _run_elastic(autoscale, faults, seed)
    d = result.to_dict()
    assert d["ops_completed"] + d["fault_failed_ops"] + d["vanished_ops"] == n_ops
    assert len(spans) == n_ops
    # drain accounting is consistent: completions never exceed starts, and
    # the pool stayed within the spec's bounds
    e = d["elastic"]
    assert e["drains_completed"] <= e["drains_started"]
    assert 1.0 <= e["pool_min"] <= e["pool_peak"] <= float(_MAX_MDS)


@given(scale_schedules(), fault_schedules(), st.integers(0, 3))
@SIM_SET
def test_span_identity_holds_under_joins_and_drains(autoscale, faults, seed):
    """queue + service + net + fault_wait == latency, exactly, per span —
    warm-up slowdowns and drain evacuations never leak unaccounted time."""
    result, n_ops, spans = _run_elastic(autoscale, faults, seed)
    for s in spans:
        d = s.to_dict()
        components = d["queue_ms"] + d["service_ms"] + d["net_ms"] + d["fault_wait_ms"]
        assert components == pytest.approx(d["latency_ms"], rel=1e-9, abs=1e-12)
    assert result.duration_ms == pytest.approx(max(s.end_ms for s in spans))
