"""Unit tests for the LSM key-value store."""

import pytest

from repro.kvstore import LSMStore, MemTable, SSTable
from repro.kvstore.memtable import TOMBSTONE
from repro.kvstore.sstable import merge_runs


# ------------------------------------------------------------------ memtable


def test_memtable_put_get():
    m = MemTable()
    m.put(b"k1", b"v1")
    assert m.get(b"k1") == b"v1"
    assert m.get(b"missing") is None
    assert len(m) == 1


def test_memtable_overwrite():
    m = MemTable()
    m.put(b"k", b"v1")
    m.put(b"k", b"v2")
    assert m.get(b"k") == b"v2"
    assert len(m) == 1


def test_memtable_delete_records_tombstone():
    m = MemTable()
    m.put(b"k", b"v")
    m.delete(b"k")
    assert m.get(b"k") == TOMBSTONE


def test_memtable_scan_sorted_halfopen():
    m = MemTable()
    for k in (b"d", b"a", b"c", b"b"):
        m.put(k, k.upper())
    assert [k for k, _ in m.scan(b"a", b"c")] == [b"a", b"b"]
    assert [k for k, _ in m.scan(b"", b"z")] == [b"a", b"b", b"c", b"d"]


def test_memtable_type_check():
    m = MemTable()
    with pytest.raises(TypeError):
        m.put("str", b"v")


# ------------------------------------------------------------------- sstable


def test_sstable_requires_sorted_unique():
    with pytest.raises(ValueError):
        SSTable([(b"b", b"1"), (b"a", b"2")])
    with pytest.raises(ValueError):
        SSTable([(b"a", b"1"), (b"a", b"2")])
    with pytest.raises(ValueError):
        SSTable([])


def test_sstable_get_and_range():
    t = SSTable([(b"a", b"1"), (b"c", b"3"), (b"e", b"5")])
    assert t.get(b"c") == b"3"
    assert t.get(b"b") is None
    assert t.get(b"z") is None
    assert t.min_key == b"a" and t.max_key == b"e"
    assert list(t.scan(b"b", b"e")) == [(b"c", b"3")]
    assert t.overlaps(b"d", b"f")
    assert not t.overlaps(b"f", b"z")


def test_merge_runs_newest_wins():
    new = SSTable([(b"a", b"new"), (b"b", b"2")])
    old = SSTable([(b"a", b"old"), (b"c", b"3")])
    merged = dict(merge_runs([new, old]))
    assert merged == {b"a": b"new", b"b": b"2", b"c": b"3"}


def test_merge_runs_tombstone_handling():
    new = SSTable([(b"a", TOMBSTONE)])
    old = SSTable([(b"a", b"old"), (b"b", b"2")])
    kept = dict(merge_runs([new, old], drop_tombstones=False))
    assert kept[b"a"] == TOMBSTONE
    dropped = dict(merge_runs([new, old], drop_tombstones=True))
    assert b"a" not in dropped and dropped[b"b"] == b"2"


# ----------------------------------------------------------------- lsm store


def test_lsm_basic_roundtrip():
    s = LSMStore(memtable_limit=4)
    for i in range(100):
        s.put(f"key{i:04d}".encode(), f"val{i}".encode())
    for i in range(100):
        assert s.get(f"key{i:04d}".encode()) == f"val{i}".encode()
    assert s.get(b"nope") is None
    assert len(s) == 100


def test_lsm_overwrite_across_flushes():
    s = LSMStore(memtable_limit=2)
    s.put(b"k", b"v1")
    s.put(b"x1", b"pad")  # trigger flush
    s.put(b"k", b"v2")
    s.put(b"x2", b"pad")  # trigger flush
    s.put(b"k", b"v3")
    assert s.get(b"k") == b"v3"


def test_lsm_delete_shadows_older_runs():
    s = LSMStore(memtable_limit=2)
    s.put(b"gone", b"v")
    s.put(b"pad1", b"p")  # flush with 'gone'
    s.delete(b"gone")
    s.put(b"pad2", b"p")  # flush with tombstone
    assert s.get(b"gone") is None
    assert not s.contains(b"gone")
    live = dict(s.scan(b"", b"\xff"))
    assert b"gone" not in live


def test_lsm_scan_merges_all_sources():
    s = LSMStore(memtable_limit=3)
    keys = [f"{i:03d}".encode() for i in range(50)]
    for k in keys:
        s.put(k, b"v" + k)
    got = [k for k, _ in s.scan(b"010", b"020")]
    assert got == [f"{i:03d}".encode() for i in range(10, 20)]


def test_lsm_scan_newest_value_wins():
    s = LSMStore(memtable_limit=2)
    s.put(b"a", b"old")
    s.put(b"b", b"x")  # flush
    s.put(b"a", b"new")
    assert dict(s.scan(b"", b"z"))[b"a"] == b"new"


def test_lsm_deep_compaction_preserves_data():
    s = LSMStore(memtable_limit=4, runs_per_guard=2, level0_limit=2, max_levels=4)
    n = 500
    for i in range(n):
        s.put(f"k{i:05d}".encode(), f"v{i}".encode())
    # delete a slice, overwrite another
    for i in range(0, 100):
        s.delete(f"k{i:05d}".encode())
    for i in range(100, 200):
        s.put(f"k{i:05d}".encode(), b"overwritten")
    assert s.stats.compactions > 0
    for i in range(0, 100):
        assert s.get(f"k{i:05d}".encode()) is None
    for i in range(100, 200):
        assert s.get(f"k{i:05d}".encode()) == b"overwritten"
    for i in range(200, n):
        assert s.get(f"k{i:05d}".encode()) == f"v{i}".encode()
    assert len(s) == 400


def test_lsm_stats_amplification():
    s = LSMStore(memtable_limit=8, level0_limit=2)
    for i in range(200):
        s.put(f"k{i:05d}".encode(), b"x" * 20)
    for i in range(200):
        s.get(f"k{i:05d}".encode())
    assert s.stats.puts == 200
    assert s.stats.gets == 200
    assert s.stats.flushes > 0
    assert s.stats.read_amplification() >= 0.0
    assert s.stats.write_amplification() >= 1.0


def test_lsm_forced_flush():
    s = LSMStore(memtable_limit=1000)
    s.put(b"k", b"v")
    assert len(s.level0) == 0
    s.flush()
    assert len(s.level0) == 1
    assert s.get(b"k") == b"v"


def test_lsm_run_count_bounded_by_guards():
    s = LSMStore(memtable_limit=4, runs_per_guard=2, level0_limit=2)
    for i in range(1000):
        s.put(f"k{i:06d}".encode(), b"v")
    # guarded compaction keeps the total run count far below flush count
    assert s.run_count() < s.stats.flushes


def test_lsm_invalid_params():
    with pytest.raises(ValueError):
        LSMStore(memtable_limit=0)


# ------------------------------------------------- tombstone resurrection

# Regression guard: a delete whose tombstone is dropped at the bottom level
# must never let an older value for the same key reappear — not through
# deeper churn, not across guard boundaries, not across a durable reopen.


def _churny_store(**extra):
    kw = dict(memtable_limit=4, runs_per_guard=2, level0_limit=2, max_levels=3)
    kw.update(extra)
    return LSMStore(**kw)


def test_tombstone_never_resurrects_under_deep_churn():
    s = _churny_store()
    n = 300
    for i in range(n):
        s.put(b"k%05d" % i, b"original")
    # values have sunk well past level 0 by now
    assert s.stats.compactions > 0
    victims = [b"k%05d" % i for i in range(0, n, 7)]
    for k in victims:
        s.delete(k)
    # churn rounds: every flush/compaction cascade is a chance for a
    # bottom-level rewrite to drop the tombstone and resurface the original
    for rnd in range(6):
        for i in range(60):
            s.put(b"churn%d-%03d" % (rnd, i), b"x")
        for k in victims:
            assert s.get(k) is None, f"{k!r} resurrected in churn round {rnd}"
    live = dict(s.scan(b"", b"\xff"))
    assert not any(k in live for k in victims)
    # survivors are untouched
    for i in range(1, n, 7):
        assert s.get(b"k%05d" % i) == b"original"


def test_tombstone_drop_at_bottom_does_not_lose_reinserts():
    # delete then re-put the same key: the re-put must win through the same
    # compaction paths that drop the older tombstone
    s = _churny_store()
    for i in range(200):
        s.put(b"k%05d" % i, b"v1")
    for i in range(0, 200, 5):
        s.delete(b"k%05d" % i)
    for i in range(0, 200, 10):
        s.put(b"k%05d" % i, b"v2")
    for rnd in range(4):
        for i in range(50):
            s.put(b"pad%d-%03d" % (rnd, i), b"x")
    for i in range(0, 200, 10):
        assert s.get(b"k%05d" % i) == b"v2"
    for i in range(5, 200, 10):
        assert s.get(b"k%05d" % i) is None


def test_tombstone_never_resurrects_across_durable_reopen(tmp_path):
    from repro.durability import DurabilityOptions, open_store

    opts = DurabilityOptions(use_fsync=False)
    kw = dict(memtable_limit=4, runs_per_guard=2, level0_limit=2, max_levels=3)
    d = str(tmp_path / "store")
    s = open_store(d, options=opts, **kw)
    for i in range(200):
        s.put(b"k%05d" % i, b"original")
    victims = [b"k%05d" % i for i in range(0, 200, 7)]
    for k in victims:
        s.delete(k)
    for i in range(80):
        s.put(b"churn%03d" % i, b"x")
    s.close()
    s2 = open_store(d, options=opts, **kw)
    for k in victims:
        assert s2.get(k) is None, f"{k!r} resurrected across reopen"
    for i in range(1, 200, 7):
        assert s2.get(b"k%05d" % i) == b"original"
    s2.close()
