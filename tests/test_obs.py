"""Unit tests for the observability layer: registry, tracing, audit, report."""

import json
import math

import pytest

from repro.obs import (
    NULL_OBS,
    NULL_REGISTRY,
    NULL_TRACER,
    BalancerAudit,
    JsonlTracer,
    MetricsRegistry,
    Observability,
    PhaseProfiler,
    Tracer,
)
from repro.obs.registry import DEFAULT_BUCKETS, Counter, Gauge, Histogram
from repro.obs.report import decompose, load_spans, render_trace_report
from repro.obs.tracing import SPAN_SCHEMA_VERSION, Span


# ------------------------------------------------------------------ registry
def test_counter_monotonic():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.get() == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_inc_dec():
    g = Gauge()
    g.set(10)
    g.inc(5)
    g.dec(2)
    assert g.get() == 13.0


def test_histogram_buckets_cumulative():
    h = Histogram(buckets=(1.0, 10.0))
    for v in (0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    snap = h.get()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(56.0)
    # cumulative: <=1 -> 2, <=10 -> 3, +Inf -> 4
    assert snap["buckets"] == [[1.0, 2], [10.0, 3], [math.inf, 4]]
    assert h.mean == pytest.approx(14.0)


def test_registry_families_and_labels():
    reg = MetricsRegistry()
    fam = reg.counter("rpcs_total", "rpc count")
    fam.labels(mds=0).inc(3)
    fam.labels(mds=1).inc()
    fam.labels(mds=0).inc()  # same child resolved again
    snap = reg.snapshot()["rpcs_total"]
    assert snap["type"] == "counter"
    values = {s["labels"]["mds"]: s["value"] for s in snap["series"]}
    assert values == {"0": 4.0, "1": 1.0}


def test_registry_unlabelled_family_acts_as_instrument():
    reg = MetricsRegistry()
    ops = reg.counter("ops_total")
    ops.inc(7)
    assert ops.get() == 7.0
    lat = reg.histogram("lat_ms", buckets=(1.0,))
    lat.observe(0.5)
    assert lat.get()["count"] == 1


def test_registry_kind_clash_raises():
    reg = MetricsRegistry()
    reg.counter("x_total")
    with pytest.raises(ValueError):
        reg.gauge("x_total")


def test_null_registry_is_noop_and_shared():
    a = NULL_REGISTRY.counter("anything")
    b = NULL_REGISTRY.histogram("else")
    assert a is b
    a.inc()
    a.labels(mds=3).observe(1.0)
    assert a.get() == 0.0
    assert NULL_REGISTRY.snapshot() == {}


def test_registry_round_trips_through_json(tmp_path):
    reg = MetricsRegistry()
    reg.gauge("g").set(1.5)
    path = tmp_path / "m.json"
    reg.write(str(path))
    blob = json.loads(path.read_text())
    assert blob["g"]["series"][0]["value"] == 1.5


# ------------------------------------------------------------------- tracing
def _make_span(i=0, latency=2.0, queue=0.5, service=1.0, net=0.5):
    s = Span(op_index=i, op=0, worker=0, dir_ino=1, depth=2, start_ms=10.0)
    s.queue_ms, s.service_ms, s.net_ms = queue, service, net
    s.rpcs = 1
    return s, 10.0 + latency


def test_tracer_collects_spans_in_memory():
    t = Tracer()
    s, end = _make_span()
    t.finish(s, end)
    assert len(t.spans) == 1
    assert t.spans[0].latency_ms == pytest.approx(2.0)


def test_span_dict_schema():
    s, end = _make_span()
    s.end_ms = end
    d = s.to_dict()
    assert d["v"] == SPAN_SCHEMA_VERSION
    assert d["op"] == "stat"
    assert d["latency_ms"] == pytest.approx(2.0)
    assert d["queue_ms"] + d["service_ms"] + d["net_ms"] == pytest.approx(d["latency_ms"])


def test_jsonl_tracer_streams_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    t = JsonlTracer(str(path))
    for i in range(3):
        s, end = _make_span(i)
        t.finish(s, end)
    t.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 3
    assert [json.loads(l)["op_index"] for l in lines] == [0, 1, 2]
    # streaming tracers do not retain spans in memory by default
    assert t.spans == []


def test_jsonl_tracer_max_spans_counts_dropped(tmp_path):
    path = tmp_path / "t.jsonl"
    t = JsonlTracer(str(path), max_spans=2)
    for i in range(5):
        s, end = _make_span(i)
        t.finish(s, end)
    t.close()
    assert len(path.read_text().splitlines()) == 2
    assert t.dropped == 3


def test_null_tracer_is_falsy_and_refuses_spans():
    assert not NULL_TRACER
    with pytest.raises(RuntimeError):
        NULL_TRACER.start(0, 0, 0, 0, 0, 0.0)


# -------------------------------------------------------------------- report
def test_decompose_identity_and_report(tmp_path):
    t = Tracer()
    for i in range(10):
        s, end = _make_span(i, latency=2.0)
        t.finish(s, end)
    dicts = [s.to_dict() for s in t.spans]
    d = decompose(dicts)
    assert d.n_spans == 10
    assert d.queue_ms + d.service_ms + d.net_ms == pytest.approx(d.latency_ms)
    assert d.residual_fraction < 0.01
    text = render_trace_report(dicts, source="unit")
    assert "WITHIN 1% tolerance" in text
    assert "queue wait" in text


def test_load_spans_rejects_bad_json(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"ok": 1}\nnot json\n')
    with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
        load_spans(str(path))


# --------------------------------------------------------------------- audit
def test_audit_records_and_resolves():
    from repro.cluster.migration import AppliedMigration, MigrationDecision

    audit = BalancerAudit(top_k=2)
    audit.note_candidates(0, roots=[5, 9, 7], predicted=[1.0, 30.0, 2.0])
    dec = MigrationDecision(subtree_root=9, src=0, dst=1, predicted_benefit=30.0)
    rec = AppliedMigration(decision=dec, dirs_moved=5, inodes_moved=100, epoch=0)
    audit.record_decisions(0, mds_load=[100.0, 0.0], duration_ms=50.0, applied=[rec])
    (e,) = audit.entries
    assert e.candidate_count == 3
    assert e.top_candidates == [[9, 30.0], [7, 2.0]]  # top_k=2 kept
    assert not e.resolved

    # next epoch: bottleneck rate drops from 100/50 to 60/50
    audit.observe_epoch(1, mds_load=[60.0, 55.0], duration_ms=50.0)
    assert e.resolved
    assert e.realized_benefit_ms == pytest.approx(40.0)
    s = audit.summary()
    assert s == {
        "migrations": 1,
        "resolved": 1,
        "mean_predicted_ms": 30.0,
        "mean_realized_ms": pytest.approx(40.0),
        "sign_agreement": 1.0,
    }


def test_audit_shares_epoch_benefit_among_migrations(tmp_path):
    from repro.cluster.migration import AppliedMigration, MigrationDecision

    audit = BalancerAudit()
    recs = [
        AppliedMigration(
            decision=MigrationDecision(subtree_root=r, src=0, dst=1, predicted_benefit=10.0),
            dirs_moved=1,
            inodes_moved=1,
            epoch=0,
        )
        for r in (3, 4)
    ]
    audit.record_decisions(0, mds_load=[80.0, 0.0], duration_ms=40.0, applied=recs)
    audit.observe_epoch(1, mds_load=[40.0, 40.0], duration_ms=40.0)
    assert [e.realized_benefit_ms for e in audit.entries] == [20.0, 20.0]
    assert audit.entries[0].epoch_realized_benefit_ms == pytest.approx(40.0)

    path = tmp_path / "audit.jsonl"
    audit.write(str(path))
    rows = [json.loads(l) for l in path.read_text().splitlines()]
    assert len(rows) == 2
    assert rows[0]["realized_benefit_ms"] == pytest.approx(20.0)


# ----------------------------------------------------------- bundle/profiler
def test_null_obs_is_fully_disabled():
    assert NULL_OBS.registry is NULL_REGISTRY
    assert not NULL_OBS.tracer.enabled
    assert NULL_OBS.audit is None


def test_observability_bundle_wiring(tmp_path):
    obs = Observability(metrics=True, trace=True, audit=True)
    assert obs.registry.enabled
    assert obs.tracer.enabled
    assert obs.audit is not None
    snap = obs.metrics_snapshot()
    assert set(snap) == {"metrics", "balancer_audit", "trace"}


def test_phase_profiler_disabled_is_noop():
    p = PhaseProfiler(enabled=False)
    with p.phase("x"):
        pass
    assert p.summary() == []
    assert "no phases" in p.render()


def test_phase_profiler_accumulates():
    p = PhaseProfiler(enabled=True)
    for _ in range(2):
        with p.phase("work"):
            pass
    ((name, secs, calls),) = p.summary()
    assert name == "work"
    assert calls == 2
    assert secs >= 0.0
    assert "work" in p.render()


# ------------------------------------------------------------------- export
def _window_row(w, start_ms=0.0, window_ms=10.0, n_mds=2, ops=10):
    return {
        "w": w,
        "start_ms": start_ms,
        "end_ms": start_ms + window_ms,
        "ops": ops,
        "ops_per_sec": ops / (window_ms / 1e3),
        "p50_ms": 1.0,
        "p95_ms": 2.0,
        "p99_ms": 3.0,
        "mean_ms": 1.2,
        "events_per_sec": 4000.0,
        "cache_hit_rate": 0.5,
        "migrations": 0,
        "imbalance": 0.1,
        "mds_ops": [ops - 2, 2][:n_mds] if n_mds == 2 else [ops],
        "mds_busy_ms": [1.0] * n_mds,
    }


def test_timeline_jsonl_roundtrip(tmp_path):
    from repro.obs.export import load_timeline, write_timeline_jsonl

    path = str(tmp_path / "tl.jsonl")
    meta = {"kind": "timeline", "window_ms": 10.0, "n_mds": 2}
    rows = [_window_row(0), _window_row(1, start_ms=10.0)]
    write_timeline_jsonl(path, meta, rows)
    got_meta, got_rows = load_timeline(path)
    assert got_meta == meta
    assert got_rows == rows


def test_load_timeline_rejects_non_timeline_inputs(tmp_path):
    from repro.obs.export import load_timeline

    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty file"):
        load_timeline(str(empty))

    garbage = tmp_path / "garbage.jsonl"
    garbage.write_text("not json at all\n")
    with pytest.raises(ValueError, match="header is not JSON"):
        load_timeline(str(garbage))

    spans = tmp_path / "spans.jsonl"
    spans.write_text('{"kind": "trace", "schema": 3}\n')
    with pytest.raises(ValueError, match="not a timeline file"):
        load_timeline(str(spans))


def test_prometheus_text_renders_all_family_kinds():
    from repro.obs.export import prometheus_text

    reg = MetricsRegistry()
    reg.counter("fs.ops_total", "total ops").labels(mds="0").inc(7)
    reg.gauge("fs.queue_depth", "queued").set(3)
    reg.histogram("fs.latency_ms", "latency", buckets=(1.0, 10.0)).observe(0.5)
    text = prometheus_text(reg.snapshot())

    assert "# HELP repro_fs_ops_total total ops" in text
    assert "# TYPE repro_fs_ops_total counter" in text
    assert 'repro_fs_ops_total{mds="0"} 7' in text
    assert "# TYPE repro_fs_queue_depth gauge" in text
    assert "repro_fs_queue_depth 3" in text
    assert "# TYPE repro_fs_latency_ms histogram" in text
    assert 'repro_fs_latency_ms_bucket{le="1"} 1' in text
    assert 'repro_fs_latency_ms_bucket{le="+Inf"} 1' in text
    assert "repro_fs_latency_ms_sum 0.5" in text
    assert "repro_fs_latency_ms_count 1" in text
    assert 'repro_fs_latency_ms{quantile="0.50"}' in text
    assert text.endswith("\n")


def test_prom_name_sanitization():
    from repro.obs.export import _prom_name

    assert _prom_name("fs.ops_total") == "repro_fs_ops_total"
    assert _prom_name("weird-name.v2") == "repro_weird_name_v2"
    assert _prom_name("9lives") == "repro__9lives"


def test_render_timeline_table_limit_and_empty():
    from repro.obs.export import render_timeline_table

    assert render_timeline_table([]) == "(empty timeline)"
    rows = [_window_row(w, start_ms=10.0 * w) for w in range(5)]
    full = render_timeline_table(rows)
    assert "win" in full and "omitted" not in full
    limited = render_timeline_table(rows, limit=2)
    assert "... 3 earlier window(s) omitted ..." in limited
    # only the last two data rows survive
    assert f"{3:>5}" in limited and f"{0:>5} {0.0:>10.1f}" not in limited


def test_render_heatmap_paths():
    from repro.obs.export import render_heatmap

    with pytest.raises(ValueError, match="unknown heatmap metric"):
        render_heatmap([], metric="nope")
    assert render_heatmap([], metric="ops") == "(empty timeline)"

    rows = [_window_row(w, start_ms=10.0 * w) for w in range(3)]
    out = render_heatmap(rows, metric="ops")
    assert "per-MDS ops heatmap" in out
    assert "mds0" in out and "mds1" in out
    assert "@" in out  # the peak cell renders at full shade

    # rows carry no per-MDS rpc column -> graceful message, not a crash
    assert "lack per-MDS column" in render_heatmap(rows, metric="rpcs")


def test_histogram_percentile_and_serialized_quantiles():
    h = Histogram(buckets=(1.0, 10.0, 100.0))
    for v in (0.5, 5.0, 50.0, 50.0):
        h.observe(v)
    assert h.percentile(0.0) == 0.0 or h.percentile(0.0) >= 0.0
    with pytest.raises(ValueError):
        h.percentile(101.0)
    snap = h.get()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(105.5)
    assert set(snap) >= {"p50", "p95", "p99", "buckets"}
    # p99 rank lands in the (10, 100] bucket; interpolation stays inside it
    assert 10.0 <= snap["p99"] <= 100.0
    assert snap["p50"] <= snap["p95"] <= snap["p99"]
    assert Histogram().percentile(50.0) == 0.0


def test_jsonl_tracer_rejects_bad_sample(tmp_path):
    with pytest.raises(ValueError, match="sample must be >= 1"):
        JsonlTracer(str(tmp_path / "t.jsonl"), sample=0)
