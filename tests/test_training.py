"""Tests for the §4.3 training workflow: features, label loop, model training."""

import numpy as np
import pytest

from repro.cluster import PartitionMap
from repro.costmodel import CostParams
from repro.ml.dataset import FEATURE_NAMES, FeatureExtractor, TrainingSet
from repro.ml.importance import rank_features
from repro.namespace import AccessStats
from repro.namespace.builder import build_software_project
from repro.sim import SeedSequenceFactory
from repro.training import collect_training_data, record_window, train_models, train_origami_model
from repro.workloads import generate_trace_rw


def stream(seed=0):
    return SeedSequenceFactory(seed).stream("train")


# ------------------------------------------------------------------ features


@pytest.fixture
def feature_world():
    built = build_software_project(stream(), n_modules=4, dirs_per_module=3)
    tree = built.tree
    stats = AccessStats(tree)
    hot = tree.lookup("/src/mod001")
    stats.record_read(hot, 40)
    stats.record_write(tree.lookup("/build/mod001"), 25)
    snap = stats.snapshot_and_reset()
    return tree, snap, hot


def test_feature_matrix_shape_and_ranges(feature_world):
    tree, snap, hot = feature_world
    cands = np.array([d for d in tree.iter_dirs() if d != 0])
    X = FeatureExtractor(tree).extract(cands, snap)
    assert X.shape == (cands.size, len(FEATURE_NAMES))
    # normalised columns live in [0, 1]
    assert np.all(X[:, :5] >= 0) and np.all(X[:, :5] <= 1 + 1e-12)
    # ratio columns are proportions in [0, 1] as well
    assert np.all(X[:, 5:] >= 0) and np.all(X[:, 5:] <= 1 + 1e-12)


def test_feature_subtree_rollup(feature_world):
    tree, snap, hot = feature_world
    src = tree.lookup("/src")
    cands = np.array([src, hot])
    X = FeatureExtractor(tree).extract(cands, snap)
    i_read = FEATURE_NAMES.index("n_read")
    # /src's subtree includes the hot module, so its read share >= the module's
    assert X[0, i_read] >= X[1, i_read] > 0


def test_feature_depth_normalised_by_max(feature_world):
    tree, snap, _ = feature_world
    deepest = max(tree.iter_dirs(), key=tree.depth)
    cands = np.array([deepest, tree.lookup("/src")])
    X = FeatureExtractor(tree).extract(cands, snap)
    i_depth = FEATURE_NAMES.index("depth")
    assert X[0, i_depth] == pytest.approx(1.0)


def test_training_set_accumulation_and_split():
    ts = TrainingSet()
    assert ts.n_samples == 0
    X = np.random.default_rng(0).random((30, len(FEATURE_NAMES)))
    y = np.arange(30.0)
    ts.add(X, y)
    ts.add(X, y)
    assert ts.n_samples == 60
    Xtr, ytr, Xte, yte = ts.train_test_split(test_fraction=0.25, seed=1)
    assert Xtr.shape[0] == 45 and Xte.shape[0] == 15
    with pytest.raises(ValueError):
        ts.add(np.zeros((2, 3)), np.zeros(2))
    with pytest.raises(ValueError):
        ts.add(np.zeros((2, len(FEATURE_NAMES))), np.zeros(3))


def test_rank_features_orders_and_ties():
    imp = [0.05, 0.4, 0.39, 0.05, 0.05, 0.03, 0.03]
    ranked = rank_features(imp)
    assert ranked[0][0] == FEATURE_NAMES[1]
    assert ranked[0][2] == 1
    assert ranked[1][2] == 1  # 0.40 vs 0.39 tie within tolerance
    with pytest.raises(ValueError):
        rank_features([1.0, 2.0])


# ---------------------------------------------------------------- label loop


def test_record_window_matches_categories():
    built = build_software_project(stream(), n_modules=3)
    tree = built.tree
    from repro.workloads.trace import TraceBuilder

    tb = TraceBuilder()
    a = tree.lookup("/src/mod000")
    tb.stat(a, "x")
    tb.readdir(a)
    tb.create(a, "y")
    stats = AccessStats(tree)
    record_window(stats, tb.build())
    snap = stats.snapshot_and_reset()
    assert snap.reads[a] == 2
    assert snap.writes[a] == 1
    assert snap.lsdirs[a] == 1


def test_collect_training_data_produces_samples():
    built, trace = generate_trace_rw(stream(3), n_ops=12000)
    dataset, pmap = collect_training_data(
        built.tree, trace, n_mds=4, params=CostParams(cache_depth=2),
        delta=50.0, ops_per_epoch=2000,
    )
    assert dataset.n_samples > 0
    X, y = dataset.matrices()
    assert X.shape[1] == len(FEATURE_NAMES)
    assert np.all(y >= 0)
    assert (y > 0).any(), "some migrations must look beneficial"
    # the label loop applied migrations: partition no longer all-on-0
    assert pmap.dirs_per_mds()[0] < built.tree.num_dirs


def test_collect_training_data_no_migrations_keeps_partition():
    built, trace = generate_trace_rw(stream(4), n_ops=8000)
    _, pmap = collect_training_data(
        built.tree, trace, n_mds=4, params=CostParams(),
        delta=50.0, ops_per_epoch=2000, apply_migrations=False,
    )
    assert pmap.dirs_per_mds()[0] == built.tree.num_dirs


def test_collect_training_data_max_epochs():
    built, trace = generate_trace_rw(stream(5), n_ops=12000)
    ds_all, _ = collect_training_data(
        built.tree, trace, n_mds=4, params=CostParams(), delta=50.0, ops_per_epoch=2000
    )
    built2, trace2 = generate_trace_rw(stream(5), n_ops=12000)
    ds_two, _ = collect_training_data(
        built2.tree, trace2, n_mds=4, params=CostParams(), delta=50.0,
        ops_per_epoch=2000, max_epochs=2,
    )
    assert ds_two.n_samples < ds_all.n_samples


# ------------------------------------------------------------ model training


@pytest.fixture(scope="module")
def dataset():
    built, trace = generate_trace_rw(stream(11), n_ops=36000)
    ds, _ = collect_training_data(
        built.tree, trace, n_mds=5, params=CostParams(cache_depth=2),
        delta=50.0, ops_per_epoch=4000,
    )
    return ds


def test_train_origami_model_predicts_ranked_benefits(dataset):
    model = train_origami_model(dataset, n_estimators=80)
    X, y = dataset.matrices()
    pred = model.predict(X)
    from repro.ml.metrics import spearman_rank_correlation

    # benefit labels are inherently noisy (the cluster state that also
    # shapes them is not a feature); what Meta-OPT needs is a usable ranking
    assert spearman_rank_correlation(y, pred) > 0.3
    imp = model.feature_importances()
    assert imp.shape[0] == len(FEATURE_NAMES)
    assert imp.sum() == pytest.approx(1.0)


def test_train_models_compares_families(dataset):
    reports = train_models(dataset, gbdt_rounds=30, mlp_epochs=25)
    assert set(reports) == {"LightGBM-style", "GBDT", "MLP", "Ridge"}
    for rep in reports.values():
        assert rep.rmse >= 0
    # the §4.3 observation: tree models agree on the top-benefit subtrees
    # far better than chance (a random ranking overlaps ~10% on the decile)
    assert reports["LightGBM-style"].top_decile_overlap > 0.2
    assert reports["GBDT"].top_decile_overlap > 0.2
    # learned models beat the linear baseline on ranking
    assert reports["LightGBM-style"].spearman > reports["Ridge"].spearman - 0.1


def test_train_origami_model_empty_dataset():
    with pytest.raises(ValueError):
        train_origami_model(TrainingSet())
