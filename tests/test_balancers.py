"""Unit tests for the balancing policies (setup partitions + rebalance logic)."""

import numpy as np
import pytest

from repro.balancers import (
    CoarseHashPolicy,
    EvenPartitionPolicy,
    FineHashPolicy,
    LunulePolicy,
    MetaOptOraclePolicy,
    MLTreePolicy,
    OrigamiPolicy,
    SingleMdsPolicy,
)
from repro.balancers.base import EpochContext, LunuleTrigger
from repro.costmodel import CostParams
from repro.namespace.builder import build_balanced, build_software_project
from repro.namespace.stats import AccessStats
from repro.sim import SeedSequenceFactory
from repro.workloads.trace import TraceBuilder


def stream(seed=0):
    return SeedSequenceFactory(seed).stream("policy")


@pytest.fixture
def world():
    rng = stream()
    built = build_software_project(rng, n_modules=6, dirs_per_module=3, files_per_dir=4)
    return built.tree, rng


def make_ctx(tree, pmap, loads, rng, reads_on=None, epoch=1):
    """Build an EpochContext with synthetic per-dir access counts."""
    stats = AccessStats(tree)
    for dir_ino, n in (reads_on or {}).items():
        stats.record_read(dir_ino, n)
    snap = stats.snapshot_and_reset()
    return EpochContext(
        tree=tree,
        pmap=pmap,
        epoch=epoch,
        snapshot=snap,
        mds_load=np.asarray(loads, dtype=np.float64),
        params=CostParams(cache_depth=2),
        rng=rng,
    )


# ------------------------------------------------------------------- trigger


def test_lunule_trigger_threshold():
    t = LunuleTrigger(threshold=0.2, min_load=1.0)
    assert not t.should_rebalance(np.array([10.0, 10.0, 10.0]))
    assert t.should_rebalance(np.array([30.0, 5.0, 5.0]))
    # idle cluster never triggers
    assert not t.should_rebalance(np.array([0.5, 0.0, 0.0]))
    # single MDS never triggers
    assert not t.should_rebalance(np.array([100.0]))


# ----------------------------------------------------------- hash placements


def test_single_mds_policy(world):
    tree, rng = world
    pmap = SingleMdsPolicy().setup(tree, 1, rng)
    assert pmap.dirs_per_mds()[0] == tree.num_dirs


def test_even_partition_spreads_dirs(world):
    tree, rng = world
    pmap = EvenPartitionPolicy().setup(tree, 5, rng)
    counts = pmap.dirs_per_mds()
    assert counts.min() > 0
    assert counts.max() - counts.min() <= tree.num_dirs * 0.3


def test_coarse_hash_preserves_deep_locality(world):
    tree, rng = world
    policy = CoarseHashPolicy(levels=2)
    pmap = policy.setup(tree, 4, rng)
    # any dir deeper than the hash levels shares its parent's owner
    for d in tree.iter_dirs():
        if tree.depth(d) > 2:
            assert pmap.owner(d) == pmap.owner(tree.parent(d)), tree.path_of(d)
    # new deep dirs inherit
    deep_parent = next(d for d in tree.iter_dirs() if tree.depth(d) == 3)
    new = tree.create_dir(deep_parent, "fresh")
    assert pmap.owner(new) == pmap.owner(deep_parent)


def test_fine_hash_scatters_and_shards_files(world):
    tree, rng = world
    pmap = FineHashPolicy().setup(tree, 4, rng)
    owners = {pmap.owner(d) for d in tree.iter_dirs() if tree.depth(d) >= 2}
    assert len(owners) == 4  # deep dirs land everywhere
    # file inodes are sharded independently of the parent's dentry shard
    some_dir = tree.lookup("/src/mod000")
    placements = {pmap.file_owner(some_dir, f"file{i}") for i in range(40)}
    assert len(placements) == 4


def test_hash_policies_never_rebalance(world):
    tree, rng = world
    for policy in (CoarseHashPolicy(), FineHashPolicy(), EvenPartitionPolicy(), SingleMdsPolicy()):
        pmap = policy.setup(tree, 3, rng)
        ctx = make_ctx(tree, pmap, [100.0, 0.0, 0.0], rng)
        assert policy.rebalance(ctx) == []


def test_hash_determinism(world):
    tree, rng = world
    p1 = CoarseHashPolicy(seed=3).setup(tree, 4, rng)
    p2 = CoarseHashPolicy(seed=3).setup(tree, 4, stream(9))
    np.testing.assert_array_equal(p1.owner_array(), p2.owner_array())
    p3 = CoarseHashPolicy(seed=4).setup(tree, 4, rng)
    assert not np.array_equal(p1.owner_array(), p3.owner_array())


# ------------------------------------------------------------------- lunule


def test_lunule_moves_from_hot_to_cold(world):
    tree, rng = world
    policy = LunulePolicy()
    pmap = policy.setup(tree, 3, rng)
    # everything on MDS 0, with observable load on a hot module
    hot = tree.lookup("/src/mod001")
    reads = {d: 50 for d in tree.iter_subtree_dirs(hot)}
    # background load elsewhere so the hot subtree is not the *entire* load
    # (a move that relocates 100% of the load cannot shrink the max bin)
    for d in tree.iter_subtree_dirs(tree.lookup("/src/mod004")):
        reads[d] = 30
    ctx = make_ctx(tree, pmap, [90.0, 1.0, 1.0], rng, reads_on=reads)
    decisions = policy.rebalance(ctx)
    assert decisions, "hot imbalance must produce migrations"
    for d in decisions:
        assert d.src == 0
        assert d.dst in (1, 2)
    # every export carries real load from the hot regions
    idx = tree.dfs_index()
    hot_roots = {tree.lookup("/src/mod001"), tree.lookup("/src/mod004")}
    for d in decisions:
        assert any(
            idx.tin[h] <= idx.tin[d.subtree_root] < idx.tout[h]
            or idx.tin[d.subtree_root] <= idx.tin[h] < idx.tout[d.subtree_root]
            for h in hot_roots
        ) or d.subtree_root in {tree.lookup("/src")}


def test_lunule_quiet_when_balanced(world):
    tree, rng = world
    policy = LunulePolicy()
    pmap = policy.setup(tree, 3, rng)
    ctx = make_ctx(tree, pmap, [10.0, 10.0, 10.0], rng, reads_on={0: 5})
    assert policy.rebalance(ctx) == []


def test_lunule_exports_are_disjoint(world):
    tree, rng = world
    policy = LunulePolicy(max_moves_per_epoch=10)
    pmap = policy.setup(tree, 3, rng)
    reads = {d: 10 for d in tree.iter_dirs()}
    ctx = make_ctx(tree, pmap, [50.0, 1.0, 1.0], rng, reads_on=reads)
    decisions = policy.rebalance(ctx)
    idx = tree.dfs_index()
    roots = [d.subtree_root for d in decisions]
    for i, a in enumerate(roots):
        for b in roots[i + 1 :]:
            assert not (idx.tin[a] <= idx.tin[b] < idx.tout[a])
            assert not (idx.tin[b] <= idx.tin[a] < idx.tout[b])


# ------------------------------------------------------------------ ml-tree


def test_mltree_persistence_baseline_moves_hot_dirs(world):
    tree, rng = world
    policy = MLTreePolicy()  # no model: last-epoch persistence
    pmap = policy.setup(tree, 3, rng)
    hot_dir = tree.lookup("/build/mod002")
    reads = {hot_dir: 500}
    for d in tree.iter_subtree_dirs(tree.lookup("/src")):
        reads[d] = 20  # background load so the hot dir is movable
    ctx = make_ctx(tree, pmap, [80.0, 2.0, 2.0], rng, reads_on=reads)
    decisions = policy.rebalance(ctx)
    assert any(d.subtree_root == hot_dir for d in decisions)


def test_mltree_cooldown_prevents_immediate_remigration(world):
    tree, rng = world
    policy = MLTreePolicy(cooldown_epochs=3)
    pmap = policy.setup(tree, 3, rng)
    hot_dir = tree.lookup("/build/mod002")
    reads = {hot_dir: 500}
    for d in tree.iter_subtree_dirs(tree.lookup("/src")):
        reads[d] = 20
    ctx = make_ctx(tree, pmap, [80.0, 2.0, 2.0], rng, reads_on=reads, epoch=1)
    first = policy.rebalance(ctx)
    assert any(d.subtree_root == hot_dir for d in first)
    for d in first:
        pmap.migrate_subtree(d.subtree_root, d.dst)
    # next epoch: the same dir is still hot on its new home but must be pinned
    ctx2 = make_ctx(tree, pmap, [2.0, 80.0, 2.0], rng, reads_on=reads, epoch=2)
    second = policy.rebalance(ctx2)
    assert not any(d.subtree_root == hot_dir for d in second)


def test_mltree_with_model_uses_predictions(world):
    tree, rng = world

    class ConstantModel:
        def predict(self, X):
            return np.full(X.shape[0], 3.0)

    policy = MLTreePolicy(model=ConstantModel())
    pmap = policy.setup(tree, 2, rng)
    ctx = make_ctx(tree, pmap, [50.0, 1.0], rng, reads_on={0: 100})
    # must not crash and must respect ownership
    for d in policy.rebalance(ctx):
        assert pmap.owner(d.subtree_root) == d.src


# ------------------------------------------------------------------ origami


class FakeBenefitModel:
    """Predicts high benefit for a chosen subtree, ~zero elsewhere."""

    def __init__(self, tree, favourite):
        self.idx = tree.dfs_index()
        self.favourite = favourite
        self.tree = tree
        self._cands = None

    def remember(self, cands):
        self._cands = cands

    def predict(self, X):
        assert self._cands is not None, "test must call remember() first"
        out = np.full(X.shape[0], 0.001)
        for j, s in enumerate(self._cands):
            if int(s) == self.favourite:
                out[j] = 100.0
        return out


def test_origami_moves_highest_predicted_benefit(world):
    tree, rng = world
    fav = tree.lookup("/src/mod003")
    model = FakeBenefitModel(tree, fav)
    policy = OrigamiPolicy(model, benefit_threshold_frac=0.0001)
    pmap = policy.setup(tree, 3, rng)
    uniform = pmap.uniform_subtree_mask()
    uniform[0] = False  # exactly the candidate set the policy will use
    model.remember(np.nonzero(uniform)[0])
    reads = {d: 20 for d in tree.iter_subtree_dirs(fav)}
    for d in tree.iter_subtree_dirs(tree.lookup("/include")):
        reads[d] = 40  # background load keeps the favourite movable
    ctx = make_ctx(tree, pmap, [60.0, 1.0, 1.0], rng, reads_on=reads)
    decisions = policy.rebalance(ctx)
    assert decisions
    assert decisions[0].subtree_root == fav
    assert decisions[0].src == 0


def test_origami_threshold_stops_migration(world):
    tree, rng = world

    class TinyBenefit:
        def predict(self, X):
            return np.full(X.shape[0], 1e-9)

    policy = OrigamiPolicy(TinyBenefit(), benefit_threshold_frac=0.5)
    pmap = policy.setup(tree, 3, rng)
    ctx = make_ctx(tree, pmap, [60.0, 1.0, 1.0], rng, reads_on={0: 100})
    assert policy.rebalance(ctx) == []


def test_origami_respects_trigger(world):
    tree, rng = world

    class Big:
        def predict(self, X):
            return np.full(X.shape[0], 100.0)

    policy = OrigamiPolicy(Big())
    pmap = policy.setup(tree, 3, rng)
    ctx = make_ctx(tree, pmap, [10.0, 10.0, 10.0], rng, reads_on={0: 100})
    assert policy.rebalance(ctx) == []  # balanced: trigger stays quiet


# ------------------------------------------------------------------- oracle


def test_oracle_plans_against_future_window(world):
    tree, rng = world
    policy = MetaOptOraclePolicy(delta=1e9)
    pmap = policy.setup(tree, 3, rng)
    tb = TraceBuilder()
    dirs = list(tree.iter_dirs())
    for i in range(300):
        tb.stat(dirs[i % len(dirs)], f"n{i}")
    ctx = make_ctx(tree, pmap, [60.0, 1.0, 1.0], rng, reads_on={0: 10})
    ctx.oracle_window = tb.build()
    decisions = policy.rebalance(ctx)
    assert decisions
    for d in decisions:
        assert d.src != d.dst


def test_oracle_without_window_is_noop(world):
    tree, rng = world
    policy = MetaOptOraclePolicy(delta=1.0)
    pmap = policy.setup(tree, 3, rng)
    ctx = make_ctx(tree, pmap, [60.0, 1.0, 1.0], rng)
    assert policy.rebalance(ctx) == []
    with pytest.raises(ValueError):
        MetaOptOraclePolicy(delta=0.0)
