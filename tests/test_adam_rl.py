"""Tests for the AdaM-style Q-learning baseline."""

import numpy as np
import pytest

from repro.balancers.adam_rl import _ACTIONS, AdamRLPolicy
from repro.costmodel import CostParams
from repro.fs import SimConfig, run_simulation
from repro.sim import SeedSequenceFactory
from repro.workloads import generate_trace_rw
from tests.test_balancers import make_ctx, world  # noqa: F401 (fixture)


def test_validation():
    with pytest.raises(ValueError):
        AdamRLPolicy(learning_rate=0.0)
    with pytest.raises(ValueError):
        AdamRLPolicy(discount=1.0)


def test_state_discretisation(world):  # noqa: F811
    tree, rng = world
    policy = AdamRLPolicy(imbalance_buckets=5)
    even = policy._state(np.array([10.0, 10.0, 10.0]))
    skewed = policy._state(np.array([50.0, 1.0, 1.0]))
    assert even[0] == 0  # lowest imbalance bucket
    assert skewed[0] > even[0]


def test_q_updates_happen_across_epochs(world):  # noqa: F811
    tree, rng = world
    policy = AdamRLPolicy(seed=1, epsilon=1.0)  # fully exploratory
    pmap = policy.setup(tree, 3, rng)
    reads = {d: 10 for d in tree.iter_dirs()}
    for epoch in range(6):
        ctx = make_ctx(tree, pmap, [60.0, 5.0, 5.0], rng, reads_on=reads, epoch=epoch)
        decisions = policy.rebalance(ctx)
        for d in decisions:
            pmap.migrate_subtree(d.subtree_root, d.dst)
    assert policy.updates >= 5
    assert len(policy.q) >= 1


def test_noop_action_produces_no_decisions(world):  # noqa: F811
    tree, rng = world
    policy = AdamRLPolicy(seed=0, epsilon=0.0)
    # force the greedy pick toward action 0 by seeding its Q high
    pmap = policy.setup(tree, 3, rng)
    ctx = make_ctx(tree, pmap, [60.0, 5.0, 5.0], rng, reads_on={0: 10})
    state = policy._state(np.asarray(ctx.mds_load, dtype=float))
    row = policy._q_row(state)
    row[0] = 100.0
    assert policy.rebalance(ctx) == []


def test_epsilon_decays():
    p = AdamRLPolicy(epsilon=0.5, epsilon_decay=0.5)
    loads = np.array([10.0, 1.0])
    from tests.test_balancers import stream
    from repro.namespace.builder import build_balanced

    tree = build_balanced(2, 2, 1).tree
    pmap = p.setup(tree, 2, stream())
    ctx = make_ctx(tree, pmap, loads, stream(), reads_on={0: 5})
    p.rebalance(ctx)
    assert p.epsilon == pytest.approx(0.25)


def test_rl_policy_end_to_end_improves_over_single():
    built, trace = generate_trace_rw(SeedSequenceFactory(3).stream("w"), n_ops=30000)
    cfg = SimConfig(n_mds=4, n_clients=100, epoch_ms=60.0, params=CostParams(cache_depth=2))
    r = run_simulation(built.tree, trace, AdamRLPolicy(seed=2), cfg)
    assert r.migrations > 0
    built2, trace2 = generate_trace_rw(SeedSequenceFactory(3).stream("w"), n_ops=30000)
    single = run_simulation(
        built2.tree, trace2, AdamRLPolicy(seed=2),
        SimConfig(n_mds=1, n_clients=100, epoch_ms=60.0, params=CostParams(cache_depth=2)),
    )
    assert r.steady_state_throughput() > single.steady_state_throughput() * 1.3


def test_actions_table_shape():
    assert _ACTIONS[0] == (0, 0.0)
    assert all(m >= 0 and b >= 0 for m, b in _ACTIONS)
