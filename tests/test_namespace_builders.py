"""Tests for namespace builders, access stats, and path utilities."""

import numpy as np
import pytest

from repro.namespace import AccessStats, NamespaceTree
from repro.namespace.builder import (
    build_balanced,
    build_cloud_tree,
    build_random,
    build_software_project,
    build_web_tree,
)
from repro.namespace.inode import FileType, Inode
from repro.namespace.path import basename, components, dirname, join, normalize, split
from repro.sim import SeedSequenceFactory


def stream(seed=0):
    return SeedSequenceFactory(seed).stream("builder")


# -------------------------------------------------------------------- paths


def test_normalize():
    assert normalize("/a/b/") == "/a/b"
    assert normalize("a//b/./c") == "/a/b/c"
    assert normalize("/") == "/"
    assert normalize("") == "/"


def test_components_rejects_parent_refs():
    assert components("/a/b") == ["a", "b"]
    with pytest.raises(ValueError):
        components("/a/../b")


def test_join_split_basename_dirname():
    assert join("a", "b/c") == "/a/b/c"
    assert split("/a/b/c") == ("/a/b", "c")
    assert split("/x") == ("/", "x")
    assert split("/") == ("/", "")
    assert basename("/a/b") == "b"
    assert dirname("/a/b") == "/a"


# -------------------------------------------------------------------- inode


def test_inode_encode_decode_roundtrip():
    ino = Inode(ino=5, parent=2, name="file.txt", ftype=FileType.REGULAR, depth=3, size=42)
    again = Inode.decode(ino.encode())
    assert again == ino
    assert not again.is_dir
    assert ino.key() == b"%020d/file.txt" % 2


def test_inode_decode_rejects_garbage():
    with pytest.raises(ValueError):
        Inode.decode(b"not|enough|fields")


# ------------------------------------------------------------------ builders


def test_build_balanced_shape():
    built = build_balanced(depth=3, fanout=2, files_per_dir=1)
    tree = built.tree
    assert tree.num_dirs == 1 + 2 + 4 + 8
    assert tree.num_files == tree.num_dirs
    tree.validate()


def test_build_balanced_validation():
    with pytest.raises(ValueError):
        build_balanced(depth=-1, fanout=2)


def test_build_random_reaches_target():
    built = build_random(stream(), n_dirs=120)
    assert built.tree.num_dirs == 120
    built.tree.validate()
    with pytest.raises(ValueError):
        build_random(stream(), n_dirs=0)


def test_software_project_layout():
    built = build_software_project(stream(), n_modules=5)
    tree = built.tree
    for top in ("/src", "/include", "/build", "/tests"):
        assert tree.is_dir(tree.lookup(top))
    assert len(built.info["header_dirs"]) == 5
    # every source dir has a mirrored build dir at the same relative path
    for pairs in built.info["module_dirs"]:
        for s, b in pairs:
            assert tree.path_of(s).replace("/src/", "/build/") == tree.path_of(b)
            assert tree.depth(s) == tree.depth(b)
    tree.validate()


def test_web_tree_deep_and_heavy_tailed():
    built = build_web_tree(stream(), n_dirs=600, target_depth=11)
    tree = built.tree
    depths = tree.depth_array()[tree.dir_mask()]
    assert depths.max() >= 11
    fanouts = sorted(
        (tree.n_child_dirs(d) for d in tree.iter_dirs()), reverse=True
    )
    assert fanouts[0] >= 10  # a few huge directories
    tree.validate()


def test_cloud_tree_layout():
    built = build_cloud_tree(stream(), n_tenants=4, days=2, shards_per_day=3)
    tree = built.tree
    shards = built.info["tenant_shards"]
    assert len(shards) == 4
    assert all(len(s) == 6 for s in shards)
    assert len(built.write_dirs) == 24
    tree.validate()


# --------------------------------------------------------------------- stats


def test_access_stats_epoch_cycle():
    built = build_balanced(2, 2, 1)
    tree = built.tree
    stats = AccessStats(tree)
    a = tree.lookup("/d0_0")
    stats.record_read(a, 3)
    stats.record_write(a, 2)
    stats.record_lsdir(a)
    snap = stats.snapshot_and_reset()
    assert snap.epoch == 0
    assert snap.reads[a] == 4  # lsdir counts as a read
    assert snap.writes[a] == 2
    assert snap.lsdirs[a] == 1
    assert snap.total_ops == 6
    # counters reset
    snap2 = stats.snapshot_and_reset()
    assert snap2.epoch == 1
    assert snap2.total_ops == 0


def test_access_stats_grow_with_tree():
    built = build_balanced(1, 1, 0)
    tree = built.tree
    stats = AccessStats(tree)
    for i in range(100):
        d = tree.create_dir(0, f"n{i}")
        stats.record_read(d)
    snap = stats.snapshot_and_reset()
    assert snap.reads.sum() == 100


def test_access_stats_growths_logarithmic():
    built = build_balanced(1, 1, 0)
    tree = built.tree
    stats = AccessStats(tree)
    cap0 = stats._reads.shape[0]
    assert stats.growths == 0
    # walk the recorded ino upward one at a time: per-ino growth would
    # reallocate ~n times, capacity doubling must stay O(log n)
    n = 4096
    for ino in range(n):
        stats.record_read(ino)
    assert stats._reads.shape[0] >= n
    import math

    assert stats.growths <= math.ceil(math.log2(n / cap0)) + 1
    # buffered (fastpath) route flushes through the same doubling path
    before = stats.growths
    stats._buf_writes.extend(range(n, 4 * n))
    stats._flush_buffers()
    assert stats._writes[2 * n] == 1
    assert stats.growths - before <= 3


def test_access_stats_subtree_totals():
    built = build_balanced(2, 2, 0)
    tree = built.tree
    stats = AccessStats(tree)
    leaf = tree.lookup("/d0_0/d1_0")
    mid = tree.lookup("/d0_0")
    stats.record_read(leaf, 5)
    stats.record_write(mid, 2)
    totals = stats.subtree_totals()
    assert totals["reads"][mid] == 5  # rolls up from the leaf
    assert totals["writes"][mid] == 2
    assert totals["reads"][0] == 5
    assert totals["writes"][0] == 2
