"""CLI tests (parser wiring + the fast subcommands end-to-end)."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "fig99"])


def test_experiments_listing(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "fig5_overall" in out
    assert "theorem1_gap" in out


def test_workload_description(capsys):
    assert main(["workload", "rw", "--ops", "3000"]) == 0
    out = capsys.readouterr().out
    assert "Trace-RW" in out
    assert "write fraction" in out
    assert "3,000" in out


def test_workload_save_bundle(tmp_path, capsys):
    path = str(tmp_path / "w.npz")
    assert main(["workload", "ro", "--ops", "2000", "--save", path]) == 0
    from repro.workloads.serialize import load_bundle

    tree, trace = load_bundle(path)
    assert len(trace) == 2000
    assert trace.write_fraction() == 0.0


def test_plan_command(capsys):
    assert main(["plan", "wi", "--ops", "3000", "--moves", "4"]) == 0
    out = capsys.readouterr().out
    assert "JCT" in out
    assert "MDS0 ->" in out


def test_simulate_command(capsys):
    assert main([
        "simulate", "Lunule", "rw", "--ops", "6000", "--mds", "3", "--clients", "20",
    ]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "Lunule" in out


def test_run_theorem1_with_json(tmp_path, capsys):
    out_path = str(tmp_path / "t1.json")
    assert main(["run", "theorem1_gap", "--json", out_path]) == 0
    blob = json.load(open(out_path))
    assert blob["data"]["all_within_bound"] is True
    printed = capsys.readouterr().out
    assert "Theorem 1" in printed


def test_simulate_extension_strategies(capsys):
    for strategy in ("AdaM-RL",):
        assert main([
            "simulate", strategy, "rw", "--ops", "5000", "--mds", "3", "--clients", "20",
        ]) == 0
        assert "throughput" in capsys.readouterr().out


def test_experiments_list_includes_extensions(capsys):
    main(["experiments"])
    out = capsys.readouterr().out
    assert "ablation_online_learning" in out
    assert "ablation_cache_design" in out


def test_simulate_with_observability_exports(tmp_path, capsys):
    trace = str(tmp_path / "t.jsonl")
    metrics = str(tmp_path / "m.json")
    audit = str(tmp_path / "a.jsonl")
    result = str(tmp_path / "r.json")
    assert main([
        "simulate", "Lunule", "rw", "--ops", "5000", "--mds", "3", "--clients", "20",
        "--trace", trace, "--metrics", metrics, "--audit", audit, "--json", result,
    ]) == 0
    out = capsys.readouterr().out
    assert "balancer audit" in out

    spans = [json.loads(l) for l in open(trace)]
    assert len(spans) == 5000
    s = spans[0]
    assert s["queue_ms"] + s["service_ms"] + s["net_ms"] == pytest.approx(s["latency_ms"])

    blob = json.load(open(metrics))
    assert "client_ops_total" in blob["metrics"]
    assert blob["metrics"]["client_ops_total"]["series"][0]["value"] == 5000
    assert blob["balancer_audit"]["summary"]["migrations"] >= 0

    audits = [json.loads(l) for l in open(audit)]
    assert all("predicted_benefit_ms" in a and "realized_benefit_ms" in a for a in audits)

    full = json.load(open(result))
    assert full["ops_completed"] == 5000
    assert len(full["per_epoch"]) >= 1
    assert full["per_epoch"][0]["busy_ms"]  # arrays serialized


def test_simulate_kvstore_summary(capsys):
    assert main([
        "simulate", "Lunule", "rw", "--ops", "4000", "--mds", "3", "--clients", "20",
        "--kvstore",
    ]) == 0
    out = capsys.readouterr().out
    assert "read/write amplification" in out


def test_report_command(tmp_path, capsys):
    trace = str(tmp_path / "t.jsonl")
    assert main([
        "simulate", "Lunule", "rw", "--ops", "4000", "--mds", "3", "--clients", "20",
        "--trace", trace,
    ]) == 0
    capsys.readouterr()
    assert main(["report", trace]) == 0
    out = capsys.readouterr().out
    assert "latency decomposition" in out
    assert "WITHIN 1% tolerance" in out
    assert "per-operation breakdown" in out


def test_simulate_data_dir_checkpoint_resume_roundtrip(tmp_path, capsys):
    data_dir = str(tmp_path / "stores")
    ckpt = str(tmp_path / "run.ckpt")
    args = ["simulate", "Lunule", "rw", "--ops", "4000", "--mds", "3",
            "--clients", "20", "--data-dir", data_dir]
    assert main(args + ["--checkpoint", ckpt]) == 0
    out = capsys.readouterr().out
    assert "WAL appends" in out
    assert "checkpoint written" in out
    # resuming a finished run replays nothing new but must succeed cleanly
    assert main(args + ["--resume", ckpt]) == 0
    out = capsys.readouterr().out
    assert "resumed from" in out


def test_simulate_resume_rejects_mismatched_config(tmp_path, capsys):
    data_dir = str(tmp_path / "stores")
    ckpt = str(tmp_path / "run.ckpt")
    assert main([
        "simulate", "Lunule", "rw", "--ops", "3000", "--mds", "3",
        "--clients", "20", "--data-dir", data_dir, "--checkpoint", ckpt,
    ]) == 0
    capsys.readouterr()
    # different cluster size than the checkpoint was captured with
    assert main([
        "simulate", "Lunule", "rw", "--ops", "3000", "--mds", "4",
        "--clients", "20", "--data-dir", data_dir, "--resume", ckpt,
    ]) == 1
    assert "cannot resume" in capsys.readouterr().err


def test_recover_command(tmp_path, capsys):
    data_dir = str(tmp_path / "stores")
    assert main([
        "simulate", "Lunule", "rw", "--ops", "4000", "--mds", "3",
        "--clients", "20", "--data-dir", data_dir,
    ]) == 0
    capsys.readouterr()
    report = str(tmp_path / "recover.json")
    assert main(["recover", data_dir, "--json", report]) == 0
    out = capsys.readouterr().out
    assert "mds-0" in out and "mds-2" in out
    assert "total modeled recovery" in out
    blob = json.load(open(report))
    assert len(blob) == 3
    assert all(b["modeled_recovery_ms"] >= 0 for b in blob)


def test_recover_command_rejects_missing_dir(tmp_path, capsys):
    assert main(["recover", str(tmp_path / "nope")]) == 1
    assert "not a directory" in capsys.readouterr().err


def test_run_profile_flag(capsys):
    assert main(["run", "fig2_even_partitioning", "--scale", "smoke", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "[profile] wall-clock phases" in out
    assert "simulate:" in out


def test_simulate_timeline_slo_and_sampled_trace(tmp_path, capsys):
    timeline = str(tmp_path / "tl.jsonl")
    trace = str(tmp_path / "spans.jsonl")
    spec = tmp_path / "slo.json"
    spec.write_text(json.dumps({
        "name": "loose",
        "objectives": [
            {"name": "p99", "metric": "p99_ms", "target_ms": 1e9},
            {"name": "hits", "metric": "cache_hit_rate", "target": 0.0,
             "error_budget": 0.99},
        ],
    }))
    assert main([
        "simulate", "Lunule", "rw", "--ops", "5000", "--mds", "3",
        "--clients", "20", "--timeline", timeline, "--slo", str(spec),
        "--trace", trace, "--trace-sample", "5",
    ]) == 0
    out = capsys.readouterr().out
    assert "engine throughput" in out
    assert "timeline" in out
    assert "overall: OK" in out
    assert "1-in-5 sampled" in out

    lines = open(timeline).read().splitlines()
    meta = json.loads(lines[0])
    assert meta["kind"] == "timeline" and meta["n_windows"] == len(lines) - 1
    rows = [json.loads(l) for l in lines[1:]]
    assert sum(r["ops"] for r in rows) == 5000
    spans = open(trace).read().splitlines()
    assert len(spans) == (5000 + 4) // 5

    # breach path: impossible latency target must exit 1
    spec.write_text(json.dumps({
        "objectives": [{"name": "p99", "metric": "p99_ms", "target_ms": 0.0,
                        "error_budget": 0.01}],
    }))
    capsys.readouterr()
    assert main([
        "simulate", "Lunule", "rw", "--ops", "5000", "--mds", "3",
        "--clients", "20", "--slo", str(spec),
    ]) == 1
    assert "SLO BREACHED" in capsys.readouterr().out


def test_simulate_rejects_bad_trace_sample_and_slo(tmp_path, capsys):
    assert main([
        "simulate", "Lunule", "rw", "--ops", "1000", "--trace-sample", "0",
    ]) == 2
    assert "--trace-sample" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text("{]")
    assert main([
        "simulate", "Lunule", "rw", "--ops", "1000", "--slo", str(bad),
    ]) == 2
    assert "invalid JSON" in capsys.readouterr().err


def _make_timeline(tmp_path, capsys, ops=5000):
    timeline = str(tmp_path / "tl.jsonl")
    assert main([
        "simulate", "Lunule", "rw", "--ops", str(ops), "--mds", "3",
        "--clients", "20", "--timeline", timeline,
    ]) == 0
    capsys.readouterr()
    return timeline


def test_obs_timeline_and_heatmap_commands(tmp_path, capsys):
    timeline = _make_timeline(tmp_path, capsys)
    assert main(["obs", "timeline", timeline, "--limit", "5"]) == 0
    out = capsys.readouterr().out
    assert "ops/s" in out and "p99" in out

    for metric in ("ops", "busy", "queue"):
        assert main(["obs", "heatmap", timeline, "--metric", metric]) == 0
        out = capsys.readouterr().out
        assert "mds0" in out and "mds2" in out

    assert main(["obs", "timeline", str(tmp_path / "missing.jsonl")]) == 2
    assert "repro obs" in capsys.readouterr().err


def test_obs_slo_command_gates(tmp_path, capsys):
    timeline = _make_timeline(tmp_path, capsys)
    spec = tmp_path / "slo.json"
    spec.write_text(json.dumps({
        "objectives": [{"name": "p99", "metric": "p99_ms", "target_ms": 1e9}],
    }))
    report = str(tmp_path / "report.json")
    assert main(["obs", "slo", timeline, str(spec), "--json", report]) == 0
    assert "overall: OK" in capsys.readouterr().out
    assert json.load(open(report))["ok"] is True

    spec.write_text(json.dumps({
        "objectives": [{"name": "p99", "metric": "p99_ms", "target_ms": 0.0}],
    }))
    assert main(["obs", "slo", timeline, str(spec)]) == 1
    assert "SLO BREACHED" in capsys.readouterr().out


def test_report_timeline_section(tmp_path, capsys):
    trace = str(tmp_path / "spans.jsonl")
    timeline = str(tmp_path / "tl.jsonl")
    assert main([
        "simulate", "Lunule", "rw", "--ops", "5000", "--mds", "3",
        "--clients", "20", "--trace", trace, "--timeline", timeline,
    ]) == 0
    capsys.readouterr()
    assert main(["report", trace, "--timeline", timeline]) == 0
    out = capsys.readouterr().out
    assert "steady-state" in out
    assert "kevents/virtual s" in out
