"""Golden-regression suite: healthy runs must not drift.

The fixtures under ``tests/golden/`` were captured from the tree *before*
the fault-injection subsystem landed (see ``tests/golden/capture.py``), so
passing here proves the fault layer's no-fault path is free: every scalar
and every per-epoch array of a healthy run is bit-identical to the
pre-fault build, across 3 seeds x 2 workload families.

Keys added to ``SimResult.to_dict()`` after the capture are tolerated (they
are listed explicitly — an *unknown* new key is a failure, forcing the
author to either re-capture deliberately or add it to the allowlist).
"""

import json
import math
import pathlib

import pytest

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: keys newer than the captured fixtures, allowed to appear in fresh runs
KEYS_ADDED_SINCE_CAPTURE = {
    "vanished_ops",
    "fault_failed_ops",
    "faults",
    # telemetry-pipeline PR: engine-throughput rates, wall timing, and the
    # (None-when-disabled) timeline summary
    "engine_events_per_virtual_sec",
    "engine_events_per_wall_sec",
    "wall_s",
    "timeline",
}

#: (workload kind, seed) — mirrors capture.py's MATRIX
MATRIX = [(kind, seed) for kind in ("rw", "wi") for seed in (0, 1, 2)]


def _run_one(kind: str, seed: int) -> dict:
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "golden_capture", GOLDEN_DIR / "capture.py"
    )
    cap = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(cap)
    return cap.run_one(kind, seed)


def _assert_equal(path: str, old, new) -> None:
    if isinstance(old, float):
        # captured via JSON, so exact decimal round-trips: demand bitwise
        # equality (math.isclose with rel 1e-12 only as an inf/nan guard)
        assert old == new or math.isclose(old, new, rel_tol=1e-12, abs_tol=0.0), (
            f"{path}: {old!r} != {new!r}"
        )
    elif isinstance(old, dict):
        assert isinstance(new, dict), f"{path}: expected dict, got {type(new)}"
        assert set(old) <= set(new), f"{path}: keys lost: {set(old) - set(new)}"
        for k in old:
            _assert_equal(f"{path}.{k}", old[k], new[k])
    elif isinstance(old, list):
        assert isinstance(new, list) and len(old) == len(new), (
            f"{path}: length {len(old)} != {len(new)}"
        )
        for i, (a, b) in enumerate(zip(old, new)):
            _assert_equal(f"{path}[{i}]", a, b)
    else:
        assert old == new, f"{path}: {old!r} != {new!r}"


@pytest.mark.parametrize("kind,seed", MATRIX)
def test_healthy_run_matches_golden_fixture(kind: str, seed: int):
    fixture = GOLDEN_DIR / f"baseline_{kind}_seed{seed}.json"
    old = json.loads(fixture.read_text())
    new = _run_one(kind, seed)
    _assert_equal(f"baseline_{kind}_seed{seed}", old, new)
    unknown = set(new) - set(old) - KEYS_ADDED_SINCE_CAPTURE
    assert not unknown, (
        f"unexpected new result keys {sorted(unknown)}: re-capture the goldens "
        f"deliberately or extend KEYS_ADDED_SINCE_CAPTURE"
    )


def test_fixture_matrix_is_complete():
    for kind, seed in MATRIX:
        assert (GOLDEN_DIR / f"baseline_{kind}_seed{seed}.json").exists()
