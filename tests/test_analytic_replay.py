"""Tests for the analytic epoch replay and its agreement with the DES."""

import numpy as np
import pytest

from repro.balancers import CoarseHashPolicy, FineHashPolicy, LunulePolicy, SingleMdsPolicy
from repro.costmodel import CostParams
from repro.harness.analytic import analytic_replay
from repro.sim import SeedSequenceFactory
from repro.workloads import generate_trace_rw


def make_world(seed=0, n_ops=24000):
    return generate_trace_rw(SeedSequenceFactory(seed).stream("w"), n_ops=n_ops)


def test_analytic_replay_basics():
    built, trace = make_world()
    params = CostParams(cache_depth=2)
    res = analytic_replay(built.tree, trace, LunulePolicy(), 4, params, ops_per_epoch=4000)
    assert res.n_ops == len(trace)
    assert len(res.jct_per_epoch) == len(trace) // 4000 + (1 if len(trace) % 4000 else 0)
    assert res.migrations > 0
    assert res.throughput_proxy() > 0
    assert res.rpcs_per_request >= 1.0
    assert 1.0 <= res.mean_m <= 4.0


def test_analytic_single_mds_jct_is_total_rct():
    built, trace = make_world(seed=1, n_ops=8000)
    params = CostParams(cache_depth=2)
    res = analytic_replay(built.tree, trace, SingleMdsPolicy(), 1, params, ops_per_epoch=2000)
    # one MDS: the max bin is the only bin; loads equal the JCT each epoch
    for jct, loads in zip(res.jct_per_epoch, res.loads_per_epoch):
        assert jct == pytest.approx(loads.sum())


def test_analytic_balancing_reduces_epoch_jct():
    built, trace = make_world(seed=2)
    params = CostParams(cache_depth=2)
    res = analytic_replay(built.tree, trace, LunulePolicy(), 4, params, ops_per_epoch=4000)
    # after the balancer acts, later epochs' JCT must fall well below epoch 0
    assert min(res.jct_per_epoch[1:]) < res.jct_per_epoch[0] * 0.6


def test_analytic_ranks_strategies_like_the_des():
    """The cheap proxy must order hash strategies the way the DES does:
    C-Hash above F-Hash (locality), both above a single MDS."""
    params = CostParams(cache_depth=2)

    def proxy(policy, n_mds):
        built, trace = make_world(seed=3)
        return analytic_replay(
            built.tree, trace, policy, n_mds, params, ops_per_epoch=4000
        ).throughput_proxy()

    single = proxy(SingleMdsPolicy(), 1)
    chash = proxy(CoarseHashPolicy(), 5)
    fhash = proxy(FineHashPolicy(), 5)
    assert chash > fhash > single


def test_analytic_deterministic():
    params = CostParams(cache_depth=2)
    built, trace = make_world(seed=4, n_ops=8000)
    r1 = analytic_replay(built.tree, trace, LunulePolicy(), 3, params, ops_per_epoch=2000)
    built2, trace2 = make_world(seed=4, n_ops=8000)
    r2 = analytic_replay(built2.tree, trace2, LunulePolicy(), 3, params, ops_per_epoch=2000)
    assert r1.jct_per_epoch == r2.jct_per_epoch
    assert r1.migrations == r2.migrations
