"""Unit tests for the from-scratch ML stack: trees, GBDT, MLP, ridge, metrics."""

import numpy as np
import pytest

from repro.ml import (
    GBDTRegressor,
    MLPRegressor,
    RidgeRegressor,
    mean_absolute_error,
    r2_score,
    rmse,
    spearman_rank_correlation,
)
from repro.ml.metrics import top_k_overlap
from repro.ml.tree import Binner, RegressionTree


def make_regression(n=2000, seed=0, noise=0.1):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 5))
    # nonlinear target with feature interactions
    y = (
        3.0 * X[:, 0]
        + np.sin(4 * X[:, 1])
        + 2.0 * (X[:, 2] > 0.5) * X[:, 3]
        + noise * rng.normal(size=n)
    )
    return X, y


# ------------------------------------------------------------------- binner


def test_binner_roundtrip_monotone():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(500, 3))
    b = Binner(n_bins=16)
    binned = b.fit_transform(X)
    assert binned.dtype == np.uint8
    assert binned.max() < 16
    # binning preserves order within a feature
    order = np.argsort(X[:, 0])
    assert np.all(np.diff(binned[order, 0].astype(int)) >= 0)


def test_binner_validation():
    with pytest.raises(ValueError):
        Binner(n_bins=1)
    with pytest.raises(RuntimeError):
        Binner().transform(np.zeros((3, 2)))


# --------------------------------------------------------------------- tree


def test_tree_fits_step_function():
    rng = np.random.default_rng(2)
    X = rng.random((1000, 2))
    y = np.where(X[:, 0] > 0.5, 4.0, -4.0)
    b = Binner(32)
    binned = b.fit_transform(X)
    t = RegressionTree(max_leaves=4, min_samples_leaf=5).fit(binned, y)
    pred = t.predict_binned(binned)
    # histogram splitting can only miss samples inside the bin straddling the
    # step; allow that quantisation error
    assert rmse(y, pred) < 1.0
    assert np.mean(np.sign(pred) == np.sign(y)) > 0.97
    assert t.feature_gain_[0] > t.feature_gain_[1]


def test_tree_respects_max_leaves():
    X, y = make_regression(n=800, seed=3)
    b = Binner(32)
    binned = b.fit_transform(X)
    for leaves in (2, 4, 8):
        t = RegressionTree(max_leaves=leaves, min_samples_leaf=5).fit(binned, y)
        assert t.n_leaves <= leaves


def test_tree_constant_target_single_leaf():
    X = np.random.default_rng(0).random((100, 3))
    y = np.full(100, 2.5)
    b = Binner(16)
    t = RegressionTree().fit(b.fit_transform(X), y)
    assert t.n_leaves == 1
    assert t.predict_binned(b.transform(X))[0] == pytest.approx(2.5, abs=0.1)


def test_tree_level_growth_bounded_depth():
    X, y = make_regression(n=800, seed=4)
    b = Binner(32)
    binned = b.fit_transform(X)
    t = RegressionTree(growth="level", max_depth=2, min_samples_leaf=5).fit(binned, y)
    assert t.n_leaves <= 4  # depth-2 tree has at most 4 leaves
    with pytest.raises(ValueError):
        RegressionTree(growth="bogus")


# --------------------------------------------------------------------- gbdt


def test_gbdt_learns_nonlinear_function():
    X, y = make_regression(n=3000, seed=5)
    model = GBDTRegressor(n_estimators=60, learning_rate=0.2, max_leaves=16)
    model.fit(X, y)
    pred = model.predict(X)
    assert r2_score(y, pred) > 0.95


def test_gbdt_generalises():
    X, y = make_regression(n=4000, seed=6)
    Xtr, ytr, Xte, yte = X[:3000], y[:3000], X[3000:], y[3000:]
    model = GBDTRegressor(n_estimators=80, learning_rate=0.15, max_leaves=16).fit(Xtr, ytr)
    assert r2_score(yte, model.predict(Xte)) > 0.9


def test_gbdt_training_loss_decreases():
    X, y = make_regression(n=1000, seed=7)
    model = GBDTRegressor(n_estimators=30, learning_rate=0.2, max_leaves=8).fit(X, y)
    losses = model.train_losses_
    assert losses[-1] < losses[0] * 0.5
    assert all(b <= a + 1e-9 for a, b in zip(losses, losses[1:]))


def test_gbdt_early_stopping():
    X, y = make_regression(n=2000, seed=8, noise=0.5)
    model = GBDTRegressor(
        n_estimators=200, learning_rate=0.3, max_leaves=32, early_stopping_rounds=5
    )
    model.fit(X[:1500], y[:1500], eval_set=(X[1500:], y[1500:]))
    assert len(model.trees_) < 200


def test_gbdt_feature_importance_identifies_signal():
    rng = np.random.default_rng(9)
    X = rng.random((2000, 4))
    y = 5.0 * X[:, 2] + 0.01 * rng.normal(size=2000)  # only feature 2 matters
    model = GBDTRegressor(n_estimators=20, learning_rate=0.3, max_leaves=8).fit(X, y)
    imp = model.feature_importances()
    assert np.argmax(imp) == 2
    assert imp[2] > 0.9
    assert imp.sum() == pytest.approx(1.0)


def test_gbdt_level_growth_works():
    X, y = make_regression(n=1500, seed=10)
    model = GBDTRegressor(n_estimators=50, learning_rate=0.2, growth="level", max_depth=4)
    model.fit(X, y)
    assert r2_score(y, model.predict(X)) > 0.9


def test_gbdt_validation():
    with pytest.raises(ValueError):
        GBDTRegressor(n_estimators=0)
    with pytest.raises(ValueError):
        GBDTRegressor(learning_rate=0)
    with pytest.raises(RuntimeError):
        GBDTRegressor().predict(np.zeros((2, 2)))
    with pytest.raises(ValueError):
        GBDTRegressor().fit(np.zeros((0, 2)), np.zeros(0))


def test_gbdt_deterministic():
    X, y = make_regression(n=500, seed=11)
    p1 = GBDTRegressor(n_estimators=10, max_leaves=8).fit(X, y).predict(X)
    p2 = GBDTRegressor(n_estimators=10, max_leaves=8).fit(X, y).predict(X)
    np.testing.assert_array_equal(p1, p2)


# ---------------------------------------------------------------------- mlp


def test_mlp_learns_linear_function():
    rng = np.random.default_rng(12)
    X = rng.random((1500, 4))
    y = X @ np.array([1.0, -2.0, 3.0, 0.5]) + 0.7
    model = MLPRegressor(hidden=(32, 32, 16, 8), epochs=60, seed=0).fit(X, y)
    assert r2_score(y, model.predict(X)) > 0.95


def test_mlp_has_four_hidden_layers_by_default():
    m = MLPRegressor()
    assert len(m.hidden) == 4


def test_mlp_loss_decreases():
    X, y = make_regression(n=800, seed=13)
    model = MLPRegressor(epochs=30, seed=1).fit(X, y)
    assert model.train_losses_[-1] < model.train_losses_[0]


def test_mlp_validation():
    with pytest.raises(ValueError):
        MLPRegressor(hidden=())
    with pytest.raises(RuntimeError):
        MLPRegressor().predict(np.zeros((2, 2)))


# -------------------------------------------------------------------- ridge


def test_ridge_exact_on_linear_data():
    rng = np.random.default_rng(14)
    X = rng.random((500, 3))
    w = np.array([2.0, -1.0, 0.5])
    y = X @ w + 3.0
    model = RidgeRegressor(alpha=1e-9).fit(X, y)
    np.testing.assert_allclose(model.coef_, w, atol=1e-6)
    assert model.intercept_ == pytest.approx(3.0, abs=1e-6)


def test_ridge_shrinks_with_alpha():
    rng = np.random.default_rng(15)
    X = rng.random((200, 2))
    y = 10 * X[:, 0] + rng.normal(size=200)
    small = RidgeRegressor(alpha=0.01).fit(X, y)
    big = RidgeRegressor(alpha=1e4).fit(X, y)
    assert abs(big.coef_[0]) < abs(small.coef_[0])


# ------------------------------------------------------------------ metrics


def test_metrics_perfect_prediction():
    y = np.array([1.0, 2.0, 3.0])
    assert rmse(y, y) == 0.0
    assert mean_absolute_error(y, y) == 0.0
    assert r2_score(y, y) == 1.0
    assert spearman_rank_correlation(y, y) == pytest.approx(1.0)


def test_spearman_monotone_transform_invariant():
    rng = np.random.default_rng(16)
    y = rng.random(100)
    assert spearman_rank_correlation(y, np.exp(5 * y)) == pytest.approx(1.0)
    assert spearman_rank_correlation(y, -y) == pytest.approx(-1.0)


def test_spearman_handles_ties():
    y_true = np.array([1.0, 1.0, 2.0, 3.0])
    y_pred = np.array([0.0, 0.0, 1.0, 2.0])
    assert spearman_rank_correlation(y_true, y_pred) == pytest.approx(1.0)


def test_top_k_overlap():
    y_true = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
    y_pred = np.array([0.0, 1.0, 4.0, 3.0, 2.0])
    assert top_k_overlap(y_true, y_pred, 3) == pytest.approx(1.0)
    assert top_k_overlap(y_true, y_pred, 1) == pytest.approx(0.0)
    with pytest.raises(ValueError):
        top_k_overlap(y_true, y_pred, 0)


def test_metrics_validation():
    with pytest.raises(ValueError):
        rmse(np.array([1.0]), np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        r2_score(np.empty(0), np.empty(0))
