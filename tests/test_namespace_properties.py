"""Property tests for the array-backed namespace tree and its DFS index.

The vectorized-replay PR moved every per-inode column of
:class:`~repro.namespace.tree.NamespaceTree` into growable numpy arrays and
rebuilt :meth:`~repro.namespace.tree.NamespaceTree._build_dfs` as a
lexsort/CSR pass.  These tests pin the two contracts that refactor must
preserve for *arbitrary* shapes, not just the golden workloads:

* the DFS index's interval arithmetic (``subtree_sum``,
  ``dirs_in_subtree``, ``contains``, ``subtree_size``) agrees with a naive
  child-map recursion on randomly grown-and-pruned trees;
* the tree itself stays behaviourally identical to a plain dict/list
  shadow model under random mutation sequences (create/remove/rename),
  including the error cases and the post-growth state of every accessor.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.namespace.tree import ROOT_INO, NamespaceTree

seeds = st.integers(min_value=0, max_value=2**31 - 1)


# ------------------------------------------------------------ random trees
def _grow_random_tree(rng, n_mutations: int) -> NamespaceTree:
    """Random structural churn: mkdir-heavy with file creates and removes."""
    tree = NamespaceTree()
    dirs = [ROOT_INO]
    files = []
    serial = 0
    for _ in range(n_mutations):
        roll = rng.random()
        if roll < 0.45 or len(dirs) == 1:
            serial += 1
            dirs.append(tree.create_dir(int(rng.choice(dirs)), f"d{serial}"))
        elif roll < 0.75:
            serial += 1
            files.append(tree.create_file(int(rng.choice(dirs)), f"f{serial}"))
        elif roll < 0.9 and files:
            ino = int(files.pop(int(rng.integers(len(files)))))
            tree.remove(ino)
        else:
            # remove a random *empty* non-root directory, if one exists
            empties = [d for d in dirs if d != ROOT_INO and not tree.children(d)]
            if empties:
                victim = int(rng.choice(empties))
                tree.remove(victim)
                dirs.remove(victim)
    return tree


def _naive_subtree_dirs(tree: NamespaceTree, root: int) -> list:
    """Reference preorder walk via the child maps (smallest name first)."""
    out = []
    stack = [root]
    while stack:
        ino = stack.pop()
        out.append(ino)
        kids = tree.children(ino)
        subdirs = sorted(
            (name, c) for name, c in kids.items() if tree.is_dir(c)
        )
        for _name, c in reversed(subdirs):
            stack.append(c)
    return out


@settings(max_examples=20, deadline=None)
@given(seed=seeds, n=st.integers(min_value=1, max_value=200))
def test_dfs_index_matches_naive_recursion(seed, n):
    tree = _grow_random_tree(np.random.default_rng(seed), n)
    idx = tree.dfs_index()
    per_dir = np.zeros(tree.capacity, dtype=np.float64)
    rng = np.random.default_rng(seed + 1)
    for d in tree.iter_dirs():
        per_dir[d] = float(rng.integers(0, 100))

    sums = idx.subtree_sum(per_dir)
    all_dirs = list(tree.iter_dirs())
    assert sorted(idx.order.tolist()) == all_dirs  # every live dir, once
    for root in all_dirs:
        naive = _naive_subtree_dirs(tree, root)
        assert idx.dirs_in_subtree(root).tolist() == naive
        assert idx.subtree_size(root) == len(naive)
        assert sums[root] == sum(per_dir[d] for d in naive)
        for d in naive:
            assert idx.contains(root, d)
    # non-membership: a dir outside the subtree is never reported inside
    for root in all_dirs:
        inside = set(_naive_subtree_dirs(tree, root))
        for d in all_dirs:
            assert idx.contains(root, d) == (d in inside)


@settings(max_examples=20, deadline=None)
@given(seed=seeds, n=st.integers(min_value=1, max_value=150))
def test_dfs_index_preorder_intervals_are_well_formed(seed, n):
    tree = _grow_random_tree(np.random.default_rng(seed), n)
    idx = tree.dfs_index()
    tin, tout = idx.tin, idx.tout
    for d in tree.iter_dirs():
        assert 0 <= tin[d] < tout[d] <= tree.num_dirs
        if d != ROOT_INO:
            p = tree.parent(d)
            assert tin[p] < tin[d] and tout[d] <= tout[p]  # nested intervals
    # dead / file inos are unindexed
    for ino in range(tree.capacity):
        if not (tree.is_alive(ino) and tree.is_dir(ino)):
            assert tin[ino] == -1 and tout[ino] == -1


# ---------------------------------------------------------- shadow model
class _ShadowTree:
    """Plain dict/list reference implementation of the tree's semantics."""

    def __init__(self):
        self.parent = {ROOT_INO: ROOT_INO}
        self.name = {ROOT_INO: ""}
        self.is_dir = {ROOT_INO: True}
        self.depth = {ROOT_INO: 0}
        self.children = {ROOT_INO: {}}
        self.next_ino = 1

    def create(self, parent: int, name: str, directory: bool) -> int:
        ino = self.next_ino
        self.next_ino += 1
        self.parent[ino] = parent
        self.name[ino] = name
        self.is_dir[ino] = directory
        self.depth[ino] = self.depth[parent] + 1
        self.children[parent][name] = ino
        if directory:
            self.children[ino] = {}
        return ino

    def remove(self, ino: int) -> None:
        del self.children[self.parent[ino]][self.name[ino]]
        for table in (self.parent, self.name, self.is_dir, self.depth):
            del table[ino]
        self.children.pop(ino, None)

    def resolve(self, ino: int) -> list:
        chain = []
        while ino != ROOT_INO:
            chain.append(ino)
            ino = self.parent[ino]
        chain.append(ROOT_INO)
        chain.reverse()
        return chain


@settings(max_examples=25, deadline=None)
@given(seed=seeds, n=st.integers(min_value=1, max_value=300))
def test_tree_matches_shadow_model_under_random_mutations(seed, n):
    """Drive identical random mutation sequences through the array-backed
    tree and the dict shadow; every accessor must agree afterwards —
    including across several capacity-doubling reallocations (n up to 300
    crosses the initial logical sizing many times over)."""
    rng = np.random.default_rng(seed)
    tree = NamespaceTree()
    shadow = _ShadowTree()
    dirs = [ROOT_INO]
    files = []
    serial = 0
    for _ in range(n):
        roll = rng.random()
        if roll < 0.4 or len(dirs) == 1:
            serial += 1
            parent = int(rng.choice(dirs))
            got = tree.create_dir(parent, f"d{serial}")
            want = shadow.create(parent, f"d{serial}", True)
            assert got == want
            dirs.append(got)
        elif roll < 0.7:
            serial += 1
            parent = int(rng.choice(dirs))
            got = tree.create_file(parent, f"f{serial}")
            want = shadow.create(parent, f"f{serial}", False)
            assert got == want
            files.append(got)
        elif roll < 0.85 and files:
            ino = int(files.pop(int(rng.integers(len(files)))))
            tree.remove(ino)
            shadow.remove(ino)
        else:
            empties = [d for d in dirs if d != ROOT_INO and not tree.children(d)]
            if empties:
                victim = int(rng.choice(empties))
                tree.remove(victim)
                shadow.remove(victim)
                dirs.remove(victim)

    # full-state comparison, accessor by accessor
    assert tree.capacity == shadow.next_ino
    assert tree.num_dirs == sum(1 for v in shadow.is_dir.values() if v)
    assert tree.num_files == sum(1 for v in shadow.is_dir.values() if not v)
    for ino in range(tree.capacity):
        alive = ino in shadow.parent
        assert tree.is_alive(ino) == alive
        if not alive:
            continue
        assert tree.is_dir(ino) == shadow.is_dir[ino]
        assert tree.parent(ino) == shadow.parent[ino]
        assert tree.name(ino) == shadow.name[ino]
        assert tree.depth(ino) == shadow.depth[ino]
        assert tree.resolve(ino) == shadow.resolve(ino)
        if shadow.is_dir[ino]:
            assert tree.children(ino) == shadow.children[ino]
    # scalar accessors must return plain Python types (JSON/hash safety)
    assert type(tree.parent(ROOT_INO)) is int
    assert type(tree.depth(ROOT_INO)) is int
    assert type(tree.is_alive(ROOT_INO)) is bool
    tree.validate()


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_bulk_views_are_readonly_and_logical_sized(seed):
    tree = _grow_random_tree(np.random.default_rng(seed), 80)
    for view in (tree.parent_array(), tree.depth_array(),
                 tree.child_file_counts(), tree.child_dir_counts()):
        assert view.shape[0] == tree.capacity
        assert not view.flags.writeable
