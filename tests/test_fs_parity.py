"""DES ↔ analytic-model parity: with one client (no queueing) the simulated
latency of every request must equal Eq. (1)/(2)'s RCT exactly."""

import numpy as np
import pytest

from repro.balancers import SingleMdsPolicy
from repro.balancers.base import BalancePolicy
from repro.cluster import PartitionMap
from repro.costmodel import CostParams
from repro.costmodel.rct import request_rct
from repro.fs import SimConfig, run_simulation
from repro.namespace.builder import build_random
from repro.sim import SeedSequenceFactory
from repro.workloads.trace import TraceBuilder
from tests.test_costmodel_evaluate import random_trace, scatter_partition


class FrozenPolicy(BalancePolicy):
    """Applies a pre-scattered partition at setup, never rebalances."""

    name = "Frozen"

    def __init__(self, owners: np.ndarray):
        self.owners = owners

    def setup(self, tree, n_mds, rng):
        pmap = PartitionMap(tree, n_mds=n_mds)
        pmap.assign_bulk(self.owners)
        return pmap

    def rebalance(self, ctx):
        return []


def build_world(seed=0, cache_depth=0, n_mds=4):
    ssf = SeedSequenceFactory(seed)
    rng = ssf.stream("w")
    built = build_random(rng, n_dirs=50, files_per_dir_mean=3)
    tree = built.tree
    ref = PartitionMap(tree, n_mds=n_mds)
    scatter_partition(rng, tree, ref, n_moves=8)
    owners = ref.owner_array().copy()
    owners[~tree.dir_mask()] = 0
    # read-only trace so the namespace (and costs) stay static during replay
    tb = TraceBuilder()
    dirs = list(tree.iter_dirs())
    for i in range(300):
        d = int(dirs[int(rng.integers(0, len(dirs)))])
        if rng.random() < 0.25:
            tb.readdir(d)
        else:
            tb.stat(d, f"n{i}")
    trace = tb.build()
    params = CostParams(cache_depth=cache_depth)
    return tree, ref, owners, trace, params


@pytest.mark.parametrize("cache_depth", [0, 3])
def test_single_client_latency_equals_analytic_rct(cache_depth):
    tree, ref, owners, trace, params = build_world(cache_depth=cache_depth)
    expected = []
    for i in range(len(trace)):
        rc = request_rct(
            tree, ref, params, int(trace.op[i]), int(trace.dir_ino[i]),
            name=trace.names[i], aux=int(trace.aux[i]),
        )
        expected.append(rc.rct)
    expected = np.array(expected)

    config = SimConfig(n_mds=4, n_clients=1, epoch_ms=1e9, params=params)
    result = run_simulation(tree, trace, FrozenPolicy(owners), config)

    assert result.ops_completed == len(trace)
    # one client: total runtime is the sum of per-request RCTs
    assert result.duration_ms == pytest.approx(expected.sum(), rel=1e-9)
    assert result.mean_latency_ms == pytest.approx(expected.mean(), rel=1e-9)


def test_single_client_rpc_count_matches_analytic_m():
    tree, ref, owners, trace, params = build_world(seed=1)
    from repro.costmodel import evaluate_trace

    load = evaluate_trace(trace, tree, ref, params)
    config = SimConfig(n_mds=4, n_clients=1, epoch_ms=1e9, params=params)
    result = run_simulation(tree, trace, FrozenPolicy(owners), config)
    assert result.total_rpcs == load.total_rpcs
    assert result.rpcs_per_request == pytest.approx(load.rpcs_per_request)


def test_busy_time_equals_analytic_tmeta():
    """Total server busy time must equal the trace's T_meta mass.

    (Per-MDS attribution legitimately differs: the analytic bin-packing
    charges a request's whole T_meta to its primary MDS — the paper's §3.2
    approximation — while the DES pays each contacted server its own share
    of the path reads.  The totals are identical.)
    """
    tree, ref, owners, trace, params = build_world(seed=2)
    expected_total = 0.0
    for i in range(len(trace)):
        rc = request_rct(
            tree, ref, params, int(trace.op[i]), int(trace.dir_ino[i]),
            name=trace.names[i], aux=int(trace.aux[i]),
        )
        expected_total += rc.t_meta
    config = SimConfig(n_mds=4, n_clients=1, epoch_ms=1e9, params=params)
    result = run_simulation(tree, trace, FrozenPolicy(owners), config)
    # lsdir gathers: the rtt part of the (rtt + t_rpc)*i extra is client
    # latency, not server busy time; subtract it (the t_rpc part IS busy)
    from repro.costmodel.optypes import CATEGORY_LSDIR, CATEGORY_ARRAY

    gather = 0.0
    for i in np.nonzero(CATEGORY_ARRAY[trace.op] == CATEGORY_LSDIR)[0]:
        gather += params.rtt * ref.lsdir_fanout(int(trace.dir_ino[i]))
    assert result.total_busy_per_mds().sum() == pytest.approx(
        expected_total - gather, rel=1e-9
    )


def test_queueing_emerges_under_contention():
    """With many clients the mean latency must exceed the uncontended RCT."""
    tree, ref, owners, trace, params = build_world(seed=3)
    solo = run_simulation(
        tree, trace, FrozenPolicy(owners),
        SimConfig(n_mds=4, n_clients=1, epoch_ms=1e9, params=params),
    )
    tree2, ref2, owners2, trace2, _ = build_world(seed=3)
    crowded = run_simulation(
        tree2, trace2, FrozenPolicy(owners2),
        SimConfig(n_mds=4, n_clients=25, epoch_ms=1e9, params=params),
    )
    assert crowded.mean_latency_ms > solo.mean_latency_ms
    # but throughput improves: the cluster pipeline fills
    assert crowded.throughput_ops_per_sec > solo.throughput_ops_per_sec


def test_simulation_deterministic():
    tree, ref, owners, trace, params = build_world(seed=4)
    cfg = SimConfig(n_mds=4, n_clients=8, epoch_ms=5.0, params=params)
    r1 = run_simulation(tree, trace, FrozenPolicy(owners), cfg)
    tree2, _, owners2, trace2, _ = build_world(seed=4)
    r2 = run_simulation(tree2, trace2, FrozenPolicy(owners2), cfg)
    assert r1.duration_ms == r2.duration_ms
    assert r1.ops_completed == r2.ops_completed
    assert r1.total_rpcs == r2.total_rpcs
    assert r1.mean_latency_ms == r2.mean_latency_ms


# ------------------------------------------------------------- fault parity


def test_empty_fault_schedule_is_bit_identical_to_none():
    """Installing an empty schedule must not move a single float: the fault
    layer's healthy path draws no RNG and schedules no events."""
    from repro.fs.faults import FaultSchedule

    tree, ref, owners, trace, params = build_world(seed=5)
    cfg_plain = SimConfig(n_mds=4, n_clients=8, epoch_ms=5.0, params=params)
    plain = run_simulation(tree, trace, FrozenPolicy(owners), cfg_plain).to_dict()

    tree2, _, owners2, trace2, _ = build_world(seed=5)
    cfg_faulty = SimConfig(
        n_mds=4, n_clients=8, epoch_ms=5.0, params=params, faults=FaultSchedule([])
    )
    empty = run_simulation(tree2, trace2, FrozenPolicy(owners2), cfg_faulty).to_dict()

    # the faults summary is the only legitimate difference
    assert plain.pop("faults") is None
    faults = empty.pop("faults")
    assert faults["events_scheduled"] == 0 and faults["retries"] == 0
    assert plain == empty


def test_same_seed_same_schedule_bit_identical():
    """Fault runs are as deterministic as healthy ones: same seed + same
    schedule => identical results, including every fault counter."""
    from repro.fs.faults import Crash, FaultSchedule, RpcDrop

    sched = FaultSchedule(
        [
            Crash(mds=1, start_ms=2.0, end_ms=4.0, warmup_ms=1.0, warmup_factor=2.0),
            RpcDrop(mds=2, start_ms=5.0, end_ms=8.0, probability=0.4),
        ]
    )

    def one_run():
        tree, ref, owners, trace, params = build_world(seed=6)
        cfg = SimConfig(
            n_mds=4, n_clients=8, epoch_ms=5.0, params=params, seed=6, faults=sched
        )
        return run_simulation(tree, trace, FrozenPolicy(owners), cfg).to_dict()

    r1, r2 = one_run(), one_run()
    assert r1 == r2
    # the schedule must actually have fired for this to mean anything
    assert r1["faults"]["crashes"] == 1
