#!/usr/bin/env python3
"""Regenerate the golden healthy-run fixtures in this directory.

Usage::

    PYTHONPATH=src python tests/golden/capture.py

Only rerun this when a change *intends* to shift baseline results — the
whole point of the fixtures (tests/test_golden_baseline.py) is to catch
fault-path refactors that silently move the healthy numbers.  The matrix is
3 seeds x 2 workloads at a small scale so a full capture stays under a
minute.
"""

from __future__ import annotations

import json
import pathlib

GOLDEN_DIR = pathlib.Path(__file__).parent

#: the fixture matrix: (workload kind, seed)
MATRIX = [(kind, seed) for kind in ("rw", "wi") for seed in (0, 1, 2)]

#: run shape — small enough for CI, big enough to cross several epochs
N_OPS = 2500
N_MDS = 3
N_CLIENTS = 12
EPOCH_MS = 60.0
CACHE_DEPTH = 2


def run_one(kind: str, seed: int) -> dict:
    from repro.balancers import LunulePolicy
    from repro.costmodel import CostParams
    from repro.fs import SimConfig, run_simulation
    from repro.harness.experiments import build_workload

    built, trace = build_workload(kind, N_OPS, seed)
    config = SimConfig(
        n_mds=N_MDS,
        n_clients=N_CLIENTS,
        epoch_ms=EPOCH_MS,
        params=CostParams(cache_depth=CACHE_DEPTH),
        seed=seed,
    )
    return run_simulation(built.tree, trace, LunulePolicy(), config).to_dict()


def fixture_path(kind: str, seed: int) -> pathlib.Path:
    return GOLDEN_DIR / f"baseline_{kind}_seed{seed}.json"


def main() -> None:
    for kind, seed in MATRIX:
        result = run_one(kind, seed)
        path = fixture_path(kind, seed)
        with open(path, "w") as f:
            json.dump(result, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {path} (ops={result['ops_completed']}, "
              f"duration={result['duration_ms']:.3f} ms)")


if __name__ == "__main__":
    main()
