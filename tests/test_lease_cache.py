"""Tests for the lease-cache alternative (the design the paper rejects)."""

import numpy as np
import pytest

from repro.balancers import CoarseHashPolicy, SingleMdsPolicy
from repro.costmodel import CostParams
from repro.fs import SimConfig, run_simulation
from repro.fs.cache import LeaseCache
from repro.fs.filesystem import OrigamiFS
from repro.namespace import NamespaceTree
from repro.sim import SeedSequenceFactory
from repro.workloads import generate_trace_ro, generate_trace_wi


def test_lease_cache_unit_semantics():
    tree = NamespaceTree()
    d = tree.makedirs("/a/b")
    c = LeaseCache(tree, ttl_ms=10.0, recall_cost_ms=0.5)
    assert not c.covers(d, now=0.0)      # miss
    c.grant(d, now=0.0)
    assert c.covers(d, now=5.0)          # hit within TTL
    assert not c.covers(d, now=15.0)     # expired
    c.grant(d, now=20.0)
    assert c.recall_if_leased(d, now=21.0) == 0.5   # live lease -> recall cost
    assert c.recall_if_leased(d, now=21.0) == 0.0   # already recalled
    assert c.recalls == 1
    assert 0 < c.hit_rate < 1


def test_lease_cache_validation():
    tree = NamespaceTree()
    with pytest.raises(ValueError):
        LeaseCache(tree, ttl_ms=0)
    with pytest.raises(ValueError):
        LeaseCache(tree, recall_cost_ms=-1)
    with pytest.raises(ValueError):
        SimConfig(cache_mode="bogus")


def run_mode(kind, mode, seed=9, n_ops=20000):
    gen = generate_trace_ro if kind == "ro" else generate_trace_wi
    built, trace = gen(SeedSequenceFactory(seed).stream("w"), n_ops=n_ops)
    cfg = SimConfig(
        n_mds=4, n_clients=80, epoch_ms=80.0,
        params=CostParams(cache_depth=2), cache_mode=mode,
    )
    fs = OrigamiFS(built.tree, trace, CoarseHashPolicy(), cfg)
    return fs, fs.run()


def test_lease_cache_shines_on_read_only():
    """No mutations -> no recalls: leases beat the near-root cache on RPCs."""
    _, near = run_mode("ro", "near-root")
    fs_lease, lease = run_mode("ro", "lease")
    assert isinstance(fs_lease.cache, LeaseCache)
    assert fs_lease.cache.recalls == 0
    assert lease.rpcs_per_request < near.rpcs_per_request


def test_lease_cache_pays_for_writes():
    """Write-heavy trace: recalls happen and the advantage shrinks/flips."""
    fs_lease, lease = run_mode("wi", "lease")
    assert fs_lease.cache.recalls > 0
    # consistency work is real server busy time
    _, none_run = run_mode("wi", "none")
    assert lease.ops_completed == none_run.ops_completed


def test_cache_mode_none_disables_coverage():
    fs, r = run_mode("ro", "none", n_ops=5000)
    assert r.cache_hit_rate == 0.0
