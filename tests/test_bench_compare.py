"""Comparator: direction-aware regression gating between two artifacts."""

import copy

import pytest

from repro.bench.compare import (
    DEFAULT_THRESHOLDS,
    SMOKE_THRESHOLDS,
    compare_artifacts,
    is_higher_better,
)
from repro.bench.store import ArtifactError, build_artifact


def make_artifact(mean_latency=1.0, p99_latency=2.0, tput=50_000.0, scenario="demo"):
    aggregates = {
        "main": {
            "mean_latency_ms": {"mean": mean_latency, "n": 2.0},
            "p99_latency_ms": {"mean": p99_latency, "n": 2.0},
            "steady_state_throughput": {"mean": tput, "n": 2.0},
            "migrations": {"mean": 4.0, "n": 2.0},
        }
    }
    return build_artifact(
        scenario={"name": scenario, "kind": "rw"},
        scale_name="smoke",
        seeds=[1, 2],
        runs=[],
        aggregates=aggregates,
        wall_s=0.1,
        workers=1,
    )


def test_direction_classification():
    assert is_higher_better("steady_state_throughput")
    assert is_higher_better("cache_hit_rate")
    assert not is_higher_better("mean_latency_ms")
    assert not is_higher_better("rpcs_per_request")


def test_identical_artifacts_pass():
    base = make_artifact()
    result = compare_artifacts(base, copy.deepcopy(base))
    assert result.ok
    assert "PASS" in result.render()
    gated = {r.metric for r in result.rows if r.threshold is not None}
    assert gated == {"mean_latency_ms", "p99_latency_ms", "steady_state_throughput"}
    # ungated metrics are informational only
    migr = [r for r in result.rows if r.metric == "migrations"]
    assert migr and migr[0].threshold is None and not migr[0].regressed


def test_latency_regression_beyond_threshold_fails():
    base = make_artifact()
    cand = make_artifact(mean_latency=1.10)  # +10% > the 5% gate
    result = compare_artifacts(base, cand)
    assert not result.ok
    bad = result.regressions
    assert [r.metric for r in bad] == ["mean_latency_ms"]
    assert bad[0].regression_frac == pytest.approx(0.10)
    assert "FAIL" in result.render()


def test_throughput_gate_is_direction_aware():
    base = make_artifact()
    # throughput UP 20% is an improvement, never a regression
    assert compare_artifacts(base, make_artifact(tput=60_000.0)).ok
    # throughput DOWN 20% trips the 5% gate
    result = compare_artifacts(base, make_artifact(tput=40_000.0))
    assert [r.metric for r in result.regressions] == ["steady_state_throughput"]
    assert result.regressions[0].regression_frac == pytest.approx(0.20)


def test_p99_threshold_is_looser_than_mean():
    base = make_artifact()
    # +8% p99 passes the 10% p99 gate while +8% mean would fail the 5% one
    assert compare_artifacts(base, make_artifact(p99_latency=2.16)).ok
    assert not compare_artifacts(base, make_artifact(p99_latency=2.3)).ok


def test_custom_and_smoke_thresholds():
    base = make_artifact()
    cand = make_artifact(mean_latency=1.15)  # +15%
    assert not compare_artifacts(base, cand).ok
    assert compare_artifacts(base, cand, SMOKE_THRESHOLDS).ok
    assert compare_artifacts(base, cand, {"mean_latency_ms": 0.5}).ok
    assert not compare_artifacts(base, cand, {"mean_latency_ms": 0.01}).ok
    assert DEFAULT_THRESHOLDS["mean_latency_ms"] < SMOKE_THRESHOLDS["mean_latency_ms"]


def test_zero_baseline_handling():
    base = make_artifact()
    base["aggregates"]["main"]["mean_latency_ms"]["mean"] = 0.0
    cand = copy.deepcopy(base)
    assert compare_artifacts(base, copy.deepcopy(base)).ok
    cand["aggregates"]["main"]["mean_latency_ms"]["mean"] = 0.5
    assert not compare_artifacts(base, cand).ok


def test_scenario_mismatch_rejected():
    with pytest.raises(ArtifactError, match="different scenarios"):
        compare_artifacts(make_artifact(), make_artifact(scenario="other"))


def test_missing_variants_reported_not_gated():
    base = make_artifact()
    cand = copy.deepcopy(base)
    cand["aggregates"]["extra"] = cand["aggregates"].pop("main")
    result = compare_artifacts(base, cand)
    assert result.missing_in_candidate == ["main"]
    assert result.missing_in_baseline == ["extra"]
    assert result.ok  # nothing comparable regressed
    rendered = result.render()
    assert "missing from the candidate" in rendered


def test_engine_metric_directions():
    # fewer engine events for the same simulated work = cheaper simulation
    assert not is_higher_better("engine_events")
    assert not is_higher_better("engine_events_per_virtual_sec")
    # ...but wall-clock event rate is simulator speed: more is better
    assert is_higher_better("engine_events_per_wall_sec")
    assert is_higher_better("timeline.peak_ops_per_sec")


def _perf(rate, wall=1.0):
    return {
        "main": {
            "wall_s": {"mean": wall, "n": 2.0},
            "engine_events_per_wall_sec": {"mean": rate, "n": 2.0},
        }
    }


def test_perf_section_gated_in_default_profile_only():
    base = make_artifact()
    base["perf"] = _perf(100_000.0)
    cand = make_artifact()
    cand["perf"] = _perf(60_000.0)  # simulator got 40% slower

    default = compare_artifacts(base, cand)  # default profile gates at 30%
    bad = default.regressions
    assert [r.metric for r in bad] == ["engine_events_per_wall_sec"]
    assert bad[0].regression_frac == pytest.approx(0.40)

    smoke = compare_artifacts(base, cand, thresholds=SMOKE_THRESHOLDS)
    assert smoke.ok  # wall rate is informational in the smoke profile
    wall_rows = [r for r in smoke.rows if r.metric == "engine_events_per_wall_sec"]
    assert wall_rows and wall_rows[0].threshold is None


def test_perf_section_missing_from_one_artifact_is_ignored():
    base = make_artifact()
    base["perf"] = _perf(100_000.0)
    cand = make_artifact()  # e.g. produced before the perf section existed
    result = compare_artifacts(base, cand)
    assert result.ok
    assert not any(r.metric == "engine_events_per_wall_sec" for r in result.rows)


def test_virtual_event_rate_gates_in_both_profiles():
    base = make_artifact()
    cand = make_artifact()
    for art, rate in ((base, 100_000.0), (cand, 120_000.0)):  # +20% more events
        art["aggregates"]["main"]["engine_events_per_virtual_sec"] = {
            "mean": rate, "n": 2.0,
        }
    for thresholds in (DEFAULT_THRESHOLDS, SMOKE_THRESHOLDS):
        result = compare_artifacts(base, cand, thresholds=thresholds)
        assert [r.metric for r in result.regressions] == [
            "engine_events_per_virtual_sec"
        ]
