"""Property tests for the trace generators: determinism by seed and op mix.

The hot-path PR touched every generator (precomputed directory listings in
``compile_rw``/``web_ro``), so these tests pin down the two contracts the
optimization must preserve for *arbitrary* seeds:

* **determinism** — the same (seed, n_ops) rebuilds the byte-identical
  trace, column for column, names included;
* **op-mix shape** — each family keeps its paper-calibrated distribution
  (web is read-only with ~8% readdirs, cloud is >2/3 writes, compile mixes
  reads with a substantial create share).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.optypes import OpType
from repro.sim.rng import SeedSequenceFactory
from repro.workloads import (
    generate_trace_ro,
    generate_trace_rw,
    generate_trace_wi,
)
from repro.workloads.zipfian import DriftingZipf, zipf_sample

_GENERATORS = {
    "rw": generate_trace_rw,
    "ro": generate_trace_ro,
    "wi": generate_trace_wi,
}

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _build(kind: str, seed: int, n_ops: int = 1500):
    ssf = SeedSequenceFactory(seed)
    return _GENERATORS[kind](ssf.stream(f"workload-{kind}"), n_ops=n_ops)


def _columns(trace):
    return (
        trace.op.tolist(),
        trace.dir_ino.tolist(),
        trace.aux.tolist(),
        trace.names,
    )


# ------------------------------------------------------------- determinism
@settings(max_examples=5, deadline=None)
@given(kind=st.sampled_from(sorted(_GENERATORS)), seed=seeds)
def test_generator_is_deterministic_by_seed(kind, seed):
    _, first = _build(kind, seed)
    _, second = _build(kind, seed)
    assert _columns(first) == _columns(second)


@settings(max_examples=5, deadline=None)
@given(kind=st.sampled_from(sorted(_GENERATORS)), seed=seeds)
def test_generator_tree_is_deterministic_by_seed(kind, seed):
    built_a, _ = _build(kind, seed)
    built_b, _ = _build(kind, seed)
    ta, tb = built_a.tree, built_b.tree
    assert ta.capacity == tb.capacity
    assert ta.parent_array().tolist() == tb.parent_array().tolist()
    assert ta._alive[: ta.capacity].tolist() == tb._alive[: tb.capacity].tolist()


@settings(max_examples=5, deadline=None)
@given(kind=st.sampled_from(sorted(_GENERATORS)), seed_a=seeds, seed_b=seeds)
def test_generator_distinct_seeds_differ(kind, seed_a, seed_b):
    if seed_a == seed_b:
        return
    _, ta = _build(kind, seed_a)
    _, tb = _build(kind, seed_b)
    assert _columns(ta) != _columns(tb)


# ----------------------------------------------------------------- op mix
@settings(max_examples=5, deadline=None)
@given(seed=seeds)
def test_web_ro_mix_is_read_only_with_calibrated_readdirs(seed):
    _, tr = _build("ro", seed, n_ops=2000)
    assert tr.write_fraction() == 0.0
    ops = tr.op
    readdir = float(np.mean(ops == int(OpType.READDIR)))
    stat = float(np.mean(ops == int(OpType.STAT)))
    opn = float(np.mean(ops == int(OpType.OPEN)))
    # generator parameters: 8% readdir, then 60/40 stat/open
    assert 0.04 < readdir < 0.13
    assert stat > opn
    assert abs(readdir + stat + opn - 1.0) < 1e-9  # nothing else appears


@settings(max_examples=5, deadline=None)
@given(seed=seeds)
def test_cloud_wi_mix_is_write_intensive(seed):
    _, tr = _build("wi", seed, n_ops=2000)
    # the paper's >2/3 namespace-mutation share (generator target 0.75)
    assert 0.65 < tr.write_fraction() < 0.85
    ops = tr.op
    creates = int(np.sum(ops == int(OpType.CREATE)))
    unlinks = int(np.sum(ops == int(OpType.UNLINK)))
    assert creates > unlinks > 0  # churn deletes a minority of fresh objects


@settings(max_examples=5, deadline=None)
@given(seed=seeds)
def test_compile_rw_mix_is_read_leaning_but_write_substantial(seed):
    _, tr = _build("rw", seed, n_ops=2000)
    wf = tr.write_fraction()
    assert 0.15 < wf < 0.55
    ops = tr.op
    # compilation shape: header stats dominate reads, objects are created
    assert int(np.sum(ops == int(OpType.STAT))) > 0
    assert int(np.sum(ops == int(OpType.CREATE))) > 0
    assert int(np.sum(ops == int(OpType.READDIR))) > 0


# ------------------------------------------------------- zipfian sampler
@settings(max_examples=10, deadline=None)
@given(seed=seeds, alpha=st.floats(min_value=0.8, max_value=2.0, allow_nan=False))
def test_zipf_sample_is_deterministic_and_skewed(seed, alpha):
    items = list(range(100, 160))
    a = zipf_sample(SeedSequenceFactory(seed).stream("z"), items, alpha, 800)
    b = zipf_sample(SeedSequenceFactory(seed).stream("z"), items, alpha, 800)
    assert np.array_equal(a, b)
    counts = np.bincount(a, minlength=200)
    # rank-1 item (first position) is sampled at least as often as the tail
    assert counts[items[0]] >= counts[items[-1]]
    assert counts[items[0]] > 800 / len(items)  # strictly above uniform


@settings(max_examples=10, deadline=None)
@given(seed=seeds, drift=st.floats(min_value=0.2, max_value=1.0, allow_nan=False))
def test_drifting_zipf_same_seed_same_drift_sequence(seed, drift):
    def trajectory():
        z = DriftingZipf(
            SeedSequenceFactory(seed).stream("z"), list(range(40)),
            alpha=1.2, drift=drift,
        )
        out = []
        for _ in range(4):
            out.append((z.sample(50).tolist(), z.hot_set(5)))
            z.advance()
        return out

    assert trajectory() == trajectory()


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_drifting_zipf_zero_drift_keeps_ranks(seed):
    z = DriftingZipf(
        SeedSequenceFactory(seed).stream("z"), list(range(40)),
        alpha=1.2, drift=0.0,
    )
    before = z.hot_set(10)
    for _ in range(5):
        z.advance()
    assert z.hot_set(10) == before
