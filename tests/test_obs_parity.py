"""Observability must be passive: tracing/metrics on == off, bit for bit.

Spans and metrics draw no RNG values and schedule no events, so a fully
instrumented run must produce the same SimResult headline numbers as an
uninstrumented one — and the disabled path must stay cheap.
"""

import pytest

from repro.balancers import LunulePolicy
from repro.costmodel import CostParams
from repro.fs import SimConfig, run_simulation
from repro.obs import JsonlTracer, Observability
from repro.sim import SeedSequenceFactory
from repro.workloads import generate_trace_rw


def _world(seed=0, n_ops=6000):
    ssf = SeedSequenceFactory(seed)
    return generate_trace_rw(ssf.stream("w"), n_ops=n_ops)


def _config(obs=None, **kw):
    return SimConfig(
        n_mds=3,
        n_clients=20,
        epoch_ms=50.0,
        params=CostParams(cache_depth=2),
        seed=0,
        obs=obs,
        **kw,
    )


HEADLINE = (
    "ops_completed",
    "duration_ms",
    "mean_latency_ms",
    "p50_latency_ms",
    "p99_latency_ms",
    "total_rpcs",
    "migrations",
    "inodes_migrated",
    "failed_ops",
    "cache_hit_rate",
    "engine_events",
)


def test_tracing_and_metrics_do_not_perturb_the_run():
    built, trace = _world()
    baseline = run_simulation(built.tree, trace, LunulePolicy(), _config(obs=None))

    built2, trace2 = _world()
    obs = Observability(metrics=True, trace=True, audit=True)
    traced = run_simulation(built2.tree, trace2, LunulePolicy(), _config(obs=obs))

    for name in HEADLINE:
        assert getattr(traced, name) == getattr(baseline, name), name
    for eb, et in zip(baseline.per_epoch, traced.per_epoch):
        assert eb.duration_ms == et.duration_ms
        assert (eb.busy_ms == et.busy_ms).all()
        assert (eb.qps == et.qps).all()


def test_span_decomposition_matches_client_latency():
    built, trace = _world(seed=3)
    obs = Observability(trace=True)
    r = run_simulation(built.tree, trace, LunulePolicy(), _config(obs=obs))
    spans = obs.tracer.spans
    assert len(spans) == r.ops_completed
    total_lat = sum(s.latency_ms for s in spans)
    total_parts = sum(s.queue_ms + s.service_ms + s.net_ms for s in spans)
    assert total_parts == pytest.approx(total_lat, rel=1e-9)
    # span-side mean must agree with the LatencyRecorder's exact mean
    assert total_lat / len(spans) == pytest.approx(r.mean_latency_ms, rel=1e-9)


def test_audit_resolves_every_non_final_migration():
    built, trace = _world(seed=1, n_ops=8000)
    obs = Observability(audit=True)
    r = run_simulation(built.tree, trace, LunulePolicy(), _config(obs=obs))
    assert r.migrations > 0, "skewed start must migrate"
    audit = obs.audit
    assert audit.total_migrations == r.migrations
    # every migration not in the final (unobserved) epoch has a realized value
    last_epoch = max(e.epoch for e in audit.entries)
    for e in audit.entries:
        if e.epoch < last_epoch:
            assert e.resolved


def test_jsonl_streaming_matches_in_memory(tmp_path):
    path = tmp_path / "spans.jsonl"
    built, trace = _world(seed=2)
    obs = Observability(tracer=JsonlTracer(str(path), retain=True))
    r = run_simulation(built.tree, trace, LunulePolicy(), _config(obs=obs))
    obs.close()
    lines = path.read_text().splitlines()
    assert len(lines) == len(obs.tracer.spans) == r.ops_completed


def test_disabled_observability_overhead_is_small():
    """The NULL_OBS hot path must cost <= 5% vs the pre-instrumentation code.

    We cannot rerun the uninstrumented binary here, so approximate: the
    disabled run must be within 5% + noise of itself across repeats, and a
    fully-instrumented run bounds the worst case.  Wall-clock flakiness makes
    a strict CI assertion counterproductive; assert a loose 'disabled is not
    slower than enabled' sanity bound instead.
    """
    import time

    def run_once(obs):
        built, trace = _world(seed=4, n_ops=4000)
        t0 = time.perf_counter()
        run_simulation(built.tree, trace, LunulePolicy(), _config(obs=obs))
        return time.perf_counter() - t0

    run_once(None)  # warm caches/JIT-ish effects
    disabled = min(run_once(None) for _ in range(2))
    enabled = min(run_once(Observability(metrics=True, trace=True, audit=True)) for _ in range(2))
    # disabled must never be meaningfully slower than fully instrumented
    assert disabled <= enabled * 1.5
