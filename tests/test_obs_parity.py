"""Observability must be passive: tracing/metrics on == off, bit for bit.

Spans and metrics draw no RNG values and schedule no events, so a fully
instrumented run must produce the same SimResult headline numbers as an
uninstrumented one — and the disabled path must stay cheap.
"""

import pytest

from repro.balancers import LunulePolicy
from repro.costmodel import CostParams
from repro.fs import SimConfig, run_simulation
from repro.obs import JsonlTracer, Observability
from repro.sim import SeedSequenceFactory
from repro.workloads import generate_trace_rw


def _world(seed=0, n_ops=6000):
    ssf = SeedSequenceFactory(seed)
    return generate_trace_rw(ssf.stream("w"), n_ops=n_ops)


def _config(obs=None, **kw):
    return SimConfig(
        n_mds=3,
        n_clients=20,
        epoch_ms=50.0,
        params=CostParams(cache_depth=2),
        seed=0,
        obs=obs,
        **kw,
    )


HEADLINE = (
    "ops_completed",
    "duration_ms",
    "mean_latency_ms",
    "p50_latency_ms",
    "p99_latency_ms",
    "total_rpcs",
    "migrations",
    "inodes_migrated",
    "failed_ops",
    "cache_hit_rate",
    "engine_events",
)


def test_tracing_and_metrics_do_not_perturb_the_run():
    built, trace = _world()
    baseline = run_simulation(built.tree, trace, LunulePolicy(), _config(obs=None))

    built2, trace2 = _world()
    obs = Observability(metrics=True, trace=True, audit=True)
    traced = run_simulation(built2.tree, trace2, LunulePolicy(), _config(obs=obs))

    for name in HEADLINE:
        assert getattr(traced, name) == getattr(baseline, name), name
    for eb, et in zip(baseline.per_epoch, traced.per_epoch):
        assert eb.duration_ms == et.duration_ms
        assert (eb.busy_ms == et.busy_ms).all()
        assert (eb.qps == et.qps).all()


def test_span_decomposition_matches_client_latency():
    built, trace = _world(seed=3)
    obs = Observability(trace=True)
    r = run_simulation(built.tree, trace, LunulePolicy(), _config(obs=obs))
    spans = obs.tracer.spans
    assert len(spans) == r.ops_completed
    total_lat = sum(s.latency_ms for s in spans)
    total_parts = sum(s.queue_ms + s.service_ms + s.net_ms for s in spans)
    assert total_parts == pytest.approx(total_lat, rel=1e-9)
    # span-side mean must agree with the LatencyRecorder's exact mean
    assert total_lat / len(spans) == pytest.approx(r.mean_latency_ms, rel=1e-9)


def test_audit_resolves_every_non_final_migration():
    built, trace = _world(seed=1, n_ops=8000)
    obs = Observability(audit=True)
    r = run_simulation(built.tree, trace, LunulePolicy(), _config(obs=obs))
    assert r.migrations > 0, "skewed start must migrate"
    audit = obs.audit
    assert audit.total_migrations == r.migrations
    # every migration not in the final (unobserved) epoch has a realized value
    last_epoch = max(e.epoch for e in audit.entries)
    for e in audit.entries:
        if e.epoch < last_epoch:
            assert e.resolved


def test_jsonl_streaming_matches_in_memory(tmp_path):
    path = tmp_path / "spans.jsonl"
    built, trace = _world(seed=2)
    obs = Observability(tracer=JsonlTracer(str(path), retain=True))
    r = run_simulation(built.tree, trace, LunulePolicy(), _config(obs=obs))
    obs.close()
    lines = path.read_text().splitlines()
    assert len(lines) == len(obs.tracer.spans) == r.ops_completed


def test_timeline_and_slo_do_not_perturb_the_run():
    """Timeline collection is passive: headline metrics bit-identical."""
    built, trace = _world()
    baseline = run_simulation(built.tree, trace, LunulePolicy(), _config(obs=None))

    built2, trace2 = _world()
    obs = Observability(metrics=True, timeline=True, timeline_window_ms=25.0)
    timed = run_simulation(built2.tree, trace2, LunulePolicy(), _config(obs=obs))

    assert obs.timeline.n_windows > 0
    for name in HEADLINE:
        assert getattr(timed, name) == getattr(baseline, name), name
    for eb, et in zip(baseline.per_epoch, timed.per_epoch):
        assert eb.duration_ms == et.duration_ms
        assert (eb.busy_ms == et.busy_ms).all()
        assert (eb.qps == et.qps).all()


def _faulted_durable_config(tmp_path, obs, subdir):
    from repro.fs.faults import Crash, FaultSchedule, Slowdown

    faults = FaultSchedule(
        [
            Crash(mds=0, start_ms=30.0, end_ms=90.0, warmup_factor=2.0),
            Slowdown(mds=1, start_ms=50.0, end_ms=120.0, factor=3.0),
        ]
    )
    return _config(
        obs=obs, faults=faults, data_dir=str(tmp_path / subdir)
    )


def test_timeline_and_slo_bit_identical_under_faults_and_durability(tmp_path):
    """Two identical faulted+durable runs produce byte-identical timelines
    and SLO reports — the collector inherits the simulator's determinism."""
    import json

    from repro.obs import SloSpec, evaluate_slo

    spec = SloSpec.from_dict(
        {
            "name": "parity",
            "objectives": [
                {"name": "p95", "metric": "p95_ms", "target_ms": 8.0,
                 "error_budget": 0.2, "burn_window": 4},
                {"name": "hits", "metric": "cache_hit_rate", "target": 0.05,
                 "error_budget": 0.5},
            ],
        }
    )

    outputs = []
    for subdir in ("a", "b"):
        built, trace = _world(seed=7, n_ops=5000)
        obs = Observability(metrics=True, timeline=True, timeline_window_ms=20.0)
        cfg = _faulted_durable_config(tmp_path, obs, subdir)
        r = run_simulation(built.tree, trace, LunulePolicy(), cfg)
        rows = obs.timeline.to_rows()
        report = evaluate_slo(rows, spec, faults=cfg.faults)
        outputs.append(
            (
                json.dumps(obs.timeline.meta(), sort_keys=True),
                json.dumps(rows, sort_keys=True),
                json.dumps(report.to_dict(), sort_keys=True),
                r.ops_completed,
            )
        )
    assert outputs[0] == outputs[1]
    # the fault schedule overlaps the run: breach annotation plumbing must
    # have seen real windows (faults end by 120ms, run lasts much longer)
    assert outputs[0][3] > 0


def test_window_aggregates_sum_exactly_to_end_of_run_counters(tmp_path):
    """Telescoping deltas: every timeline column sums bit-for-bit to the
    corresponding end-of-run counter, including the durability columns."""
    from repro.fs.filesystem import OrigamiFS

    built, trace = _world(seed=5, n_ops=5000)
    obs = Observability(timeline=True, timeline_window_ms=20.0)
    cfg = _config(obs=obs, data_dir=str(tmp_path / "stores"))
    fs = OrigamiFS(built.tree, trace, LunulePolicy(), cfg)
    # bind() has already snapshotted its baselines (end of __init__): the
    # same counters read now reproduce them exactly
    base_wal = [int(s.store.stats.wal_appends) for s in fs.servers]
    base_fsync = [int(s.store.stats.fsyncs) for s in fs.servers]
    base_rpcs = [int(s.total_rpcs) for s in fs.servers]
    r = fs.run()

    rows = obs.timeline.to_rows()
    assert rows, "run must close at least one window"
    assert sum(row["ops"] for row in rows) == r.ops_completed
    assert sum(row["engine_events"] for row in rows) == r.engine_events
    assert sum(row["migrations"] for row in rows) == r.migrations

    n_mds = cfg.n_mds
    for mds in range(n_mds):
        col = lambda name: sum(row[f"mds_{name}"][mds] for row in rows)
        server = fs.servers[mds]
        assert col("ops") == server.total_requests
        assert col("rpcs") == server.total_rpcs - base_rpcs[mds]
        assert col("wal_appends") == int(server.store.stats.wal_appends) - base_wal[mds]
        assert col("fsyncs") == int(server.store.stats.fsyncs) - base_fsync[mds]
        assert col("busy_ms") == pytest.approx(server.total_busy_ms, abs=1e-9)
        assert col("wal_ms") == pytest.approx(server.durability_ms_total, abs=1e-9)
    # cluster rpcs: per-MDS column sums telescope to the run total
    assert sum(sum(row["mds_rpcs"]) for row in rows) == r.total_rpcs - sum(base_rpcs)

    # the SimResult summary is the same series rolled up
    assert r.timeline is not None
    assert r.timeline["total_ops"] == float(r.ops_completed)
    assert r.timeline["engine_events"] == float(r.engine_events)
    assert r.timeline["windows"] == float(len(rows))


def test_trace_sampling_keeps_every_nth_span(tmp_path):
    """--trace-sample N retention is by completion ordinal: deterministic,
    and the sampled file is an exact subsequence of the full trace."""
    import json

    full_path = tmp_path / "full.jsonl"
    sampled_path = tmp_path / "sampled.jsonl"

    built, trace = _world(seed=6, n_ops=3000)
    obs_full = Observability(tracer=JsonlTracer(str(full_path)))
    run_simulation(built.tree, trace, LunulePolicy(), _config(obs=obs_full))
    obs_full.close()

    built2, trace2 = _world(seed=6, n_ops=3000)
    obs_sampled = Observability(tracer=JsonlTracer(str(sampled_path), sample=7))
    r = run_simulation(built2.tree, trace2, LunulePolicy(), _config(obs=obs_sampled))
    obs_sampled.close()

    full = full_path.read_text().splitlines()
    sampled = sampled_path.read_text().splitlines()
    expected = full[::7]
    assert sampled == expected
    assert len(sampled) == (r.ops_completed + 6) // 7
    assert obs_sampled.tracer.dropped == r.ops_completed - len(sampled)


def test_disabled_observability_overhead_is_small():
    """The NULL_OBS hot path must cost <= 5% vs the pre-instrumentation code.

    We cannot rerun the uninstrumented binary here, so approximate: the
    disabled run must be within 5% + noise of itself across repeats, and a
    fully-instrumented run bounds the worst case.  Wall-clock flakiness makes
    a strict CI assertion counterproductive; assert a loose 'disabled is not
    slower than enabled' sanity bound instead.
    """
    import time

    def run_once(obs):
        built, trace = _world(seed=4, n_ops=4000)
        t0 = time.perf_counter()
        run_simulation(built.tree, trace, LunulePolicy(), _config(obs=obs))
        return time.perf_counter() - t0

    run_once(None)  # warm caches/JIT-ish effects
    disabled = min(run_once(None) for _ in range(2))
    enabled = min(run_once(Observability(metrics=True, trace=True, audit=True)) for _ in range(2))
    # disabled must never be meaningfully slower than fully instrumented
    assert disabled <= enabled * 1.5
