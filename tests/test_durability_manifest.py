"""Unit tests for the MANIFEST edit log (repro.durability.manifest)."""

import json
import zlib

import pytest

from repro.durability.errors import ManifestError
from repro.durability.manifest import MANIFEST_NAME, Manifest, VersionState, _canonical


def test_fresh_open_writes_header_only(tmp_path):
    m = Manifest.open(str(tmp_path), use_fsync=False)
    assert m.state.tables == {} and m.state.guards == {}
    lines = (tmp_path / MANIFEST_NAME).read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["e"]["type"] == "header"


def test_edits_roundtrip_through_reopen(tmp_path):
    m = Manifest.open(str(tmp_path), use_fsync=False)
    m.log_guards(1, [b"", b"m"])
    m.log_add(0, None, 1, 100)
    m.log_add(1, b"", 2, 50)
    m.log_add(1, b"m", 3, 60)
    m.log_checkpoint(40)
    m.commit()
    m.close()
    m2 = Manifest.open(str(tmp_path), use_fsync=False)
    s = m2.state
    assert s.guards == {1: [b"", b"m"]}
    assert s.tables == {(0, None): [1], (1, b""): [2], (1, b"m"): [3]}
    assert s.table_bytes == {1: 100, 2: 50, 3: 60}
    assert s.wal_checkpoint_lsn == 40
    assert s.next_file_number == 4


def test_reopen_compacts_add_remove_churn(tmp_path):
    m = Manifest.open(str(tmp_path), use_fsync=False)
    for i in range(1, 21):
        m.log_add(0, None, i, 10)
    for i in range(1, 20):
        m.log_remove(0, None, i)
    m.commit()
    m.close()
    lines_before = len((tmp_path / MANIFEST_NAME).read_text().splitlines())
    assert lines_before == 1 + 39  # header + every edit appended
    m2 = Manifest.open(str(tmp_path), use_fsync=False)
    assert m2.state.tables == {(0, None): [20]}
    lines_after = len((tmp_path / MANIFEST_NAME).read_text().splitlines())
    assert lines_after == 2  # header + the one surviving add


def test_recency_order_survives_compaction(tmp_path):
    m = Manifest.open(str(tmp_path), use_fsync=False)
    for f in (1, 2, 3):  # 3 added last => newest
        m.log_add(1, b"", f, 10)
    m.commit()
    m.close()
    m2 = Manifest.open(str(tmp_path), use_fsync=False)
    assert m2.state.tables[(1, b"")] == [3, 2, 1]  # newest first
    m2.close()
    m3 = Manifest.open(str(tmp_path), use_fsync=False)  # compacted twice
    assert m3.state.tables[(1, b"")] == [3, 2, 1]


def test_pending_edits_invisible_until_commit(tmp_path):
    m = Manifest.open(str(tmp_path), use_fsync=False)
    m.log_add(0, None, 1, 10)
    # state applies immediately; the file does not until commit()
    assert m.state.tables == {(0, None): [1]}
    lines = (tmp_path / MANIFEST_NAME).read_text().splitlines()
    assert len(lines) == 1  # still just the header
    assert m.commit() == 1
    assert m.commit() == 0  # nothing pending on the second call
    lines = (tmp_path / MANIFEST_NAME).read_text().splitlines()
    assert len(lines) == 2


def test_crash_drops_pending_edits(tmp_path):
    m = Manifest.open(str(tmp_path), use_fsync=False)
    m.log_add(0, None, 1, 10)
    m.commit()
    m.log_add(0, None, 2, 10)
    m.crash()  # edit 2 was never acked
    m2 = Manifest.open(str(tmp_path), use_fsync=False)
    assert m2.state.tables == {(0, None): [1]}


def test_torn_last_line_tolerated(tmp_path):
    m = Manifest.open(str(tmp_path), use_fsync=False)
    m.log_add(0, None, 1, 10)
    m.log_add(0, None, 2, 10)
    m.commit()
    m.close()
    path = tmp_path / MANIFEST_NAME
    raw = path.read_text().splitlines()
    raw[-1] = raw[-1][: len(raw[-1]) // 2]  # tear the final line mid-JSON
    path.write_text("\n".join(raw))  # no trailing newline either
    m2 = Manifest.open(str(tmp_path), use_fsync=False)
    assert m2.state.tables == {(0, None): [1]}


def test_corrupt_middle_line_raises_typed(tmp_path):
    m = Manifest.open(str(tmp_path), use_fsync=False)
    m.log_add(0, None, 1, 10)
    m.log_add(0, None, 2, 10)
    m.commit()
    m.close()
    path = tmp_path / MANIFEST_NAME
    lines = path.read_text().splitlines()
    lines[1] = lines[1].replace('"add"', '"adX"', 1)  # CRC now mismatches
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ManifestError):
        Manifest.open(str(tmp_path), use_fsync=False)


def test_valid_frame_with_unknown_edit_type_raises(tmp_path):
    path = tmp_path / MANIFEST_NAME
    edit = {"type": "mystery"}
    body = _canonical(edit)
    framed = json.dumps({"c": zlib.crc32(body.encode()), "e": edit},
                        sort_keys=True, separators=(",", ":"))
    good = {"type": "header", "version": 1}
    gbody = _canonical(good)
    gframed = json.dumps({"c": zlib.crc32(gbody.encode()), "e": good},
                         sort_keys=True, separators=(",", ":"))
    # the bad edit must not be the last line (that would read as torn tail)
    path.write_text(framed + "\n" + gframed + "\n")
    with pytest.raises(ManifestError):
        Manifest.open(str(tmp_path), use_fsync=False)


def test_newer_schema_version_rejected(tmp_path):
    path = tmp_path / MANIFEST_NAME
    edit = {"type": "header", "version": 99}
    body = _canonical(edit)
    framed = json.dumps({"c": zlib.crc32(body.encode()), "e": edit},
                        sort_keys=True, separators=(",", ":"))
    trailer = {"type": "checkpoint", "wal_lsn": 1}
    tbody = _canonical(trailer)
    tframed = json.dumps({"c": zlib.crc32(tbody.encode()), "e": trailer},
                         sort_keys=True, separators=(",", ":"))
    path.write_text(framed + "\n" + tframed + "\n")
    with pytest.raises(ManifestError):
        Manifest.open(str(tmp_path), use_fsync=False)


def test_remove_of_non_live_file_raises():
    s = VersionState()
    with pytest.raises(ManifestError):
        s.apply({"type": "remove", "level": 0, "guard": None, "file": 7}, "<test>")


def test_checkpoint_lsn_is_monotonic():
    s = VersionState()
    s.apply({"type": "checkpoint", "wal_lsn": 10}, "<test>")
    s.apply({"type": "checkpoint", "wal_lsn": 5}, "<test>")  # stale, ignored
    assert s.wal_checkpoint_lsn == 10


def test_snapshot_edits_replay_to_identical_state(tmp_path):
    s = VersionState()
    s.apply({"type": "guards", "level": 1, "los": ["", "6d"]}, "<t>")
    for f in (4, 7, 9):
        s.apply({"type": "add", "level": 1, "guard": "", "file": f, "bytes": f * 10}, "<t>")
    s.apply({"type": "checkpoint", "wal_lsn": 123}, "<t>")
    replayed = VersionState()
    for e in s.snapshot_edits():
        replayed.apply(e, "<t>")
    assert replayed.tables == s.tables
    assert replayed.guards == s.guards
    assert replayed.table_bytes == s.table_bytes
    assert replayed.wal_checkpoint_lsn == s.wal_checkpoint_lsn
