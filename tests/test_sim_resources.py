"""Unit tests for Resource / Store / FifoQueue."""

from repro.sim import Environment, FifoQueue, Resource, Store


def test_resource_serialises_access():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(tag, hold):
        req = res.request()
        yield req
        log.append(("start", tag, env.now))
        yield env.timeout(hold)
        res.release(req)
        log.append(("end", tag, env.now))

    env.process(user("a", 5.0))
    env.process(user("b", 3.0))
    env.run()
    assert log == [
        ("start", "a", 0.0),
        ("end", "a", 5.0),
        ("start", "b", 5.0),
        ("end", "b", 8.0),
    ]


def test_resource_capacity_two_runs_concurrently():
    env = Environment()
    res = Resource(env, capacity=2)
    ends = []

    def user(hold):
        with res.request() as req:
            yield req
            yield env.timeout(hold)
        ends.append(env.now)

    for _ in range(4):
        env.process(user(10.0))
    env.run()
    # two waves of two
    assert ends == [10.0, 10.0, 20.0, 20.0]


def test_resource_wait_time_accounting():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(hold):
        with res.request() as req:
            yield req
            yield env.timeout(hold)

    env.process(user(4.0))
    env.process(user(4.0))
    env.process(user(4.0))
    env.run()
    # second waits 4, third waits 8
    assert res.total_wait_time == 12.0
    assert res.total_grants == 3
    assert res.in_use == 0
    assert res.queue_len == 0


def test_resource_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    got = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    def impatient():
        req = res.request()
        yield env.timeout(1.0)
        # give up before ever being granted
        res.release(req)
        got.append(res.queue_len)

    env.process(holder())
    env.process(impatient())
    env.run()
    assert got == [0]


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        yield env.timeout(1.0)
        store.put("x")
        store.put("y")

    def consumer():
        a = yield store.get()
        b = yield store.get()
        got.append((a, b, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [("x", "y", 1.0)]


def test_store_get_before_put_blocks():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        v = yield store.get()
        got.append((v, env.now))

    def producer():
        yield env.timeout(9.0)
        store.put(7)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(7, 9.0)]


def test_store_fifo_among_getters():
    env = Environment()
    store = Store(env)
    order = []

    def consumer(tag):
        v = yield store.get()
        order.append((tag, v))

    def producer():
        yield env.timeout(1.0)
        for i in range(3):
            store.put(i)

    for tag in "abc":
        env.process(consumer(tag))
    env.process(producer())
    env.run()
    assert order == [("a", 0), ("b", 1), ("c", 2)]


def test_fifo_queue_peak_tracking():
    q = FifoQueue()
    assert len(q) == 0
    assert q.peek() is None
    for i in range(5):
        q.push(i)
    assert q.peak == 5
    assert q.pop() == 0
    assert q.peek() == 1
    q.push(9)
    assert q.peak == 5  # never exceeded 5
    assert len(q) == 5
