"""Property-based tests on the ML stack (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ml import GBDTRegressor, RidgeRegressor
from repro.ml.metrics import _rank, spearman_rank_correlation
from repro.ml.tree import Binner, RegressionTree

SET = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def regression_data(draw):
    seed = draw(st.integers(0, 10**6))
    n = draw(st.integers(30, 300))
    f = draw(st.integers(1, 6))
    rng = np.random.default_rng(seed)
    X = rng.random((n, f))
    w = rng.normal(size=f)
    y = X @ w + 0.1 * rng.normal(size=n)
    return X, y


@given(regression_data())
@SET
def test_tree_predictions_within_label_range(data):
    """A regression tree's leaves are averages: predictions stay in [min, max]."""
    X, y = data
    b = Binner(16)
    binned = b.fit_transform(X)
    t = RegressionTree(max_leaves=8, min_samples_leaf=2).fit(binned, y)
    pred = t.predict_binned(binned)
    lam = t.reg_lambda
    # shrinkage (reg_lambda) pulls leaf values toward 0, never outside the
    # label hull extended to include 0
    lo = min(y.min(), 0.0) - 1e-9
    hi = max(y.max(), 0.0) + 1e-9
    assert np.all(pred >= lo) and np.all(pred <= hi)


@given(regression_data())
@SET
def test_gbdt_training_error_no_worse_than_constant(data):
    """Boosting from the mean can only reduce training MSE."""
    X, y = data
    model = GBDTRegressor(n_estimators=10, learning_rate=0.3, max_leaves=4,
                          min_samples_leaf=2).fit(X, y)
    pred = model.predict(X)
    mse_model = float(np.mean((y - pred) ** 2))
    mse_const = float(np.mean((y - y.mean()) ** 2))
    assert mse_model <= mse_const + 1e-9


@given(regression_data())
@SET
def test_gbdt_importances_normalised(data):
    X, y = data
    model = GBDTRegressor(n_estimators=5, max_leaves=4, min_samples_leaf=2).fit(X, y)
    imp = model.feature_importances()
    assert np.all(imp >= 0)
    s = imp.sum()
    assert s == pytest.approx(1.0) or s == pytest.approx(0.0)


@given(regression_data(), st.floats(0.5, 5.0), st.floats(-3.0, 3.0))
@SET
def test_ridge_equivariance_under_target_scaling(data, a, b):
    """OLS-family estimators are affine-equivariant in the target."""
    X, y = data
    m1 = RidgeRegressor(alpha=1e-8).fit(X, y)
    m2 = RidgeRegressor(alpha=1e-8).fit(X, a * y + b)
    p1 = m1.predict(X[:10])
    p2 = m2.predict(X[:10])
    np.testing.assert_allclose(p2, a * p1 + b, rtol=1e-5, atol=1e-6)


@given(st.lists(st.floats(-100, 100), min_size=3, max_size=60, unique=True))
@SET
def test_rank_is_a_permutation_for_unique_values(vals):
    r = _rank(np.asarray(vals))
    assert sorted(r) == list(range(1, len(vals) + 1))


@given(st.lists(st.floats(-100, 100), min_size=3, max_size=60, unique=True))
@SET
def test_spearman_bounds(vals):
    rng = np.random.default_rng(0)
    y = np.asarray(vals)
    noise = rng.normal(size=y.size)
    rho = spearman_rank_correlation(y, y + noise)
    assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9


@given(regression_data())
@SET
def test_binner_transform_idempotent_on_training_data(data):
    X, _ = data
    b = Binner(16)
    one = b.fit_transform(X)
    two = b.transform(X)
    np.testing.assert_array_equal(one, two)
