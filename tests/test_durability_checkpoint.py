"""Simulation checkpoint capture/restore tests (repro.durability.checkpoint)."""

import json
import os

import pytest

from repro.balancers import LunulePolicy
from repro.durability import CHECKPOINT_SCHEMA_VERSION, Checkpointer, SimCheckpoint
from repro.durability.errors import CheckpointError
from repro.fs.filesystem import OrigamiFS, SimConfig
from repro.harness.experiments import build_workload


def _segmented_run(tmp_path, *, use_kvstore=False, data_dir=None, n_ops=1200, split=600,
                   seed=7):
    """Run the first `split` ops, checkpoint, save+load, restore, finish."""
    built, trace = build_workload("rw", n_ops, seed=seed)
    cfg = dict(n_mds=3, seed=5, use_kvstore=use_kvstore, data_dir=data_dir)
    fs1 = OrigamiFS(built.tree, trace[:split], LunulePolicy(), SimConfig(**cfg))
    r1 = fs1.run()
    ck = Checkpointer().capture(fs1)
    path = str(tmp_path / "run.ckpt")
    ck.save(path)
    ck2 = SimCheckpoint.load(path)
    fs2 = Checkpointer().restore(ck2, trace, LunulePolicy(), SimConfig(**cfg))
    r2 = fs2.run()
    return r1, r2, ck2, trace


def test_inmemory_resume_conserves_ops(tmp_path):
    r1, r2, ck, trace = _segmented_run(tmp_path)
    assert ck.cursor == 600
    assert r2.ops_completed + r2.failed_ops == len(trace)
    assert r2.ops_completed > r1.ops_completed
    assert r2.duration_ms > r1.duration_ms
    # epoch ids continue monotonically across the seam
    ids = [e.epoch for e in r2.per_epoch]
    assert ids == sorted(ids) and len(set(ids)) == len(ids)


def test_resume_equals_with_kvstore(tmp_path):
    r1, r2, ck, trace = _segmented_run(tmp_path, use_kvstore=True)
    assert r2.ops_completed + r2.failed_ops == len(trace)
    assert r2.kvstore is not None


def test_durable_resume_reopens_stores(tmp_path):
    data_dir = str(tmp_path / "stores")
    r1, r2, ck, trace = _segmented_run(tmp_path, use_kvstore=True, data_dir=data_dir)
    assert r2.ops_completed + r2.failed_ops == len(trace)
    # each of the 3 MDS stores went through one recovery on restore
    assert r2.kvstore["recoveries"] == 3.0
    assert ck.durable and ck.data_dir == data_dir


def test_capture_restore_capture_is_exact(tmp_path):
    built, trace = build_workload("rw", 800, seed=11)
    cfg = dict(n_mds=3, seed=2, use_kvstore=False)
    fs1 = OrigamiFS(built.tree, trace[:400], LunulePolicy(), SimConfig(**cfg))
    fs1.run()
    ck1 = Checkpointer().capture(fs1)
    fs2 = Checkpointer().restore(ck1, trace, LunulePolicy(), SimConfig(**cfg))
    ck2 = Checkpointer().capture(fs2)
    assert ck1.to_dict() == ck2.to_dict()


def test_checkpoint_file_is_crc_framed(tmp_path):
    built, trace = build_workload("rw", 300, seed=1)
    fs = OrigamiFS(built.tree, trace, LunulePolicy(), SimConfig(n_mds=2, seed=0))
    fs.run()
    path = str(tmp_path / "x.ckpt")
    Checkpointer().capture(fs).save(path)
    doc = json.load(open(path))
    assert doc["v"] == CHECKPOINT_SCHEMA_VERSION
    assert isinstance(doc["crc"], int)
    # no stray temp file left behind by the atomic write
    assert os.listdir(tmp_path) == ["x.ckpt"]


def _saved_checkpoint(tmp_path, **cfg_kw):
    built, trace = build_workload("rw", 300, seed=1)
    cfg = dict(n_mds=2, seed=0)
    cfg.update(cfg_kw)
    fs = OrigamiFS(built.tree, trace, LunulePolicy(), SimConfig(**cfg))
    fs.run()
    path = str(tmp_path / "x.ckpt")
    Checkpointer().capture(fs).save(path)
    return path, trace


def test_load_rejects_tampered_payload(tmp_path):
    path, _ = _saved_checkpoint(tmp_path)
    doc = json.load(open(path))
    doc["checkpoint"]["counters"]["ops_completed"] += 1
    json.dump(doc, open(path, "w"))
    with pytest.raises(CheckpointError):
        SimCheckpoint.load(path)


def test_load_rejects_wrong_version(tmp_path):
    path, _ = _saved_checkpoint(tmp_path)
    doc = json.load(open(path))
    doc["v"] = CHECKPOINT_SCHEMA_VERSION + 1
    json.dump(doc, open(path, "w"))
    with pytest.raises(CheckpointError):
        SimCheckpoint.load(path)


def test_load_rejects_garbage_and_missing(tmp_path):
    p = str(tmp_path / "junk.ckpt")
    open(p, "w").write("not json{")
    with pytest.raises(CheckpointError):
        SimCheckpoint.load(p)
    with pytest.raises(CheckpointError):
        SimCheckpoint.load(str(tmp_path / "missing.ckpt"))


def test_restore_validates_strategy_and_seed(tmp_path):
    path, trace = _saved_checkpoint(tmp_path)
    ck = SimCheckpoint.load(path)
    from repro.balancers import CoarseHashPolicy

    with pytest.raises(CheckpointError):
        Checkpointer().restore(ck, trace, CoarseHashPolicy(), SimConfig(n_mds=2, seed=0))
    with pytest.raises(CheckpointError):
        Checkpointer().restore(ck, trace, LunulePolicy(), SimConfig(n_mds=2, seed=99))
    with pytest.raises(CheckpointError):
        Checkpointer().restore(ck, trace, LunulePolicy(), SimConfig(n_mds=4, seed=0))


def test_restore_validates_trace_length(tmp_path):
    path, trace = _saved_checkpoint(tmp_path)
    ck = SimCheckpoint.load(path)
    with pytest.raises(CheckpointError):
        Checkpointer().restore(ck, trace[: ck.cursor - 1], LunulePolicy(),
                               SimConfig(n_mds=2, seed=0))


def test_restore_builds_default_config(tmp_path):
    # config=None: the restore derives a SimConfig from the checkpoint itself
    path, trace = _saved_checkpoint(tmp_path)
    ck = SimCheckpoint.load(path)
    fs = Checkpointer().restore(ck, trace, LunulePolicy())
    assert fs.config.n_mds == ck.n_mds
    assert fs.env.now == ck.now_ms


def test_restored_tree_preserves_ino_numbering(tmp_path):
    built, trace = build_workload("rw", 500, seed=3)
    fs1 = OrigamiFS(built.tree, trace[:250], LunulePolicy(), SimConfig(n_mds=3, seed=5))
    fs1.run()
    ck = Checkpointer().capture(fs1)
    fs2 = Checkpointer().restore(ck, trace, LunulePolicy(), SimConfig(n_mds=3, seed=5))
    t1, t2 = fs1.tree, fs2.tree
    assert t1.capacity == t2.capacity
    assert t1.num_dirs == t2.num_dirs and t1.num_files == t2.num_files
    for ino in range(t1.capacity):
        assert t1.is_alive(ino) == t2.is_alive(ino)
        if t1.is_alive(ino):
            assert t1.path_of(ino) == t2.path_of(ino)
    # ownership came back ino-for-ino as well
    import numpy as np

    assert np.array_equal(fs1.pmap.owner_array(), fs2.pmap.owner_array())
