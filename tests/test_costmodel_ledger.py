"""The subtree ledger must predict exactly what a real migration + full
re-evaluation produces (for subtree placement)."""

import numpy as np
import pytest

from repro.cluster import PartitionMap
from repro.costmodel import CostParams, SubtreeLedger, evaluate_trace
from repro.namespace.builder import build_balanced, build_random
from repro.sim import SeedSequenceFactory
from tests.test_costmodel_evaluate import random_trace, scatter_partition


def make_world(seed, n_dirs=70, n_ops=500, n_mds=4, cache_depth=0, moves=6):
    ssf = SeedSequenceFactory(seed)
    rng = ssf.stream("w")
    built = build_random(rng, n_dirs=n_dirs, files_per_dir_mean=2)
    tree = built.tree
    pmap = PartitionMap(tree, n_mds=n_mds)
    scatter_partition(rng, tree, pmap, n_moves=moves)
    trace = random_trace(rng, tree, n_ops=n_ops)
    params = CostParams(cache_depth=cache_depth)
    return rng, tree, pmap, trace, params


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("cache_depth", [0, 2])
def test_ledger_matches_real_migration(seed, cache_depth):
    rng, tree, pmap, trace, params = make_world(seed, cache_depth=cache_depth)
    ledger = SubtreeLedger(trace, tree, pmap, params)
    cands = ledger.candidates
    assert cands.size > 0
    # try a sample of (candidate, dst) pairs
    picks = rng.integers(0, cands.size, size=min(25, cands.size))
    for pi in picks:
        s = int(cands[int(pi)])
        src = pmap.owner(s)
        for dst in range(pmap.n_mds):
            if dst == src:
                continue
            predicted = ledger.predicted_loads(s, dst)
            what_if = pmap.copy()
            what_if.migrate_subtree(s, dst)
            actual = evaluate_trace(trace, tree, what_if, params).rct_per_mds
            np.testing.assert_allclose(
                predicted, actual, rtol=1e-9, atol=1e-9,
                err_msg=f"subtree {s} ({tree.path_of(s)}) -> {dst}",
            )


@pytest.mark.parametrize("seed", [5, 6])
def test_ledger_with_queue_delays(seed):
    rng, tree, pmap, trace, params = make_world(seed)
    params = params.with_queue_delay(np.array([0.2, 0.0, 0.7, 0.4]))
    ledger = SubtreeLedger(trace, tree, pmap, params)
    cands = ledger.candidates
    picks = rng.integers(0, cands.size, size=min(10, cands.size))
    for pi in picks:
        s = int(cands[int(pi)])
        src = pmap.owner(s)
        dst = (src + 1) % pmap.n_mds
        predicted = ledger.predicted_loads(s, dst)
        what_if = pmap.copy()
        what_if.migrate_subtree(s, dst)
        actual = evaluate_trace(trace, tree, what_if, params).rct_per_mds
        np.testing.assert_allclose(predicted, actual, rtol=1e-9, atol=1e-9)


def test_evaluate_dst_benefit_agrees_with_predicted_loads():
    rng, tree, pmap, trace, params = make_world(9)
    ledger = SubtreeLedger(trace, tree, pmap, params)
    for dst in range(pmap.n_mds):
        ev = ledger.evaluate_dst(dst)
        sample = rng.integers(0, ev.candidates.size, size=min(20, ev.candidates.size))
        for j in sample:
            j = int(j)
            if not ev.valid[j]:
                assert ev.benefit[j] == 0.0
                continue
            loads = ledger.predicted_loads(int(ev.candidates[j]), dst)
            assert ev.jct_new[j] == pytest.approx(loads.max())
            assert ev.benefit[j] == pytest.approx(ledger.base.jct - loads.max())
            src = int(ledger.cand_owner[j])
            assert ev.dst_minus_src[j] == pytest.approx(loads[dst] - loads[src])


def test_candidates_are_uniform_subtrees():
    _, tree, pmap, trace, params = make_world(12)
    ledger = SubtreeLedger(trace, tree, pmap, params)
    uniform = pmap.uniform_subtree_mask()
    for s in ledger.candidates:
        assert uniform[s]
        assert s != 0


def test_ledger_rejects_hash_placement():
    built = build_balanced(2, 2, 1)
    pmap = PartitionMap(built.tree, n_mds=2, placement=lambda pm, p, n: 0)
    from repro.workloads.trace import TraceBuilder

    tb = TraceBuilder()
    tb.stat(0, "x")
    with pytest.raises(ValueError):
        SubtreeLedger(tb.build(), built.tree, pmap, CostParams())


def test_ledger_invalid_dst():
    _, tree, pmap, trace, params = make_world(13)
    ledger = SubtreeLedger(trace, tree, pmap, params)
    with pytest.raises(ValueError):
        ledger.evaluate_dst(99)
    with pytest.raises(ValueError):
        ledger.predicted_loads(0, 1)  # root is never a candidate
