"""Tests for the online continual-learning extension (OnlineOrigamiPolicy)."""

import numpy as np
import pytest

from repro.balancers import SingleMdsPolicy
from repro.costmodel import CostParams
from repro.fs import SimConfig, run_simulation
from repro.sim import SeedSequenceFactory
from repro.training.online import OnlineOrigamiPolicy
from repro.workloads import generate_trace_rw


def make_world(seed=0, n_ops=30000):
    ssf = SeedSequenceFactory(seed)
    return generate_trace_rw(ssf.stream("w"), n_ops=n_ops)


def test_online_policy_trains_during_run():
    built, trace = make_world()
    policy = OnlineOrigamiPolicy(delta=50.0, retrain_every=2, min_samples=200, gbdt_rounds=20)
    cfg = SimConfig(n_mds=4, n_clients=100, epoch_ms=80.0, params=CostParams(cache_depth=2))
    r = run_simulation(built.tree, trace, policy, cfg)
    assert policy.retrain_count >= 1, "the model must have trained at least once"
    assert policy.model is not None
    assert policy.dataset.n_samples > 0
    assert r.migrations > 0


def test_online_policy_beats_single_mds_cold_start():
    built, trace = make_world(seed=1)
    policy = OnlineOrigamiPolicy(delta=50.0, retrain_every=3, min_samples=300, gbdt_rounds=20)
    cfg = SimConfig(n_mds=4, n_clients=100, epoch_ms=80.0, params=CostParams(cache_depth=2))
    online = run_simulation(built.tree, trace, policy, cfg)

    built2, trace2 = make_world(seed=1)
    single = run_simulation(
        built2.tree, trace2, SingleMdsPolicy(),
        SimConfig(n_mds=1, n_clients=100, epoch_ms=80.0, params=CostParams(cache_depth=2)),
    )
    assert (
        online.steady_state_throughput() > single.steady_state_throughput() * 1.5
    ), "cold-started online Origami must still exploit the extra MDSs"


def test_online_dataset_bounded():
    built, trace = make_world(seed=2, n_ops=20000)
    policy = OnlineOrigamiPolicy(
        delta=50.0, retrain_every=100, min_samples=10**9, max_samples=500
    )
    cfg = SimConfig(n_mds=3, n_clients=50, epoch_ms=50.0, params=CostParams(cache_depth=2))
    run_simulation(built.tree, trace, policy, cfg)
    # cap respected within one epoch's slack
    assert policy.dataset.n_samples <= 500 + max(
        x.shape[0] for x in policy.dataset.X_parts
    )


def test_online_policy_validation():
    with pytest.raises(ValueError):
        OnlineOrigamiPolicy(delta=0.0)


def test_online_cold_start_uses_observed_load_planning():
    """Before any model exists the policy must still shed load (Lunule-like)."""
    built, trace = make_world(seed=3, n_ops=15000)
    policy = OnlineOrigamiPolicy(delta=50.0, min_samples=10**9)  # never trains
    cfg = SimConfig(n_mds=3, n_clients=50, epoch_ms=50.0, params=CostParams(cache_depth=2))
    r = run_simulation(built.tree, trace, policy, cfg)
    assert policy.retrain_count == 0
    assert policy.model is None
    assert r.migrations > 0  # cold-start planner still balanced
