"""Cross-checks of the vectorised trace evaluator against scalar ground truth."""

import numpy as np
import pytest

from repro.cluster import PartitionMap
from repro.costmodel import CostParams, evaluate_trace
from repro.costmodel.rct import request_rct
from repro.namespace.builder import build_balanced, build_random
from repro.sim import SeedSequenceFactory
from repro.workloads.trace import TraceBuilder
from repro.costmodel.optypes import OpType


def random_trace(rng, tree, n_ops=400, include_rmdir=True):
    """A trace over random live dirs with every op family represented."""
    dirs = [d for d in tree.iter_dirs()]
    tb = TraceBuilder()
    for i in range(n_ops):
        d = int(dirs[int(rng.integers(0, len(dirs)))])
        roll = rng.random()
        if roll < 0.35:
            tb.stat(d, f"n{i}")
        elif roll < 0.55:
            tb.open(d, f"n{i}")
        elif roll < 0.70:
            tb.readdir(d)
        elif roll < 0.85:
            tb.create(d, f"new{i}")
        elif roll < 0.92:
            tb.unlink(d, f"n{i}")
        elif include_rmdir and tree.n_child_dirs(d) > 0:
            kids = [c for c in tree.children(d).values() if tree.is_dir(c)]
            tb.rmdir(d, kids[int(rng.integers(0, len(kids)))])
        else:
            tb.stat(d, f"n{i}")
    return tb.build()


def scatter_partition(rng, tree, pmap, n_moves=8):
    dirs = [d for d in tree.iter_dirs() if d != 0]
    for _ in range(n_moves):
        pmap.migrate_subtree(int(dirs[int(rng.integers(0, len(dirs)))]),
                             int(rng.integers(0, pmap.n_mds)))


@pytest.mark.parametrize("cache_depth", [0, 2, 4])
@pytest.mark.parametrize("with_queue", [False, True])
def test_evaluate_matches_scalar_reference(cache_depth, with_queue):
    ssf = SeedSequenceFactory(11)
    rng = ssf.stream("t")
    built = build_random(rng, n_dirs=60, files_per_dir_mean=2)
    tree = built.tree
    pmap = PartitionMap(tree, n_mds=4)
    scatter_partition(rng, tree, pmap)
    params = CostParams(cache_depth=cache_depth)
    if with_queue:
        params = params.with_queue_delay(np.array([0.1, 0.5, 0.0, 0.9]))
    trace = random_trace(rng, tree)

    load = evaluate_trace(trace, tree, pmap, params, collect_per_request=True)

    # scalar ground truth
    exp_rct = np.zeros(pmap.n_mds)
    exp_qps = np.zeros(pmap.n_mds)
    ms = []
    for i in range(len(trace)):
        rc = request_rct(
            tree, pmap, params, int(trace.op[i]), int(trace.dir_ino[i]),
            name=trace.names[i], aux=int(trace.aux[i]),
        )
        exp_rct[rc.primary] += rc.rct
        exp_qps[rc.primary] += 1
        ms.append(rc.m)
        assert load.per_request_rct[i] == pytest.approx(rc.rct), f"op {i}"

    np.testing.assert_allclose(load.rct_per_mds, exp_rct, rtol=1e-12)
    np.testing.assert_allclose(load.qps_per_mds, exp_qps)
    assert load.jct == pytest.approx(exp_rct.max())
    assert load.mean_m == pytest.approx(np.mean(ms))
    assert load.n_requests == len(trace)


def test_evaluate_empty_trace():
    built = build_balanced(2, 2, 1)
    pmap = PartitionMap(built.tree, n_mds=3)
    tb = TraceBuilder()
    load = evaluate_trace(tb.build(), built.tree, pmap, CostParams())
    assert load.jct == 0.0
    assert load.n_requests == 0
    assert load.rpcs_per_request == 0.0


def test_single_mds_all_load_on_one_bin():
    ssf = SeedSequenceFactory(3)
    rng = ssf.stream("t")
    built = build_random(rng, n_dirs=30)
    pmap = PartitionMap(built.tree, n_mds=1)
    trace = random_trace(rng, built.tree, n_ops=100)
    load = evaluate_trace(trace, built.tree, pmap, CostParams())
    assert load.qps_per_mds[0] == 100
    assert load.mean_m == 1.0
    assert load.jct == pytest.approx(load.rct_per_mds.sum())


def test_cache_reduces_rpcs_and_jct():
    ssf = SeedSequenceFactory(5)
    rng = ssf.stream("t")
    built = build_balanced(depth=5, fanout=2, files_per_dir=2)
    tree = built.tree
    pmap = PartitionMap(tree, n_mds=4)
    scatter_partition(rng, tree, pmap, n_moves=12)
    trace = random_trace(rng, tree, n_ops=500, include_rmdir=False)
    cold = evaluate_trace(trace, tree, pmap, CostParams(cache_depth=0))
    warm = evaluate_trace(trace, tree, pmap, CostParams(cache_depth=3))
    assert warm.total_rpcs < cold.total_rpcs
    assert warm.mean_m <= cold.mean_m
    assert warm.jct < cold.jct


def test_deeper_paths_cost_more():
    built = build_balanced(depth=6, fanout=1, files_per_dir=1)
    tree = built.tree
    pmap = PartitionMap(tree, n_mds=1)
    shallow = TraceBuilder()
    shallow.stat(tree.lookup("/d0_0"), "f0")
    deep = TraceBuilder()
    deep.stat(tree.lookup("/d0_0/d1_0/d2_0/d3_0/d4_0/d5_0"), "f0")
    p = CostParams()
    l_sh = evaluate_trace(shallow.build(), tree, pmap, p)
    l_dp = evaluate_trace(deep.build(), tree, pmap, p)
    assert l_dp.jct > l_sh.jct


def test_rpc_accounting_conservation():
    ssf = SeedSequenceFactory(9)
    rng = ssf.stream("t")
    built = build_random(rng, n_dirs=50)
    tree = built.tree
    pmap = PartitionMap(tree, n_mds=4)
    scatter_partition(rng, tree, pmap)
    trace = random_trace(rng, tree, n_ops=300, include_rmdir=False)
    load = evaluate_trace(trace, tree, pmap, CostParams())
    assert load.rpcs_per_mds.sum() == pytest.approx(load.total_rpcs)
    assert load.total_rpcs >= load.n_requests  # at least one RPC each
    assert load.rpcs_per_request >= 1.0
