"""DES integration of the durability layer: modeled WAL/fsync latency,
derived crash recovery, and golden parity when durability is off."""

import pytest

from repro.balancers import LunulePolicy
from repro.fs.faults import Crash, FaultSchedule
from repro.fs.filesystem import OrigamiFS, SimConfig
from repro.harness.config import get_scale
from repro.harness.experiments import build_workload, run_strategy


def _run(tmp_path, *, data_dir_name=None, faults=None, seed=9, n_ops=1500):
    built, trace = build_workload("rw", n_ops, seed=seed)
    cfg = SimConfig(
        n_mds=3,
        seed=4,
        use_kvstore=True,
        data_dir=str(tmp_path / data_dir_name) if data_dir_name else None,
        faults=faults,
    )
    fs = OrigamiFS(built.tree, trace, LunulePolicy(), cfg)
    return fs.run(), trace


def test_durable_run_surfaces_wal_counters(tmp_path):
    r, trace = _run(tmp_path, data_dir_name="stores")
    kv = r.kvstore
    assert kv["wal_appends"] > 0
    assert kv["wal_bytes"] > 0
    assert kv["fsyncs"] > 0
    assert kv["recoveries"] == 0.0  # healthy run never reopens
    assert kv["recovery_ms"] == 0.0
    assert r.ops_completed == len(trace)


def test_durable_run_is_deterministic(tmp_path):
    r1, _ = _run(tmp_path, data_dir_name="a")
    r2, _ = _run(tmp_path, data_dir_name="b")
    d1, d2 = r1.to_dict(), r2.to_dict()
    assert d1 == d2


def test_durability_latency_is_modeled_not_free(tmp_path):
    r_mem, _ = _run(tmp_path)  # kvstore on, no data_dir
    r_dur, _ = _run(tmp_path, data_dir_name="stores")
    # WAL appends + group-commit fsyncs are priced as service time, so the
    # durable run must be strictly slower in virtual time
    assert r_dur.duration_ms > r_mem.duration_ms
    assert r_dur.mean_latency_ms > r_mem.mean_latency_ms
    # but never loses an op to the accounting
    assert r_dur.ops_completed == r_mem.ops_completed


def test_memory_only_kvstore_unaffected_by_durability_code(tmp_path):
    # golden-parity guard at the unit level: data_dir=None leaves the
    # stores free of any backend and the result carries no durability cost
    built, trace = build_workload("rw", 800, seed=1)
    fs = OrigamiFS(built.tree, trace, LunulePolicy(),
                   SimConfig(n_mds=2, seed=0, use_kvstore=True))
    r = fs.run()
    assert all(s.store.backend is None for s in fs.servers)
    assert r.kvstore["wal_appends"] == 0.0
    assert r.kvstore["fsyncs"] == 0.0
    assert "recovery_ms" not in r.kvstore


def test_crash_derives_recovery_from_actual_state(tmp_path):
    faults = FaultSchedule(
        [Crash(mds=0, start_ms=30.0, end_ms=80.0, warmup_factor=2.0)]
    )
    r, trace = _run(tmp_path, data_dir_name="stores", faults=faults, n_ops=2500)
    d = r.to_dict()
    # conservation holds through the crash
    assert d["ops_completed"] + d["vanished_ops"] + d["fault_failed_ops"] == len(trace)
    assert d["faults"]["crashes"] == 1
    assert d["faults"]["restarts"] == 1
    # the restarted MDS reopened its store: a real recovery was performed
    # and its modeled cost is what sized the warm-up
    assert r.kvstore["recoveries"] >= 1.0
    assert r.kvstore["recovery_ms"] > 0.0
    assert d["faults"]["recovery_ms"] > 0.0


def test_span_identity_holds_with_durability(tmp_path):
    from repro.obs import Observability
    from repro.obs.tracing import JsonlTracer

    built, trace = build_workload("rw", 1000, seed=2)
    obs = Observability(tracer=JsonlTracer(None))
    cfg = SimConfig(n_mds=3, seed=1, use_kvstore=True,
                    data_dir=str(tmp_path / "stores"), obs=obs)
    fs = OrigamiFS(built.tree, trace, LunulePolicy(), cfg)
    fs.run()
    spans = obs.tracer.spans
    assert len(spans) == len(trace)
    saw_wal = False
    for s in spans:
        d = s.to_dict()
        components = d["queue_ms"] + d["service_ms"] + d["net_ms"] + d["fault_wait_ms"]
        assert components == pytest.approx(d["latency_ms"], rel=1e-9, abs=1e-12)
        saw_wal = saw_wal or d.get("wal_ms", 0.0) > 0.0
    # the informational wal_ms attribution actually fired somewhere
    assert saw_wal


def test_trace_report_surfaces_durability_rows(tmp_path):
    from repro.obs import Observability
    from repro.obs.report import decompose, render_trace_report
    from repro.obs.tracing import JsonlTracer

    built, trace = build_workload("rw", 800, seed=6)
    obs = Observability(tracer=JsonlTracer(None))
    cfg = SimConfig(n_mds=2, seed=0, use_kvstore=True,
                    data_dir=str(tmp_path / "stores"), obs=obs)
    OrigamiFS(built.tree, trace, LunulePolicy(), cfg).run()
    spans = [s.to_dict() for s in obs.tracer.spans]
    d = decompose(spans)
    assert d.wal_appends > 0 and d.wal_bytes > 0 and d.wal_ms > 0
    report = render_trace_report(spans, source="test")
    assert "of which WAL/fsync" in report
    assert "WAL appends" in report


def test_run_strategy_accepts_data_dir(tmp_path):
    scale = get_scale("smoke")
    r = run_strategy(
        "Lunule",
        "rw",
        scale,
        seed=0,
        n_mds=3,
        n_ops=600,
        data_dir=str(tmp_path / "stores"),
    )
    assert r.kvstore is not None
    assert r.kvstore["wal_appends"] > 0
    assert r.kvstore["recovery_ms"] == 0.0
