"""Theorem 1 (Appendix A) — property-based numerical verification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theory import (
    delta_constraint_satisfied,
    greedy_benefit,
    optimal_nested_benefit,
    theorem1_gap_bound_holds,
)


def test_greedy_benefit_regimes():
    # D large: benefit = l_s (A remains the max)
    assert greedy_benefit(l_s=3.0, o_s=1.0, d=10.0) == 3.0
    # D small: benefit = D - (l_s + o_s) (B becomes the max)
    assert greedy_benefit(l_s=3.0, o_s=1.0, d=5.0) == pytest.approx(1.0)
    # boundary D = 2l + o: both formulas coincide
    assert greedy_benefit(3.0, 1.0, 7.0) == pytest.approx(3.0)


def test_negative_inputs_rejected():
    with pytest.raises(ValueError):
        greedy_benefit(-1.0, 0.0, 1.0)
    with pytest.raises(ValueError):
        optimal_nested_benefit([1.0], [-1.0], 1.0)
    with pytest.raises(ValueError):
        optimal_nested_benefit([1.0, 2.0], [0.5], 1.0)


def test_delta_constraint():
    # Δ > 2l + o - D
    assert delta_constraint_satisfied(l_s=2.0, o_s=1.0, d=4.0, delta=1.5)
    assert not delta_constraint_satisfied(l_s=2.0, o_s=1.0, d=4.0, delta=1.0)


def test_theorem_preconditions_enforced():
    with pytest.raises(ValueError):
        # nested subtrees not strictly smaller
        theorem1_gap_bound_holds(1.0, 1.0, [2.0], [0.5], d=10.0, delta=5.0)
    with pytest.raises(ValueError):
        # delta guard rejects s
        theorem1_gap_bound_holds(5.0, 5.0, [1.0], [1.0], d=0.0, delta=0.1)


@st.composite
def theorem_instance(draw):
    """Random instance satisfying Theorem 1's hypotheses."""
    n = draw(st.integers(1, 6))
    nested_l = [draw(st.floats(0.0, 10.0)) for _ in range(n)]
    nested_o = [draw(st.floats(0.0, 5.0)) for _ in range(n)]
    l_s = sum(nested_l) + draw(st.floats(0.01, 20.0))
    o_s = sum(nested_o) + draw(st.floats(0.01, 10.0))
    d = draw(st.floats(0.0, 100.0))
    # delta must admit migrating s: delta > 2*l_s + o_s - d  (and > 0)
    slack = draw(st.floats(0.01, 50.0))
    delta = max(2 * l_s + o_s - d, 0.0) + slack
    return l_s, o_s, nested_l, nested_o, d, delta


@given(theorem_instance())
@settings(max_examples=500, deadline=None)
def test_theorem1_bound_holds_on_random_instances(inst):
    l_s, o_s, nested_l, nested_o, d, delta = inst
    holds, gap = theorem1_gap_bound_holds(l_s, o_s, nested_l, nested_o, d, delta)
    assert holds, f"gap {gap} violates -delta {-delta}"


@given(theorem_instance())
@settings(max_examples=200, deadline=None)
def test_large_imbalance_makes_greedy_optimal(inst):
    """Appendix A: when D >= 2*l_s + o_s the greedy choice is optimal."""
    l_s, o_s, nested_l, nested_o, d, delta = inst
    if d >= 2 * l_s + o_s:
        b0 = greedy_benefit(l_s, o_s, d)
        b1 = optimal_nested_benefit(nested_l, nested_o, d)
        assert b0 >= b1 - 1e-12


@given(
    st.floats(0.0, 10.0),
    st.floats(0.0, 5.0),
    st.floats(0.0, 50.0),
)
@settings(max_examples=200, deadline=None)
def test_benefit_never_exceeds_load(l_s, o_s, d):
    """Migrating s can never help by more than the load it moves."""
    assert greedy_benefit(l_s, o_s, d) <= l_s + 1e-12
