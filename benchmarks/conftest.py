"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures: it runs the
experiment once inside ``benchmark.pedantic`` (timing the full regeneration),
prints the paper-vs-measured report, and persists it under
``benchmarks/results/`` — JSON persistence goes through the
``repro.bench.store`` stable writer (sorted keys, trailing newline), the
same writer the ``BENCH_*.json`` perf artifacts use.

Scale with ``REPRO_SCALE=smoke|default|full`` (default: ``default``).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.store import write_json
from repro.harness.config import get_scale
from repro.harness.report import Report

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    return get_scale()


@pytest.fixture(scope="session")
def save_report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(report: Report, name: str) -> Report:
        (RESULTS_DIR / f"{name}.txt").write_text(report.render() + "\n")
        write_json(RESULTS_DIR / f"{name}.json", report.to_dict())
        print("\n" + report.render())
        return report

    return _save
