"""Theorem 1 (Appendix A): Meta-OPT's greedy-vs-optimal gap stays under Δ."""

from repro.harness import experiments as E


def test_theorem1_gap(benchmark, save_report):
    rep = benchmark.pedantic(lambda: E.theorem1_gap(), rounds=1, iterations=1)
    save_report(rep, "theorem1_gap")
    assert rep.data["all_within_bound"]
