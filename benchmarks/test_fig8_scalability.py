"""Fig. 8 (§5.5): aggregate throughput scaling from 2 to 5 MDSs.

Paper shape: baselines scale sub-linearly (balance vs locality tension);
Origami is near-linear (about 2.7x at 3 MDSs) and keeps the lead at 5.

The strategy×cluster-size matrix comes from the ``fig8_scalability`` bench
scenario, shared with ``repro bench run --scenario fig8_scalability``.
"""

from repro.bench.scenario import get_scenario
from repro.harness import experiments as E

SCENARIO = get_scenario("fig8_scalability")


def test_fig8_scalability(benchmark, scale, save_report):
    rep = benchmark.pedantic(lambda: E.fig8_scalability(scale), rounds=1, iterations=1)
    save_report(rep, "fig8_scalability")
    data = rep.data["scalability"]
    # every multi-MDS strategy in the scenario appears, at every cluster size
    expected = {v.strategy for v in SCENARIO.variants if v.strategy != "Single"}
    assert set(data) == expected
    sizes = sorted({v.n_mds for v in SCENARIO.variants if v.strategy != "Single"})
    for name, series in data.items():
        assert len(series) == len(sizes), name
        # more MDSs should never make 5-MDS worse than 2-MDS
        assert series[-1] >= series[0] * 0.9, name
    # Origami leads at full cluster size
    assert data["Origami"][-1] == max(s[-1] for s in data.values())
