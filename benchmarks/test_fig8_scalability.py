"""Fig. 8 (§5.5): aggregate throughput scaling from 2 to 5 MDSs.

Paper shape: baselines scale sub-linearly (balance vs locality tension);
Origami is near-linear (about 2.7x at 3 MDSs) and keeps the lead at 5.
"""

from repro.harness import experiments as E


def test_fig8_scalability(benchmark, scale, save_report):
    rep = benchmark.pedantic(lambda: E.fig8_scalability(scale), rounds=1, iterations=1)
    save_report(rep, "fig8_scalability")
    data = rep.data["scalability"]
    for name, series in data.items():
        # more MDSs should never make 5-MDS worse than 2-MDS
        assert series[-1] >= series[0] * 0.9, name
    # Origami leads at full cluster size
    assert data["Origami"][-1] == max(s[-1] for s in data.values())
