"""Ablations for the design choices DESIGN.md calls out.

* Δ sensitivity — the imbalance guard trades admissible moves for bounded
  sub-optimality;
* near-root cache depth — RPC/request and throughput vs threshold;
* model families — accuracy differs, decisions agree (§4.3);
* epoch length — reactivity vs statistics quality.
"""

from repro.harness import experiments as E


def test_ablation_delta(benchmark, scale, save_report):
    rep = benchmark.pedantic(lambda: E.ablation_delta(scale), rounds=1, iterations=1)
    save_report(rep, "ablation_delta")
    sweep = rep.data["delta_sweep"]
    fracs = sorted(sweep)
    improvements = [sweep[f]["improvement"] for f in fracs]
    # greedy paths differ per Δ (the bound is one-sided), but a loose guard
    # must still deliver the bulk of the improvement a tight one found
    assert improvements[-1] >= improvements[0] * 0.6
    assert all(v >= 0 for v in improvements)


def test_ablation_cache_depth(benchmark, scale, save_report):
    rep = benchmark.pedantic(lambda: E.ablation_cache_depth(scale), rounds=1, iterations=1)
    save_report(rep, "ablation_cache_depth")


def test_ablation_models(benchmark, scale, save_report):
    rep = benchmark.pedantic(lambda: E.ablation_models(scale), rounds=1, iterations=1)
    save_report(rep, "ablation_models")
    models = rep.data["models"]
    # every learned family must rank benefits clearly better than chance
    # (held-out labels are inherently noisy: the cluster state that also
    # shapes a benefit is not part of the Table-1 features)
    for name in ("LightGBM-style", "GBDT", "MLP"):
        assert models[name]["spearman"] > 0.15, name
    # the flagship model agrees with ground truth on the top decile far
    # above the ~10% chance level
    assert models["LightGBM-style"]["top_decile"] > 0.2


def test_ablation_epoch_length(benchmark, scale, save_report):
    rep = benchmark.pedantic(lambda: E.ablation_epoch_length(scale), rounds=1, iterations=1)
    save_report(rep, "ablation_epoch_length")


def test_ablation_online_learning(benchmark, scale, save_report):
    rep = benchmark.pedantic(
        lambda: E.ablation_online_learning(scale), rounds=1, iterations=1
    )
    save_report(rep, "ablation_online_learning")
    tput = rep.data["throughput"]
    # learning during the run must beat the popularity baseline...
    assert tput["Origami-online"] > tput["ML-tree"]
    # ...and land in the same league as the offline-trained model
    assert tput["Origami-online"] > tput["Origami (offline)"] * 0.6


def test_ablation_mdtest_uniform(benchmark, scale, save_report):
    rep = benchmark.pedantic(
        lambda: E.ablation_mdtest_uniform(scale), rounds=1, iterations=1
    )
    save_report(rep, "ablation_mdtest_uniform")
    data = rep.data["mdtest"]
    # all multi-MDS strategies beat the single MDS on uniform load
    for name in ("Even", "C-Hash", "Lunule", "Origami"):
        assert data[name]["tput"] > data["Single"]["tput"] * 1.3, name
    # the reactive balancers settle: little churn in the late half
    assert data["Origami"]["late_migrations"] <= data["Origami"]["migrations"] * 0.5 + 2


def test_ablation_cache_design(benchmark, scale, save_report):
    rep = benchmark.pedantic(
        lambda: E.ablation_cache_design(scale), rounds=1, iterations=1
    )
    save_report(rep, "ablation_cache_design")
    data = rep.data["cache_design"]
    # any cache beats no cache on both traces
    for kind in ("ro", "wi"):
        assert data[kind]["near-root"]["rpc"] < data[kind]["none"]["rpc"]
    # read-only: leases cost nothing and cover more of the path
    assert data["ro"]["lease"]["recalls"] == 0
    assert data["ro"]["lease"]["rpc"] <= data["ro"]["near-root"]["rpc"]
    # write-intensive: consistency traffic appears exactly here
    assert data["wi"]["lease"]["recalls"] > 0
    # priced realistically (recall broadcast to every client), the lease
    # cache loses its lead on the write-heavy trace — the §4.2 claim
    assert data["wi"]["lease-bcast"]["tput"] < data["wi"]["lease"]["tput"]
