"""Fig. 7 (§5.5): efficiency (busy fraction vs single MDS) over time.

Paper shape: hash strategies run at persistently lower efficiency (requests
cost more under shredded locality); the balancers start near single-MDS
efficiency and keep it as subtrees migrate out.
"""

import numpy as np

from repro.harness import experiments as E


def test_fig7_efficiency(benchmark, scale, save_report):
    rep = benchmark.pedantic(lambda: E.fig7_efficiency(scale), rounds=1, iterations=1)
    save_report(rep, "fig7_efficiency")
    ours = np.array(rep.data["efficiency_Origami"])
    fhash = np.array(rep.data["efficiency_F-Hash"])
    assert ours.size > 3 and fhash.size > 3
