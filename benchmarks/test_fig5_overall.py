"""Fig. 5 (§5.2): overall performance on Trace-RW.

(a) aggregate metadata throughput under 50-thread-equivalent saturation for
Single / C-Hash / F-Hash / ML-tree / Origami; (b) single-thread latency.
Paper shape: Origami highest throughput (3.86x single, 1.73x the best
baseline); latency penalty ordering F-Hash > C-Hash > ML-tree ~ Origami.

The strategy matrix comes from the ``fig5_overall`` bench scenario — the
same registry entry ``repro bench run --scenario fig5_overall`` executes —
so the paper figure and the perf-tracking artifact share one config source.
"""

from repro.bench.scenario import get_scenario
from repro.harness import experiments as E

SCENARIO = get_scenario("fig5_overall")


def test_fig5_overall(benchmark, scale, save_report):
    rep, _results = benchmark.pedantic(
        lambda: E.fig5_overall(scale), rounds=1, iterations=1
    )
    save_report(rep, "fig5_overall")
    tput = rep.data["throughput_x"]
    # the figure covers exactly the registered scenario's variants
    assert set(tput) == {v.strategy for v in SCENARIO.variants}
    # who-wins shape (the paper's central claim)
    assert tput["Origami"] > tput["C-Hash"] > tput["F-Hash"] > 1.0
    assert tput["Origami"] > tput["ML-tree"]
    lat = rep.data["latency_x"]
    # locality destruction shows up as single-thread latency
    assert lat["F-Hash"] > lat["C-Hash"] > 1.0
    assert lat["Origami"] < lat["F-Hash"]
