"""Table 2 (§5.4): near-root cache on/off — throughput and RPC per request.

Paper shape: caching improves every strategy; RPC/request drops for all;
Origami benefits the most and lands at ~1.04 RPC/request with the cache
(its migrations concentrate near the cached root and in deep write-heavy
subtrees, so forwarding almost vanishes).
"""

from repro.harness import experiments as E


def test_table2_cache(benchmark, scale, save_report):
    rep = benchmark.pedantic(lambda: E.table2_cache(scale), rounds=1, iterations=1)
    save_report(rep, "table2_cache")
    data = rep.data["cache"]
    for name, row in data.items():
        assert row["tput_cache"] > row["tput_nocache"], name
        assert row["rpc_cache"] < row["rpc_nocache"], name
    # Origami's cached RPC overhead is (essentially) the smallest — the
    # paper's 1.04; ML-tree can tie, since it migrates so little
    assert data["Origami"]["rpc_cache"] <= min(v["rpc_cache"] for v in data.values()) + 0.05
    assert data["Origami"]["rpc_cache"] < 1.3
