"""Fig. 2 (§2.2 motivation): even per-directory partitioning considered harmful.

Regenerates both panels: (a) per-MDS and aggregate throughput of a 5-MDS
evenly-partitioned cluster vs one MDS on the web workload; (b) the job
completion times.  Paper shape: every individual MDS runs well below the
single MDS, the aggregate reaches only ~1.4x, and JCT shrinks by ~57%.
"""

from repro.harness import experiments as E


def test_fig2_even_partitioning(benchmark, scale, save_report):
    rep = benchmark.pedantic(
        lambda: E.fig2_even_partitioning(scale), rounds=1, iterations=1
    )
    save_report(rep, "fig2_even_partitioning")
    # shape assertions: parallelism helps, but far below ideal 5x
    speedup = rep.data["aggregate_speedup"]
    assert 1.0 < speedup < 4.0
    assert 0.0 < rep.data["jct_reduction"] < 0.8
