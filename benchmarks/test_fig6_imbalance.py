"""Fig. 6 (§5.3): imbalance factors on QPS / RPCs / Inodes / BusyTime.

Paper shape: F-Hash achieves the most even QPS/RPC/Inode spread (that is
what hashing buys); Origami is NOT the most even on those metrics yet has
low BusyTime imbalance — "keeping every MDS busy beats even partitioning".
"""

from repro.harness import experiments as E


def test_fig6_imbalance(benchmark, scale, save_report):
    rep = benchmark.pedantic(lambda: E.fig6_imbalance(scale), rounds=1, iterations=1)
    save_report(rep, "fig6_imbalance")
    imb = rep.data["imbalance"]
    # hashing yields the most even inode spread
    assert imb["F-Hash"]["inodes"] <= min(v["inodes"] for v in imb.values()) + 1e-9
    # Origami keeps busy-time imbalance below the popularity-based ML baseline
    assert imb["Origami"]["busytime"] < imb["ML-tree"]["busytime"]
