"""Table 1 (§4.3): training features and their Gini-importance ranks.

Paper shape: subtree structure + write activity dominate — '# sub-files' is
rank 1 and '# write' / 'dir-file ratio' rank 2, while 'depth' is least
informative (rank 7).
"""

from repro.harness import experiments as E


def test_table1_features(benchmark, scale, save_report):
    rep = benchmark.pedantic(lambda: E.table1_features(scale), rounds=1, iterations=1)
    save_report(rep, "table1_features")
    ranks = rep.data["ranks"]
    imps = rep.data["importances"]
    # structural size + write activity must carry much of the signal
    top3 = sorted(imps, key=imps.get, reverse=True)[:3]
    assert set(top3) & {"n_sub_files", "n_write", "n_sub_dirs", "dir_file_ratio"}
    # the weakest features carry little gain
    assert min(imps.values()) < 0.1
