"""Fig. 9 (§5.6): three real-world workloads, metadata-only and end-to-end.

Paper shape: Origami achieves the highest metadata throughput on all three
traces (largest margin on Trace-RW, smallest on the hardest Trace-WI) and
stays ahead end-to-end once the data path is enabled.
"""

from repro.harness import experiments as E


def test_fig9_realworld(benchmark, scale, save_report):
    rep = benchmark.pedantic(lambda: E.fig9_realworld(scale), rounds=1, iterations=1)
    save_report(rep, "fig9_realworld")
    meta = rep.data["fig9"]["meta"]
    for kind in ("rw", "ro", "wi"):
        best_baseline = max(v for k, v in meta[kind].items() if k != "Origami")
        assert meta[kind]["Origami"] > best_baseline * 0.95, kind
    # the RW margin exceeds the WI margin (paper: +73.3% vs +12.5%)
    margin = {
        kind: meta[kind]["Origami"] / max(v for k, v in meta[kind].items() if k != "Origami")
        for kind in ("rw", "wi")
    }
    assert margin["rw"] >= margin["wi"] * 0.9
