#!/usr/bin/env python
"""Profile the DES hot path and print a sorted cost table.

The hot-path optimization PR was profile-driven: every change started from
this table (which functions own the wall time of a default-tier run) and
ended with the golden-equivalence suite proving the output bits unchanged.
This script keeps that loop reproducible:

    PYTHONPATH=src python scripts/profile_hotpath.py
    PYTHONPATH=src python scripts/profile_hotpath.py --kind wi --scale smoke
    PYTHONPATH=src python scripts/profile_hotpath.py --sort cumtime --top 40
    PYTHONPATH=src python scripts/profile_hotpath.py --repeat 3   # throughput too

``--repeat N`` additionally reports the un-profiled engine throughput
(``engine_events_per_wall_sec``, best of N) — the headline number the
``scale_large_hotpath``/default-tier acceptance gates track — since cProfile
instrumentation itself roughly halves it.

The same table is available on any simulation via ``repro simulate
--profile``; this helper just fixes the configuration to the one the
optimization work measured (Lunule on Trace-RW, default tier, seed 42).
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys


def build(kind: str, scale, seed: int):
    from repro.harness.experiments import build_workload

    return build_workload(kind, scale.n_ops, seed, tree_scale=scale.tree_scale)


def run(kind: str, scale, seed: int):
    from repro.harness.experiments import run_strategy

    return run_strategy("Lunule", kind, scale, seed=seed)


def _hotspot_rows(stats: pstats.Stats, top: int) -> list:
    """The sorted cost table as plain dicts (one per function)."""
    rows = []
    for func in (stats.fcn_list or sorted(stats.stats))[:top]:
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, lineno, name = func
        rows.append(
            {
                "function": f"{filename}:{lineno}({name})",
                "ncalls": int(nc),
                "primitive_calls": int(cc),
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--kind", default="rw", choices=("rw", "ro", "wi", "mdtest"))
    ap.add_argument("--scale", default="default",
                    choices=("smoke", "default", "full", "large"))
    ap.add_argument("--seed", type=int, default=42)
    ap.add_argument("--sort", default="tottime",
                    choices=("tottime", "cumtime", "ncalls"))
    ap.add_argument("--top", type=int, default=30,
                    help="rows of the cost table to print (default 30)")
    ap.add_argument("--repeat", type=int, default=0, metavar="N",
                    help="also run N un-profiled passes and report the best "
                         "engine_events_per_wall_sec (0 = skip)")
    ap.add_argument("--json", metavar="PATH", dest="json_path",
                    help="also write the top-N hotspots plus the run summary "
                         "as a machine-readable JSON artifact (CI uploads "
                         "this from the hotpath-equivalence job)")
    args = ap.parse_args(argv)

    from repro.harness.config import get_scale

    scale = get_scale(args.scale)
    print(f"profiling Lunule on Trace-{args.kind.upper()}, scale={scale.name} "
          f"({scale.n_ops:,} ops, {scale.n_clients:,} clients, "
          f"tree_scale={scale.tree_scale:g}), seed={args.seed}")

    profiler = cProfile.Profile()
    profiler.enable()
    result = run(args.kind, scale, args.seed)
    profiler.disable()

    print(f"run: {result.ops_completed:,} ops, {result.engine_events:,} engine "
          f"events in {result.wall_s:.2f} wall s "
          f"({result.engine_events_per_wall_sec:,.0f} ev/s under the profiler)")
    print()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)

    best = None
    if args.repeat > 0:
        best = 0.0
        for i in range(args.repeat):
            r = run(args.kind, scale, args.seed)
            rate = r.engine_events_per_wall_sec
            best = max(best, rate)
            print(f"un-profiled pass {i + 1}/{args.repeat}: {rate:,.0f} ev/s")
        print(f"best engine_events_per_wall_sec: {best:,.0f}")

    if args.json_path:
        payload = {
            "kind": args.kind,
            "scale": scale.name,
            "seed": args.seed,
            "sort": args.sort,
            "top": args.top,
            "run": {
                "ops_completed": int(result.ops_completed),
                "engine_events": int(result.engine_events),
                "wall_s_profiled": round(float(result.wall_s), 3),
                "engine_events_per_wall_sec_profiled": round(
                    float(result.engine_events_per_wall_sec), 1
                ),
            },
            "best_unprofiled_events_per_wall_sec": (
                round(best, 1) if best is not None else None
            ),
            "hotspots": _hotspot_rows(stats, args.top),
        }
        with open(args.json_path, "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"wrote hotspot JSON to {args.json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
