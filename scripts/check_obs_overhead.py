#!/usr/bin/env python
"""CI gate: the windowed-telemetry pipeline must stay cheap.

Runs the same smoke-scale simulation with observability fully disabled
vs. with the timeline collector enabled, and fails (exit 1) when the
timeline run costs more than ``--budget`` fractional wall time over the
bare one.  Repeats are interleaved (bare, timeline, bare, timeline, …)
so slow machine drift hits both configurations equally, and each side is
scored by its min (min, not mean: scheduling noise only ever adds time).

The parity suite proves the collector changes no *simulated* number;
this script bounds what it costs in *real* time.  A combined run with
the metrics registry also enabled is reported informationally — the
registry predates this pipeline and pays one histogram observe plus
several counter adds per op, so it is not held to the timeline's budget.

Usage (CI runs the defaults):

    PYTHONPATH=src python scripts/check_obs_overhead.py
    PYTHONPATH=src python scripts/check_obs_overhead.py --ops 20000 --budget 0.05
"""

from __future__ import annotations

import argparse
import sys
import time


def run_once(n_ops: int, window_ms: float, kind: str) -> float:
    from repro.balancers import LunulePolicy
    from repro.costmodel import CostParams
    from repro.fs import SimConfig, run_simulation
    from repro.obs import Observability
    from repro.sim import SeedSequenceFactory
    from repro.workloads import generate_trace_rw

    ssf = SeedSequenceFactory(0)
    built, trace = generate_trace_rw(ssf.stream("w"), n_ops=n_ops)
    obs = None
    if kind == "timeline":
        obs = Observability(timeline=True, timeline_window_ms=window_ms)
    elif kind == "full":
        obs = Observability(metrics=True, timeline=True, timeline_window_ms=window_ms)
    config = SimConfig(
        n_mds=3,
        n_clients=20,
        epoch_ms=50.0,
        params=CostParams(cache_depth=2),
        seed=0,
        obs=obs,
    )
    t0 = time.perf_counter()
    run_simulation(built.tree, trace, LunulePolicy(), config)
    return time.perf_counter() - t0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=8000, help="trace length")
    parser.add_argument("--repeats", type=int, default=7,
                        help="interleaved runs per configuration; min is compared")
    parser.add_argument("--budget", type=float, default=0.10,
                        help="max fractional timeline overhead (0.10 = 10%%)")
    parser.add_argument("--window-ms", type=float, default=10.0,
                        help="timeline window (small = worst case: more closes)")
    args = parser.parse_args(argv)

    kinds = ("bare", "timeline", "full")
    # warm every path once (imports, allocator, branch caches) before timing
    for kind in kinds:
        run_once(args.ops, args.window_ms, kind)
    times = {kind: [] for kind in kinds}
    for _ in range(args.repeats):
        for kind in kinds:
            times[kind].append(run_once(args.ops, args.window_ms, kind))

    bare = min(times["bare"])
    timeline = min(times["timeline"])
    full = min(times["full"])
    overhead = timeline / bare - 1.0

    print(f"obs overhead check: {args.ops} ops, {args.repeats} repeats, "
          f"{args.window_ms:g} ms windows")
    print(f"  bare               : {bare * 1e3:8.1f} ms")
    print(f"  timeline           : {timeline * 1e3:8.1f} ms  "
          f"({overhead:+.1%}, budget {args.budget:.0%})")
    print(f"  metrics + timeline : {full * 1e3:8.1f} ms  "
          f"({full / bare - 1.0:+.1%}, informational)")
    if overhead > args.budget:
        print("FAIL — timeline pipeline exceeds its overhead budget",
              file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
