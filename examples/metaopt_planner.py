#!/usr/bin/env python3
"""Use Meta-OPT directly as an offline partition planner.

Beyond driving ML training, Algorithm 1 is useful on its own: given a
recorded request window and the current directory→MDS assignment, it emits
an ordered list of subtree migrations with their predicted JCT benefit —
i.e. a migration plan an operator could review and apply.

This example plans migrations for a write-intensive cloud workload starting
from the worst case (everything on MDS 0), prints the plan, and verifies the
predicted JCT improvement against a full re-evaluation.

Run:  python examples/metaopt_planner.py
"""

from repro import (
    CostParams,
    PartitionMap,
    SeedSequenceFactory,
    evaluate_trace,
    generate_trace_wi,
    meta_opt,
)


def main() -> None:
    params = CostParams(cache_depth=2)
    built, trace = generate_trace_wi(SeedSequenceFactory(3).stream("wi"), n_ops=30_000)
    tree = built.tree
    window = trace[:8_000]  # the "known future" window

    pmap = PartitionMap(tree, n_mds=5)  # everything on MDS 0
    before = evaluate_trace(window, tree, pmap, params)
    print(f"before: JCT {before.jct:.1f} ms, per-MDS load {before.rct_per_mds.round(1)}")

    delta = before.jct * 0.2  # imbalance guard: 20% of the current JCT
    plan = meta_opt(window, tree, pmap, params, delta=delta, max_migrations=12)

    print(f"\nmigration plan ({len(plan.decisions)} moves, Δ = {delta:.1f} ms):")
    for i, d in enumerate(plan.decisions):
        print(
            f"  {i + 1:2d}. {tree.path_of(d.subtree_root):40s} "
            f"MDS{d.src} -> MDS{d.dst}   benefit {d.predicted_benefit:8.2f} ms"
        )

    after = evaluate_trace(window, tree, plan.final_partition, params)
    print(f"\nafter : JCT {after.jct:.1f} ms, per-MDS load {after.rct_per_mds.round(1)}")
    print(f"JCT improvement: {plan.improvement:.1%} (planner's own estimate matches: "
          f"{plan.jct_after:.1f} ms vs re-evaluated {after.jct:.1f} ms)")


if __name__ == "__main__":
    main()
