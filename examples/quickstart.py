#!/usr/bin/env python3
"""Quickstart: simulate a 5-MDS metadata cluster and compare two balancers.

Builds a synthetic compilation workload (the paper's Trace-RW), replays it
against a simulated OrigamiFS cluster twice — once hashed coarse-grained,
once with the Lunule-style subtree balancer — and prints the headline
metrics (throughput, latency, RPC overhead, imbalance).

Run:  python examples/quickstart.py
"""

from repro import (
    CoarseHashPolicy,
    CostParams,
    LunulePolicy,
    SeedSequenceFactory,
    SimConfig,
    generate_trace_rw,
    run_simulation,
)


def main() -> None:
    config = SimConfig(
        n_mds=5,
        n_clients=100,
        epoch_ms=100.0,
        params=CostParams(cache_depth=2),  # near-root cache on (depth < 2)
    )

    for policy_cls in (CoarseHashPolicy, LunulePolicy):
        # fresh namespace + trace per run: the DES mutates the namespace
        ssf = SeedSequenceFactory(42)
        built, trace = generate_trace_rw(ssf.stream("workload"), n_ops=30_000)
        policy = policy_cls()
        result = run_simulation(built.tree, trace, policy, config)
        imb = result.imbalance()
        print(f"--- {result.strategy}")
        print(f"  ops completed        : {result.ops_completed:,}")
        print(f"  aggregate throughput : {result.throughput_ops_per_sec / 1000:.1f} kops/s")
        print(f"  steady-state (post-balancing): {result.steady_state_throughput() / 1000:.1f} kops/s")
        print(f"  mean latency         : {result.mean_latency_ms * 1000:.0f} us  (p99 {result.p99_latency_ms * 1000:.0f} us)")
        print(f"  RPCs per request     : {result.rpcs_per_request:.2f}")
        print(f"  migrations applied   : {result.migrations}")
        print(f"  imbalance (QPS/Busy) : {imb.qps:.2f} / {imb.busytime:.2f}")
        print()


if __name__ == "__main__":
    main()
