#!/usr/bin/env python3
"""Resilience study: what happens when one MDS degrades mid-run?

Real clusters see partial failures — compaction stalls, noisy neighbours —
that slow a single MDS without killing it.  A static hash partition keeps
sending the same share of traffic to the sick server; a busy-time-driven
balancer observes the inflated busy time and migrates subtrees away.

This example degrades MDS 0 by 4x for a window in the middle of the run and
compares C-Hash (static) against the online-learning Origami (which needs
no offline training at all): watch the per-epoch load share of the degraded
server.

Run:  python examples/degraded_mds_resilience.py
"""

import numpy as np

from repro import CostParams, CoarseHashPolicy, OnlineOrigamiPolicy, SeedSequenceFactory, SimConfig
from repro.fs.faults import FaultSchedule, Slowdown
from repro.fs.filesystem import OrigamiFS
from repro.workloads import generate_trace_rw


def run(policy, label):
    built, trace = generate_trace_rw(SeedSequenceFactory(11).stream("w"), n_ops=50_000)
    # degrade MDS 0 by 4x from 200 ms onward
    faults = FaultSchedule([Slowdown(mds=0, start_ms=200.0, end_ms=1e9, factor=4.0)])
    cfg = SimConfig(
        n_mds=4, n_clients=150, epoch_ms=80.0,
        params=CostParams(cache_depth=2), faults=faults,
    )
    fs = OrigamiFS(built.tree, trace, policy, cfg)
    result = fs.run()

    shares = [
        float(e.qps[0] / e.qps.sum()) if e.qps.sum() else 0.0 for e in result.per_epoch
    ]
    print(f"--- {label}")
    print(f"  throughput (steady)  : {result.steady_state_throughput() / 1000:.1f} kops/s")
    print(f"  migrations           : {result.migrations}")
    print("  MDS0 load share/epoch:", " ".join(f"{s:.2f}" for s in shares[:14]))
    print()
    return result


def main() -> None:
    print("MDS 0 degrades 4x at t=200ms. Fair share would be 0.25.\n")
    run(CoarseHashPolicy(), "C-Hash (static hash, cannot react)")
    run(
        OnlineOrigamiPolicy(delta=50.0, retrain_every=3, min_samples=400, gbdt_rounds=40),
        "Origami-online (no offline training, learns during the run)",
    )


if __name__ == "__main__":
    main()
