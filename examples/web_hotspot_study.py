#!/usr/bin/env python3
"""Hotspot-drift study on the read-only web workload (Trace-RO).

The web access trace is heavily Zipf-skewed and its hot set drifts across
time segments.  This example shows why that combination defeats static
partitioning: a fine-grained hash spreads *inodes* evenly but cannot follow
the load, while subtree migration re-pins the hot subtrees each epoch.

The script prints, per strategy, the per-epoch imbalance factor trajectory
and the end throughput — watch the hash strategies' imbalance bounce as the
hot set drifts while the balancers chase it back down.

Run:  python examples/web_hotspot_study.py
"""

import numpy as np

from repro import (
    CostParams,
    FineHashPolicy,
    LunulePolicy,
    OrigamiPolicy,
    SeedSequenceFactory,
    SimConfig,
    collect_training_data,
    generate_trace_ro,
    imbalance_factor,
    run_simulation,
    train_origami_model,
)


def main() -> None:
    params = CostParams(cache_depth=2)

    # train the benefit model on the web workload family
    built_t, trace_t = generate_trace_ro(SeedSequenceFactory(7).stream("train"), n_ops=40_000)
    dataset, _ = collect_training_data(
        built_t.tree, trace_t, n_mds=5, params=params, delta=50.0, ops_per_epoch=4_000
    )
    model = train_origami_model(dataset, n_estimators=120)

    for label, make_policy in (
        ("F-Hash (static, even inodes)", FineHashPolicy),
        ("Lunule (reactive heuristic)", LunulePolicy),
        ("Origami (predicted benefit)", lambda: OrigamiPolicy(model)),
    ):
        built, trace = generate_trace_ro(SeedSequenceFactory(42).stream("web"), n_ops=60_000)
        result = run_simulation(
            built.tree,
            trace,
            make_policy(),
            SimConfig(n_mds=5, n_clients=300, epoch_ms=100.0, params=params),
        )
        per_epoch_if = [
            imbalance_factor(e.qps) if e.qps.sum() > 0 else 0.0 for e in result.per_epoch
        ]
        spark = " ".join(f"{v:.2f}" for v in per_epoch_if[:12])
        print(f"--- {label}")
        print(f"  steady-state throughput : {result.steady_state_throughput() / 1000:.1f} kops/s")
        print(f"  rpc per request         : {result.rpcs_per_request:.2f}")
        print(f"  migrations              : {result.migrations}")
        print(f"  per-epoch QPS imbalance : {spark} ...")
        print()


if __name__ == "__main__":
    main()
