#!/usr/bin/env python3
"""End-to-end Origami workflow (§4.3): label → train → validate online.

1. **Label generation** — replay a training trace epoch-by-epoch against the
   analytic cost model; Meta-OPT computes each candidate subtree's migration
   benefit with the next window known (Bélády-style supervision).
2. **Model training** — fit the LightGBM-style GBDT on the Table-1 features,
   and print the Gini-importance ranking the paper reports in Table 1.
3. **Online validation** — plug the trained model into the Origami policy
   and replay a *different* seed of the workload on the simulated cluster,
   comparing against the untrained persistence baseline (ML-tree).

Run:  python examples/train_origami.py
"""

import numpy as np

from repro import (
    CostParams,
    MLTreePolicy,
    OrigamiPolicy,
    SeedSequenceFactory,
    SimConfig,
    collect_training_data,
    generate_trace_rw,
    run_simulation,
    train_origami_model,
)
from repro.ml.importance import rank_features


def main() -> None:
    params = CostParams(cache_depth=2)

    # ---- 1. label generation -------------------------------------------
    ssf = SeedSequenceFactory(7)
    built, trace = generate_trace_rw(ssf.stream("train"), n_ops=40_000)
    print(f"training trace: {len(trace):,} ops over {built.tree.num_dirs:,} dirs")
    dataset, final_partition = collect_training_data(
        built.tree, trace, n_mds=5, params=params, delta=50.0, ops_per_epoch=4_000
    )
    print(f"labelled samples: {dataset.n_samples:,}")
    _, y = dataset.matrices()
    print(f"positive-benefit fraction: {(y > 0).mean():.1%}")

    # ---- 2. offline training -------------------------------------------
    model = train_origami_model(dataset, n_estimators=120)
    print("\nTable-1 style feature importance (split gain):")
    for name, imp, rank in rank_features(model.feature_importances()):
        print(f"  rank {rank}: {name:18s} {imp:.3f}")

    # ---- 3. online validation ------------------------------------------
    print("\nonline validation on a fresh workload seed:")
    for label, policy in (
        ("ML-tree (popularity baseline)", MLTreePolicy()),
        ("Origami (predicted benefit)", OrigamiPolicy(model)),
    ):
        built_v, trace_v = generate_trace_rw(
            SeedSequenceFactory(42).stream("validate"), n_ops=60_000
        )
        result = run_simulation(
            built_v.tree,
            trace_v,
            policy,
            SimConfig(n_mds=5, n_clients=300, epoch_ms=100.0, params=params),
        )
        print(
            f"  {label:32s} steady-state {result.steady_state_throughput() / 1000:6.1f} kops/s, "
            f"rpc/req {result.rpcs_per_request:.2f}, "
            f"busy-imbalance {result.imbalance().busytime:.2f}"
        )


if __name__ == "__main__":
    main()
