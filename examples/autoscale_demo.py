#!/usr/bin/env python3
"""Elastic MDS pool demo: autoscaling through two simulated diurnal days.

The diurnal workload breathes between a night trough and a midday peak
(client think time shaped by ``generate_trace_diurnal``).  A static 4-MDS
cluster pays for its peak capacity all night; the elastic pool in
``examples/autoscale_diurnal.json`` starts at 2 MDSs, scales out as the
morning ramp pushes utilization past the threshold, and gracefully drains
back down at night — without losing a single operation.

The demo prints the cost/latency frontier (MDS-seconds vs p99), a per-MDS
busy-time heatmap, and the pool-size series breathing under it.

Run:  python examples/autoscale_demo.py
"""

import pathlib

from repro import CostParams, SimConfig
from repro.balancers import LunulePolicy
from repro.fs import run_simulation
from repro.fs.elastic import AutoscaleSpec
from repro.harness.experiments import build_workload
from repro.obs import Observability
from repro.obs.export import render_heatmap

SPEC = pathlib.Path(__file__).parent / "autoscale_diurnal.json"

N_OPS = 45_000  # two simulated days of diurnal load
SEED = 42

#: pool-size sparkline glyphs (1..max_mds)
_BARS = "_▂▄▆█"


def run(n_mds, autoscale=None):
    built, trace = build_workload("diurnal", N_OPS, seed=SEED)
    obs = Observability(timeline=True, timeline_window_ms=60.0)
    config = SimConfig(
        n_mds=n_mds,
        n_clients=120,
        epoch_ms=60.0,
        params=CostParams(cache_depth=2),
        seed=SEED,
        autoscale=autoscale,
        obs=obs,
    )
    return run_simulation(built.tree, trace, LunulePolicy(), config), obs


def main() -> None:
    spec = AutoscaleSpec.load(str(SPEC))
    static, _ = run(n_mds=4)
    elastic, obs = run(n_mds=2, autoscale=spec)

    e = elastic.elastic
    static_mds_s = 4 * static.duration_ms / 1000.0
    saving = 1.0 - e["mds_seconds"] / static_mds_s
    p99_delta = elastic.p99_latency_ms / static.p99_latency_ms - 1.0

    print(f"spec                 : {SPEC.name} ({spec.policy}, "
          f"pool [{spec.min_mds}, {spec.max_mds}])")
    print(f"ops issued           : {N_OPS:,} (both runs, same seed)")
    print(f"static 4-MDS         : {static_mds_s:.2f} MDS-s, "
          f"p99 {static.p99_latency_ms * 1000:.0f} us")
    print(f"elastic [1..4]       : {e['mds_seconds']:.2f} MDS-s, "
          f"p99 {elastic.p99_latency_ms * 1000:.0f} us")
    print(f"frontier             : {saving:.0%} fewer MDS-seconds at "
          f"{p99_delta:+.1%} p99")
    print(f"pool activity        : {int(e['scale_outs'])} scale-outs, "
          f"{int(e['drains_completed'])}/{int(e['drains_started'])} drains, "
          f"pool {int(e['pool_min'])}..{int(e['pool_peak'])}")

    assert elastic.ops_completed == N_OPS, "graceful drains must lose nothing"
    assert e["pool_peak"] > e["pool_initial"], "the pool never scaled out"
    assert e["drains_completed"] >= 1, "the pool never scaled back in"
    print("\npool breathed through both days and no operation was lost\n")

    rows = obs.timeline.to_rows()
    print(render_heatmap(rows, metric="busy", width=72))
    pool = [int(r["pool_size"]) for r in rows]
    cells = "".join(_BARS[min(p, len(_BARS)) - 1] for p in pool)
    print(f"pool  |{cells}|")
    print(f"      (pool size per {rows[0]['end_ms'] - rows[0]['start_ms']:.0f} ms "
          f"window: min {min(pool)}, peak {max(pool)})")


if __name__ == "__main__":
    main()
