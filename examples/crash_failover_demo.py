#!/usr/bin/env python3
"""Crash/failover demo: an MDS dies mid-run and no operation is lost.

The schedule in ``examples/faults_demo.json`` crashes MDS 0 for a 50 ms
window (then restarts it with a warm-up penalty), slows MDS 1 by 3x later,
and adds per-RPC delay on MDS 2.  Clients ride it out with the SDK's retry
layer: bounded exponential backoff with seeded jitter, and failover to the
new owner once the balancer evacuates the dead server's subtrees.

The run asserts the zero-lost-ops invariant: every issued operation either
completes, vanishes under a concurrent namespace mutation, or surfaces a
typed failure — nothing disappears silently.

Run:  python examples/crash_failover_demo.py
"""

import pathlib

from repro import CostParams, SimConfig
from repro.balancers import LunulePolicy
from repro.fs import run_simulation
from repro.fs.faults import FaultSchedule
from repro.harness.experiments import build_workload

SCHEDULE = pathlib.Path(__file__).parent / "faults_demo.json"


def main() -> None:
    faults = FaultSchedule.load(str(SCHEDULE))
    built, trace = build_workload("rw", 12_000, seed=0)
    config = SimConfig(
        n_mds=3,
        n_clients=24,
        epoch_ms=25.0,
        params=CostParams(cache_depth=2),
        seed=0,
        faults=faults,
    )
    result = run_simulation(built.tree, trace, LunulePolicy(), config)

    fl = result.faults
    print(f"schedule             : {SCHEDULE.name} "
          f"({int(fl['events_scheduled'])} fault events)")
    print(f"ops issued           : {len(trace):,}")
    print(f"ops completed        : {result.ops_completed:,}")
    print(f"typed failures       : {result.fault_failed_ops} "
          f"(vanished under races: {result.vanished_ops})")
    print(f"crashes/restarts     : {int(fl['crashes'])}/{int(fl['restarts'])}")
    print(f"retries              : {int(fl['retries'])} "
          f"({fl['backoff_wait_ms']:.1f} ms backing off)")
    print(f"failovers            : {int(fl['failovers'])}")
    print(f"ops recovered        : {int(fl['ops_recovered'])}")
    print(f"mean latency         : {result.mean_latency_ms * 1000:.0f} us "
          f"(p99 {result.p99_latency_ms * 1000:.0f} us)")

    accounted = result.ops_completed + result.fault_failed_ops + result.vanished_ops
    assert accounted == len(trace), (
        f"lost operations: accounted {accounted} of {len(trace)}"
    )
    print("\nzero-lost-ops invariant holds: every op completed, failed typed, "
          "or vanished under a race.")


if __name__ == "__main__":
    main()
