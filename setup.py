"""Shim for legacy editable installs (offline environments without wheel).

``pip install -e . --no-build-isolation --no-use-pep517`` works against this
file when the modern PEP-517 path is unavailable.
"""

from setuptools import setup

setup()
