"""Cost constants of the RCT model (Eq. 1 and 2), with calibration notes.

Units are **milliseconds of virtual time** everywhere.

Calibration: the paper's single OrigamiFS MDS sustains ~19.4k metadata ops/s
on Trace-RW (§5.2) on 8-core NVMe nodes with intra-cluster RTTs of a few
hundred microseconds.  The defaults below put a depth-4, single-partition
stat at ``T_inode*(1+5) + T_exec + RTT ≈ 0.05 ms`` of *server* busy time,
i.e. ≈20k ops/s for one MDS — so absolute throughputs land in the paper's
ballpark and, more importantly, the *ratios* between locality-preserving and
locality-destroying partitions are governed by the same relative weights the
paper measured:

* an extra partition on the path costs one fake-inode read plus one RTT —
  noticeable but survivable (C-Hash beats 1 MDS);
* a cross-MDS namespace mutation pays ``T_coor`` ≈ 20 inode reads — the
  distributed-transaction penalty that sinks F-Hash on write-heavy traces;
* queueing is emergent in the DES; the analytic JCT uses the bin-packing
  approximation of §3.2 (optionally seeded with sampled queue delays).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.costmodel.optypes import OpType

__all__ = ["CostParams"]


@dataclass(frozen=True)
class CostParams:
    """Constants for Eq. (1)/(2); frozen so evaluations can cache on identity."""

    #: time to read one inode from the local store (ms)
    t_inode: float = 0.004
    #: fixed execution time of a read-type op (ms)
    t_exec_read: float = 0.012
    #: fixed execution time of an lsdir beyond per-entry reads (ms)
    t_exec_lsdir: float = 0.030
    #: fixed execution time of a namespace mutation (ms)
    t_exec_nsmut: float = 0.024
    #: one network round trip between client/MDS or MDS/MDS (ms)
    rtt: float = 0.010
    #: server-side CPU to handle one RPC (parse/dispatch/marshal, ms) — the
    #: §5.5 mechanism: forwarded requests are not free for the MDS that
    #: fields them, which is what caps hash partitioning's scalability
    t_rpc: float = 0.010
    #: distributed-transaction coordination penalty for split mutations (ms)
    t_coor: float = 0.080
    #: client-side near-root cache: directory entries with depth < this are
    #: cached (0 disables the cache)
    cache_depth: int = 0
    #: optional per-MDS queue-delay estimates (ms per request), the
    #: "historical sampling" hook of §3.2 footnote 1; None = ignore queueing
    queue_delay: Optional[np.ndarray] = None

    def __post_init__(self):
        for name in ("t_inode", "t_exec_read", "t_exec_lsdir", "t_exec_nsmut", "rtt", "t_rpc", "t_coor"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.cache_depth < 0:
            raise ValueError("cache_depth must be non-negative")
        # per-op exec-time table (not a dataclass field: invisible to
        # ==/hash/repr); hot callers index it directly instead of paying a
        # category dispatch per call
        from repro.costmodel.optypes import CATEGORY_TUPLE

        by_cat = (self.t_exec_read, self.t_exec_lsdir, self.t_exec_nsmut)
        object.__setattr__(
            self, "t_exec_table", tuple(by_cat[c] for c in CATEGORY_TUPLE)
        )

    def t_exec(self, op: "OpType | int") -> float:
        """Fixed execution time for an operation."""
        return self.t_exec_table[int(op)]

    def t_exec_by_category(self) -> np.ndarray:
        """Vector of exec times indexed by category (read, lsdir, nsmut)."""
        return np.array(
            [self.t_exec_read, self.t_exec_lsdir, self.t_exec_nsmut], dtype=np.float64
        )

    def with_cache(self, depth: int) -> "CostParams":
        """Copy with the near-root cache set to ``depth``."""
        return replace(self, cache_depth=depth)

    def with_queue_delay(self, delays: Optional[np.ndarray]) -> "CostParams":
        return replace(self, queue_delay=None if delays is None else np.asarray(delays, dtype=np.float64))
