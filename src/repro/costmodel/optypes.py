"""Metadata operation types and Eq. (2)'s three cost categories.

The paper groups primary metadata requests into:

* ``lsdir`` — directory listings; migrated children add ``RTT * i`` where
  ``i`` is the number of *other* MDSs holding the directory's children;
* ``ns-m`` — namespace mutations (create/mkdir/rmdir/unlink/rename); when
  parent and target live on different MDSs they pay ``T_coor`` once for the
  distributed transaction;
* ``others`` — everything else (stat/open/getattr); unaffected beyond the
  baseline ``T_inode*(m+k) + T_exec`` and the ``m·RTT`` hops.

Reads vs writes (for the Table-1 features) follow the paper: metadata read
ops are open()/stat()-like (lsdir included), metadata write ops are the
namespace mutations.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = [
    "OpType",
    "category_of",
    "CATEGORY_READ",
    "CATEGORY_LSDIR",
    "CATEGORY_NSMUT",
    "CATEGORY_ARRAY",
    "CATEGORY_TUPLE",
    "IS_WRITE_ARRAY",
]

CATEGORY_READ = 0
CATEGORY_LSDIR = 1
CATEGORY_NSMUT = 2


class OpType(enum.IntEnum):
    """Concrete metadata operations appearing in traces."""

    STAT = 0
    OPEN = 1
    GETATTR = 2
    READDIR = 3
    CREATE = 4
    MKDIR = 5
    UNLINK = 6
    RMDIR = 7
    RENAME = 8


_CATEGORY = {
    OpType.STAT: CATEGORY_READ,
    OpType.OPEN: CATEGORY_READ,
    OpType.GETATTR: CATEGORY_READ,
    OpType.READDIR: CATEGORY_LSDIR,
    OpType.CREATE: CATEGORY_NSMUT,
    OpType.MKDIR: CATEGORY_NSMUT,
    OpType.UNLINK: CATEGORY_NSMUT,
    OpType.RMDIR: CATEGORY_NSMUT,
    OpType.RENAME: CATEGORY_NSMUT,
}

#: vectorised category lookup indexed by OpType value
CATEGORY_ARRAY = np.array([_CATEGORY[OpType(v)] for v in range(len(OpType))], dtype=np.int8)

#: vectorised "is a metadata write" lookup (Table-1 feature accounting)
IS_WRITE_ARRAY = CATEGORY_ARRAY == CATEGORY_NSMUT

#: scalar-lookup twin of CATEGORY_ARRAY — tuple indexing is ~6x faster than
#: a numpy scalar fetch on the per-op DES hot path
CATEGORY_TUPLE = tuple(int(c) for c in CATEGORY_ARRAY)


def category_of(op: "OpType | int") -> int:
    """Cost category (Eq. 2) for an operation."""
    return CATEGORY_TUPLE[op] if type(op) is int else CATEGORY_TUPLE[int(op)]
