"""Fast per-subtree migration accounting (Appendix A's ``l_s`` / ``o_s``).

Evaluating ``JCT(N, M.migrate(s, i, k))`` from scratch for every candidate
``(s, k)`` pair (Algorithm 1, lines 6–8) costs O(|N|) each.  The ledger
exploits the structure of subtree migration to make each what-if O(#MDS):

* a migration candidate is a directory whose subtree is *uniformly owned*
  (mixed subtrees are not a single move);
* requests targeting inside ``s`` share the same ancestor prefix above
  ``root(s)``, so the change in contacted-partition count ``Δm`` is one
  number per candidate: ``[dst ∉ P_s] − [src ∉ P_s]`` with ``P_s`` the
  owners of the uncached strict ancestors of ``root(s)``;
* only three bins change: the source loses the subtree's request mass
  ``l_s``, the destination gains ``l_s`` plus the boundary overhead, and the
  parent's owner gains/loses the lsdir-gather and split-mutation penalties.

Everything is exact for subtree placement (``pmap.placement is None``) —
tests cross-check the ledger's predicted per-MDS loads against a full
re-evaluation after really applying the migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.partition import PartitionMap
from repro.costmodel.evaluate import ClusterLoad, evaluate_trace
from repro.costmodel.optypes import (
    CATEGORY_ARRAY,
    CATEGORY_LSDIR,
    OpType,
)
from repro.costmodel.params import CostParams
from repro.namespace.tree import ROOT_INO, NamespaceTree
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # type-only: avoids a package-import cycle with repro.workloads
    from repro.workloads.trace import Trace

__all__ = ["SubtreeLedger", "DstEvaluation"]


@dataclass
class DstEvaluation:
    """Vectorised what-if results for migrating each candidate to one dst."""

    #: candidate subtree-root inos (same order as the arrays below)
    candidates: np.ndarray
    #: JCT after the migration, per candidate
    jct_new: np.ndarray
    #: base JCT − new JCT (positive = improvement)
    benefit: np.ndarray
    #: post-migration dst.rct − src.rct (Algorithm 1's Δ constraint input)
    dst_minus_src: np.ndarray
    #: False where the move is meaningless (src == dst)
    valid: np.ndarray


class SubtreeLedger:
    """Per-subtree aggregates enabling O(#MDS) migration what-ifs."""

    def __init__(
        self,
        trace: "Trace",
        tree: NamespaceTree,
        pmap: PartitionMap,
        params: CostParams,
    ):
        if pmap.placement is not None:
            raise ValueError(
                "the ledger models subtree placement; hash placements do not migrate"
            )
        self.trace = trace
        self.tree = tree
        self.pmap = pmap
        self.params = params
        self.base: ClusterLoad = evaluate_trace(trace, tree, pmap, params, collect_per_request=True)
        self._build()

    # ------------------------------------------------------------------ build
    def _build(self) -> None:
        tree, pmap, params, trace = self.tree, self.pmap, self.params, self.trace
        owner_arr = pmap.owner_array().astype(np.int64)
        depths = tree.depth_array()
        parents = tree.parent_array()
        cap = tree.capacity
        idx = tree.dfs_index()
        assert self.base.per_request_rct is not None
        rct = self.base.per_request_rct

        # per-directory request aggregates
        rct_by_dir = np.zeros(cap, dtype=np.float64)
        nreq_by_dir = np.zeros(cap, dtype=np.float64)
        np.add.at(rct_by_dir, trace.dir_ino, rct)
        np.add.at(nreq_by_dir, trace.dir_ino, 1.0)

        cats = CATEGORY_ARRAY[trace.op]
        nlsdir_by_dir = np.zeros(cap, dtype=np.float64)
        ls_rows = np.nonzero(cats == CATEGORY_LSDIR)[0]
        if ls_rows.size:
            np.add.at(nlsdir_by_dir, trace.dir_ino[ls_rows], 1.0)

        # ops whose *existing directory target* (aux) could become a split
        # mutation if that target sits at a partition boundary
        n_auxmut_by_dir = np.zeros(cap, dtype=np.float64)
        aux_rows = np.nonzero(
            (trace.aux >= 0)
            & ((trace.op == int(OpType.RMDIR)) | (trace.op == int(OpType.RENAME)))
        )[0]
        if aux_rows.size:
            np.add.at(n_auxmut_by_dir, trace.aux[aux_rows], 1.0)

        # subtree rollups
        self.L = idx.subtree_sum(rct_by_dir)
        self.N = idx.subtree_sum(nreq_by_dir)

        # candidates: uniformly-owned subtrees, not the root
        uniform = pmap.uniform_subtree_mask()
        uniform[ROOT_INO] = False
        cand = np.nonzero(uniform)[0]
        self.candidates = cand
        self.cand_owner = owner_arr[cand]
        self.cand_parent_owner = owner_arr[parents[cand]]
        self.cand_nlsdir_parent = nlsdir_by_dir[parents[cand]]
        self.cand_nauxmut = n_auxmut_by_dir[cand]
        self.cand_L = self.L[cand]
        self.cand_N = self.N[cand]

        # prefix owner bitsets: owners of uncached strict ancestors of each
        # candidate root (n_mds <= 64 assumed — asserted)
        if pmap.n_mds > 64:
            raise ValueError("ledger bitset supports at most 64 MDSs")
        prefix_bits = np.zeros(cand.shape[0], dtype=np.uint64)
        cache_depth = params.cache_depth
        memo: Dict[int, int] = {ROOT_INO: 0}

        def bits_of(d: int) -> int:
            """Bitset of uncached owners on the chain root..d inclusive."""
            got = memo.get(d)
            if got is not None:
                return got
            b = bits_of(int(parents[d]))
            if depths[d] >= cache_depth:
                b |= 1 << int(owner_arr[d])
            memo[d] = b
            return b

        for j, s in enumerate(cand):
            prefix_bits[j] = bits_of(int(parents[s]))
        self.cand_prefix_bits = prefix_bits
        self.src_in_prefix = ((prefix_bits >> self.cand_owner.astype(np.uint64)) & 1).astype(bool)

        # child-owner multisets for parents that receive lsdir traffic
        self._parent_child_owners: Dict[int, Dict[int, int]] = {}
        hot_parents = {int(parents[s]) for s in cand if nlsdir_by_dir[parents[s]] > 0}
        for p in hot_parents:
            self._parent_child_owners[p] = pmap.child_owner_counts(p)
        self._parents = parents
        self._owner_arr = owner_arr

    # -------------------------------------------------------------- what-ifs
    def evaluate_dst(self, dst: int) -> DstEvaluation:
        """What-if all candidates migrating to ``dst`` (vectorised)."""
        params = self.params
        n_mds = self.pmap.n_mds
        if not 0 <= dst < n_mds:
            raise ValueError(f"dst {dst} out of range")
        cand = self.candidates
        nc = cand.shape[0]
        src = self.cand_owner
        p_owner = self.cand_parent_owner
        valid = src != dst

        dst_in_prefix = ((self.cand_prefix_bits >> np.uint64(dst)) & np.uint64(1)).astype(bool)
        delta_m = (~dst_in_prefix).astype(np.float64) - (~self.src_in_prefix).astype(np.float64)

        per_req_delta = delta_m * (params.t_inode + params.rtt + params.t_rpc)
        if params.queue_delay is not None:
            q = np.asarray(params.queue_delay, dtype=np.float64)
            per_req_delta += q[dst] * (~dst_in_prefix) - q[src] * (~self.src_in_prefix)
        move_gain = self.cand_L + self.cand_N * per_req_delta

        # split-mutation (t_coor) delta for ops whose aux target is the root:
        # indicator (owner(root) != owner(parent)) flips from (src != p) to (dst != p)
        coor_delta = (
            self.cand_nauxmut
            * params.t_coor
            * ((dst != p_owner).astype(np.float64) - (src != p_owner).astype(np.float64))
        )

        # lsdir gather delta on the parent: exact via child-owner multisets
        lsdir_delta = np.zeros(nc, dtype=np.float64)
        if self._parent_child_owners:
            nls = self.cand_nlsdir_parent
            rows = np.nonzero((nls > 0) & valid)[0]
            for j in rows:
                p = int(self._parents[cand[j]])
                counts = self._parent_child_owners.get(p)
                if counts is None:
                    continue
                a = int(src[j])
                po = int(p_owner[j])
                di = 0
                if a != po and counts.get(a, 0) == 1:
                    di -= 1
                if dst != po and counts.get(dst, 0) == 0:
                    di += 1
                lsdir_delta[j] = nls[j] * (params.rtt + params.t_rpc) * di

        # assemble per-MDS deltas: src loses L, dst gains L + overhead,
        # parent's owner absorbs the lsdir and t_coor adjustments
        delta = np.zeros((nc, n_mds), dtype=np.float64)
        rows = np.arange(nc)
        np.add.at(delta, (rows, src), -self.cand_L)
        delta[:, dst] += move_gain
        np.add.at(delta, (rows, p_owner), coor_delta + lsdir_delta)

        new = self.base.rct_per_mds[None, :] + delta
        jct_new = new.max(axis=1)
        benefit = self.base.jct - jct_new
        dst_minus_src = new[:, dst] - new[rows, src]
        # a non-move changes nothing
        jct_new[~valid] = self.base.jct
        benefit[~valid] = 0.0
        return DstEvaluation(
            candidates=cand,
            jct_new=jct_new,
            benefit=benefit,
            dst_minus_src=dst_minus_src,
            valid=valid,
        )

    def predicted_loads(self, subtree_root: int, dst: int) -> np.ndarray:
        """Predicted per-MDS RCT sums after migrating one subtree (tests)."""
        pos = np.nonzero(self.candidates == subtree_root)[0]
        if pos.size == 0:
            raise ValueError(f"{subtree_root} is not a migration candidate")
        j = int(pos[0])
        params = self.params
        src = int(self.cand_owner[j])
        p_owner = int(self.cand_parent_owner[j])
        dst_in = bool((self.cand_prefix_bits[j] >> np.uint64(dst)) & np.uint64(1))
        delta_m = float(not dst_in) - float(not self.src_in_prefix[j])
        per_req = delta_m * (params.t_inode + params.rtt + params.t_rpc)
        if params.queue_delay is not None:
            q = np.asarray(params.queue_delay, dtype=np.float64)
            per_req += q[dst] * (not dst_in) - q[src] * (not self.src_in_prefix[j])
        out = self.base.rct_per_mds.copy()
        out[src] -= self.cand_L[j]
        out[dst] += self.cand_L[j] + self.cand_N[j] * per_req
        coor = (
            self.cand_nauxmut[j]
            * params.t_coor
            * (float(dst != p_owner) - float(src != p_owner))
        )
        lsd = 0.0
        nls = float(self.cand_nlsdir_parent[j])
        if nls > 0 and dst != src:
            p = int(self._parents[self.candidates[j]])
            counts = self._parent_child_owners.get(p) or self.pmap.child_owner_counts(p)
            di = 0
            if src != p_owner and counts.get(src, 0) == 1:
                di -= 1
            if dst != p_owner and counts.get(dst, 0) == 0:
                di += 1
            lsd = nls * (params.rtt + params.t_rpc) * di
        out[p_owner] += coor + lsd
        return out
