"""Analytic request/job completion-time model (paper §3.1–3.2).

This package turns (trace, namespace, partition) into costs:

* :mod:`~repro.costmodel.params` — the cost constants of Eq. (1)/(2)
  (``T_inode``, ``T_exec``, ``RTT``, ``T_coor``) with calibration notes;
* :mod:`~repro.costmodel.optypes` — metadata operation types and the three
  cost categories of Eq. (2) (lsdir / namespace-mutation / others);
* :mod:`~repro.costmodel.rct` — per-request RCT decomposition;
* :mod:`~repro.costmodel.evaluate` — full-trace evaluation: per-MDS RCT
  sums, JCT (bin-packing max), RPC counts — the reference ("naive")
  implementation of ``JCT(N, M)`` from Algorithm 1;
* :mod:`~repro.costmodel.ledger` — the fast per-subtree ``(l_s, o_s)``
  aggregates of Appendix A, giving O(#MDS) what-if evaluation per candidate
  migration; verified against ``evaluate`` in tests.
"""

from repro.costmodel.evaluate import ClusterLoad, evaluate_trace
from repro.costmodel.ledger import SubtreeLedger
from repro.costmodel.optypes import CATEGORY_LSDIR, CATEGORY_NSMUT, CATEGORY_READ, OpType, category_of
from repro.costmodel.params import CostParams
from repro.costmodel.rct import request_rct

__all__ = [
    "CostParams",
    "OpType",
    "category_of",
    "CATEGORY_READ",
    "CATEGORY_LSDIR",
    "CATEGORY_NSMUT",
    "request_rct",
    "evaluate_trace",
    "ClusterLoad",
    "SubtreeLedger",
]
