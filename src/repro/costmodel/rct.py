"""Per-request RCT decomposition (Eq. 1 + Eq. 2), scalar reference form.

``request_rct`` is the single-request ground truth the vectorised evaluator
and the subtree ledger are tested against.  Conventions:

* ``k`` (path length) = number of path components of the target
  (``depth(dir)+1`` for entry ops, ``depth(dir)`` for ``READDIR``); the root
  needs no read.
* Near-root cache: entries with ``depth < cache_depth`` are client-cached —
  they cost no inode read and their owners need not be contacted.  The
  target's owner is *always* contacted (m >= 1).
* ``m`` = number of distinct MDSs contacted = distinct owners of uncached
  path directories plus the target's owner.
* ``T_meta = T_inode * (m + k_eff) + T_exec + extra`` where ``k_eff`` is the
  uncached component count and ``m`` extra reads model the per-partition
  fake inodes.
* ``RCT = T_meta + m * RTT + sum(Q_i)`` over the contacted MDSs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.cluster.partition import PartitionMap
from repro.costmodel.optypes import (
    CATEGORY_LSDIR,
    CATEGORY_NSMUT,
    OpType,
    category_of,
)
from repro.costmodel.params import CostParams
from repro.namespace.tree import NamespaceTree

__all__ = ["request_rct", "RequestCost", "contacted_owners", "path_k"]


@dataclass(frozen=True)
class RequestCost:
    """Decomposed cost of one metadata request."""

    rct: float
    t_meta: float
    m: int
    k_eff: int
    extra: float
    owners: FrozenSet[int]
    #: MDS the request is charged to for JCT bin-packing (target's owner)
    primary: int


def path_k(tree: NamespaceTree, op: "OpType | int", dir_ino: int) -> int:
    """Path-component count ``k`` of the request's target."""
    d = tree.depth(dir_ino)
    return d if category_of(op) == CATEGORY_LSDIR else d + 1


def contacted_owners(
    tree: NamespaceTree, pmap: PartitionMap, dir_ino: int, cache_depth: int
) -> FrozenSet[int]:
    """Distinct MDSs a request targeting ``dir_ino``'s contents contacts.

    The target's owner is always contacted; path directories are contacted
    unless the near-root cache hides them (``depth < cache_depth``).  The
    root itself is never contacted for resolution (clients know it).
    """
    owner_arr = pmap.owner_array()
    owners = {int(owner_arr[dir_ino])}
    cur = dir_ino
    while cur != 0:
        if tree.depth(cur) >= cache_depth:
            owners.add(int(owner_arr[cur]))
        cur = tree.parent(cur)
    return frozenset(owners)


def request_rct(
    tree: NamespaceTree,
    pmap: PartitionMap,
    params: CostParams,
    op: "OpType | int",
    dir_ino: int,
    name: str = "",
    aux: int = -1,
) -> RequestCost:
    """Ground-truth RCT of one request under the current partition."""
    cat = category_of(op)
    k = path_k(tree, op, dir_ino)
    cached = min(max(params.cache_depth - 1, 0), k)
    k_eff = k - cached
    owners = contacted_owners(tree, pmap, dir_ino, params.cache_depth)
    m = len(owners)
    primary = pmap.owner(dir_ino)

    extra = 0.0
    if cat == CATEGORY_LSDIR:
        extra = (params.rtt + params.t_rpc) * pmap.lsdir_fanout(dir_ino)
    elif cat == CATEGORY_NSMUT:
        split = False
        iop = OpType(int(op))
        if iop == OpType.MKDIR:
            split = pmap.new_dir_owner(dir_ino, name) != primary
        elif iop in (OpType.RMDIR, OpType.RENAME) and aux >= 0:
            split = pmap.owner(aux) != primary
        elif iop in (OpType.CREATE, OpType.UNLINK) or (iop == OpType.RENAME and aux < 0):
            # file mutations split only when file inodes are sharded away
            # from the parent's dentry shard (fine-grained hashing)
            split = pmap.file_owner(dir_ino, name) != primary
        if split:
            extra = params.t_coor

    t_meta = (params.t_inode + params.t_rpc) * m + params.t_inode * k_eff + params.t_exec(op) + extra
    rct = t_meta + m * params.rtt
    if params.queue_delay is not None:
        rct += float(sum(params.queue_delay[o] for o in owners))
    return RequestCost(
        rct=rct, t_meta=t_meta, m=m, k_eff=k_eff, extra=extra, owners=owners, primary=primary
    )
