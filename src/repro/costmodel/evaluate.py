"""Full-trace cost evaluation — the reference ``JCT(N, M)`` of Algorithm 1.

Vectorised where it matters: per-request work is NumPy over trace columns;
the only scalar loops run over *unique directories* touched by the trace
(ancestor-chain walks and lsdir fanout), which is typically 20–100× smaller
than the trace itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.partition import PartitionMap
from repro.costmodel.optypes import (
    CATEGORY_ARRAY,
    CATEGORY_LSDIR,
    CATEGORY_NSMUT,
    OpType,
)
from repro.costmodel.params import CostParams
from repro.namespace.tree import NamespaceTree
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # type-only: avoids a package-import cycle with repro.workloads
    from repro.workloads.trace import Trace

__all__ = ["ClusterLoad", "evaluate_trace"]


@dataclass
class ClusterLoad:
    """Aggregate result of evaluating a trace against a partition."""

    #: summed RCT charged to each MDS (bin-packing load), ms
    rct_per_mds: np.ndarray
    #: requests whose primary MDS is each MDS
    qps_per_mds: np.ndarray
    #: RPC messages handled by each MDS (resolution hops + lsdir gathers)
    rpcs_per_mds: np.ndarray
    #: job completion time estimate: the largest bin, ms
    jct: float
    n_requests: int
    total_rpcs: int
    #: mean distinct partitions contacted per request
    mean_m: float
    #: mean request completion time, ms (single-thread latency proxy)
    mean_rct: float
    #: per-request RCT vector (only if requested)
    per_request_rct: Optional[np.ndarray] = None

    @property
    def rpcs_per_request(self) -> float:
        return self.total_rpcs / self.n_requests if self.n_requests else 0.0


def evaluate_trace(
    trace: "Trace",
    tree: NamespaceTree,
    pmap: PartitionMap,
    params: CostParams,
    collect_per_request: bool = False,
) -> ClusterLoad:
    """Evaluate every request in ``trace`` under ``pmap`` (Eq. 1/2 + §3.2)."""
    n_mds = pmap.n_mds
    n = len(trace)
    if n == 0:
        z = np.zeros(n_mds)
        return ClusterLoad(z, z.copy(), z.copy(), 0.0, 0, 0, 0.0, 0.0)

    owner_arr = pmap.owner_array().astype(np.int64)
    depths = tree.depth_array()
    parents = tree.parent_array()
    cache_depth = params.cache_depth

    cats = CATEGORY_ARRAY[trace.op]
    dir_ino = trace.dir_ino

    # ---- per-unique-dir quantities: m, contacted owners, lsdir fanout ----
    uniq, inverse = np.unique(dir_ino, return_inverse=True)
    m_u = np.empty(uniq.shape[0], dtype=np.int64)
    owners_u: List[Tuple[int, ...]] = []
    for j, d in enumerate(uniq):
        d = int(d)
        owners = {int(owner_arr[d])}
        cur = d
        while cur != 0:
            if depths[cur] >= cache_depth:
                owners.add(int(owner_arr[cur]))
            cur = int(parents[cur])
        m_u[j] = len(owners)
        owners_u.append(tuple(owners))

    m = m_u[inverse]

    # ---- baseline cost terms ----
    k = depths[dir_ino] + (cats != CATEGORY_LSDIR)
    cached = min(max(cache_depth - 1, 0), 10**9)
    k_eff = k - np.minimum(cached, k)
    exec_t = params.t_exec_by_category()[cats]
    rct = (
        (params.t_inode + params.t_rpc) * m
        + params.t_inode * k_eff
        + exec_t
        + m * params.rtt
    )

    # ---- lsdir extra: RTT * i (children scattered over i other MDSs) ----
    rpcs_child = np.zeros(n_mds, dtype=np.int64)
    ls_rows = np.nonzero(cats == CATEGORY_LSDIR)[0]
    total_child_rpcs = 0
    if ls_rows.size:
        ls_dirs, ls_inv = np.unique(dir_ino[ls_rows], return_inverse=True)
        counts = np.bincount(ls_inv)
        i_u = np.empty(ls_dirs.shape[0], dtype=np.int64)
        for j, d in enumerate(ls_dirs):
            d = int(d)
            others = pmap.lsdir_owners(d)
            i_u[j] = len(others)
            for o in others:
                rpcs_child[o] += int(counts[j])
            total_child_rpcs += len(others) * int(counts[j])
        rct[ls_rows] += (params.rtt + params.t_rpc) * i_u[ls_inv]

    # ---- ns-mutation extra: T_coor when parent and target split ----
    nm_rows = np.nonzero(cats == CATEGORY_NSMUT)[0]
    if nm_rows.size:
        ops_nm = trace.op[nm_rows]
        # RMDIR / dir-RENAME carry the existing target dir in aux
        aux_mask = (trace.aux[nm_rows] >= 0) & (
            (ops_nm == int(OpType.RMDIR)) | (ops_nm == int(OpType.RENAME))
        )
        if aux_mask.any():
            rows = nm_rows[aux_mask]
            split = owner_arr[trace.aux[rows]] != owner_arr[dir_ino[rows]]
            rct[rows] += params.t_coor * split
        # MKDIR placement may differ from the parent only under hash placement
        if pmap.placement is not None and trace.names is not None:
            mk_mask = ops_nm == int(OpType.MKDIR)
            for r in nm_rows[mk_mask]:
                r = int(r)
                d = int(dir_ino[r])
                if pmap.new_dir_owner(d, trace.names[r]) != int(owner_arr[d]):
                    rct[r] += params.t_coor
        # file mutations split when file inodes are sharded independently
        if pmap.file_placement is not None and trace.names is not None:
            f_mask = (
                (ops_nm == int(OpType.CREATE))
                | (ops_nm == int(OpType.UNLINK))
                | ((ops_nm == int(OpType.RENAME)) & (trace.aux[nm_rows] < 0))
            )
            for r in nm_rows[f_mask]:
                r = int(r)
                d = int(dir_ino[r])
                if pmap.file_owner(d, trace.names[r]) != int(owner_arr[d]):
                    rct[r] += params.t_coor

    # ---- queue delays (historical-sampling hook) ----
    if params.queue_delay is not None:
        q = np.asarray(params.queue_delay, dtype=np.float64)
        q_u = np.array([sum(q[o] for o in owners) for owners in owners_u])
        rct += q_u[inverse]

    # ---- per-MDS attribution ----
    primary = owner_arr[dir_ino]
    rct_per_mds = np.zeros(n_mds, dtype=np.float64)
    np.add.at(rct_per_mds, primary, rct)
    qps = np.bincount(primary, minlength=n_mds).astype(np.float64)

    # each contacted MDS handles one RPC per request; lsdir child gathers extra
    req_counts_u = np.bincount(inverse)
    rpcs = rpcs_child.astype(np.float64).copy()
    for j, owners in enumerate(owners_u):
        c = float(req_counts_u[j])
        for o in owners:
            rpcs[o] += c
    total_rpcs = int(m.sum()) + total_child_rpcs

    return ClusterLoad(
        rct_per_mds=rct_per_mds,
        qps_per_mds=qps,
        rpcs_per_mds=rpcs,
        jct=float(rct_per_mds.max()),
        n_requests=n,
        total_rpcs=total_rpcs,
        mean_m=float(m.mean()),
        mean_rct=float(rct.mean()),
        per_request_rct=rct if collect_per_request else None,
    )
