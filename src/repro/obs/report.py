"""Trace analysis: the latency-decomposition report behind ``repro report``.

Reads a span JSONL file (or in-memory spans) and answers "where did the
latency go": mean queue wait vs. MDS service vs. network vs. fault waiting,
overall and per operation type, plus resolution/cache behaviour.  The
decomposition is an identity — ``queue + service + net + fault_wait =
latency`` per span (``fault_wait`` is zero on healthy runs) — so the
component means must sum to the mean latency; the report prints the residual
and the CLI treats a residual above 1% as a tracing bug.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["Decomposition", "load_spans", "decompose", "render_trace_report"]


def load_spans(path: str) -> List[Dict[str, Any]]:
    """Parse a span JSONL file (raises ValueError on malformed lines)."""
    spans = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON ({exc})") from None
    return spans


@dataclass
class Decomposition:
    """Aggregated latency components over a set of spans."""

    n_spans: int = 0
    n_failed: int = 0
    latency_ms: float = 0.0
    queue_ms: float = 0.0
    service_ms: float = 0.0
    net_ms: float = 0.0
    fault_wait_ms: float = 0.0
    retries: int = 0
    failovers: int = 0
    rpcs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    kv_gets: int = 0
    kv_probes: int = 0
    wal_appends: int = 0
    wal_bytes: int = 0
    wal_ms: float = 0.0
    by_op: Dict[str, "Decomposition"] = field(default_factory=dict)

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_ms / self.n_spans if self.n_spans else 0.0

    @property
    def components_sum_ms(self) -> float:
        return self.queue_ms + self.service_ms + self.net_ms + self.fault_wait_ms

    @property
    def residual_fraction(self) -> float:
        """|sum of components - total latency| / total latency."""
        if self.latency_ms == 0:
            return 0.0
        return abs(self.components_sum_ms - self.latency_ms) / self.latency_ms

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def _add(self, span: Dict[str, Any]) -> None:
        self.n_spans += 1
        self.n_failed += 1 if span.get("failed") else 0
        self.latency_ms += span["latency_ms"]
        self.queue_ms += span["queue_ms"]
        self.service_ms += span["service_ms"]
        self.net_ms += span["net_ms"]
        # schema v1 spans predate the fault layer; they carry no fault fields
        self.fault_wait_ms += span.get("fault_wait_ms", 0.0)
        self.retries += span.get("retries", 0)
        self.failovers += span.get("failovers", 0)
        self.rpcs += span["rpcs"]
        self.cache_hits += span["cache_hits"]
        self.cache_misses += span["cache_misses"]
        self.kv_gets += span.get("kv_gets", 0)
        self.kv_probes += span.get("kv_probes", 0)
        # schema v2 spans predate the durability layer
        self.wal_appends += span.get("wal_appends", 0)
        self.wal_bytes += span.get("wal_bytes", 0)
        self.wal_ms += span.get("wal_ms", 0.0)


def decompose(spans: Iterable[Dict[str, Any]]) -> Decomposition:
    """Aggregate spans overall and per op type."""
    total = Decomposition()
    for span in spans:
        total._add(span)
        op = span.get("op", "?")
        if op not in total.by_op:
            total.by_op[op] = Decomposition()
        total.by_op[op]._add(span)
    return total


def _component_rows(d: Decomposition) -> List[List[Any]]:
    n = d.n_spans or 1
    mean = d.mean_latency_ms or 1.0
    rows = [
        ["queue wait", d.queue_ms / n, d.queue_ms / n / mean],
        ["MDS service", d.service_ms / n, d.service_ms / n / mean],
    ]
    if d.wal_ms > 0:
        # informational sub-component of MDS service — already inside it,
        # so it does not join the sum-of-components identity
        rows.append(["  of which WAL/fsync", d.wal_ms / n, d.wal_ms / n / mean])
    rows.append(["network (RPC)", d.net_ms / n, d.net_ms / n / mean])
    if d.fault_wait_ms > 0:
        rows.append(
            ["fault waiting", d.fault_wait_ms / n, d.fault_wait_ms / n / mean]
        )
    rows.append(
        ["sum of components", d.components_sum_ms / n, d.components_sum_ms / n / mean]
    )
    rows.append(["client latency", d.mean_latency_ms, 1.0])
    return rows


def render_trace_report(spans: List[Dict[str, Any]], source: str = "") -> str:
    """The full ``repro report`` text for a list of span dicts."""
    from repro.harness.report import format_table

    if not spans:
        return "no spans found" + (f" in {source}" if source else "")
    d = decompose(spans)
    parts = []
    head = f"=== trace report{' — ' + source if source else ''} ==="
    parts.append(head)
    parts.append(
        f"{d.n_spans:,} spans ({d.n_failed} failed ops), "
        f"mean latency {d.mean_latency_ms * 1000:.1f} us, "
        f"{d.rpcs / d.n_spans:.3f} RPCs/req, "
        f"cache hit rate {d.cache_hit_rate:.1%}"
    )
    rows = [[r[0], r[1] * 1000, f"{r[2]:.1%}"] for r in _component_rows(d)]
    parts.append(
        format_table(
            ["component", "mean us/op", "share"],
            rows,
            "latency decomposition (queue vs. service vs. RPC)",
        )
    )
    resid = d.residual_fraction
    parts.append(
        f"decomposition residual: {resid:.3%} of mean latency"
        + (" (WITHIN 1% tolerance)" if resid <= 0.01 else " (EXCEEDS 1% tolerance!)")
    )
    if d.retries or d.failovers or d.fault_wait_ms > 0:
        parts.append(
            f"fault activity: {d.retries:,} retries, {d.failovers:,} failovers, "
            f"{d.fault_wait_ms / (d.n_spans or 1) * 1000:.1f} us/op waiting on faults"
        )
    op_rows = []
    for op, od in sorted(d.by_op.items(), key=lambda kv: -kv[1].n_spans):
        n = od.n_spans
        op_rows.append(
            [
                op,
                n,
                od.mean_latency_ms * 1000,
                od.queue_ms / n * 1000,
                od.service_ms / n * 1000,
                od.net_ms / n * 1000,
                od.rpcs / n,
                f"{od.cache_hit_rate:.1%}",
            ]
        )
    parts.append(
        format_table(
            ["op", "spans", "lat us", "queue us", "service us", "net us", "rpc/req", "cache hit"],
            op_rows,
            "per-operation breakdown",
        )
    )
    if d.kv_gets:
        parts.append(
            f"kvstore: {d.kv_gets:,} gets, {d.kv_probes:,} runs probed "
            f"({d.kv_probes / d.kv_gets:.2f} probes/get)"
        )
    if d.wal_appends:
        parts.append(
            f"durability: {d.wal_appends:,} WAL appends, {d.wal_bytes:,} bytes logged, "
            f"{d.wal_ms / (d.n_spans or 1) * 1000:.1f} us/op on WAL+fsync"
        )
    return "\n\n".join(parts)
