"""Windowed time-series telemetry: per-MDS and cluster series over virtual time.

The end-of-run counters the registry publishes answer "how much, in total";
this module answers "when".  A :class:`TimelineCollector` slices virtual
time into fixed windows and records, per window:

* per-MDS series — requests served, busy ms, RPCs handled, queue depth at
  the window boundary, WAL appends / fsyncs, modeled durability cost, and
  migrations in/out;
* cluster series — completed ops and latency percentiles (p50/p95/p99),
  DES engine events (the engine-throughput signal ROADMAP item 1 gates),
  cache hit rate, migrations, and the busy-time imbalance factor.

Design constraints, in order:

1. **Passive.**  The collector draws no RNG values and schedules no events,
   so a timeline-enabled run is bit-identical in headline metrics to a
   disabled one (``tests/test_obs_parity.py``).  Window roll-over is driven
   by the DES engine's own clock advance (``Environment.timeline``), never
   by timer events.
2. **O(1) per sample.**  Closed-window series live in preallocated numpy
   arrays that double when full; the open window accumulates into plain
   Python scalars and a bounded list (per-element numpy stores are ~20x
   a scalar add), written back once per window close.  The per-op hot
   path is one float compare (engine), one integer add (server request
   counter), and one list append (latency sample).  When disabled, components
   hold ``None``/:data:`NULL_TIMELINE` and pay a single truthiness check —
   the same null-object discipline as :class:`~repro.obs.registry.
   MetricsRegistry`.
3. **Exact.**  Per-MDS columns are deltas of cumulative run counters, so
   window aggregates telescope: summing any column over all windows equals
   the end-of-run counter bit for bit (asserted by the parity suite).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

__all__ = [
    "TimelineCollector",
    "NULL_TIMELINE",
    "TIMELINE_SCHEMA_VERSION",
    "PER_MDS_COLUMNS",
    "CLUSTER_COLUMNS",
]

#: bump when the timeline row layout changes incompatibly
TIMELINE_SCHEMA_VERSION = 1

#: per-MDS columns exported in each row (``mds_<name>`` keys, one list each)
PER_MDS_COLUMNS = (
    "ops",
    "busy_ms",
    "rpcs",
    "queue_depth",
    "wal_appends",
    "fsyncs",
    "wal_ms",
    "migrations_in",
    "migrations_out",
)

#: scalar cluster columns exported in each row
CLUSTER_COLUMNS = (
    "ops",
    "lat_mean_ms",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "engine_events",
    "cache_hit_rate",
    "migrations",
    "imbalance",
)


def _imbalance(loads: np.ndarray) -> float:
    """Lunule's imbalance factor on a window's per-MDS busy vector."""
    total = float(loads.sum())
    n = loads.size
    if total <= 0.0 or n <= 1:
        return 0.0
    mean = total / n
    denom = total - mean
    if denom <= 0.0:
        return 0.0
    return float(min(max((float(loads.max()) - mean) / denom, 0.0), 1.0))


class TimelineCollector:
    """Fixed-window telemetry sampler for one simulation run.

    Construct, hand to :class:`~repro.obs.observability.Observability`
    (or let it construct one via ``timeline=True``), and read the windows
    back with :meth:`to_rows` / :meth:`summary` after the run.  ``bind``
    is called by :class:`~repro.fs.filesystem.OrigamiFS` once the cluster
    exists; until then only :meth:`advance`/:meth:`record_op` make sense
    (unit tests use a duck-typed fs).
    """

    enabled = True

    def __init__(
        self,
        window_ms: float = 50.0,
        max_latency_samples: int = 2048,
        initial_windows: int = 256,
    ):
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        if max_latency_samples < 1:
            raise ValueError("max_latency_samples must be >= 1")
        if initial_windows < 1:
            raise ValueError("initial_windows must be >= 1")
        self.window_ms = float(window_ms)
        self.max_latency_samples = int(max_latency_samples)
        self._cap = int(initial_windows)
        self._fs: Any = None
        self._n_mds = 0
        #: index of the first window (non-zero on warm restarts)
        self._base_idx = 0
        #: windows fully closed so far (current open window = index _closed)
        self._closed = 0
        self._finalized = False
        self._final_ms: Optional[float] = None
        #: virtual end time of the currently open window (engine fast path)
        self.window_end_ms = self.window_ms

        # cluster columns (grown by doubling)
        self._ops = np.zeros(self._cap, dtype=np.int64)
        self._lat_sum = np.zeros(self._cap, dtype=np.float64)
        self._p50 = np.zeros(self._cap, dtype=np.float64)
        self._p95 = np.zeros(self._cap, dtype=np.float64)
        self._p99 = np.zeros(self._cap, dtype=np.float64)
        self._events = np.zeros(self._cap, dtype=np.int64)
        self._cache_hits = np.zeros(self._cap, dtype=np.int64)
        self._cache_misses = np.zeros(self._cap, dtype=np.int64)
        self._migrations = np.zeros(self._cap, dtype=np.int64)
        self._imb = np.zeros(self._cap, dtype=np.float64)
        self._lat_dropped = np.zeros(self._cap, dtype=np.int64)

        # open-window accumulators: plain Python scalars and a list, because
        # per-element numpy stores cost ~1us each — the arrays are only
        # written once per window, at close
        self._cur_ops = 0
        self._cur_lat_sum = 0.0
        self._cur_migrations = 0
        self._lat_list: List[float] = []
        self._lat_overflow = 0

        # per-MDS columns, allocated at bind time ([window, mds])
        self._mds: Dict[str, np.ndarray] = {}

        # elastic-pool series: active pool size at each window close, only
        # allocated when the bound fs runs an elastic pool (None otherwise so
        # non-elastic exports stay byte-identical)
        self._liveness: Any = None
        self._pool: Optional[np.ndarray] = None

        # previous cumulative snapshots (delta bases)
        self._prev_busy: Optional[np.ndarray] = None
        self._prev_rpcs: Optional[np.ndarray] = None
        self._prev_reqs: Optional[np.ndarray] = None
        self._prev_wal_appends: Optional[np.ndarray] = None
        self._prev_fsyncs: Optional[np.ndarray] = None
        self._prev_wal_ms: Optional[np.ndarray] = None
        self._prev_cache = (0, 0)
        self._prev_events = 0

    # ----------------------------------------------------------------- bind
    def bind(self, fs: Any) -> None:
        """Attach to a live cluster; allocates the per-MDS columns.

        ``fs`` is duck-typed: it needs ``env``, ``servers``, ``cache`` (with
        ``counters()``), and ``migrator``.  On warm restarts the clock is
        already past zero: the first window starts at the current window
        boundary, not at virtual time 0.
        """
        if self._fs is not None:
            raise RuntimeError("timeline collector is already bound")
        self._fs = fs
        self._n_mds = len(fs.servers)
        self._base_idx = int(fs.env.now // self.window_ms)
        self.window_end_ms = (self._base_idx + 1) * self.window_ms
        for name in PER_MDS_COLUMNS:
            dtype = np.float64 if name in ("busy_ms", "wal_ms") else np.int64
            self._mds[name] = np.zeros((self._cap, self._n_mds), dtype=dtype)
        self._prev_busy = np.array([s.total_busy_ms for s in fs.servers])
        self._prev_rpcs = np.array([s.total_rpcs for s in fs.servers], dtype=np.int64)
        self._prev_reqs = np.array([s.total_requests for s in fs.servers], dtype=np.int64)
        self._prev_wal_appends = np.array(
            [self._store_stat(s, "wal_appends") for s in fs.servers], dtype=np.int64
        )
        self._prev_fsyncs = np.array(
            [self._store_stat(s, "fsyncs") for s in fs.servers], dtype=np.int64
        )
        self._prev_wal_ms = np.array([s.durability_ms_total for s in fs.servers])
        self._prev_cache = fs.cache.counters()
        self._prev_events = fs.env.events_processed
        if getattr(fs, "elastic", None) is not None:
            self._liveness = fs.liveness
            self._pool = np.zeros(self._cap, dtype=np.int64)

    @staticmethod
    def _store_stat(server: Any, name: str) -> int:
        store = getattr(server, "store", None)
        if store is None:
            return 0
        return int(getattr(store.stats, name))

    # ----------------------------------------------------------------- grow
    def _grow(self) -> None:
        new_cap = self._cap * 2
        for attr in (
            "_ops", "_lat_sum", "_p50", "_p95", "_p99", "_events",
            "_cache_hits", "_cache_misses", "_migrations", "_imb", "_lat_dropped",
        ):
            old = getattr(self, attr)
            grown = np.zeros(new_cap, dtype=old.dtype)
            grown[: self._cap] = old
            setattr(self, attr, grown)
        for name, old in self._mds.items():
            grown = np.zeros((new_cap, old.shape[1]), dtype=old.dtype)
            grown[: self._cap] = old
            self._mds[name] = grown
        if self._pool is not None:
            grown = np.zeros(new_cap, dtype=np.int64)
            grown[: self._cap] = self._pool
            self._pool = grown
        self._cap = new_cap

    # -------------------------------------------------------------- samples
    def record_op(self, latency_ms: float) -> None:
        """One completed client operation in the open window (O(1))."""
        self._cur_ops += 1
        self._cur_lat_sum += latency_ms
        lat = self._lat_list
        if len(lat) < self.max_latency_samples:
            lat.append(latency_ms)
        else:
            self._lat_overflow += 1

    def record_migration(self, src: int, dst: int, inodes: int) -> None:
        """One applied subtree migration (called by the Migrator)."""
        self._cur_migrations += 1
        if self._n_mds:
            i = self._closed
            self._mds["migrations_out"][i, src] += 1
            self._mds["migrations_in"][i, dst] += 1

    # ------------------------------------------------------------- roll-over
    def advance(self, now: float) -> None:
        """Close windows until ``now`` falls inside the open one.

        Driven by ``Environment.step`` through the ``env.timeline`` hook; an
        idle gap closes a run of empty windows (deltas land in the first)."""
        while now >= self.window_end_ms and not self._finalized:
            self._close(self.window_end_ms)

    def _close(self, end_ms: float) -> None:
        i = self._closed
        if i + 1 >= self._cap:
            self._grow()
        self._ops[i] = self._cur_ops
        self._lat_sum[i] = self._cur_lat_sum
        self._migrations[i] = self._cur_migrations
        # latency percentiles of the window's (deterministic first-N) samples
        lat = self._lat_list
        if lat:
            self._p50[i], self._p95[i], self._p99[i] = np.percentile(
                lat, (50.0, 95.0, 99.0)
            )
        self._lat_dropped[i] = self._lat_overflow
        self._cur_ops = 0
        self._cur_lat_sum = 0.0
        self._cur_migrations = 0
        lat.clear()
        self._lat_overflow = 0

        fs = self._fs
        if fs is not None:
            busy = np.array([s.total_busy_ms for s in fs.servers])
            rpcs = np.array([s.total_rpcs for s in fs.servers], dtype=np.int64)
            reqs = np.array([s.total_requests for s in fs.servers], dtype=np.int64)
            wal_a = np.array(
                [self._store_stat(s, "wal_appends") for s in fs.servers], dtype=np.int64
            )
            fsyncs = np.array(
                [self._store_stat(s, "fsyncs") for s in fs.servers], dtype=np.int64
            )
            wal_ms = np.array([s.durability_ms_total for s in fs.servers])
            m = self._mds
            m["busy_ms"][i] = busy - self._prev_busy
            m["rpcs"][i] = rpcs - self._prev_rpcs
            m["ops"][i] = reqs - self._prev_reqs
            m["wal_appends"][i] = wal_a - self._prev_wal_appends
            m["fsyncs"][i] = fsyncs - self._prev_fsyncs
            m["wal_ms"][i] = wal_ms - self._prev_wal_ms
            m["queue_depth"][i] = [s.resource.queue_len for s in fs.servers]
            self._prev_busy = busy
            self._prev_rpcs = rpcs
            self._prev_reqs = reqs
            self._prev_wal_appends = wal_a
            self._prev_fsyncs = fsyncs
            self._prev_wal_ms = wal_ms
            self._imb[i] = _imbalance(m["busy_ms"][i])

            hits, misses = fs.cache.counters()
            self._cache_hits[i] = hits - self._prev_cache[0]
            self._cache_misses[i] = misses - self._prev_cache[1]
            self._prev_cache = (hits, misses)

            events = fs.env.events_processed
            self._events[i] = events - self._prev_events
            self._prev_events = events

            if self._pool is not None:
                self._pool[i] = self._liveness.n_active()

        self._closed = i + 1
        self.window_end_ms = end_ms + self.window_ms

    def finalize(self, now: float) -> None:
        """Close the trailing (possibly partial) window at virtual ``now``.

        Idempotent; called once by ``Observability.finalize`` at end of run.
        """
        if self._finalized:
            return
        self.advance(now)
        start = (self._base_idx + self._closed) * self.window_ms
        pending = bool(self._cur_ops or self._cur_migrations)
        if self._fs is not None:
            pending = pending or self._fs.env.events_processed != self._prev_events
        if now > start or pending:
            self._close(max(now, start))
            self._final_ms = max(now, start)
        self._finalized = True

    # -------------------------------------------------------------- reading
    @property
    def n_windows(self) -> int:
        return self._closed

    def _window_bounds(self, i: int) -> tuple:
        start = (self._base_idx + i) * self.window_ms
        end = start + self.window_ms
        if i == self._closed - 1 and self._final_ms is not None:
            end = max(self._final_ms, start)
        return start, end

    def to_rows(self) -> List[Dict[str, Any]]:
        """One JSON-ready dict per closed window (the JSONL row format)."""
        rows: List[Dict[str, Any]] = []
        for i in range(self._closed):
            start, end = self._window_bounds(i)
            dur_s = max(end - start, 1e-9) / 1000.0
            ops = int(self._ops[i])
            row: Dict[str, Any] = {
                "w": self._base_idx + i,
                "start_ms": start,
                "end_ms": end,
                "ops": ops,
                "ops_per_sec": ops / dur_s,
                "lat_mean_ms": float(self._lat_sum[i]) / ops if ops else 0.0,
                "p50_ms": float(self._p50[i]),
                "p95_ms": float(self._p95[i]),
                "p99_ms": float(self._p99[i]),
                "lat_samples": min(ops, self.max_latency_samples),
                "lat_dropped": int(self._lat_dropped[i]),
                "engine_events": int(self._events[i]),
                "events_per_sec": int(self._events[i]) / dur_s,
                "migrations": int(self._migrations[i]),
                "imbalance": float(self._imb[i]),
            }
            hits = int(self._cache_hits[i])
            total = hits + int(self._cache_misses[i])
            row["cache_hit_rate"] = hits / total if total else 0.0
            for name in PER_MDS_COLUMNS:
                col = self._mds.get(name)
                if col is not None:
                    row[f"mds_{name}"] = col[i].tolist()
            if self._pool is not None:
                row["pool_size"] = int(self._pool[i])
            rows.append(row)
        return rows

    def meta(self) -> Dict[str, Any]:
        """The JSONL header line (schema + run geometry).

        The ``elastic`` key appears only for elastic-pool runs: pre-elastic
        exports (and their golden hashes) keep the exact historical key set.
        """
        d = {
            "schema": TIMELINE_SCHEMA_VERSION,
            "kind": "timeline",
            "window_ms": self.window_ms,
            "n_mds": self._n_mds,
            "n_windows": self._closed,
        }
        if self._pool is not None:
            d["elastic"] = True
        return d

    def summary(self) -> Dict[str, float]:
        """Scalar roll-up carried in ``SimResult`` and bench artifacts.

        Every value is a pure function of the deterministic window series,
        so it is safe inside byte-identical artifacts.
        """
        n = self._closed
        if n == 0:
            return {"windows": 0.0, "window_ms": self.window_ms}
        total_ops = int(self._ops[:n].sum())
        total_events = int(self._events[:n].sum())
        span_ms = 0.0
        peak_ops_s = 0.0
        for i in range(n):
            start, end = self._window_bounds(i)
            dur_s = max(end - start, 1e-9) / 1000.0
            span_ms += end - start
            peak_ops_s = max(peak_ops_s, int(self._ops[i]) / dur_s)
        span_s = max(span_ms, 1e-9) / 1000.0
        out = {
            "windows": float(n),
            "window_ms": self.window_ms,
            "total_ops": float(total_ops),
            "peak_ops_per_sec": peak_ops_s,
            "worst_p99_ms": float(self._p99[:n].max()),
            "mean_imbalance": float(self._imb[:n].mean()),
            "engine_events": float(total_events),
            "events_per_virtual_sec": total_events / span_s,
        }
        if self._pool is not None:
            pool = self._pool[:n]
            out["pool_mean"] = float(pool.mean())
            out["pool_peak"] = float(pool.max())
            out["pool_min"] = float(pool.min())
        return out

    # ------------------------------------------------------- live accessors
    def recent_cluster_busy(self, n: int) -> np.ndarray:
        """Per-window total cluster busy-ms of the last ``n`` closed windows.

        The predictive autoscale policy's signal: read *during* the run, so
        it only covers windows already closed.  Empty when nothing closed
        yet or the collector is unbound.
        """
        busy = self._mds.get("busy_ms")
        if busy is None or self._closed == 0:
            return np.zeros(0, dtype=np.float64)
        k = min(int(n), self._closed)
        return busy[self._closed - k : self._closed].sum(axis=1)


class _NullTimeline:
    """Disabled timeline: components hold this (or ``None``) and skip work."""

    enabled = False
    window_ms = 0.0
    window_end_ms = float("inf")

    def bind(self, fs: Any) -> None:
        pass

    def advance(self, now: float) -> None:
        pass

    def record_op(self, latency_ms: float) -> None:
        pass

    def record_migration(self, src: int, dst: int, inodes: int) -> None:
        pass

    def finalize(self, now: float) -> None:
        pass

    @property
    def n_windows(self) -> int:
        return 0

    def to_rows(self) -> List[Dict[str, Any]]:
        return []

    def summary(self) -> Dict[str, float]:
        return {}

    def recent_cluster_busy(self, n: int) -> np.ndarray:
        return np.zeros(0, dtype=np.float64)


#: the shared disabled collector — the implicit default everywhere
NULL_TIMELINE = _NullTimeline()
