"""Wall-clock phase profiling for the experiment harness.

The DES measures *virtual* time; this measures *real* time — where a
``repro run`` spends its wall clock (workload generation, model training,
simulation, reporting).  Used via the module-level :data:`PROFILER` so the
harness can be instrumented unconditionally while staying free when nobody
enabled it (``repro run --profile``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple

__all__ = ["PhaseProfiler", "PROFILER"]


class PhaseProfiler:
    """Accumulates wall-clock seconds per named phase."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._elapsed: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}

    def reset(self) -> None:
        self._elapsed.clear()
        self._calls.clear()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - start
            self._elapsed[name] = self._elapsed.get(name, 0.0) + dt
            self._calls[name] = self._calls.get(name, 0) + 1

    def summary(self) -> List[Tuple[str, float, int]]:
        """(phase, total seconds, calls), slowest first."""
        return sorted(
            ((n, s, self._calls[n]) for n, s in self._elapsed.items()),
            key=lambda row: -row[1],
        )

    def render(self) -> str:
        rows = self.summary()
        if not rows:
            return "[profile] no phases recorded"
        total = sum(s for _, s, _ in rows)
        lines = ["[profile] wall-clock phases:"]
        for name, secs, calls in rows:
            share = secs / total if total else 0.0
            lines.append(f"  {name:24s} {secs:8.2f}s  {share:6.1%}  ({calls} calls)")
        lines.append(f"  {'total':24s} {total:8.2f}s")
        return "\n".join(lines)


#: harness-wide profiler; ``repro run --profile`` flips ``enabled``
PROFILER = PhaseProfiler(enabled=False)
