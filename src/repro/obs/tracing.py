"""Request-span tracing: decompose each client op's latency, export JSONL.

A :class:`Span` rides along one client operation through the DES and records
where the virtual time went:

* ``queue_ms`` — time spent waiting for an MDS worker slot (Eq. 1's ``Q_i``);
* ``service_ms`` — time the MDS spent executing the request (Eq. 2's RCT);
* ``net_ms`` — network round trips (``m · RTT`` plus gather/forward hops);
* ``fault_wait_ms`` — virtual time lost to injected faults: RPC-timeout
  waits, refused-connection round trips, aborted service holds, and retry
  backoff sleeps (always 0.0 on healthy runs);
* counters — RPCs issued, MDSs visited, cache hits/misses during path
  resolution, kvstore gets and runs probed, fault retries and failovers.

``queue_ms + service_ms + net_ms + fault_wait_ms`` equals the
client-observed latency for every metadata op (asserted within float noise
by the tracing tests, and under arbitrary fault schedules by the property
suite); the ``repro report`` command aggregates exactly this identity.

Spans are passive: recording draws no RNG values and schedules no events, so
a traced run replays bit-identically to an untraced one.  The shared
:data:`NULL_TRACER` makes the disabled hot path one truthiness check.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Optional

from repro.costmodel.optypes import OpType

__all__ = ["Span", "Tracer", "JsonlTracer", "NULL_TRACER", "SPAN_SCHEMA_VERSION"]

#: bump when span fields change incompatibly (consumers check this)
#: v2: fault fields (fault_wait_ms, retries, failovers, fault reason)
#: v3: durability fields (wal_appends, wal_bytes, wal_ms) — wal_ms is an
#:     informational sub-component of service_ms, not a new identity term
SPAN_SCHEMA_VERSION = 3

_OP_NAMES = {int(v): v.name.lower() for v in OpType}


class Span:
    """Latency decomposition record for one client metadata operation."""

    __slots__ = (
        "op_index",
        "op",
        "worker",
        "dir_ino",
        "depth",
        "primary",
        "start_ms",
        "end_ms",
        "queue_ms",
        "service_ms",
        "net_ms",
        "rpcs",
        "mds_visited",
        "cache_hits",
        "cache_misses",
        "kv_gets",
        "kv_probes",
        "wal_appends",
        "wal_bytes",
        "wal_ms",
        "migration_recalls",
        "fault_wait_ms",
        "retries",
        "failovers",
        "fault",
        "failed",
    )

    def __init__(self, op_index: int, op: int, worker: int, dir_ino: int, depth: int, start_ms: float):
        self.op_index = op_index
        self.op = op
        self.worker = worker
        self.dir_ino = dir_ino
        self.depth = depth
        self.primary = -1
        self.start_ms = start_ms
        self.end_ms = start_ms
        self.queue_ms = 0.0
        self.service_ms = 0.0
        self.net_ms = 0.0
        self.rpcs = 0
        self.mds_visited: List[int] = []
        self.cache_hits = 0
        self.cache_misses = 0
        self.kv_gets = 0
        self.kv_probes = 0
        self.wal_appends = 0
        self.wal_bytes = 0
        self.wal_ms = 0.0
        self.migration_recalls = 0
        self.fault_wait_ms = 0.0
        self.retries = 0
        self.failovers = 0
        self.fault = ""
        self.failed = False

    @property
    def latency_ms(self) -> float:
        return self.end_ms - self.start_ms

    def to_dict(self) -> Dict[str, Any]:
        return {
            "v": SPAN_SCHEMA_VERSION,
            "op_index": self.op_index,
            "op": _OP_NAMES.get(self.op, str(self.op)),
            "worker": self.worker,
            "dir_ino": self.dir_ino,
            "depth": self.depth,
            "primary": self.primary,
            "start_ms": self.start_ms,
            "latency_ms": self.latency_ms,
            "queue_ms": self.queue_ms,
            "service_ms": self.service_ms,
            "net_ms": self.net_ms,
            "rpcs": self.rpcs,
            "mds_visited": self.mds_visited,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "kv_gets": self.kv_gets,
            "kv_probes": self.kv_probes,
            "wal_appends": self.wal_appends,
            "wal_bytes": self.wal_bytes,
            "wal_ms": self.wal_ms,
            "lease_recalls": self.migration_recalls,
            "fault_wait_ms": self.fault_wait_ms,
            "retries": self.retries,
            "failovers": self.failovers,
            "fault": self.fault,
            "failed": self.failed,
        }


class Tracer:
    """Base tracer: collects finished spans in memory."""

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.dropped = 0

    def start(self, op_index: int, op: int, worker: int, dir_ino: int, depth: int, now_ms: float) -> Span:
        return Span(op_index, op, worker, dir_ino, depth, now_ms)

    def finish(self, span: Span, now_ms: float) -> None:
        span.end_ms = now_ms
        self.spans.append(span)

    def close(self) -> None:
        pass

    def __bool__(self) -> bool:
        return self.enabled


class JsonlTracer(Tracer):
    """Tracer streaming each finished span as one JSON line.

    ``path=None`` keeps spans in memory only (tests, ``repro report`` on a
    live run).  ``max_spans`` bounds memory/disk for very long runs; spans
    past the cap are counted in ``dropped`` rather than silently vanishing.

    ``sample=N`` keeps every Nth finished span (ordinals 0, N, 2N, ...),
    deterministic by span *finish ordinal* — no RNG, so a sampled run stays
    bit-identical in headline metrics.  Sampled-away spans count into
    ``dropped``.  ``sample=1`` (the default) keeps everything.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        max_spans: Optional[int] = None,
        retain: Optional[bool] = None,
        sample: int = 1,
    ):
        super().__init__()
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        self.path = path
        self.max_spans = max_spans
        self.sample = int(sample)
        self.retain = retain if retain is not None else path is None
        self._fh: Optional[IO[str]] = open(path, "w") if path else None
        self._written = 0
        self._ordinal = 0

    def finish(self, span: Span, now_ms: float) -> None:
        span.end_ms = now_ms
        ordinal = self._ordinal
        self._ordinal = ordinal + 1
        if ordinal % self.sample:
            self.dropped += 1
            return
        if self.max_spans is not None and self._written >= self.max_spans:
            self.dropped += 1
            return
        self._written += 1
        if self._fh is not None:
            self._fh.write(json.dumps(span.to_dict()))
            self._fh.write("\n")
        if self.retain:
            self.spans.append(span)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class _NullTracer(Tracer):
    """Disabled tracer: ``if tracer:`` is False, so hot paths skip spans."""

    enabled = False

    def start(self, op_index: int, op: int, worker: int, dir_ino: int, depth: int, now_ms: float) -> Span:
        raise RuntimeError("null tracer cannot start spans (check `if tracer:` first)")

    def finish(self, span: Span, now_ms: float) -> None:
        pass


NULL_TRACER = _NullTracer()
