"""Observability: metrics registry, request-span tracing, balancer audit.

The DES reproduces the paper's *aggregate* results, but the paper's central
claim is about *where* latency goes — RPC multiplicity, queueing delay,
locality shredding.  This package makes those components observable without
perturbing the simulation:

* :mod:`repro.obs.registry` — a label-aware :class:`MetricsRegistry`
  (``Counter`` / ``Gauge`` / ``Histogram``) every simulated component
  publishes into; a shared null implementation makes the disabled path a
  single attribute load + no-op call.
* :mod:`repro.obs.tracing` — per-request :class:`Span` records decomposing
  client latency into queue wait, service time, network RTTs, and cache /
  kvstore activity, exported as JSONL.
* :mod:`repro.obs.audit` — the :class:`BalancerAudit` decision log:
  candidate set, predicted benefit, and the *realized* next-epoch benefit of
  every migration, so prediction quality is a per-run observable.
* :mod:`repro.obs.profiling` — wall-clock phase profiling for the harness.
* :mod:`repro.obs.report` — latency-decomposition analysis of a trace file
  (the ``repro report`` command).
* :mod:`repro.obs.timeseries` — the windowed :class:`TimelineCollector`:
  per-MDS and cluster series on fixed virtual-time windows (``simulate
  --timeline``), exact by construction (window deltas telescope to the
  end-of-run counters).
* :mod:`repro.obs.slo` — declarative SLO specs evaluated over timeline
  windows into compliance verdicts, error-budget burn rates, and
  fault-schedule annotations.
* :mod:`repro.obs.export` — timeline JSONL, Prometheus text exposition,
  and the ASCII table/heatmap renders behind ``repro obs``.

Everything here is passive: no RNG draws, no event scheduling.  A run with
observability enabled is bit-identical (headline metrics) to one without —
asserted by ``tests/test_obs_parity.py``.
"""

from repro.obs.audit import AuditEntry, BalancerAudit
from repro.obs.observability import NULL_OBS, Observability
from repro.obs.profiling import PhaseProfiler
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.slo import SloError, SloObjective, SloReport, SloSpec, evaluate_slo
from repro.obs.timeseries import NULL_TIMELINE, TimelineCollector
from repro.obs.tracing import NULL_TRACER, JsonlTracer, Span, Tracer

__all__ = [
    "AuditEntry",
    "BalancerAudit",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTracer",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_TIMELINE",
    "NULL_TRACER",
    "Observability",
    "PhaseProfiler",
    "SloError",
    "SloObjective",
    "SloReport",
    "SloSpec",
    "Span",
    "TimelineCollector",
    "Tracer",
    "evaluate_slo",
]
