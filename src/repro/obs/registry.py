"""Label-aware metrics registry with a near-zero-cost disabled path.

The design mirrors the Prometheus client model at 1% of its surface:
a registry owns named metric *families*; a family resolves a label set to a
*child* holding the actual value.  Instruments are plain Python objects —
hot paths grab a child once (``REQUESTS.labels(mds=3)``) and call ``inc`` /
``observe`` on it, so per-event cost is one method call and one float add.

When observability is off, components hold the shared :data:`NULL_REGISTRY`
whose families and children are no-op singletons; the disabled hot path is
one attribute load plus an empty call, keeping DES overhead within noise
(asserted by the parity/overhead tests).
"""

from __future__ import annotations

import json
from bisect import bisect_right
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
]

#: default histogram buckets (ms scale — matches the cost model's units)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def get(self) -> float:
        return self.value


class Gauge:
    """Value that can go up and down (or be set outright)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def get(self) -> float:
        return self.value


class Histogram:
    """Bucketed distribution with exact count/sum (cumulative buckets on export)."""

    __slots__ = ("buckets", "bucket_counts", "count", "sum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        b = sorted(float(x) for x in buckets)
        if not b:
            raise ValueError("need at least one bucket bound")
        self.buckets: List[float] = b
        self.bucket_counts = [0] * (len(b) + 1)  # +1 for +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_right(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0-100) from bucket counts.

        Classic Prometheus-style estimate: find the bucket holding the
        target rank and interpolate linearly inside it.  Exactness is
        bounded by bucket granularity; the reservoir-sampled
        ``LatencyRecorder`` stays the headline source of truth.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        running = 0
        lower = 0.0
        for bound, n in zip(self.buckets + [float("inf")], self.bucket_counts):
            prev = running
            running += n
            if running >= rank and n > 0:
                if bound == float("inf"):
                    # open-ended top bucket: the bound cannot be interpolated;
                    # fall back to the highest finite bound we crossed
                    return lower if lower > 0.0 else self.mean
                frac = (rank - prev) / n
                return lower + (bound - lower) * frac
            lower = bound if bound != float("inf") else lower
        return lower

    def get(self) -> Dict[str, Any]:
        cumulative = []
        running = 0
        for bound, n in zip(self.buckets + [float("inf")], self.bucket_counts):
            running += n
            cumulative.append([bound, running])
        return {
            "count": self.count,
            "sum": self.sum,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "buckets": cumulative,
        }


class _Family:
    """A named metric family: resolves label sets to instrument children."""

    __slots__ = ("name", "help", "kind", "_children", "_kwargs")

    def __init__(self, name: str, help: str, kind: type, **kwargs):
        self.name = name
        self.help = help
        self.kind = kind
        self._children: Dict[Tuple[Tuple[str, str], ...], Any] = {}
        self._kwargs = kwargs

    def labels(self, **labels: Any):
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = self.kind(**self._kwargs)
            self._children[key] = child
        return child

    # a family used without labels behaves as its sole unlabelled child
    def _default(self):
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def get(self):
        return self._default().get()

    def snapshot(self) -> Dict[str, Any]:
        series = []
        for key, child in sorted(self._children.items()):
            series.append({"labels": dict(key), "value": child.get()})
        return {
            "help": self.help,
            "type": self.kind.__name__.lower(),
            "series": series,
        }


class _NullMetric:
    """Shared no-op instrument: every mutator is an empty method."""

    __slots__ = ()

    def labels(self, **labels: Any) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def get(self) -> float:
        return 0.0


_NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Collection of named metric families; ``enabled=False`` disarms it."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._families: Dict[str, _Family] = {}

    def _register(self, name: str, help: str, kind: type, **kwargs):
        if not self.enabled:
            return _NULL_METRIC
        fam = self._families.get(name)
        if fam is None:
            fam = _Family(name, help, kind, **kwargs)
            self._families[name] = fam
        elif fam.kind is not kind:
            raise ValueError(f"metric {name!r} already registered as {fam.kind.__name__}")
        return fam

    def counter(self, name: str, help: str = ""):
        return self._register(name, help, Counter)

    def gauge(self, name: str, help: str = ""):
        return self._register(name, help, Gauge)

    def histogram(self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS):
        return self._register(name, help, Histogram, buckets=buckets)

    # ------------------------------------------------------------- export
    def snapshot(self) -> Dict[str, Any]:
        """All families and series as a JSON-ready dict."""
        return {name: fam.snapshot() for name, fam in sorted(self._families.items())}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def write(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())
            f.write("\n")


#: the shared disabled registry — hand this to components by default
NULL_REGISTRY = MetricsRegistry(enabled=False)
