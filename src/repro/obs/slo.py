"""Declarative SLOs over timeline windows: compliance, budgets, burn rates.

An SLO spec is a small JSON document::

    {
      "name": "interactive-metadata",
      "objectives": [
        {"name": "p95-latency", "metric": "p95_ms", "target_ms": 12.0,
         "error_budget": 0.05, "burn_window": 10, "burn_alert": 2.0}
      ]
    }

Each objective is evaluated against the windowed timeline produced by
:class:`~repro.obs.timeseries.TimelineCollector`:

* a window is **breaching** when its metric exceeds ``target_ms``
  (for latency metrics) / falls below the target (for rate metrics such
  as ``cache_hit_rate``, where the target key is ``target``);
* the **error budget** is the allowed fraction of breaching windows over
  the whole run; consuming more than 100% of it fails the objective;
* the **burn rate** over a rolling ``burn_window`` of windows is the
  breach fraction in that span divided by the budget fraction — a burn
  rate of 2.0 means the budget is being spent twice as fast as allowed.
  Spans at or above ``burn_alert`` raise an alert.

When a :class:`~repro.fs.faults.schedule.FaultSchedule` is supplied,
breaching windows that overlap an injected fault are annotated with the
fault kinds active in that window, so a report can separate "we broke
the SLO" from "the fault schedule broke the SLO".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "SloObjective",
    "SloSpec",
    "SloError",
    "ObjectiveResult",
    "BurnAlert",
    "SloReport",
    "evaluate_slo",
]

#: metrics where larger observed values are worse (latency-style)
_HIGHER_IS_WORSE = ("p50_ms", "p95_ms", "p99_ms", "lat_mean_ms", "imbalance")
#: metrics where smaller observed values are worse (rate-style)
_LOWER_IS_WORSE = ("cache_hit_rate", "ops_per_sec", "events_per_sec")


class SloError(ValueError):
    """Malformed SLO spec or spec/timeline mismatch."""


@dataclass(frozen=True)
class SloObjective:
    """One objective inside a spec; thresholds are per-window."""

    name: str
    metric: str
    target: float
    error_budget: float = 0.01
    burn_window: int = 10
    burn_alert: float = 2.0

    def __post_init__(self):
        if self.metric in _HIGHER_IS_WORSE:
            pass
        elif self.metric in _LOWER_IS_WORSE:
            pass
        else:
            raise SloError(
                f"objective {self.name!r}: unknown metric {self.metric!r} "
                f"(expected one of {_HIGHER_IS_WORSE + _LOWER_IS_WORSE})"
            )
        if not 0.0 < self.error_budget <= 1.0:
            raise SloError(
                f"objective {self.name!r}: error_budget must be in (0, 1]"
            )
        if self.burn_window < 1:
            raise SloError(f"objective {self.name!r}: burn_window must be >= 1")
        if self.burn_alert <= 0:
            raise SloError(f"objective {self.name!r}: burn_alert must be > 0")

    @property
    def higher_is_worse(self) -> bool:
        return self.metric in _HIGHER_IS_WORSE

    def breaches(self, value: float) -> bool:
        if self.higher_is_worse:
            return value > self.target
        return value < self.target

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SloObjective":
        if "name" not in d or "metric" not in d:
            raise SloError(f"objective needs 'name' and 'metric': {d!r}")
        target = d.get("target", d.get("target_ms"))
        if target is None:
            raise SloError(f"objective {d['name']!r} needs 'target' (or 'target_ms')")
        known = {"name", "metric", "target", "target_ms", "error_budget",
                 "burn_window", "burn_alert"}
        unknown = set(d) - known
        if unknown:
            raise SloError(
                f"objective {d['name']!r}: unknown keys {sorted(unknown)}"
            )
        return cls(
            name=str(d["name"]),
            metric=str(d["metric"]),
            target=float(target),
            error_budget=float(d.get("error_budget", 0.01)),
            burn_window=int(d.get("burn_window", 10)),
            burn_alert=float(d.get("burn_alert", 2.0)),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "metric": self.metric,
            "target": self.target,
            "error_budget": self.error_budget,
            "burn_window": self.burn_window,
            "burn_alert": self.burn_alert,
        }


@dataclass(frozen=True)
class SloSpec:
    """A named set of objectives, loadable from JSON."""

    name: str
    objectives: Sequence[SloObjective]

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SloSpec":
        if not isinstance(d, dict):
            raise SloError(f"SLO spec must be a JSON object, got {type(d).__name__}")
        objs = d.get("objectives")
        if not objs:
            raise SloError("SLO spec needs a non-empty 'objectives' list")
        parsed = tuple(SloObjective.from_dict(o) for o in objs)
        names = [o.name for o in parsed]
        if len(set(names)) != len(names):
            raise SloError(f"duplicate objective names: {names}")
        return cls(name=str(d.get("name", "slo")), objectives=parsed)

    @classmethod
    def load(cls, path: str) -> "SloSpec":
        with open(path) as fh:
            try:
                data = json.load(fh)
            except json.JSONDecodeError as exc:
                raise SloError(f"{path}: invalid JSON: {exc}") from exc
        return cls.from_dict(data)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "objectives": [o.to_dict() for o in self.objectives],
        }


@dataclass(frozen=True)
class BurnAlert:
    """Budget burning at >= ``burn_alert``× the sustainable rate."""

    objective: str
    start_window: int
    end_window: int
    burn_rate: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "objective": self.objective,
            "start_window": self.start_window,
            "end_window": self.end_window,
            "burn_rate": round(self.burn_rate, 4),
        }


@dataclass
class ObjectiveResult:
    """Per-objective verdict over the whole timeline."""

    objective: SloObjective
    windows: int
    breaching: List[int] = field(default_factory=list)
    #: window index -> fault kinds active during that window
    fault_annotations: Dict[int, List[str]] = field(default_factory=dict)
    alerts: List[BurnAlert] = field(default_factory=list)
    worst_value: float = 0.0

    @property
    def breach_fraction(self) -> float:
        return len(self.breaching) / self.windows if self.windows else 0.0

    @property
    def budget_consumed(self) -> float:
        """Fraction of the error budget spent; > 1.0 means blown."""
        return self.breach_fraction / self.objective.error_budget

    @property
    def ok(self) -> bool:
        return self.budget_consumed <= 1.0

    @property
    def unexplained_breaches(self) -> int:
        """Breaching windows with no overlapping injected fault."""
        return sum(1 for w in self.breaching if w not in self.fault_annotations)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "objective": self.objective.to_dict(),
            "ok": self.ok,
            "windows": self.windows,
            "breaching_windows": list(self.breaching),
            "breach_fraction": round(self.breach_fraction, 6),
            "budget_consumed": round(self.budget_consumed, 4),
            "worst_value": round(self.worst_value, 6),
            "unexplained_breaches": self.unexplained_breaches,
            "fault_annotations": {
                str(k): v for k, v in sorted(self.fault_annotations.items())
            },
            "alerts": [a.to_dict() for a in self.alerts],
        }


@dataclass
class SloReport:
    """The full evaluation: one :class:`ObjectiveResult` per objective."""

    spec: SloSpec
    results: List[ObjectiveResult]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.name,
            "ok": self.ok,
            "objectives": [r.to_dict() for r in self.results],
        }

    def render(self) -> str:
        lines = [f"SLO report: {self.spec.name}", ""]
        for r in self.results:
            o = r.objective
            verdict = "OK    " if r.ok else "BREACH"
            cmp = ">" if o.higher_is_worse else "<"
            lines.append(
                f"  [{verdict}] {o.name}: {o.metric} {cmp} {o.target:g} in "
                f"{len(r.breaching)}/{r.windows} windows "
                f"(budget {o.error_budget:.1%}, consumed {r.budget_consumed:.0%}, "
                f"worst {r.worst_value:g})"
            )
            if r.fault_annotations:
                annotated = len(r.fault_annotations)
                kinds = sorted({k for ks in r.fault_annotations.values() for k in ks})
                lines.append(
                    f"           {annotated} breaching window(s) overlap injected "
                    f"faults ({', '.join(kinds)}); {r.unexplained_breaches} unexplained"
                )
            for a in r.alerts:
                lines.append(
                    f"           burn alert: windows {a.start_window}-{a.end_window} "
                    f"burning at {a.burn_rate:.1f}x budget rate"
                )
        lines.append("")
        lines.append(f"overall: {'OK' if self.ok else 'SLO BREACHED'}")
        return "\n".join(lines)


def _fault_kinds_in(faults: Any, start_ms: float, end_ms: float) -> List[str]:
    """Kinds of scheduled faults overlapping [start_ms, end_ms)."""
    kinds = set()
    for ev in getattr(faults, "events", ()):
        if ev.start_ms < end_ms and ev.end_ms > start_ms:
            kinds.add(ev.kind)
    return sorted(kinds)


def evaluate_slo(
    rows: Sequence[Dict[str, Any]],
    spec: SloSpec,
    faults: Optional[Any] = None,
) -> SloReport:
    """Evaluate ``spec`` against timeline ``rows`` (from ``to_rows``/JSONL).

    ``faults`` is an optional :class:`~repro.fs.faults.schedule.FaultSchedule`
    (anything with an ``events`` sequence of ``start_ms/end_ms/kind`` records)
    used to annotate breaching windows.

    Windows with zero completed ops carry no SLI measurement (idle tails,
    full outages) and are excluded from every objective — no data is not a
    breach, matching how production burn-rate math treats empty windows.
    """
    measured = [
        (i, row) for i, row in enumerate(rows) if int(row.get("ops", 0)) > 0
    ]
    results: List[ObjectiveResult] = []
    for obj in spec.objectives:
        if rows and obj.metric not in rows[0]:
            raise SloError(
                f"objective {obj.name!r}: timeline rows lack metric {obj.metric!r}"
            )
        res = ObjectiveResult(objective=obj, windows=len(measured))
        worst = None
        breach_flags: List[bool] = []
        for i, row in measured:
            value = float(row[obj.metric])
            if worst is None:
                worst = value
            elif obj.higher_is_worse:
                worst = max(worst, value)
            else:
                worst = min(worst, value)
            breached = obj.breaches(value)
            breach_flags.append(breached)
            if breached:
                res.breaching.append(i)
                if faults is not None:
                    kinds = _fault_kinds_in(faults, row["start_ms"], row["end_ms"])
                    if kinds:
                        res.fault_annotations[i] = kinds
        res.worst_value = float(worst) if worst is not None else 0.0

        # rolling burn rate over the measured-window sequence: breach
        # fraction per span / budget fraction, merged into maximal alert
        # runs (reported in original window indices)
        n_meas = len(breach_flags)
        w = min(obj.burn_window, n_meas) or 1
        run_start = None
        run_peak = 0.0
        for pos in range(0, max(n_meas - w + 1, 0)):
            frac = sum(breach_flags[pos : pos + w]) / w
            rate = frac / obj.error_budget
            if rate >= obj.burn_alert:
                if run_start is None:
                    run_start = measured[pos][0]
                run_peak = max(run_peak, rate)
            elif run_start is not None:
                res.alerts.append(
                    BurnAlert(obj.name, run_start, measured[pos + w - 2][0], run_peak)
                )
                run_start, run_peak = None, 0.0
        if run_start is not None:
            res.alerts.append(
                BurnAlert(obj.name, run_start, measured[n_meas - 1][0], run_peak)
            )
        results.append(res)
    return SloReport(spec=spec, results=results)
