"""Timeline and metrics exporters: JSONL, Prometheus text, ASCII renders.

Three consumers, three formats:

* :func:`write_timeline_jsonl` / :func:`load_timeline` — the durable
  interchange format.  Line 1 is a header (``{"kind": "timeline", ...}``),
  every following line is one window row exactly as
  :meth:`TimelineCollector.to_rows` produced it.
* :func:`prometheus_text` — a one-shot text-exposition snapshot of a
  :class:`~repro.obs.registry.MetricsRegistry` dump, so external tooling
  that already speaks Prometheus can scrape simulation output.
* :func:`render_timeline_table` / :func:`render_heatmap` — human renders
  for the ``repro obs`` CLI family; the heatmap shades per-MDS load over
  time to make hotspots and migration hand-offs visible at a glance.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Tuple

__all__ = [
    "write_timeline_jsonl",
    "load_timeline",
    "prometheus_text",
    "render_timeline_table",
    "render_heatmap",
    "HEATMAP_METRICS",
]

#: heatmap metric name -> per-MDS row key in a timeline row
HEATMAP_METRICS = {
    "ops": "mds_ops",
    "busy": "mds_busy_ms",
    "rpcs": "mds_rpcs",
    "queue": "mds_queue_depth",
    "wal": "mds_wal_appends",
    "fsyncs": "mds_fsyncs",
    "migrations": "mds_migrations_in",
}

#: ten shades, blank = zero load, '@' = window/cluster maximum
_SHADES = " .:-=+*#%@"


# --------------------------------------------------------------------- JSONL
def write_timeline_jsonl(path: str, meta: Dict[str, Any], rows: Sequence[Dict[str, Any]]) -> None:
    """Write header + one row per closed window; overwrites ``path``."""
    with open(path, "w") as fh:
        fh.write(json.dumps(meta, sort_keys=True) + "\n")
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True) + "\n")


def load_timeline(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a timeline JSONL file back into ``(meta, rows)``.

    Validates the header so ``repro obs`` commands fail with a clear
    message when handed a span trace or arbitrary JSONL by mistake.
    """
    with open(path) as fh:
        first = fh.readline()
        if not first.strip():
            raise ValueError(f"{path}: empty file, not a timeline")
        try:
            meta = json.loads(first)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: header is not JSON: {exc}") from exc
        if not isinstance(meta, dict) or meta.get("kind") != "timeline":
            raise ValueError(
                f"{path}: not a timeline file (header lacks kind=timeline; "
                f"was it produced by simulate --timeline?)"
            )
        rows = [json.loads(line) for line in fh if line.strip()]
    return meta, rows


# ---------------------------------------------------------------- Prometheus
def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_name(name: str) -> str:
    """Registry names are dotted (``fs.ops_total``); Prometheus wants ``_``."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "repro_" + sanitized


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_prom_escape(str(v))}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(snapshot: Dict[str, Any]) -> str:
    """Render a ``MetricsRegistry.snapshot()`` as Prometheus text exposition.

    Each family becomes a ``# HELP`` / ``# TYPE`` block; labelled series
    carry their label sets through.  Histogram children expand into the
    classic ``_bucket``/``_sum``/``_count`` triple with cumulative ``le``
    labels, plus ``quantile`` samples for the serialized p50/p95/p99.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        fam = snapshot[name]
        pname = _prom_name(name)
        if fam.get("help"):
            lines.append(f"# HELP {pname} {_prom_escape(fam['help'])}")
        kind = fam.get("type", "gauge")
        lines.append(
            f"# TYPE {pname} {'histogram' if kind == 'histogram' else ('counter' if kind == 'counter' else 'gauge')}"
        )
        for series in fam.get("series", ()):
            labels = series.get("labels", {})
            value = series.get("value")
            if isinstance(value, dict) and "buckets" in value:
                for bound, cum in value["buckets"]:
                    le = "+Inf" if bound == float("inf") else f"{bound:g}"
                    le_label = f'le="{le}"'
                    lines.append(f"{pname}_bucket{_prom_labels(labels, le_label)} {cum}")
                lines.append(f"{pname}_sum{_prom_labels(labels)} {value['sum']:g}")
                lines.append(f"{pname}_count{_prom_labels(labels)} {value['count']}")
                for q in ("p50", "p95", "p99"):
                    if q in value:
                        ql = f'quantile="0.{q[1:]}"'
                        lines.append(
                            f"{pname}{_prom_labels(labels, ql)} {value[q]:g}"
                        )
            else:
                lines.append(f"{pname}{_prom_labels(labels)} {float(value):g}")
    return "\n".join(lines) + "\n"


# -------------------------------------------------------------- ASCII render
def render_timeline_table(
    rows: Sequence[Dict[str, Any]], limit: int = 0
) -> str:
    """Fixed-width per-window table for ``repro obs timeline``."""
    if not rows:
        return "(empty timeline)"
    shown = list(rows)
    skipped = 0
    if limit and len(shown) > limit:
        skipped = len(shown) - limit
        shown = shown[-limit:]
    header = (
        f"{'win':>5} {'start_ms':>10} {'ops':>7} {'ops/s':>10} {'p50':>8} "
        f"{'p95':>8} {'p99':>8} {'ev/s':>10} {'hit%':>6} {'mig':>4} {'imb':>6}"
    )
    lines = [header, "-" * len(header)]
    if skipped:
        lines.append(f"  ... {skipped} earlier window(s) omitted ...")
    for row in shown:
        lines.append(
            f"{row['w']:>5} {row['start_ms']:>10.1f} {row['ops']:>7} "
            f"{row['ops_per_sec']:>10.0f} {row['p50_ms']:>8.2f} "
            f"{row['p95_ms']:>8.2f} {row['p99_ms']:>8.2f} "
            f"{row['events_per_sec']:>10.0f} {100 * row['cache_hit_rate']:>5.1f}% "
            f"{row['migrations']:>4} {row['imbalance']:>6.3f}"
        )
    return "\n".join(lines)


def _downsample(series: List[float], width: int) -> List[float]:
    """Max-pool a series down to ``width`` columns (peaks must survive)."""
    n = len(series)
    if n <= width:
        return series
    out = []
    for c in range(width):
        lo = c * n // width
        hi = max((c + 1) * n // width, lo + 1)
        out.append(max(series[lo:hi]))
    return out


def render_heatmap(
    rows: Sequence[Dict[str, Any]],
    metric: str = "ops",
    width: int = 72,
) -> str:
    """ASCII per-MDS load heatmap: one row per MDS, one column per window.

    Shading is normalised to the cluster-wide maximum cell so relative
    hotspots read directly; wide timelines are max-pooled down to
    ``width`` columns so peaks survive downsampling.
    """
    key = HEATMAP_METRICS.get(metric)
    if key is None:
        raise ValueError(
            f"unknown heatmap metric {metric!r} "
            f"(choose from {', '.join(sorted(HEATMAP_METRICS))})"
        )
    if not rows:
        return "(empty timeline)"
    if key not in rows[0]:
        return f"(timeline rows lack per-MDS column {key!r})"
    n_mds = len(rows[0][key])
    per_mds: List[List[float]] = [
        _downsample([float(row[key][m]) for row in rows], width)
        for m in range(n_mds)
    ]
    peak = max((v for series in per_mds for v in series), default=0.0)
    span_ms = rows[-1]["end_ms"] - rows[0]["start_ms"]
    lines = [
        f"per-MDS {metric} heatmap — {len(rows)} windows over {span_ms:.0f} ms "
        f"(cell peak = {peak:g})"
    ]
    top = len(_SHADES) - 1
    for m, series in enumerate(per_mds):
        cells = []
        for v in series:
            if peak <= 0:
                cells.append(_SHADES[0])
            else:
                cells.append(_SHADES[min(int(v / peak * top + 0.999), top)] if v > 0 else _SHADES[0])
        lines.append(f"mds{m:<3} |{''.join(cells)}|")
    axis_width = max(len(per_mds[0]) if per_mds else 0, 16)
    left = f"{rows[0]['start_ms']:.0f}"
    right = f"{rows[-1]['end_ms']:.0f} ms"
    lines.append(" " * 7 + left + right.rjust(axis_width - len(left) + 1))
    lines.append(f"shade   '{_SHADES}'  (blank = idle, '@' = peak)")
    return "\n".join(lines)
