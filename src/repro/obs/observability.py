"""The observability bundle a simulation run carries.

``SimConfig.obs`` takes one of these; :data:`NULL_OBS` (all components
disabled) is what every existing call site gets implicitly, keeping the
disabled path free and all prior behaviour unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.audit import BalancerAudit
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.timeseries import NULL_TIMELINE, TimelineCollector
from repro.obs.tracing import NULL_TRACER, JsonlTracer, Tracer

__all__ = ["Observability", "NULL_OBS"]


class Observability:
    """Bundle of registry + tracer + audit handed to an :class:`OrigamiFS`.

    Any subset may be enabled::

        obs = Observability(metrics=True, trace_path="t.jsonl", audit=True)
        cfg = SimConfig(obs=obs)
        result = run_simulation(tree, trace, policy, cfg)
        obs.close()                      # flush the trace file
        obs.registry.write("m.json")     # metrics snapshot
        obs.audit.write("audit.jsonl")   # balancer decision log
    """

    def __init__(
        self,
        metrics: bool = False,
        trace_path: Optional[str] = None,
        trace: bool = False,
        trace_max_spans: Optional[int] = None,
        trace_sample: int = 1,
        audit: bool = False,
        timeline: bool = False,
        timeline_window_ms: float = 50.0,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
        timeline_collector: Optional[TimelineCollector] = None,
    ):
        if registry is not None:
            self.registry = registry
        else:
            self.registry = MetricsRegistry(enabled=True) if metrics else NULL_REGISTRY
        if tracer is not None:
            self.tracer = tracer
        elif trace or trace_path is not None:
            self.tracer = JsonlTracer(
                trace_path, max_spans=trace_max_spans, sample=trace_sample
            )
        else:
            self.tracer = NULL_TRACER
        self.audit: Optional[BalancerAudit] = BalancerAudit() if audit else None
        if timeline_collector is not None:
            self.timeline = timeline_collector
        elif timeline:
            self.timeline = TimelineCollector(window_ms=timeline_window_ms)
        else:
            self.timeline = NULL_TIMELINE

    @property
    def enabled(self) -> bool:
        return (
            self.registry.enabled
            or self.tracer.enabled
            or self.audit is not None
            or self.timeline.enabled
        )

    def close(self) -> None:
        self.tracer.close()

    # ------------------------------------------------------------- finalize
    def finalize(self, fs: Any) -> None:
        """Publish end-of-run state of every component into the registry.

        Called once by :meth:`OrigamiFS.run`; zero cost when metrics are off.
        Per-op counters (ops, latency, RPCs) accumulate live; everything a
        component already tracks internally (engine calendar, resource wait
        stats, cache hits, LSM amplification) is published here so the hot
        paths pay nothing for it.
        """
        # close the trailing timeline window before anything reads it
        self.timeline.finalize(fs.env.now)

        reg = self.registry
        if not reg.enabled:
            return
        env = fs.env
        reg.gauge("engine_events_total", "events processed by the DES kernel").set(
            env.events_processed
        )
        reg.gauge("engine_peak_calendar_len", "peak event-calendar length").set(
            env.peak_queue_len
        )
        reg.gauge("engine_virtual_time_ms", "final virtual clock").set(env.now)

        busy = reg.gauge("mds_busy_ms_total", "virtual ms each MDS spent servicing")
        rpcs = reg.gauge("mds_rpcs_total", "RPC messages handled per MDS")
        wait = reg.gauge("mds_queue_wait_ms_total", "total queue wait at each MDS")
        grants = reg.gauge("mds_queue_grants_total", "service slots granted per MDS")
        peakq = reg.gauge("mds_queue_peak_len", "peak service-queue length per MDS")
        for s in fs.servers:
            label = str(s.mds_id)
            busy.labels(mds=label).set(s.total_busy_ms)
            rpcs.labels(mds=label).set(s.total_rpcs)
            wait.labels(mds=label).set(s.resource.total_wait_time)
            grants.labels(mds=label).set(s.resource.total_grants)
            peakq.labels(mds=label).set(s.resource.peak_queue_len)

        for name, value in fs.cache.stats_dict().items():
            reg.gauge(f"cache_{name}", f"client cache {name}").set(value)

        mig = fs.migrator.log
        reg.gauge("migrations_total", "applied migrations").set(mig.total_migrations)
        reg.gauge("migration_inodes_total", "inodes moved by migrations").set(
            mig.total_inodes_moved
        )
        reg.gauge("migration_stale_decisions_total", "decisions dropped as stale").set(
            fs.stale_decisions
        )

        if fs.use_kvstore:
            for s in fs.servers:
                if s.store is None:
                    continue
                label = str(s.mds_id)
                for name, value in s.store.stats.as_dict().items():
                    reg.gauge(f"kvstore_{name}", f"LSM store {name}").labels(
                        mds=label
                    ).set(value)
                if getattr(s, "recovery_ms_total", 0.0) > 0.0:
                    reg.gauge(
                        "mds_recovery_ms_total", "modeled recovery warm-up (ms)"
                    ).labels(mds=label).set(s.recovery_ms_total)

        if getattr(fs, "faults", None) is not None:
            for name, value in fs.faults.summary().items():
                reg.gauge(f"faults_{name}", f"fault injection {name}").set(value)
            reg.gauge(
                "faults_ops_vanished_total", "ops whose target dir vanished"
            ).set(fs.vanished_ops)

        if getattr(fs, "elastic", None) is not None:
            for name, value in fs.elastic.summary().items():
                reg.gauge(f"elastic_{name}", f"elastic pool {name}").set(value)

        if self.audit is not None:
            for name, value in self.audit.summary().items():
                reg.gauge(f"balancer_{name}", f"audit {name}").set(value)

    def metrics_snapshot(self) -> Dict[str, Any]:
        snap: Dict[str, Any] = {"metrics": self.registry.snapshot()}
        if self.audit is not None:
            snap["balancer_audit"] = {
                "summary": self.audit.summary(),
                "entries": self.audit.to_dicts(),
            }
        if self.tracer.enabled:
            snap["trace"] = {
                "spans_dropped": self.tracer.dropped,
                "path": getattr(self.tracer, "path", None),
            }
        if self.timeline.enabled:
            snap["timeline"] = self.timeline.summary()
        return snap


#: everything disabled — the implicit default for every simulation
NULL_OBS = Observability()
