"""Balancer decision audit: predicted vs. *realized* migration benefit.

Training metrics (RMSE, Spearman) say how well the model fits Meta-OPT's
labels; they say nothing about whether a migration helped the cluster it ran
on.  The audit closes that loop per run:

* when a policy's decisions are applied at an epoch boundary, each applied
  migration becomes an :class:`AuditEntry` carrying the candidate-set
  summary the policy evaluated, the model- (or Meta-OPT-) predicted benefit,
  and the per-MDS load of the epoch that triggered the decision;
* at the *next* epoch boundary the entry is resolved: the realized benefit
  is the drop in the cluster's bottleneck load (max per-MDS busy-ms, the
  JCT proxy the whole paper optimises), normalised to the decision epoch's
  duration and shared equally among that epoch's migrations.

A positive realized benefit means the bottleneck actually shrank; persistent
negative values with large predictions are exactly the model-drift signal
production balancers need (MIDAS makes the same argument for per-path
telemetry).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["AuditEntry", "BalancerAudit"]


@dataclass
class AuditEntry:
    """One applied migration awaiting (or holding) its realized outcome."""

    epoch: int
    subtree_root: int
    path: str
    src: int
    dst: int
    predicted_benefit_ms: float
    inodes_moved: int
    #: number of candidate subtrees the policy scored this epoch (-1 unknown)
    candidate_count: int
    #: top candidates by predicted benefit: [(root, predicted), ...]
    top_candidates: List[List[float]]
    #: per-MDS busy-ms of the epoch that triggered the decision
    load_before: List[float]
    duration_before_ms: float
    #: filled in at the next epoch boundary
    load_after: Optional[List[float]] = None
    duration_after_ms: Optional[float] = None
    realized_benefit_ms: Optional[float] = None
    #: bottleneck drop of the whole epoch (shared across its migrations)
    epoch_realized_benefit_ms: Optional[float] = None

    @property
    def resolved(self) -> bool:
        return self.realized_benefit_ms is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "subtree_root": self.subtree_root,
            "path": self.path,
            "src": self.src,
            "dst": self.dst,
            "predicted_benefit_ms": self.predicted_benefit_ms,
            "inodes_moved": self.inodes_moved,
            "candidate_count": self.candidate_count,
            "top_candidates": self.top_candidates,
            "load_before": self.load_before,
            "duration_before_ms": self.duration_before_ms,
            "load_after": self.load_after,
            "duration_after_ms": self.duration_after_ms,
            "realized_benefit_ms": self.realized_benefit_ms,
            "epoch_realized_benefit_ms": self.epoch_realized_benefit_ms,
        }


class BalancerAudit:
    """Decision log filled by the epoch driver (and policies, for candidates)."""

    def __init__(self, top_k: int = 8):
        self.top_k = top_k
        self.entries: List[AuditEntry] = []
        self._pending: List[AuditEntry] = []
        #: per-epoch candidate summaries posted by the policy before deciding
        self._candidates: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------ policy side
    def note_candidates(
        self, epoch: int, roots: Sequence[int], predicted: Sequence[float]
    ) -> None:
        """Record the candidate set a policy scored this epoch.

        ``roots``/``predicted`` are parallel; only the ``top_k`` best
        predictions are retained verbatim (the count is kept exactly).
        """
        pairs = sorted(
            zip((int(r) for r in roots), (float(p) for p in predicted)),
            key=lambda rp: -rp[1],
        )
        self._candidates[epoch] = {
            "count": len(pairs),
            "top": [[r, p] for r, p in pairs[: self.top_k]],
        }

    # ------------------------------------------------------------ driver side
    def record_decisions(
        self,
        epoch: int,
        mds_load: Sequence[float],
        duration_ms: float,
        applied,
        tree=None,
    ) -> None:
        """Log the migrations applied at this epoch boundary.

        ``applied`` is a sequence of
        :class:`~repro.cluster.migration.AppliedMigration`.
        """
        cand = self._candidates.get(epoch, {"count": -1, "top": []})
        load = [float(v) for v in mds_load]
        for rec in applied:
            d = rec.decision
            entry = AuditEntry(
                epoch=epoch,
                subtree_root=d.subtree_root,
                path=tree.path_of(d.subtree_root) if tree is not None else "",
                src=d.src,
                dst=d.dst,
                predicted_benefit_ms=float(d.predicted_benefit),
                inodes_moved=rec.inodes_moved,
                candidate_count=cand["count"],
                top_candidates=cand["top"],
                load_before=load,
                duration_before_ms=float(duration_ms),
            )
            self.entries.append(entry)
            self._pending.append(entry)

    def observe_epoch(self, epoch: int, mds_load: Sequence[float], duration_ms: float) -> None:
        """Resolve pending entries from earlier epochs against this epoch's load.

        The realized benefit compares bottleneck (max per-MDS) busy *rates*
        — busy-ms normalised by epoch duration — rescaled to the decision
        epoch's duration so predicted and realized share units, then split
        equally among the decision epoch's migrations.
        """
        load = [float(v) for v in mds_load]
        duration_ms = float(duration_ms)
        still_pending: List[AuditEntry] = []
        by_epoch: Dict[int, List[AuditEntry]] = {}
        for e in self._pending:
            if e.epoch < epoch:
                by_epoch.setdefault(e.epoch, []).append(e)
            else:
                still_pending.append(e)
        for entries in by_epoch.values():
            first = entries[0]
            before_rate = max(first.load_before) / max(first.duration_before_ms, 1e-9)
            after_rate = (max(load) / max(duration_ms, 1e-9)) if load else 0.0
            epoch_benefit = (before_rate - after_rate) * first.duration_before_ms
            share = epoch_benefit / len(entries)
            for e in entries:
                e.load_after = load
                e.duration_after_ms = duration_ms
                e.epoch_realized_benefit_ms = epoch_benefit
                e.realized_benefit_ms = share
        self._pending = still_pending

    # --------------------------------------------------------------- export
    @property
    def total_migrations(self) -> int:
        return len(self.entries)

    def resolved_entries(self) -> List[AuditEntry]:
        return [e for e in self.entries if e.resolved]

    def summary(self) -> Dict[str, Any]:
        resolved = self.resolved_entries()
        n = len(resolved)
        pred = [e.predicted_benefit_ms for e in resolved]
        real = [e.realized_benefit_ms for e in resolved]
        agree = sum(1 for p, r in zip(pred, real) if (p > 0) == (r > 0))
        return {
            "migrations": len(self.entries),
            "resolved": n,
            "mean_predicted_ms": sum(pred) / n if n else 0.0,
            "mean_realized_ms": sum(real) / n if n else 0.0,
            "sign_agreement": agree / n if n else 0.0,
        }

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [e.to_dict() for e in self.entries]

    def write(self, path: str) -> None:
        """One JSON line per migration, chronological."""
        with open(path, "w") as f:
            for e in self.entries:
                f.write(json.dumps(e.to_dict()))
                f.write("\n")
