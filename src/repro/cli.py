"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments`` — list the available paper experiments;
* ``run <experiment>`` — regenerate one figure/table and print the report
  (optionally ``--json out.json`` / ``--scale smoke|default|full``);
* ``workload <rw|ro|wi>`` — generate a trace and print its characteristics;
* ``train <rw|ro|wi>`` — run the label-generation + training pipeline and
  print model quality and Table-1 importances;
* ``simulate <strategy> <workload>`` — one DES run, headline metrics printed;
  ``--trace``/``--metrics``/``--audit`` export request spans (JSONL), a
  metrics snapshot (JSON), and the balancer decision audit (JSONL);
  ``--json`` dumps the full ``SimResult`` including per-epoch arrays;
  ``--data-dir`` backs every MDS with a durable store (WAL + SSTables +
  MANIFEST) and prices durability work into the run; ``--checkpoint`` /
  ``--resume`` capture and warm-restart a quiescent simulation;
* ``report <trace.jsonl>`` — latency-decomposition report of a span trace;
  ``--timeline`` adds steady-state events/sec and per-window throughput;
* ``obs timeline|heatmap|slo`` — inspect a ``simulate --timeline`` JSONL:
  per-window tables, ASCII per-MDS load heatmaps, and SLO verdicts
  (``obs slo`` exits 1 on breach, for CI gating);
* ``recover <data_dir>`` — read-only inspection of durable store
  directories: MANIFEST state, WAL tail to replay, modeled recovery cost;
* ``plan <workload>`` — run Meta-OPT as an offline planner and print the
  migration plan;
* ``bench run|list|compare|report`` — the perf-tracking subsystem: run a
  registered scenario's seed×variant matrix in parallel and write a
  schema-versioned ``BENCH_<scenario>.json`` artifact; list scenarios;
  diff two artifacts with regression gating; render an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]

_EXPERIMENTS = (
    "fig2_even_partitioning",
    "fig5_overall",
    "fig6_imbalance",
    "table1_features",
    "table2_cache",
    "fig7_efficiency",
    "fig8_scalability",
    "fig9_realworld",
    "theorem1_gap",
    "ablation_delta",
    "ablation_cache_depth",
    "ablation_models",
    "ablation_epoch_length",
    "ablation_online_learning",
    "ablation_mdtest_uniform",
    "ablation_cache_design",
)

_STRATEGIES = (
    "Single", "Even", "C-Hash", "F-Hash", "Lunule", "ML-tree",
    "AdaM-RL", "Origami", "Origami-online", "Meta-OPT",
)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Origami (ICPP 2025) reproduction toolkit",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list available paper experiments")

    run = sub.add_parser("run", help="regenerate one figure/table")
    run.add_argument("experiment", choices=_EXPERIMENTS)
    run.add_argument("--scale", default=None, choices=("smoke", "default", "full", "large"))
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--json", dest="json_out", default=None, help="write report JSON here")
    run.add_argument(
        "--profile", action="store_true",
        help="print wall-clock phase profile (workload gen / training / simulation)",
    )

    wl = sub.add_parser("workload", help="generate a trace and describe it")
    wl.add_argument("kind", choices=("rw", "ro", "wi", "mdtest", "diurnal", "flash", "onboard"))
    wl.add_argument("--ops", type=int, default=30_000)
    wl.add_argument("--seed", type=int, default=0)
    wl.add_argument("--save", default=None, help="save the trace bundle to this .npz path")

    tr = sub.add_parser("train", help="run the training pipeline for a workload family")
    tr.add_argument("kind", choices=("rw", "ro", "wi"))
    tr.add_argument("--ops", type=int, default=40_000)
    tr.add_argument("--rounds", type=int, default=120)
    tr.add_argument("--seed", type=int, default=7)

    si = sub.add_parser("simulate", help="one DES run of a strategy on a workload")
    si.add_argument("strategy", choices=_STRATEGIES)
    si.add_argument("kind", choices=("rw", "ro", "wi", "mdtest", "diurnal", "flash", "onboard"))
    si.add_argument("--ops", type=int, default=60_000)
    si.add_argument("--mds", type=int, default=5)
    si.add_argument("--clients", type=int, default=300)
    si.add_argument("--seed", type=int, default=42)
    si.add_argument("--cache-depth", type=int, default=2)
    si.add_argument("--scale", default=None, choices=("smoke", "default", "full", "large"),
                    help="scale profile (default: $REPRO_SCALE or 'default'); "
                         "sets epoch length and the namespace-size multiplier")
    si.add_argument("--epoch-ms", type=float, default=None,
                    help="rebalance epoch length (default: the scale profile's)")
    si.add_argument("--profile", action="store_true",
                    help="run the DES under cProfile and print the top of the "
                         "sorted cost table after the results")
    si.add_argument("--kvstore", action="store_true",
                    help="store inodes in per-MDS LSM stores (surfaces StoreStats)")
    si.add_argument("--data-dir", dest="data_dir", default=None, metavar="DIR",
                    help="durable per-MDS stores (WAL + SSTables + MANIFEST) rooted "
                         "here; implies --kvstore and the durability cost model")
    si.add_argument("--checkpoint", dest="checkpoint_out", default=None, metavar="PATH",
                    help="capture a simulation checkpoint here after the run")
    si.add_argument("--resume", dest="resume_path", default=None, metavar="PATH",
                    help="warm-restart from a checkpoint written by --checkpoint "
                         "(pass the same workload/seed so the full trace matches)")
    si.add_argument("--autoscale", dest="autoscale_path", default=None, metavar="PATH",
                    help="autoscale spec JSON enabling the elastic MDS pool "
                         "(see docs/elasticity.md)")
    si.add_argument("--faults", dest="faults_path", default=None, metavar="PATH",
                    help="JSON fault schedule (crashes, slowdowns, drops, partitions)")
    si.add_argument("--trace", dest="trace_out", default=None, metavar="PATH",
                    help="write request spans as JSONL here")
    si.add_argument("--trace-sample", dest="trace_sample", type=int, default=1,
                    metavar="N",
                    help="keep every Nth span (deterministic by span ordinal; "
                         "headline metrics stay bit-identical)")
    si.add_argument("--metrics", dest="metrics_out", default=None, metavar="PATH",
                    help="write a metrics-registry snapshot (JSON) here")
    si.add_argument("--prom", dest="prom_out", default=None, metavar="PATH",
                    help="write a Prometheus text-exposition metrics snapshot "
                         "here (implies metrics collection)")
    si.add_argument("--audit", dest="audit_out", default=None, metavar="PATH",
                    help="write the balancer decision audit as JSONL here")
    si.add_argument("--timeline", dest="timeline_out", default=None, metavar="PATH",
                    help="collect windowed per-MDS/cluster telemetry and write "
                         "the timeline as JSONL here (see `repro obs`)")
    si.add_argument("--timeline-window-ms", dest="timeline_window_ms", type=float,
                    default=None, metavar="MS",
                    help="virtual-time window length (default: epoch_ms / 5)")
    si.add_argument("--slo", dest="slo_path", default=None, metavar="SPEC",
                    help="evaluate this JSON SLO spec against the run's timeline "
                         "(implies timeline collection); exit 1 on breach")
    si.add_argument("--json", dest="json_out", default=None, metavar="PATH",
                    help="write the full SimResult (incl. per-epoch arrays) here")

    rp = sub.add_parser("report", help="latency-decomposition report of a span trace")
    rp.add_argument("trace", help="span JSONL file written by `simulate --trace`")
    rp.add_argument("--timeline", dest="timeline_path", default=None, metavar="PATH",
                    help="timeline JSONL from `simulate --timeline`: adds "
                         "steady-state events/sec and per-window throughput")

    ob = sub.add_parser("obs", help="inspect timeline telemetry files")
    osub = ob.add_subparsers(dest="obs_command", required=True)

    ot = osub.add_parser("timeline", help="per-window table of a timeline file")
    ot.add_argument("timeline", help="JSONL written by `simulate --timeline`")
    ot.add_argument("--limit", type=int, default=0, metavar="N",
                    help="show only the last N windows (default: all)")

    oh = osub.add_parser("heatmap", help="ASCII per-MDS load heatmap")
    oh.add_argument("timeline", help="JSONL written by `simulate --timeline`")
    oh.add_argument("--metric", default="ops",
                    choices=("ops", "busy", "rpcs", "queue", "wal", "fsyncs",
                             "migrations"),
                    help="per-MDS series to shade (default: ops)")
    oh.add_argument("--width", type=int, default=72, metavar="COLS",
                    help="max heatmap columns; wider timelines are max-pooled")

    os_ = osub.add_parser("slo", help="evaluate an SLO spec; exit 1 on breach")
    os_.add_argument("timeline", help="JSONL written by `simulate --timeline`")
    os_.add_argument("spec", help="JSON SLO spec (see docs/observability.md)")
    os_.add_argument("--faults", dest="faults_path", default=None, metavar="PATH",
                     help="fault schedule used by the run; annotates breaching "
                          "windows that overlap injected faults")
    os_.add_argument("--json", dest="json_out", default=None, metavar="PATH",
                     help="write the full SLO report JSON here")

    rc = sub.add_parser("recover", help="inspect a durable data directory (read-only)")
    rc.add_argument("data_dir",
                    help="one store directory, or a `simulate --data-dir` root "
                         "holding mds-* store directories")
    rc.add_argument("--json", dest="json_out", default=None, metavar="PATH",
                    help="write the per-store inspection dicts here")

    pl = sub.add_parser("plan", help="offline Meta-OPT migration plan")
    pl.add_argument("kind", choices=("rw", "ro", "wi"))
    pl.add_argument("--ops", type=int, default=8_000)
    pl.add_argument("--mds", type=int, default=5)
    pl.add_argument("--moves", type=int, default=12)
    pl.add_argument("--seed", type=int, default=3)

    be = sub.add_parser("bench", help="benchmark orchestration and regression gating")
    bsub = be.add_subparsers(dest="bench_command", required=True)

    br = bsub.add_parser("run", help="run scenarios and write BENCH_<name>.json artifacts")
    br.add_argument("--scenario", action="append", default=None, metavar="NAME",
                    help="scenario to run (repeatable; default: all registered)")
    br.add_argument("--workers", type=int, default=1,
                    help="process-pool size (1 = inline; output is identical either way)")
    br.add_argument("--scale", default=None, choices=("smoke", "default", "full", "large"),
                    help="scale tier override (default: each scenario's own tier)")
    br.add_argument("--seeds", default=None, metavar="S1,S2,...",
                    help="comma-separated seed-list override")
    br.add_argument("--out-dir", default=".", metavar="DIR",
                    help="directory for BENCH_<scenario>.json (default: cwd)")

    bsub.add_parser("list", help="list registered bench scenarios")

    bc = bsub.add_parser("compare", help="diff two artifacts; exit 1 on regression")
    bc.add_argument("baseline", help="baseline BENCH_*.json")
    bc.add_argument("candidate", help="candidate BENCH_*.json")
    bc.add_argument("--profile", default="default", choices=("default", "smoke"),
                    help="threshold profile (smoke = relaxed CI tolerances)")
    bc.add_argument("--threshold", action="append", default=None,
                    metavar="METRIC=FRAC",
                    help="override one gate, e.g. p99_latency_ms=0.1 (repeatable)")

    bp = bsub.add_parser("report", help="render one artifact as text tables")
    bp.add_argument("artifact", help="a BENCH_*.json file")
    return p


def _cmd_experiments() -> int:
    from repro.bench.scenario import iter_scenarios
    from repro.harness import experiments as E

    for name in _EXPERIMENTS:
        doc = (getattr(E, name).__doc__ or "").strip().splitlines()[0]
        print(f"{name:28s} {doc}")
    print("\nbench scenarios (run with `repro bench run --scenario <name>`):")
    for scn in iter_scenarios():
        faults = ", faults" if scn.faults is not None else ""
        print(
            f"{scn.name:28s} scale={scn.scale:8s} "
            f"{len(scn.variants)} variants x {len(scn.seeds)} seeds{faults} — "
            f"{scn.description}"
        )
    return 0


def _cmd_run(args) -> int:
    from repro.harness import experiments as E
    from repro.harness.config import get_scale
    from repro.obs.profiling import PROFILER

    scale = get_scale(args.scale)
    fn = getattr(E, args.experiment)
    if args.profile:
        PROFILER.enabled = True
        PROFILER.reset()
    with PROFILER.phase(f"experiment:{args.experiment}"):
        out = fn(scale, seed=args.seed) if args.experiment != "theorem1_gap" else fn(seed=args.seed)
    rep = out[0] if isinstance(out, tuple) else out
    print(rep.render())
    if args.profile:
        print()
        print(PROFILER.render())
    if args.json_out:
        with open(args.json_out, "w") as f:
            f.write(rep.to_json())
        print(f"\n[json written to {args.json_out}]")
    return 0


def _cmd_workload(args) -> int:
    from repro.harness.experiments import build_workload

    built, trace = build_workload(args.kind, args.ops, args.seed)
    tree = built.tree
    depths = tree.depth_array()[tree.dir_mask()]
    print(f"workload       : Trace-{args.kind.upper()} ({trace.label})")
    print(f"operations     : {len(trace):,}")
    print(f"directories    : {tree.num_dirs:,} (max depth {int(depths.max())}, mean {depths.mean():.1f})")
    print(f"files          : {tree.num_files:,}")
    print(f"write fraction : {trace.write_fraction():.1%}")
    print(f"op mix         : {trace.op_mix()}")
    uniq, counts = np.unique(trace.dir_ino, return_counts=True)
    counts = np.sort(counts)[::-1]
    top5 = counts[: max(1, len(counts) // 20)].sum() / counts.sum()
    print(f"dir skew       : top-5% of dirs receive {top5:.1%} of ops")
    if args.save:
        from repro.workloads.serialize import save_bundle

        save_bundle(args.save, tree, trace)
        print(f"[bundle written to {args.save}]")
    return 0


def _cmd_train(args) -> int:
    from repro.costmodel import CostParams
    from repro.harness.experiments import build_workload
    from repro.ml.importance import rank_features
    from repro.training import collect_training_data, train_models, train_origami_model

    params = CostParams(cache_depth=2)
    built, trace = build_workload(args.kind, args.ops, args.seed)
    print(f"collecting labels from {len(trace):,} ops ...")
    dataset, _ = collect_training_data(
        built.tree, trace, n_mds=5, params=params, delta=50.0, ops_per_epoch=4000
    )
    print(f"samples: {dataset.n_samples:,}")
    reports = train_models(dataset, gbdt_rounds=args.rounds)
    print(f"\n{'model':16s} {'RMSE':>8s} {'R2':>8s} {'Spearman':>9s} {'top-10%':>8s}")
    for m in reports.values():
        print(f"{m.name:16s} {m.rmse:8.3f} {m.r2:8.3f} {m.spearman:9.3f} {m.top_decile_overlap:8.3f}")
    model = train_origami_model(dataset, n_estimators=args.rounds)
    print("\nfeature importances (split gain):")
    for name, imp, rank in rank_features(model.feature_importances()):
        print(f"  rank {rank}: {name:18s} {imp:.3f}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.harness.config import ExperimentScale, get_scale
    from repro.harness.experiments import build_workload, make_policy
    from repro.costmodel import CostParams
    from repro.durability import Checkpointer, CheckpointError, SimCheckpoint
    from repro.fs import SimConfig
    from repro.fs.filesystem import OrigamiFS
    from repro.obs import Observability

    scale = get_scale(args.scale)
    built, trace = build_workload(
        args.kind, args.ops, args.seed, tree_scale=scale.tree_scale
    )
    policy, default_mds = make_policy(args.strategy, args.kind, scale)
    faults = None
    if args.faults_path:
        from repro.fs.faults import FaultSchedule

        try:
            faults = FaultSchedule.load(args.faults_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro simulate: bad fault schedule: {exc}", file=sys.stderr)
            return 2
    autoscale = None
    if args.autoscale_path:
        from repro.fs.elastic import AutoscaleSpec

        try:
            autoscale = AutoscaleSpec.load(args.autoscale_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro simulate: bad autoscale spec: {exc}", file=sys.stderr)
            return 2
    if args.trace_sample < 1:
        print(f"repro simulate: --trace-sample must be >= 1, got {args.trace_sample}",
              file=sys.stderr)
        return 2
    slo_spec = None
    if args.slo_path:
        from repro.obs.slo import SloError, SloSpec

        try:
            slo_spec = SloSpec.load(args.slo_path)
        except (OSError, SloError) as exc:
            print(f"repro simulate: bad SLO spec: {exc}", file=sys.stderr)
            return 2
    epoch_ms = args.epoch_ms if args.epoch_ms is not None else scale.epoch_ms
    want_metrics = args.metrics_out is not None or args.prom_out is not None
    want_timeline = args.timeline_out is not None or slo_spec is not None
    want_obs = args.trace_out or want_metrics or args.audit_out or want_timeline
    obs = (
        Observability(
            metrics=want_metrics,
            trace_path=args.trace_out,
            trace_sample=args.trace_sample,
            audit=args.audit_out is not None or args.metrics_out is not None,
            timeline=want_timeline,
            timeline_window_ms=(
                args.timeline_window_ms
                if args.timeline_window_ms is not None
                else epoch_ms / 5.0
            ),
        )
        if want_obs
        else None
    )
    config = SimConfig(
        n_mds=args.mds if args.strategy != "Single" else 1,
        n_clients=args.clients,
        epoch_ms=epoch_ms,
        params=CostParams(cache_depth=args.cache_depth),
        seed=args.seed,
        oracle_window_ops=9000,
        use_kvstore=args.kvstore,
        obs=obs,
        faults=faults,
        data_dir=args.data_dir,
        autoscale=autoscale,
    )
    try:
        if args.resume_path:
            ckpt = SimCheckpoint.load(args.resume_path)
            fs = Checkpointer().restore(ckpt, trace, policy, config)
            print(f"[resumed from {args.resume_path}: {fs.cursor:,}/{len(trace):,} ops "
                  f"already replayed, clock at {fs.env.now:.1f} virtual ms]")
        else:
            fs = OrigamiFS(built.tree, trace, policy, config)
    except CheckpointError as exc:
        print(f"repro simulate: cannot resume: {exc}", file=sys.stderr)
        return 1
    if args.profile:
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        r = fs.run()
        profiler.disable()
    else:
        profiler = None
        r = fs.run()
    imb = r.imbalance()
    slo_breached = False
    print(f"strategy            : {r.strategy} on Trace-{args.kind.upper()} ({r.n_mds} MDS)")
    print(f"ops completed       : {r.ops_completed:,} over {r.duration_ms / 1000:.2f} virtual s")
    print(f"throughput          : {r.throughput_ops_per_sec / 1000:.1f} kops/s "
          f"(steady-state {r.steady_state_throughput() / 1000:.1f})")
    print(f"engine throughput   : {r.engine_events_per_virtual_sec / 1000:.1f} "
          f"kevents/virtual s ({r.engine_events_per_wall_sec / 1000:.0f} kevents/wall s, "
          f"{r.engine_events:,} events in {r.wall_s:.2f} s)")
    print(f"latency mean/p99    : {r.mean_latency_ms * 1000:.0f} / {r.p99_latency_ms * 1000:.0f} us")
    print(f"RPCs per request    : {r.rpcs_per_request:.3f}")
    print(f"migrations          : {r.migrations} ({r.inodes_migrated:,} inodes)")
    print(f"imbalance QPS/Busy  : {imb.qps:.2f} / {imb.busytime:.2f}")
    print(f"cache hit rate      : {r.cache_hit_rate:.1%}")
    if r.faults is not None:
        fl = r.faults
        print(f"faults              : {int(fl['crashes'])} crashes / "
              f"{int(fl['restarts'])} restarts, {int(fl['retries'])} retries, "
              f"{int(fl['failovers'])} failovers")
        print(f"fault op outcomes   : {int(fl['ops_recovered'])} recovered, "
              f"{int(fl['ops_failed'])} failed typed, {r.vanished_ops} vanished "
              f"({fl['backoff_wait_ms']:.1f} ms spent backing off)")
    if r.elastic is not None:
        el = r.elastic
        print(f"elastic pool        : {int(el['pool_initial'])} -> "
              f"{int(el['pool_final'])} MDSs (peak {int(el['pool_peak'])}, "
              f"min {int(el['pool_min'])}), {int(el['scale_outs'])} scale-outs, "
              f"{int(el['drains_completed'])}/{int(el['drains_started'])} drains")
        print(f"elastic cost        : {el['mds_seconds']:.3f} MDS-seconds provisioned")
    if r.kvstore is not None:
        kv = r.kvstore
        print(f"kvstore gets/puts   : {int(kv['gets']):,} / {int(kv['puts']):,} "
              f"({int(kv['compactions'])} compactions, {int(kv['run_count'])} runs)")
        print(f"kvstore read/write amplification : "
              f"{kv['read_amplification']:.2f} / {kv['write_amplification']:.2f}")
        if args.data_dir is not None:
            print(f"durability          : {int(kv['wal_appends']):,} WAL appends "
                  f"({int(kv['wal_bytes']):,} bytes), {int(kv['fsyncs']):,} fsyncs, "
                  f"{int(kv['recoveries'])} recoveries "
                  f"({kv.get('recovery_ms', 0.0):.2f} ms modeled)")
    if args.checkpoint_out:
        try:
            Checkpointer().capture(fs).save(args.checkpoint_out)
        except CheckpointError as exc:
            print(f"repro simulate: cannot checkpoint: {exc}", file=sys.stderr)
            return 1
        print(f"[checkpoint written to {args.checkpoint_out}]")
    if obs is not None:
        obs.close()
        if obs.audit is not None and obs.audit.entries:
            s = obs.audit.summary()
            print(f"balancer audit      : {s['migrations']} migrations "
                  f"({s['resolved']} resolved), predicted {s['mean_predicted_ms']:.2f} ms "
                  f"vs realized {s['mean_realized_ms']:.2f} ms, "
                  f"sign agreement {s['sign_agreement']:.0%}")
        if args.trace_out:
            sampled = f" (1-in-{args.trace_sample} sampled)" if args.trace_sample > 1 else ""
            print(f"[trace written to {args.trace_out}{sampled}]")
        if args.metrics_out:
            with open(args.metrics_out, "w") as f:
                json.dump(obs.metrics_snapshot(), f, indent=2)
                f.write("\n")
            print(f"[metrics written to {args.metrics_out}]")
        if args.prom_out:
            from repro.obs.export import prometheus_text

            with open(args.prom_out, "w") as f:
                f.write(prometheus_text(obs.registry.snapshot()))
            print(f"[prometheus snapshot written to {args.prom_out}]")
        if args.audit_out and obs.audit is not None:
            obs.audit.write(args.audit_out)
            print(f"[audit written to {args.audit_out}]")
        if obs.timeline.enabled:
            tl = obs.timeline
            rows = tl.to_rows()
            s = tl.summary()
            print(f"timeline            : {int(s['windows'])} windows x "
                  f"{s['window_ms']:g} ms, peak {s.get('peak_ops_per_sec', 0.0) / 1000:.1f} "
                  f"kops/s, worst p99 {s.get('worst_p99_ms', 0.0):.2f} ms, "
                  f"mean imbalance {s.get('mean_imbalance', 0.0):.3f}")
            if args.timeline_out:
                from repro.obs.export import write_timeline_jsonl

                write_timeline_jsonl(args.timeline_out, tl.meta(), rows)
                print(f"[timeline written to {args.timeline_out}]")
            if slo_spec is not None:
                from repro.obs.slo import SloError, evaluate_slo

                try:
                    report = evaluate_slo(rows, slo_spec, faults=faults)
                except SloError as exc:
                    print(f"repro simulate: {exc}", file=sys.stderr)
                    return 2
                print()
                print(report.render())
                slo_breached = not report.ok
    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump(r.to_dict(), f, indent=2)
            f.write("\n")
        print(f"[json written to {args.json_out}]")
    if profiler is not None:
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats("tottime").print_stats(25)
        print()
        print("hot-path profile (sorted by total own time, top 25):")
        print(buf.getvalue())
    return 1 if slo_breached else 0


def _cmd_report(args) -> int:
    from repro.obs.report import load_spans, render_trace_report

    try:
        spans = load_spans(args.trace)
    except (OSError, ValueError) as exc:
        print(f"repro report: {exc}", file=sys.stderr)
        return 2
    print(render_trace_report(spans, source=args.trace))
    if args.timeline_path:
        from repro.obs.export import load_timeline

        try:
            meta, rows = load_timeline(args.timeline_path)
        except (OSError, ValueError) as exc:
            print(f"repro report: {exc}", file=sys.stderr)
            return 2
        print()
        print(_render_timeline_throughput(meta, rows))
    return 0


def _render_timeline_throughput(meta, rows) -> str:
    """Throughput-over-time section for ``repro report --timeline``.

    Steady state excludes the first 30% of windows (warm-up / initial
    rebalancing) and the trailing partial window — the same convention as
    ``SimResult.steady_state_throughput``.
    """
    if not rows:
        return "timeline: (no windows)"
    lines = [f"timeline: {len(rows)} windows x {meta.get('window_ms', 0):g} ms "
             f"({meta.get('n_mds', '?')} MDS)"]
    full = rows[:-1] if len(rows) > 2 else rows
    skip = min(int(len(full) * 0.3), max(len(full) - 1, 0))
    tail = full[skip:] or rows
    span_s = sum(r["end_ms"] - r["start_ms"] for r in tail) / 1000.0
    ops = sum(r["ops"] for r in tail)
    events = sum(r["engine_events"] for r in tail)
    if span_s > 0:
        lines.append(
            f"  steady-state (last {len(tail)}/{len(rows)} windows): "
            f"{ops / span_s / 1000:.1f} kops/s, "
            f"{events / span_s / 1000:.1f} kevents/virtual s"
        )
    per_sec = [r["ops_per_sec"] for r in rows]
    lines.append(
        f"  per-window ops/s: min {min(per_sec):.0f}  "
        f"mean {sum(per_sec) / len(per_sec):.0f}  max {max(per_sec):.0f}"
    )
    peak = max(per_sec) or 1.0
    bar_w = 56
    step = max(len(rows) // bar_w, 1)
    cells = []
    for i in range(0, len(rows), step):
        chunk = per_sec[i : i + step]
        v = max(chunk)
        cells.append(" .:-=+*#%@"[min(int(v / peak * 9 + 0.999), 9)] if v > 0 else " ")
    lines.append(f"  throughput  |{''.join(cells)}|  (peak {peak:.0f} ops/s)")
    return "\n".join(lines)


def _cmd_obs(args) -> int:
    from repro.obs.export import load_timeline

    try:
        meta, rows = load_timeline(args.timeline)
    except (OSError, ValueError) as exc:
        print(f"repro obs: {exc}", file=sys.stderr)
        return 2
    if args.obs_command == "timeline":
        from repro.obs.export import render_timeline_table

        print(f"timeline: {args.timeline} — {len(rows)} windows x "
              f"{meta.get('window_ms', 0):g} ms, {meta.get('n_mds', '?')} MDS")
        print(render_timeline_table(rows, limit=args.limit))
        return 0
    if args.obs_command == "heatmap":
        from repro.obs.export import render_heatmap

        print(render_heatmap(rows, metric=args.metric, width=args.width))
        return 0
    if args.obs_command == "slo":
        from repro.obs.slo import SloError, SloSpec, evaluate_slo

        faults = None
        if args.faults_path:
            from repro.fs.faults import FaultSchedule

            try:
                faults = FaultSchedule.load(args.faults_path)
            except (OSError, ValueError, KeyError) as exc:
                print(f"repro obs slo: bad fault schedule: {exc}", file=sys.stderr)
                return 2
        try:
            spec = SloSpec.load(args.spec)
            report = evaluate_slo(rows, spec, faults=faults)
        except (OSError, SloError) as exc:
            print(f"repro obs slo: {exc}", file=sys.stderr)
            return 2
        print(report.render())
        if args.json_out:
            with open(args.json_out, "w") as f:
                json.dump(report.to_dict(), f, indent=2)
                f.write("\n")
            print(f"[json written to {args.json_out}]")
        return 0 if report.ok else 1
    raise AssertionError("unreachable")


def _cmd_recover(args) -> int:
    import os
    from types import SimpleNamespace

    from repro.durability import DurabilityError, inspect_data_dir
    from repro.sim import DurabilityCostModel

    root = args.data_dir
    if not os.path.isdir(root):
        print(f"repro recover: {root} is not a directory", file=sys.stderr)
        return 1
    # a `simulate --data-dir` root holds one store per MDS in mds-<i>/
    stores = sorted(
        os.path.join(root, d)
        for d in os.listdir(root)
        if d.startswith("mds-") and os.path.isdir(os.path.join(root, d))
    )
    if not stores:
        stores = [root]
    model = DurabilityCostModel()
    reports = []
    total_ms = 0.0
    for store_dir in stores:
        try:
            info = inspect_data_dir(store_dir)
        except DurabilityError as exc:
            print(f"repro recover: {store_dir}: {exc}", file=sys.stderr)
            return 1
        cost = model.recovery_cost_ms(SimpleNamespace(
            wal_bytes_scanned=info["wal_bytes"],
            sst_bytes_loaded=info["sst_bytes"],
            manifest_edits=info["manifest_edits"],
        ))
        info["modeled_recovery_ms"] = cost
        total_ms += cost
        reports.append(info)
        name = os.path.basename(store_dir.rstrip(os.sep))
        torn = " (torn tail: unacked bytes will be dropped)" if info["torn_tail"] else ""
        print(f"{name}:")
        print(f"  manifest        : {int(info['manifest_edits'])} edits, "
              f"WAL checkpoint LSN {int(info['wal_checkpoint_lsn'])}")
        print(f"  live tables     : {int(info['live_tables'])} "
              f"({int(info['sst_bytes']):,} bytes)")
        print(f"  WAL tail        : {int(info['wal_records_pending'])} records to replay "
              f"in {int(info['wal_segments'])} segment(s), "
              f"{int(info['wal_bytes']):,} bytes{torn}")
        print(f"  modeled recovery: {cost:.3f} virtual ms")
    print(f"\ntotal modeled recovery for {len(stores)} store(s): {total_ms:.3f} virtual ms")
    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump(reports, f, indent=2)
            f.write("\n")
        print(f"[json written to {args.json_out}]")
    return 0


def _cmd_plan(args) -> int:
    from repro.cluster import PartitionMap
    from repro.costmodel import CostParams, evaluate_trace
    from repro.core import meta_opt
    from repro.harness.experiments import build_workload

    params = CostParams(cache_depth=2)
    built, trace = build_workload(args.kind, max(args.ops * 2, args.ops), args.seed)
    tree = built.tree
    window = trace[: args.ops]
    pmap = PartitionMap(tree, n_mds=args.mds)
    before = evaluate_trace(window, tree, pmap, params)
    delta = before.jct * 0.2
    plan = meta_opt(window, tree, pmap, params, delta=delta, max_migrations=args.moves)
    print(f"window: {len(window):,} ops; JCT {before.jct:.1f} ms -> {plan.jct_after:.1f} ms "
          f"({plan.improvement:.1%} better), Δ = {delta:.1f} ms")
    for i, d in enumerate(plan.decisions):
        print(f"  {i + 1:2d}. {tree.path_of(d.subtree_root):44s} "
              f"MDS{d.src} -> MDS{d.dst}  benefit {d.predicted_benefit:9.2f} ms")
    return 0


def _cmd_bench_run(args) -> int:
    from repro.bench.runner import BenchError, run_scenario
    from repro.bench.report import render_artifact
    from repro.bench.scenario import get_scenario, scenario_names
    from repro.bench.store import write_artifact

    names = args.scenario or list(scenario_names())
    seeds = None
    if args.seeds:
        try:
            seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
        except ValueError:
            print(f"repro bench run: bad --seeds {args.seeds!r}", file=sys.stderr)
            return 2
    try:
        scenarios = [get_scenario(n) for n in names]
    except KeyError as exc:
        print(f"repro bench run: {exc.args[0]}", file=sys.stderr)
        return 2
    for scn in scenarios:
        try:
            artifact = run_scenario(scn, scale=args.scale, workers=args.workers, seeds=seeds)
        except BenchError as exc:
            print(f"repro bench run: {exc}", file=sys.stderr)
            return 1
        path = write_artifact(artifact, args.out_dir)
        print(render_artifact(artifact))
        print(f"[artifact written to {path}]\n")
    return 0


def _cmd_bench_list() -> int:
    from repro.bench.scenario import iter_scenarios
    from repro.harness.report import format_table

    rows = [
        [
            scn.name,
            scn.kind,
            scn.scale,
            len(scn.variants),
            ",".join(str(s) for s in scn.seeds),
            "yes" if scn.faults is not None else "-",
            scn.description,
        ]
        for scn in iter_scenarios()
    ]
    print(format_table(
        ["scenario", "workload", "scale", "variants", "seeds", "faults", "description"],
        rows,
        "registered bench scenarios",
    ))
    return 0


def _cmd_bench_compare(args) -> int:
    from repro.bench.compare import THRESHOLD_PROFILES, compare_artifacts
    from repro.bench.store import ArtifactError, load_artifact

    thresholds = dict(THRESHOLD_PROFILES[args.profile])
    for override in args.threshold or ():
        metric, sep, frac = override.partition("=")
        try:
            if not sep:
                raise ValueError("expected METRIC=FRAC")
            thresholds[metric] = float(frac)
        except ValueError as exc:
            print(f"repro bench compare: bad --threshold {override!r}: {exc}", file=sys.stderr)
            return 2
    try:
        baseline = load_artifact(args.baseline)
        candidate = load_artifact(args.candidate)
        result = compare_artifacts(baseline, candidate, thresholds)
    except ArtifactError as exc:
        print(f"repro bench compare: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    return 0 if result.ok else 1


def _cmd_bench_report(args) -> int:
    from repro.bench.report import render_artifact
    from repro.bench.store import ArtifactError, load_artifact

    try:
        artifact = load_artifact(args.artifact)
    except ArtifactError as exc:
        print(f"repro bench report: {exc}", file=sys.stderr)
        return 2
    print(render_artifact(artifact))
    return 0


def _cmd_bench(args) -> int:
    if args.bench_command == "run":
        return _cmd_bench_run(args)
    if args.bench_command == "list":
        return _cmd_bench_list()
    if args.bench_command == "compare":
        return _cmd_bench_compare(args)
    if args.bench_command == "report":
        return _cmd_bench_report(args)
    raise AssertionError("unreachable")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "experiments":
        return _cmd_experiments()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "workload":
        return _cmd_workload(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "recover":
        return _cmd_recover(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "bench":
        return _cmd_bench(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())
