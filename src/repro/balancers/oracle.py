"""Meta-OPT oracle policy: Algorithm 1 with the future actually known.

This is the upper bound the ML models are trained to approximate — it reads
``ctx.oracle_window`` (the next window of requests) and runs the full greedy
search.  Used for label generation (§4.3) and as a ceiling in ablations; a
real deployment cannot run it.
"""

from __future__ import annotations

from typing import List

from repro.balancers.base import BalancePolicy, EpochContext, LunuleTrigger
from repro.cluster.migration import MigrationDecision
from repro.core.metaopt import meta_opt

__all__ = ["MetaOptOraclePolicy"]


class MetaOptOraclePolicy(BalancePolicy):
    """Runs Meta-OPT on the (oracle-provided) next request window."""

    name = "Meta-OPT"

    def __init__(
        self,
        delta: float,
        trigger: LunuleTrigger | None = None,
        stop_threshold: float = 0.0,
        max_migrations_per_epoch: int = 16,
    ):
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta
        self.trigger = trigger or LunuleTrigger()
        self.stop_threshold = stop_threshold
        self.max_migrations = max_migrations_per_epoch

    def rebalance(self, ctx: EpochContext) -> List[MigrationDecision]:
        if ctx.oracle_window is None or len(ctx.oracle_window) == 0:
            return []
        if not self.trigger.should_rebalance(ctx.mds_load):
            return []
        result = meta_opt(
            ctx.oracle_window,
            ctx.tree,
            ctx.pmap,
            ctx.params,
            delta=self.delta,
            stop_threshold=self.stop_threshold,
            max_migrations=self.max_migrations,
        )
        if result.decisions:
            # the "candidate set" of a search is what it chose to evaluate;
            # log the chosen moves with their exact-JCT predicted benefits
            ctx.note_candidates(
                [d.subtree_root for d in result.decisions],
                [d.predicted_benefit for d in result.decisions],
            )
        return result.decisions
