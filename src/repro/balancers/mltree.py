"""ML-tree: the popularity-predicting ML baseline (LoADM-style, [42]).

Uses the same model family as Origami (LightGBM-style GBDT over the Table-1
features) but predicts next-epoch subtree *popularity* (load) rather than
migration benefit, then balances on those predictions with the same
export-selection mechanics as Lunule.  This is the strategy the paper shows
"tends to overlook the negative impact of migration operations" and makes
"aggressive migration decisions": it happily exports large near-root
subtrees because predicted load is the only criterion.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

import numpy as np

from repro.balancers.base import BalancePolicy, EpochContext, LunuleTrigger, subtree_loads
from repro.balancers.lunule import dir_op_counts, plan_exports
from repro.cluster.migration import MigrationDecision
from repro.ml.dataset import FeatureExtractor

__all__ = ["MLTreePolicy"]


class _Regressor(Protocol):
    def predict(self, X: np.ndarray) -> np.ndarray: ...


class MLTreePolicy(BalancePolicy):
    """Predicted-popularity balancer."""

    name = "ML-tree"

    def __init__(
        self,
        model: Optional[_Regressor] = None,
        trigger: LunuleTrigger | None = None,
        max_moves_per_epoch: int = 8,
        aggressiveness: float = 1.2,
        cooldown_epochs: int = 3,
    ):
        """``model`` predicts next-epoch per-directory popularity from the
        Table-1 features; ``None`` falls back to last-epoch observed load
        (persistence prediction — the natural untrained baseline).

        LoADM migrates at *directory* granularity: candidates are ranked by
        the directory's own load, not the subtree rollup, so the policy
        chases deep hot directories and pays the boundary-crossing overhead
        it never models.  ``aggressiveness`` scales the transfer budget above
        the plain surplus — the over-migration the paper observes in
        popularity-based strategies."""
        self.model = model
        self.trigger = trigger or LunuleTrigger()
        self.max_moves = max_moves_per_epoch
        self.aggressiveness = aggressiveness
        self.cooldown_epochs = cooldown_epochs
        self._last_moved: dict = {}

    def _predicted_dir_loads(self, ctx: EpochContext) -> np.ndarray:
        observed = dir_op_counts(ctx)
        if self.model is None:
            return observed
        uniform = ctx.pmap.uniform_subtree_mask()
        uniform[0] = False
        cands = np.nonzero(uniform)[0]
        if cands.size == 0:
            return observed
        X = FeatureExtractor(ctx.tree).extract(cands, ctx.snapshot)
        pred = np.maximum(self.model.predict(X), 0.0)
        out = np.zeros_like(observed)
        out[cands] = pred
        return out

    def rebalance(self, ctx: EpochContext) -> List[MigrationDecision]:
        if not self.trigger.should_rebalance(ctx.mds_load):
            return []
        loads = np.asarray(ctx.mds_load, dtype=np.float64)
        src = int(np.argmax(loads))
        pred_loads = self._predicted_dir_loads(ctx)
        # pin recently-moved subtrees for a few epochs (anti-ping-pong)
        for s_root, moved_at in list(self._last_moved.items()):
            if ctx.epoch - moved_at < self.cooldown_epochs:
                if s_root < pred_loads.shape[0]:
                    pred_loads[s_root] = 0.0
            else:
                del self._last_moved[s_root]
        moves = plan_exports(
            ctx, pred_loads, src, self.max_moves, aggressiveness=self.aggressiveness
        )
        for s_root, _dst in moves:
            self._last_moved[s_root] = ctx.epoch
        return [
            MigrationDecision(s, src, dst, predicted_benefit=float(pred_loads[s]))
            for s, dst in moves
        ]
