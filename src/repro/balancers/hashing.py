"""Hash-based partitioning baselines: C-Hash and F-Hash (§5.1).

Both pre-partition the namespace before the run and never migrate.

* **C-Hash** (HopsFS-style): only directories at depth ≤ ``levels`` are
  hashed across MDSs; everything deeper inherits its depth-``levels``
  ancestor's placement, preserving locality inside each coarse shard.
* **F-Hash** (Tectonic/InfiniFS-style): every directory is hashed
  independently by its full path, giving the most even inode spread and the
  least locality (every path step can hop MDSs).

Hashing uses a seeded stable 64-bit hash (never Python's randomised
``hash``) so partitions are reproducible.
"""

from __future__ import annotations

import hashlib
from typing import List

import numpy as np

from repro.balancers.base import BalancePolicy, EpochContext
from repro.cluster.migration import MigrationDecision
from repro.cluster.partition import PartitionMap
from repro.namespace.tree import ROOT_INO, NamespaceTree
from repro.sim.rng import RngStream

__all__ = ["stable_hash", "CoarseHashPolicy", "FineHashPolicy"]


def stable_hash(text: str, seed: int = 0) -> int:
    """Deterministic 64-bit hash of a string (blake2b, keyed by seed)."""
    h = hashlib.blake2b(
        text.encode("utf-8"), digest_size=8, key=seed.to_bytes(8, "little")
    )
    return int.from_bytes(h.digest(), "little")


class CoarseHashPolicy(BalancePolicy):
    """C-Hash: hash the top ``levels`` of the namespace; deeper dirs inherit."""

    name = "C-Hash"

    def __init__(self, levels: int = 3, seed: int = 0):
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self.levels = levels
        self.seed = seed

    def _placement(self, pmap: PartitionMap, parent: int, name: str) -> int:
        tree = pmap.tree
        depth = tree.depth(parent) + 1
        if depth <= self.levels:
            return stable_hash(f"{tree.path_of(parent)}/{name}", self.seed) % pmap.n_mds
        return pmap.owner(parent)

    def setup(self, tree: NamespaceTree, n_mds: int, rng: RngStream) -> PartitionMap:
        pmap = PartitionMap(tree, n_mds=n_mds, initial_owner=0, placement=self._placement)
        owners = np.zeros(tree.capacity, dtype=np.int64)
        # assign top levels by hash, then propagate down in depth order
        for d in sorted(tree.iter_dirs(), key=tree.depth):
            if d == ROOT_INO:
                owners[d] = 0
            elif tree.depth(d) <= self.levels:
                owners[d] = stable_hash(tree.path_of(d), self.seed) % n_mds
            else:
                owners[d] = owners[tree.parent(d)]
        pmap.assign_bulk(owners)
        return pmap

    def rebalance(self, ctx: EpochContext) -> List[MigrationDecision]:
        return []


class FineHashPolicy(BalancePolicy):
    """F-Hash: hash every directory independently by its full path."""

    name = "F-Hash"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def _placement(self, pmap: PartitionMap, parent: int, name: str) -> int:
        return stable_hash(f"{pmap.tree.path_of(parent)}/{name}", self.seed) % pmap.n_mds

    def _file_placement(self, pmap: PartitionMap, parent: int, name: str) -> int:
        # file inodes shard independently of their parent's dentry shard
        return stable_hash(f"f:{parent}/{name}", self.seed) % pmap.n_mds

    def setup(self, tree: NamespaceTree, n_mds: int, rng: RngStream) -> PartitionMap:
        pmap = PartitionMap(
            tree,
            n_mds=n_mds,
            initial_owner=0,
            placement=self._placement,
            file_placement=self._file_placement,
        )
        owners = np.zeros(tree.capacity, dtype=np.int64)
        for d in tree.iter_dirs():
            owners[d] = 0 if d == ROOT_INO else stable_hash(tree.path_of(d), self.seed) % n_mds
        pmap.assign_bulk(owners)
        return pmap

    def rebalance(self, ctx: EpochContext) -> List[MigrationDecision]:
        return []
