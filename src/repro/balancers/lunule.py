"""Lunule-style heuristic subtree balancer.

Reproduces the load-monitoring + trigger + bin-packing-style selection the
paper attributes to Lunule [39] and reuses as the trigger for both ML-tree
and Origami: when the imbalance factor exceeds the trigger threshold, the
most-loaded MDS exports subtrees until its estimated surplus is shed, each
export going to the *currently* least-loaded MDS (the load estimate is
updated move by move, so one epoch spreads exports over several receivers
instead of dog-piling one).  Selection is purely popularity-driven — the
classic strategy whose locality-blindness motivates the paper.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.balancers.base import (
    BalancePolicy,
    EpochContext,
    LunuleTrigger,
    plan_evacuations,
    subtree_loads,
)
from repro.cluster.migration import MigrationDecision

__all__ = ["LunulePolicy", "plan_exports", "dir_op_counts"]


def dir_op_counts(ctx: EpochContext) -> np.ndarray:
    """Per-directory (non-rollup) op counts for the ended epoch, ino-indexed."""
    cap = ctx.tree.capacity
    per_dir = np.zeros(cap)
    for arr in (ctx.snapshot.reads, ctx.snapshot.writes):
        n = min(arr.shape[0], cap)
        per_dir[:n] += arr[:n]
    return per_dir


def plan_exports(
    ctx: EpochContext,
    load_by_subtree: np.ndarray,
    src: int,
    max_moves: int,
    aggressiveness: float = 1.0,
    min_share: float = 0.02,
) -> List[Tuple[int, int]]:
    """Plan (subtree, dst) exports that shed ``src``'s surplus busy time.

    ``load_by_subtree`` is in op counts (observed or predicted); it is
    converted to busy-ms through the source's own observed totals so the
    bookkeeping shares units with ``ctx.mds_load``.  Returns at most
    ``max_moves`` moves; nested subtrees are never double-exported.
    """
    pmap, tree = ctx.pmap, ctx.tree
    loads = np.asarray(ctx.mds_load, dtype=np.float64)
    owner = pmap.owner_array()
    per_dir = dir_op_counts(ctx)
    dirs_of_src = np.nonzero((owner == src) & tree.dir_mask()[: owner.shape[0]])[0]
    src_ops = float(per_dir[dirs_of_src].sum())
    if src_ops <= 0 or loads[src] <= 0:
        return []
    ms_per_op = float(loads[src]) / src_ops

    uniform = pmap.uniform_subtree_mask()
    uniform[0] = False
    cands = np.nonzero(uniform & (owner == src))[0]
    if cands.size == 0:
        return []
    order = cands[np.argsort(-load_by_subtree[cands])]
    idx = tree.dfs_index()
    mean = loads.mean()
    # export destinations: everyone but the source — minus MDSs that are
    # dead (fault outage) or draining/parked (elastic departure): a
    # migration must never target a server mid-departure
    others = np.delete(np.arange(loads.shape[0]), src)
    dst_ok = ctx.dst_mask()
    if dst_ok is not None:
        others = others[dst_ok[others]]
    if others.size == 0:
        return []

    est = loads.copy()
    chosen: List[Tuple[int, int]] = []
    floor = max(1e-9, (loads[src] - mean) * min_share)
    for s in order:
        s = int(s)
        surplus = (est[src] - mean) * aggressiveness
        if surplus <= floor or len(chosen) >= max_moves:
            break
        move_ms = float(load_by_subtree[s]) * ms_per_op
        if move_ms <= floor:
            break  # remaining candidates are dust (sorted descending)
        if move_ms > surplus * 1.10:
            continue  # too big for what is left to shed
        if any(
            idx.tin[c] <= idx.tin[s] < idx.tout[c]
            or idx.tin[s] <= idx.tin[c] < idx.tout[s]
            for c, _ in chosen
        ):
            continue  # overlaps (either way) with an already-exported subtree
        dst = int(others[np.argmin(est[others])])
        chosen.append((s, dst))
        est[src] -= move_ms
        est[dst] += move_ms
    return chosen


class LunulePolicy(BalancePolicy):
    """Observed-load heuristic: shed the surplus of the hottest MDS."""

    name = "Lunule"

    def __init__(
        self,
        trigger: LunuleTrigger | None = None,
        max_moves_per_epoch: int = 8,
    ):
        self.trigger = trigger or LunuleTrigger()
        self.max_moves = max_moves_per_epoch

    def rebalance(self, ctx: EpochContext) -> List[MigrationDecision]:
        # dead MDSs are evacuated unconditionally — before (and regardless
        # of) the load trigger: authority on a corpse serves nobody
        evacuations = plan_evacuations(ctx)
        if not self.trigger.should_rebalance(ctx.mds_load, ctx.pool_mask()):
            return evacuations
        loads = np.asarray(ctx.mds_load, dtype=np.float64)
        src_ok = ctx.dst_mask()  # dead/draining/parked: neither src nor dst
        if src_ok is not None:
            loads = np.where(src_ok, loads, -np.inf)
        src = int(np.argmax(loads))
        if not np.isfinite(loads[src]):
            return evacuations
        sub_loads = subtree_loads(ctx)
        moves = plan_exports(ctx, sub_loads, src, self.max_moves)
        return evacuations + [
            MigrationDecision(s, src, dst, predicted_benefit=float(sub_loads[s]))
            for s, dst in moves
        ]
