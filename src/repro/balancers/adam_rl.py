"""AdaM-style reinforcement-learning balancer (related-work baseline [14]).

AdaM (Huang et al., IEEE/ACM ToN 2023) adapts metadata balancing with deep
RL.  This is a tabular-scale homage for comparison purposes: a Q-learning
agent whose *state* is the discretised cluster condition (imbalance bucket ×
utilisation bucket), whose *actions* choose how aggressively to export
subtrees from the hottest MDS this epoch (do nothing / gentle / moderate /
aggressive), and whose *reward* is the improvement in next-epoch imbalance
minus a migration-churn penalty.

It learns online with ε-greedy exploration — no offline phase — and
converges to "export moderately when imbalanced, sit still when balanced"
on stationary workloads.  Its purpose in this repo is the ablation
comparison: popularity-RL adapts the *amount* of balancing but still cannot
price locality, which is exactly Origami's edge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.balancers.base import BalancePolicy, EpochContext, LunuleTrigger, subtree_loads
from repro.balancers.lunule import plan_exports
from repro.cluster.imbalance import imbalance_factor
from repro.cluster.migration import MigrationDecision

__all__ = ["AdamRLPolicy"]

#: export aggressiveness per action: (max moves, budget multiplier)
_ACTIONS: Tuple[Tuple[int, float], ...] = ((0, 0.0), (2, 0.6), (4, 1.0), (8, 1.5))


class AdamRLPolicy(BalancePolicy):
    """Tabular Q-learning over balancing aggressiveness."""

    name = "AdaM-RL"

    def __init__(
        self,
        learning_rate: float = 0.3,
        discount: float = 0.7,
        epsilon: float = 0.15,
        epsilon_decay: float = 0.97,
        churn_penalty: float = 0.02,
        seed: int = 0,
        imbalance_buckets: int = 5,
        util_buckets: int = 3,
    ):
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0 <= discount < 1:
            raise ValueError("discount must be in [0, 1)")
        self.learning_rate = learning_rate
        self.discount = discount
        self.epsilon = epsilon
        self.epsilon_decay = epsilon_decay
        self.churn_penalty = churn_penalty
        self.imbalance_buckets = imbalance_buckets
        self.util_buckets = util_buckets
        self._rng = np.random.default_rng(seed)
        #: Q[state][action]
        self.q: Dict[Tuple[int, int], np.ndarray] = {}
        self._pending: Optional[Tuple[Tuple[int, int], int, int]] = None
        self.updates = 0

    # ----------------------------------------------------------------- state
    def _state(self, loads: np.ndarray) -> Tuple[int, int]:
        total = float(loads.sum())
        imb = imbalance_factor(loads) if total > 0 else 0.0
        i_bucket = min(int(imb * self.imbalance_buckets), self.imbalance_buckets - 1)
        # utilisation proxy: is any server near its epoch capacity?
        util = float(loads.max()) / max(total / loads.size * loads.size, 1e-9)
        u_bucket = min(int(util * self.util_buckets), self.util_buckets - 1)
        return (i_bucket, u_bucket)

    def _q_row(self, state: Tuple[int, int]) -> np.ndarray:
        row = self.q.get(state)
        if row is None:
            row = np.zeros(len(_ACTIONS))
            self.q[state] = row
        return row

    # ---------------------------------------------------------------- update
    def _learn(self, new_state: Tuple[int, int], loads: np.ndarray) -> None:
        if self._pending is None:
            return
        state, action, moves_made = self._pending
        # reward: low imbalance is good; churn costs
        reward = -imbalance_factor(loads) - self.churn_penalty * moves_made
        row = self._q_row(state)
        best_next = float(self._q_row(new_state).max())
        row[action] += self.learning_rate * (
            reward + self.discount * best_next - row[action]
        )
        self.updates += 1
        self._pending = None

    # ------------------------------------------------------------- rebalance
    def rebalance(self, ctx: EpochContext) -> List[MigrationDecision]:
        loads = np.asarray(ctx.mds_load, dtype=np.float64)
        if loads.size <= 1 or loads.sum() <= 0:
            return []
        state = self._state(loads)
        self._learn(state, loads)

        row = self._q_row(state)
        if self._rng.random() < self.epsilon:
            action = int(self._rng.integers(0, len(_ACTIONS)))
        else:
            action = int(np.argmax(row))
        self.epsilon *= self.epsilon_decay

        max_moves, budget_mult = _ACTIONS[action]
        decisions: List[MigrationDecision] = []
        if max_moves > 0:
            src = int(np.argmax(loads))
            sub = subtree_loads(ctx)
            moves = plan_exports(ctx, sub, src, max_moves, aggressiveness=budget_mult)
            decisions = [
                MigrationDecision(s, src, dst, predicted_benefit=float(sub[s]))
                for s, dst in moves
            ]
        self._pending = (state, action, len(decisions))
        return decisions
