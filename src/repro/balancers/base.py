"""Policy interface and Lunule's rebalance trigger.

The epoch-driver (analytic pipeline or DES) calls ``rebalance`` with an
:class:`EpochContext` after every epoch; the policy returns migration
decisions for the Migrator to apply.  Hash strategies partition once in
``setup`` and never migrate.

:class:`LunuleTrigger` reproduces the load-monitoring/trigger mechanism the
paper reuses from Lunule for both ML-tree and Origami (§4.2, §5.1): an epoch
triggers rebalancing only when the cluster's imbalance factor exceeds a
threshold *and* at least one MDS is meaningfully loaded — balancing an idle
cluster is churn for nothing.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.imbalance import imbalance_factor
from repro.cluster.migration import MigrationDecision
from repro.cluster.partition import PartitionMap
from repro.costmodel.params import CostParams
from repro.namespace.stats import EpochSnapshot
from repro.namespace.tree import NamespaceTree
from repro.sim.rng import RngStream
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # type-only: avoids a package-import cycle with repro.workloads
    from repro.workloads.trace import Trace

__all__ = ["EpochContext", "BalancePolicy", "LunuleTrigger", "plan_evacuations"]


@dataclass
class EpochContext:
    """Everything a policy may consult at an epoch boundary."""

    tree: NamespaceTree
    pmap: PartitionMap
    epoch: int
    #: Data Collector dump for the epoch that just ended
    snapshot: EpochSnapshot
    #: per-MDS load observed in the ended epoch (RCT mass or busy time, ms)
    mds_load: np.ndarray
    params: CostParams
    rng: RngStream
    #: the next window of requests — ONLY the oracle may read this
    oracle_window: Optional["Trace"] = None
    #: the operations replayed during the epoch that just ended (hindsight
    #: material: online learners label it against the current partition,
    #: which is exactly the partition those ops ran under)
    completed_window: Optional["Trace"] = None
    #: the run's observability bundle; policies post their scored candidate
    #: sets to ``obs.audit`` (``note_candidates``) so the decision audit can
    #: show what was *considered*, not just what moved.  None in offline
    #: pipelines that construct contexts by hand.
    obs: Optional[object] = None
    #: per-MDS liveness at the epoch boundary (degraded-mode input from the
    #: fault injector); None means "no fault layer, everything is up"
    mds_up: Optional[np.ndarray] = None
    #: the run's :class:`~repro.fs.elastic.liveness.MDSLiveness` view, set
    #: only when an elastic pool is active.  Unlike ``mds_up`` (a snapshot
    #: taken when the context was built) this is read *live*, so a drain the
    #: pool controller starts mid-epoch is visible to evacuation planning
    #: within the same boundary.
    liveness: Optional[object] = None

    def note_candidates(self, roots, predicted) -> None:
        """Post the candidate set this epoch's policy scored to the audit
        log (no-op when auditing is off)."""
        audit = getattr(self.obs, "audit", None)
        if audit is not None:
            audit.note_candidates(self.epoch, roots, predicted)

    def live_mds(self) -> Optional[np.ndarray]:
        """Indices of up MDSs, or None when the fault layer is absent/idle."""
        if self.mds_up is None or bool(self.mds_up.all()):
            return None
        return np.nonzero(np.asarray(self.mds_up, dtype=bool))[0]

    def dst_mask(self) -> Optional[np.ndarray]:
        """Boolean mask of MDSs eligible as migration *destinations*.

        Stricter than ``mds_up``: with an elastic pool, draining and gone
        members are excluded even though a draining MDS still serves.
        None means "everyone is eligible" (the common healthy case).
        """
        if self.liveness is not None:
            mask = self.liveness.dst_mask()
            return None if bool(mask.all()) else mask
        if self.mds_up is None or bool(self.mds_up.all()):
            return None
        return np.asarray(self.mds_up, dtype=bool)

    def dst_eligible(self) -> Optional[np.ndarray]:
        """Index form of :meth:`dst_mask` (None when everyone is eligible)."""
        mask = self.dst_mask()
        return None if mask is None else np.nonzero(mask)[0]

    def pool_mask(self) -> Optional[np.ndarray]:
        """Boolean mask of pool *members* (non-gone), or None when full.

        Crashed members stay included — involuntary absence is the trigger's
        business as before; only parked/departed capacity is excluded so an
        elastic pool's idle slots don't read as imbalance.
        """
        if self.liveness is None:
            return None
        mask = self.liveness.active_mask()
        return None if bool(mask.all()) else mask


class BalancePolicy(abc.ABC):
    """A metadata balancing strategy."""

    #: short name used in reports (matches the paper's figure legends)
    name: str = "base"

    def setup(self, tree: NamespaceTree, n_mds: int, rng: RngStream) -> PartitionMap:
        """Build the initial partition; default: everything on MDS 0 with
        subtree placement (OrigamiFS's initial state, §4.2)."""
        return PartitionMap(tree, n_mds=n_mds, initial_owner=0)

    @abc.abstractmethod
    def rebalance(self, ctx: EpochContext) -> List[MigrationDecision]:
        """Migration decisions for this epoch (may be empty)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass
class LunuleTrigger:
    """Imbalance-factor trigger with a minimum-load guard."""

    #: rebalance when the imbalance factor exceeds this
    threshold: float = 0.10
    #: ...and the busiest MDS carried at least this much load (ms per epoch)
    min_load: float = 1.0

    def should_rebalance(
        self, mds_load: np.ndarray, active: Optional[np.ndarray] = None
    ) -> bool:
        """``active`` (optional boolean mask) restricts the imbalance
        computation to pool members — elastic runs pass
        ``EpochContext.pool_mask()`` so parked capacity's zero load does not
        read as imbalance.  None (the default) keeps the historical
        whole-array behaviour."""
        mds_load = np.asarray(mds_load, dtype=np.float64)
        if active is not None:
            mds_load = mds_load[np.asarray(active, dtype=bool)]
        if mds_load.size <= 1 or mds_load.max() < self.min_load:
            return False
        return imbalance_factor(mds_load) > self.threshold


def _evacuation_masks(ctx: EpochContext):
    """``(needs_evacuation per-MDS mask, destination index array)``.

    With an elastic pool the masks come from the *live* liveness view:
    evacuate what cannot keep authority (crashed, gone, or draining) onto
    what may receive it (up and not leaving).  Without one, this reduces to
    the historical fault-only behaviour — evacuate ``~mds_up`` onto
    ``mds_up``.  Returns ``(None, None)`` when nothing needs evacuating or
    nowhere can receive.
    """
    lv = ctx.liveness
    if lv is not None:
        serving = lv.serving_mask()
        evac = ~serving | lv.draining_mask()
        if not evac.any():
            return None, None
        dst = np.nonzero(lv.dst_mask())[0]
    else:
        if ctx.mds_up is None or bool(ctx.mds_up.all()):
            return None, None
        up = np.asarray(ctx.mds_up, dtype=bool)
        evac = ~up
        dst = np.nonzero(up)[0]
    if dst.size == 0:
        return None, None
    return evac, dst


def plan_evacuations(ctx: EpochContext) -> List[MigrationDecision]:
    """Evacuate subtrees owned by departed/departing MDSs onto eligible ones.

    Degraded-mode first aid, shared by every subtree policy: when
    ``ctx.mds_up`` marks MDSs down — or an elastic pool marks members
    draining or gone — their metadata authority must move or clients will
    burn their whole retry budget against a corpse.  Maximal single-owner
    subtrees rooted in evacuating territory become ordinary
    :class:`MigrationDecision`\\ s (so the Migrator charges the destination's
    ingest cost and the audit sees them); evacuating directories trapped
    inside mixed-owner subtrees — where a subtree move would steal live
    interiors — are repinned directly on the partition map, modelling
    authority recovery from the journal rather than a data transfer.

    Destinations spread across eligible MDSs by estimated load (observed
    busy-ms plus the op-load of subtrees already assigned this round);
    draining members are never destinations.
    """
    evac, live = _evacuation_masks(ctx)
    if evac is None:
        return []
    pmap, tree = ctx.pmap, ctx.tree
    owner = pmap.owner_array()
    cap = owner.shape[0]
    dead_owned = np.zeros(cap, dtype=bool)
    owned = owner >= 0
    dead_owned[owned] = evac[owner[owned]]
    dead_owned &= tree.dir_mask()[:cap]
    if not dead_owned.any():
        return []

    loads = np.asarray(ctx.mds_load, dtype=np.float64)
    est = loads.copy()
    total_ops = float(ctx.snapshot.total_ops) or 1.0
    ms_per_op = float(loads.sum()) / total_ops
    sub = subtree_loads(ctx)
    idx = tree.dfs_index()
    uniform = pmap.uniform_subtree_mask()
    covered = np.zeros(cap, dtype=bool)
    decisions: List[MigrationDecision] = []
    for d in idx.order:  # DFS order: maximal subtrees claim their interiors
        d = int(d)
        if not dead_owned[d] or covered[d] or not uniform[d]:
            continue
        dst = int(live[np.argmin(est[live])])
        decisions.append(MigrationDecision(d, int(owner[d]), dst))
        covered[idx.dirs_in_subtree(d)] = True
        est[dst] += float(sub[d]) * ms_per_op + 1e-9
    for d in np.nonzero(dead_owned & ~covered)[0]:
        dst = int(live[np.argmin(est[live])])
        pmap.assign_dir(int(d), dst)
        est[dst] += float(sub[int(d)]) * ms_per_op + 1e-9
    return decisions


def subtree_loads(ctx: EpochContext) -> np.ndarray:
    """Per-directory subtree access totals for the ended epoch (ino-indexed)."""
    tree = ctx.tree
    idx = tree.dfs_index()
    cap = tree.capacity

    def pad(a: np.ndarray) -> np.ndarray:
        out = np.zeros(cap, dtype=np.float64)
        n = min(a.shape[0], cap)
        out[:n] = a[:n]
        return out

    per_dir = pad(ctx.snapshot.reads) + pad(ctx.snapshot.writes)
    return idx.subtree_sum(per_dir)
