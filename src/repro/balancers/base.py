"""Policy interface and Lunule's rebalance trigger.

The epoch-driver (analytic pipeline or DES) calls ``rebalance`` with an
:class:`EpochContext` after every epoch; the policy returns migration
decisions for the Migrator to apply.  Hash strategies partition once in
``setup`` and never migrate.

:class:`LunuleTrigger` reproduces the load-monitoring/trigger mechanism the
paper reuses from Lunule for both ML-tree and Origami (§4.2, §5.1): an epoch
triggers rebalancing only when the cluster's imbalance factor exceeds a
threshold *and* at least one MDS is meaningfully loaded — balancing an idle
cluster is churn for nothing.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.imbalance import imbalance_factor
from repro.cluster.migration import MigrationDecision
from repro.cluster.partition import PartitionMap
from repro.costmodel.params import CostParams
from repro.namespace.stats import EpochSnapshot
from repro.namespace.tree import NamespaceTree
from repro.sim.rng import RngStream
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # type-only: avoids a package-import cycle with repro.workloads
    from repro.workloads.trace import Trace

__all__ = ["EpochContext", "BalancePolicy", "LunuleTrigger"]


@dataclass
class EpochContext:
    """Everything a policy may consult at an epoch boundary."""

    tree: NamespaceTree
    pmap: PartitionMap
    epoch: int
    #: Data Collector dump for the epoch that just ended
    snapshot: EpochSnapshot
    #: per-MDS load observed in the ended epoch (RCT mass or busy time, ms)
    mds_load: np.ndarray
    params: CostParams
    rng: RngStream
    #: the next window of requests — ONLY the oracle may read this
    oracle_window: Optional["Trace"] = None
    #: the operations replayed during the epoch that just ended (hindsight
    #: material: online learners label it against the current partition,
    #: which is exactly the partition those ops ran under)
    completed_window: Optional["Trace"] = None
    #: the run's observability bundle; policies post their scored candidate
    #: sets to ``obs.audit`` (``note_candidates``) so the decision audit can
    #: show what was *considered*, not just what moved.  None in offline
    #: pipelines that construct contexts by hand.
    obs: Optional[object] = None

    def note_candidates(self, roots, predicted) -> None:
        """Post the candidate set this epoch's policy scored to the audit
        log (no-op when auditing is off)."""
        audit = getattr(self.obs, "audit", None)
        if audit is not None:
            audit.note_candidates(self.epoch, roots, predicted)


class BalancePolicy(abc.ABC):
    """A metadata balancing strategy."""

    #: short name used in reports (matches the paper's figure legends)
    name: str = "base"

    def setup(self, tree: NamespaceTree, n_mds: int, rng: RngStream) -> PartitionMap:
        """Build the initial partition; default: everything on MDS 0 with
        subtree placement (OrigamiFS's initial state, §4.2)."""
        return PartitionMap(tree, n_mds=n_mds, initial_owner=0)

    @abc.abstractmethod
    def rebalance(self, ctx: EpochContext) -> List[MigrationDecision]:
        """Migration decisions for this epoch (may be empty)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass
class LunuleTrigger:
    """Imbalance-factor trigger with a minimum-load guard."""

    #: rebalance when the imbalance factor exceeds this
    threshold: float = 0.10
    #: ...and the busiest MDS carried at least this much load (ms per epoch)
    min_load: float = 1.0

    def should_rebalance(self, mds_load: np.ndarray) -> bool:
        mds_load = np.asarray(mds_load, dtype=np.float64)
        if mds_load.size <= 1 or mds_load.max() < self.min_load:
            return False
        return imbalance_factor(mds_load) > self.threshold


def subtree_loads(ctx: EpochContext) -> np.ndarray:
    """Per-directory subtree access totals for the ended epoch (ino-indexed)."""
    tree = ctx.tree
    idx = tree.dfs_index()
    cap = tree.capacity

    def pad(a: np.ndarray) -> np.ndarray:
        out = np.zeros(cap, dtype=np.float64)
        n = min(a.shape[0], cap)
        out[:n] = a[:n]
        return out

    per_dir = pad(ctx.snapshot.reads) + pad(ctx.snapshot.writes)
    return idx.subtree_sum(per_dir)
