"""Static baselines: single MDS and per-directory even partitioning (Fig. 2)."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.balancers.base import BalancePolicy, EpochContext
from repro.balancers.hashing import stable_hash
from repro.cluster.migration import MigrationDecision
from repro.cluster.partition import PartitionMap
from repro.namespace.tree import ROOT_INO, NamespaceTree
from repro.sim.rng import RngStream

__all__ = ["SingleMdsPolicy", "EvenPartitionPolicy"]


class SingleMdsPolicy(BalancePolicy):
    """Everything on MDS 0, never rebalanced — the 1-MDS measurement baseline.

    (Run it with ``n_mds=1``; with more MDSs it degenerates into "no
    balancing", which is occasionally useful as a worst case.)
    """

    name = "Single"

    def rebalance(self, ctx: EpochContext) -> List[MigrationDecision]:
        return []


class EvenPartitionPolicy(BalancePolicy):
    """CephFS-style per-directory even distribution (the §2.2 experiment).

    Directories are dealt round-robin across MDSs in breadth-first order —
    the "evenly distributed metadata per directory via the built-in CephFS
    function" setup that motivates the paper: inode counts are almost
    perfectly even, and locality is almost perfectly destroyed.
    """

    name = "Even"

    def _placement(self, pmap: PartitionMap, parent: int, name: str) -> int:
        return stable_hash(f"{pmap.tree.path_of(parent)}/{name}", seed=1) % pmap.n_mds

    def setup(self, tree: NamespaceTree, n_mds: int, rng: RngStream) -> PartitionMap:
        pmap = PartitionMap(tree, n_mds=n_mds, initial_owner=0, placement=self._placement)
        owners = np.zeros(tree.capacity, dtype=np.int64)
        dirs = sorted(tree.iter_dirs(), key=lambda d: (tree.depth(d), d))
        for i, d in enumerate(dirs):
            owners[d] = 0 if d == ROOT_INO else i % n_mds
        pmap.assign_bulk(owners)
        return pmap

    def rebalance(self, ctx: EpochContext) -> List[MigrationDecision]:
        return []
