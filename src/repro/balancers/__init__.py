"""Balancing strategies: the paper's baselines plus Origami and the oracle.

Every strategy implements :class:`~repro.balancers.base.BalancePolicy`:
``setup`` builds the initial partition (hash strategies pre-partition the
namespace, §5.1), and ``rebalance`` is consulted at each epoch boundary with
the collector's statistics (subtree strategies migrate, hash strategies
return nothing).

Implemented strategies (§5.1 "Baseline methods"):

* ``SingleMdsPolicy`` — the 1-MDS performance baseline;
* ``EvenPartitionPolicy`` — CephFS-style per-directory even distribution
  (the motivating experiment of Fig. 2);
* ``CoarseHashPolicy`` (C-Hash) — HopsFS-style hashing of the upper levels;
* ``FineHashPolicy`` (F-Hash) — Tectonic/InfiniFS-style hashing of all dirs;
* ``LunulePolicy`` — heuristic load-triggered subtree migration (Lunule's
  monitoring/trigger, bin-packing-style selection);
* ``MLTreePolicy`` (ML-tree) — the popularity-predicting ML baseline [42]:
  predicts next-epoch subtree load and balances on that;
* :class:`~repro.core.origami.OrigamiPolicy` — predicts migration *benefit*
  and greedily migrates the highest-benefit subtrees;
* ``MetaOptOraclePolicy`` — Meta-OPT with oracle knowledge of the next
  window (the upper bound ML is trained towards).
"""

from repro.balancers.adam_rl import AdamRLPolicy
from repro.balancers.base import BalancePolicy, EpochContext, LunuleTrigger
from repro.balancers.even import EvenPartitionPolicy, SingleMdsPolicy
from repro.balancers.hashing import CoarseHashPolicy, FineHashPolicy, stable_hash
from repro.balancers.lunule import LunulePolicy
from repro.balancers.mltree import MLTreePolicy
from repro.balancers.oracle import MetaOptOraclePolicy


def __getattr__(name: str):
    # OrigamiPolicy lives in repro.core (it is the paper's contribution) but
    # is re-exported here next to the baselines; imported lazily to avoid a
    # package-init cycle (core.origami itself uses balancers.base).
    if name == "OrigamiPolicy":
        from repro.core.origami import OrigamiPolicy

        return OrigamiPolicy
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BalancePolicy",
    "EpochContext",
    "LunuleTrigger",
    "SingleMdsPolicy",
    "EvenPartitionPolicy",
    "CoarseHashPolicy",
    "FineHashPolicy",
    "stable_hash",
    "LunulePolicy",
    "MLTreePolicy",
    "AdamRLPolicy",
    "OrigamiPolicy",
    "MetaOptOraclePolicy",
]
