"""The one execution path every benchmark run goes through.

Both the paper harness (``repro.harness.experiments`` regenerating a
figure) and the parallel perf runner (:mod:`repro.bench.runner`) execute a
(scenario, variant, seed) cell via :func:`run_variant`, so a perf artifact
and a paper figure measured from the same scenario are directly
comparable — there is no second, subtly different code path.

Imports of :mod:`repro.harness` are deferred to call time: ``repro.bench``
must stay importable from ``repro.harness.experiments`` without a cycle.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.bench.scenario import BenchScenario, BenchVariant

__all__ = ["run_variant", "extract_metrics", "HEADLINE_METRICS"]

#: the flat per-run metrics every artifact carries (beyond obs counters)
HEADLINE_METRICS = (
    "ops_completed",
    "duration_ms",
    "throughput_ops_per_sec",
    "steady_state_throughput",
    "mean_latency_ms",
    "p50_latency_ms",
    "p99_latency_ms",
    "rpcs_per_request",
    "migrations",
    "inodes_migrated",
    "cache_hit_rate",
    "failed_ops",
    "imbalance_qps",
    "imbalance_busytime",
    "engine_events",
    "engine_events_per_virtual_sec",
)


def run_variant(
    scenario: BenchScenario,
    variant: BenchVariant,
    seed: int,
    scale: Any = None,
    collect_obs: bool = False,
):
    """Run one (scenario, variant, seed) cell; returns the ``SimResult``.

    ``scale`` may be an :class:`~repro.harness.config.ExperimentScale`, a
    tier name, or None (the scenario's default tier).  Each cell is fully
    determined by its arguments — workload generation and the simulator
    derive every stream from the cell's own seed via named
    :class:`~repro.sim.rng.SeedSequenceFactory` children — which is what
    makes the parallel runner's worker count irrelevant to its output.
    """
    import contextlib
    import os
    import tempfile

    from repro.harness.config import ExperimentScale, get_scale
    from repro.harness.experiments import run_strategy

    if not isinstance(scale, ExperimentScale):
        scale = get_scale(scale or scenario.scale)
    obs = None
    if collect_obs:
        from repro.obs import Observability

        # one timeline window per rebalance epoch: coarse enough to stay
        # cheap at any scale, fine enough for the artifact's peak/imbalance
        # summaries to mean something
        obs = Observability(
            metrics=True, timeline=True, timeline_window_ms=scale.epoch_ms
        )
    n_ops = max(1, int(round(scale.n_ops * variant.ops_factor)))
    with contextlib.ExitStack() as stack:
        data_dir = None
        if variant.durability:
            # run-scoped scratch stores: the artifact records the durability
            # *metrics*, never a host path, so artifacts stay comparable
            # across machines
            scratch = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-bench-durability-")
            )
            data_dir = os.path.join(scratch, "stores")
        return run_strategy(
            variant.strategy,
            scenario.kind,
            scale,
            seed=seed,
            n_mds=variant.n_mds,
            n_clients=variant.n_clients,
            cache_depth=variant.cache_depth,
            n_ops=n_ops,
            faults=scenario.faults,
            obs=obs,
            data_dir=data_dir,
            autoscale=variant.autoscale_spec(),
        ), obs


def _flatten_obs(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Scalar view of a metrics-registry snapshot: counters/gauges sum their
    series; histograms export count and sum."""
    flat: Dict[str, float] = {}
    for name, fam in snapshot.items():
        kind = fam.get("type")
        series = fam.get("series", [])
        if kind in ("counter", "gauge"):
            flat[f"obs.{name}"] = float(sum(s["value"] for s in series))
        elif kind == "histogram":
            flat[f"obs.{name}.count"] = float(sum(s["value"]["count"] for s in series))
            flat[f"obs.{name}.sum"] = float(sum(s["value"]["sum"] for s in series))
    return flat


def extract_metrics(result, obs=None) -> Dict[str, float]:
    """Flatten a ``SimResult`` (plus optional obs registry) into the per-seed
    raw-metric dict stored in artifacts.  Keys are stable and sorted on
    write; values are plain floats."""
    imb = result.imbalance()
    metrics: Dict[str, float] = {
        "ops_completed": float(result.ops_completed),
        "duration_ms": float(result.duration_ms),
        "throughput_ops_per_sec": float(result.throughput_ops_per_sec),
        "steady_state_throughput": float(result.steady_state_throughput()),
        "mean_latency_ms": float(result.mean_latency_ms),
        "p50_latency_ms": float(result.p50_latency_ms),
        "p99_latency_ms": float(result.p99_latency_ms),
        "rpcs_per_request": float(result.rpcs_per_request),
        "migrations": float(result.migrations),
        "inodes_migrated": float(result.inodes_migrated),
        "cache_hit_rate": float(result.cache_hit_rate),
        "failed_ops": float(result.failed_ops),
        "imbalance_qps": float(imb.qps),
        "imbalance_busytime": float(imb.busytime),
        # engine-throughput signal (ROADMAP item 1): events are a pure
        # function of the simulation, so both are deterministic and safe to
        # gate strictly — the *wall*-clock rate lives in the volatile
        # ``perf`` section instead (see runner.run_scenario)
        "engine_events": float(result.engine_events),
        "engine_events_per_virtual_sec": float(result.engine_events_per_virtual_sec),
    }
    if result.timeline is not None:
        for key in (
            "windows",
            "peak_ops_per_sec",
            "worst_p99_ms",
            "mean_imbalance",
            "pool_mean",
            "pool_peak",
            "pool_min",
        ):
            if key in result.timeline:
                metrics[f"timeline.{key}"] = float(result.timeline[key])
    if result.elastic is not None:
        for key in (
            "mds_seconds",
            "scale_outs",
            "drains_started",
            "drains_completed",
            "pool_peak",
            "pool_min",
            "pool_final",
        ):
            metrics[f"elastic.{key}"] = float(result.elastic[key])
    if result.faults is not None:
        for key in ("crashes", "restarts", "retries", "failovers"):
            metrics[f"faults.{key}"] = float(result.faults[key])
    if result.kvstore is not None:
        for key in ("wal_appends", "wal_bytes", "fsyncs", "recoveries", "recovery_ms"):
            if key in result.kvstore:
                metrics[f"kvstore.{key}"] = float(result.kvstore[key])
    if obs is not None and obs.registry.enabled:
        metrics.update(_flatten_obs(obs.registry.snapshot()))
    return metrics
