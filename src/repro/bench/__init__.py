"""``repro.bench`` — benchmark orchestration, versioned perf artifacts, and
regression gating.

The subsystem has four cooperating parts:

* :mod:`~repro.bench.scenario` — a declarative **scenario registry**.  A
  :class:`BenchScenario` names a workload family, a list of balancer
  variants (strategy + cluster size + cache depth), a seed list, an
  optional :class:`~repro.fs.faults.FaultSchedule`, and a default scale
  tier.  The built-in scenarios subsume the configurations previously
  hard-coded in ``benchmarks/test_fig*.py``.
* :mod:`~repro.bench.runner` — a **parallel runner** that fans a
  scenario's seed×variant matrix across cores with
  :mod:`multiprocessing`; every run is keyed by its own deterministic
  seed (via :mod:`repro.sim.rng`), so ``workers=1`` and ``workers=N``
  produce identical artifacts.  Worker failures surface as typed
  :class:`~repro.bench.runner.WorkerCrashError`, never a hang.
* :mod:`~repro.bench.store` — a **schema-versioned result store** that
  reads/writes ``BENCH_<scenario>.json`` artifacts: per-seed raw metrics,
  aggregates (mean/p50/p95/p99 + bootstrap CIs), and an environment
  fingerprint.  All JSON it emits is stable (sorted keys, trailing
  newline) so artifact diffs stay reviewable.
* :mod:`~repro.bench.compare` — a **comparator** that diffs two artifacts
  and fails on configurable regression thresholds (e.g. mean +5%,
  p99 +10%), direction-aware for higher-is-better metrics.

Surfaced as ``python -m repro bench run|list|compare|report``.
"""

from repro.bench.scenario import (
    BenchScenario,
    BenchVariant,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)
from repro.bench.execute import extract_metrics, run_variant
from repro.bench.runner import BenchError, WorkerCrashError, run_scenario
from repro.bench.store import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactError,
    artifact_path,
    environment_fingerprint,
    load_artifact,
    stable_dumps,
    strip_volatile,
    write_artifact,
    write_json,
)
from repro.bench.compare import (
    DEFAULT_THRESHOLDS,
    SMOKE_THRESHOLDS,
    CompareResult,
    compare_artifacts,
)
from repro.bench.report import render_artifact

__all__ = [
    "BenchScenario",
    "BenchVariant",
    "get_scenario",
    "iter_scenarios",
    "register_scenario",
    "scenario_names",
    "extract_metrics",
    "run_variant",
    "BenchError",
    "WorkerCrashError",
    "run_scenario",
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactError",
    "artifact_path",
    "environment_fingerprint",
    "load_artifact",
    "stable_dumps",
    "strip_volatile",
    "write_artifact",
    "write_json",
    "DEFAULT_THRESHOLDS",
    "SMOKE_THRESHOLDS",
    "CompareResult",
    "compare_artifacts",
    "render_artifact",
]
