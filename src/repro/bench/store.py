"""Schema-versioned benchmark artifact store.

One artifact per scenario, written as ``BENCH_<scenario>.json``:

* ``schema_version`` — bumped on incompatible layout changes;
* ``runs`` — per-(variant, seed) raw metric dicts;
* ``aggregates`` — per-variant mean/p50/p95/p99 + bootstrap CIs;
* ``environment`` / ``timing`` / ``perf`` — fingerprint of the producing
  machine, wall-clock info, and per-variant wall-rate summaries (engine
  events per wall second).  These top-level keys are *volatile*:
  comparisons and determinism checks strip them (:func:`strip_volatile`).

Every byte of JSON leaving this module is **stable**: keys sorted,
2-space indent, trailing newline — so committed baselines and regenerated
artifacts diff cleanly.  This module deliberately imports nothing from the
rest of ``repro`` so any layer (including ``benchmarks/conftest.py``) can
use the writer without import cycles.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import subprocess
import sys
from datetime import datetime, timezone
from typing import Any, Dict, Optional, Union

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "VOLATILE_KEYS",
    "ArtifactError",
    "stable_dumps",
    "write_json",
    "environment_fingerprint",
    "artifact_path",
    "build_artifact",
    "write_artifact",
    "load_artifact",
    "strip_volatile",
]

#: bump when the artifact layout changes incompatibly
ARTIFACT_SCHEMA_VERSION = 1

#: top-level keys excluded from comparisons and determinism checks
VOLATILE_KEYS = ("environment", "timing", "perf")

_REQUIRED_KEYS = ("schema_version", "scenario", "scale", "seeds", "runs", "aggregates")


class ArtifactError(ValueError):
    """A benchmark artifact is missing, malformed, or from a newer schema."""


def _json_default(obj: Any) -> Any:
    tolist = getattr(obj, "tolist", None)
    if tolist is not None:
        return tolist()
    if isinstance(obj, pathlib.Path):
        return str(obj)
    return str(obj)


def stable_dumps(obj: Any) -> str:
    """Deterministic JSON: sorted keys, 2-space indent, no trailing spaces."""
    return json.dumps(obj, indent=2, sort_keys=True, default=_json_default)


def write_json(path: Union[str, pathlib.Path], obj: Any) -> pathlib.Path:
    """Write ``obj`` as stable JSON with a trailing newline."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(stable_dumps(obj) + "\n")
    return path


def _git_sha() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_fingerprint(scale_name: Optional[str] = None) -> Dict[str, Any]:
    """Where/how an artifact was produced (volatile: never compared)."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep everywhere else
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": numpy_version,
        "git_sha": _git_sha(),
        "scale": scale_name,
        "repro_scale_env": os.environ.get("REPRO_SCALE"),
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def artifact_path(out_dir: Union[str, pathlib.Path], scenario_name: str) -> pathlib.Path:
    return pathlib.Path(out_dir) / f"BENCH_{scenario_name}.json"


def build_artifact(
    scenario: Dict[str, Any],
    scale_name: str,
    seeds: Any,
    runs: Any,
    aggregates: Dict[str, Any],
    wall_s: float,
    workers: int,
    perf: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the schema-v1 artifact dict (scenario passed as its dict form)."""
    artifact = {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "scenario": scenario["name"],
        "scenario_spec": scenario,
        "scale": scale_name,
        "seeds": list(seeds),
        "runs": list(runs),
        "aggregates": aggregates,
        "environment": environment_fingerprint(scale_name),
        "timing": {"wall_s": round(float(wall_s), 3), "workers": int(workers)},
    }
    if perf is not None:
        # per-variant wall-clock summaries (engine events/wall-sec etc.) —
        # volatile like environment/timing, but still gateable by a compare
        # profile when both artifacts come from the same machine
        artifact["perf"] = perf
    return artifact


def write_artifact(artifact: Dict[str, Any], out_dir: Union[str, pathlib.Path]) -> pathlib.Path:
    return write_json(artifact_path(out_dir, artifact["scenario"]), artifact)


def load_artifact(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    """Read + validate an artifact; raises :class:`ArtifactError` on trouble."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"artifact {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ArtifactError(f"artifact {path} must be a JSON object")
    missing = [k for k in _REQUIRED_KEYS if k not in data]
    if missing:
        raise ArtifactError(f"artifact {path} is missing keys: {', '.join(missing)}")
    version = data["schema_version"]
    if not isinstance(version, int) or version < 1:
        raise ArtifactError(f"artifact {path} has a bad schema_version: {version!r}")
    if version > ARTIFACT_SCHEMA_VERSION:
        raise ArtifactError(
            f"artifact {path} has schema_version {version}, newer than the "
            f"supported {ARTIFACT_SCHEMA_VERSION}"
        )
    return data


def strip_volatile(artifact: Dict[str, Any]) -> Dict[str, Any]:
    """The comparable core of an artifact (drops environment/timing/perf)."""
    return {k: v for k, v in artifact.items() if k not in VOLATILE_KEYS}
