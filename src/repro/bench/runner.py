"""Parallel scenario runner: fan the seed×variant matrix across cores.

Each (variant, seed) cell is an independent, fully self-seeding run —
workers receive only *names* (scenario, variant, scale tier) and re-resolve
them from the registry, so the artifact a scenario produces is identical
for ``workers=1`` (inline, no pool) and ``workers=N`` (process pool):
results are keyed, sorted into canonical (variant, seed) order, and only
then aggregated in the parent.

Failure policy: a worker that raises — or dies outright — surfaces as a
typed :class:`WorkerCrashError` naming the cell, never a silent hang; the
pool is torn down eagerly and a hard deadline bounds the wait.
"""

from __future__ import annotations

import multiprocessing
import os
import time

try:
    import resource as _resource
except ImportError:  # pragma: no cover — non-Unix
    _resource = None
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.bench.execute import extract_metrics, run_variant
from repro.bench.scenario import BenchScenario, get_scenario
from repro.bench.stats import aggregate_runs
from repro.bench.store import build_artifact

__all__ = ["BenchError", "WorkerCrashError", "run_scenario", "DEADLINE_S"]


class BenchError(RuntimeError):
    """Base error for the benchmark runner."""


class WorkerCrashError(BenchError):
    """A benchmark worker raised, died, or missed the deadline."""


#: hard per-scenario deadline so a wedged worker can never hang the runner
DEADLINE_S = float(os.environ.get("REPRO_BENCH_DEADLINE_S", 1800))

#: test hook — when set, workers exit immediately without reporting back,
#: simulating a hard crash (SIGKILL/OOM) rather than a Python exception
_CRASH_ENV = "REPRO_BENCH_TEST_CRASH"


def _run_cell(job: Tuple[str, str, int, str]) -> Dict[str, Any]:
    """Execute one (scenario, variant, seed) cell; top-level for pickling."""
    scenario_name, variant_name, seed, scale_name = job
    if os.environ.get(_CRASH_ENV):
        os._exit(17)
    scenario = get_scenario(scenario_name)
    variant = scenario.variant(variant_name)
    result, obs = run_variant(scenario, variant, seed, scale=scale_name, collect_obs=True)
    return {
        "variant": variant_name,
        "seed": int(seed),
        "strategy": variant.strategy,
        "metrics": extract_metrics(result, obs),
        # wall-clock engine time and peak RSS are machine-dependent: popped
        # out of the row before artifact assembly and summarised into the
        # volatile "perf" section, so the deterministic core stays
        # byte-identical.  ru_maxrss is the *process* high-water mark: exact
        # per cell under pooled workers (one process per cell), cumulative
        # across cells when running inline with workers=1
        "wall_s": float(result.wall_s),
        "peak_rss_kb": (
            float(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)
            if _resource is not None
            else 0.0
        ),
    }


def _mp_context():
    # fork (where available) keeps dynamically-registered scenarios and the
    # parent's trained-model cache visible to workers; spawn re-imports and
    # would only see import-time registrations.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_scenario(
    scenario: BenchScenario,
    scale: Optional[str] = None,
    workers: int = 1,
    seeds: Optional[Sequence[int]] = None,
    deadline_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Run a scenario's full matrix and return the schema-v1 artifact dict.

    ``scale`` is a tier name (defaults to the scenario's own tier);
    ``seeds`` overrides the scenario's seed list; ``workers`` sets the pool
    size (1 = inline execution, the determinism reference).
    """
    from repro.harness.config import get_scale

    scale_obj = get_scale(scale or scenario.scale)
    seed_list = tuple(int(s) for s in seeds) if seeds else scenario.seeds
    if len(set(seed_list)) != len(seed_list):
        raise BenchError(f"duplicate seeds in {seed_list!r}")
    jobs = [
        (scenario.name, v.name, s, scale_obj.name)
        for v, s in scenario.runs(seed_list)
    ]
    workers = max(1, min(int(workers), len(jobs)))
    deadline = DEADLINE_S if deadline_s is None else float(deadline_s)

    t0 = time.perf_counter()
    if workers == 1:
        rows = []
        for job in jobs:
            try:
                rows.append(_run_cell(job))
            except Exception as exc:
                raise WorkerCrashError(
                    f"benchmark worker failed on {job[0]}/{job[1]} seed={job[2]}: {exc}"
                ) from exc
    else:
        rows = _run_pooled(jobs, workers, deadline)

    order = {v.name: i for i, v in enumerate(scenario.variants)}
    rows.sort(key=lambda r: (order[r["variant"]], r["seed"]))
    perf = _perf_section(rows)
    aggregates = aggregate_runs(rows, scenario.name)
    return build_artifact(
        scenario.to_dict(),
        scale_obj.name,
        seed_list,
        rows,
        aggregates,
        wall_s=time.perf_counter() - t0,
        workers=workers,
        perf=perf,
    )


def _perf_section(rows) -> Dict[str, Any]:
    """Pop per-cell wall seconds out of the rows and summarise them.

    The ``perf`` section is volatile (machine speed, worker contention):
    :func:`repro.bench.store.strip_volatile` drops it before byte-identity
    checks, while ``bench compare --profile default`` gates its
    ``engine_events_per_wall_sec`` mean direction-aware — the explicit
    simulator-speed metric from ROADMAP item 1.
    """
    from repro.bench.stats import summarize

    by_variant: Dict[str, Dict[str, list]] = {}
    for row in rows:
        wall = row.pop("wall_s", 0.0)
        rss = row.pop("peak_rss_kb", 0.0)
        per = by_variant.setdefault(
            row["variant"], {"wall_s": [], "rate": [], "rss": []}
        )
        per["wall_s"].append(wall)
        per["rss"].append(rss)
        events = row["metrics"].get("engine_events", 0.0)
        per["rate"].append(events / wall if wall > 0 else 0.0)
    return {
        variant: {
            "wall_s": summarize(per["wall_s"], stream_name="bench-perf"),
            "engine_events_per_wall_sec": summarize(
                per["rate"], stream_name="bench-perf"
            ),
            # memory regressions from the array-backed namespace migration
            # show up here in `bench report` (volatile, like wall_s)
            "peak_rss_kb": summarize(per["rss"], stream_name="bench-perf"),
        }
        for variant, per in sorted(by_variant.items())
    }


def _run_pooled(jobs, workers: int, deadline: float):
    rows = []
    with ProcessPoolExecutor(max_workers=workers, mp_context=_mp_context()) as pool:
        futures = {pool.submit(_run_cell, job): job for job in jobs}
        pending = set(futures)
        end = time.monotonic() + deadline
        while pending:
            done, pending = wait(
                pending, timeout=max(0.0, end - time.monotonic()),
                return_when=FIRST_EXCEPTION,
            )
            if not done:
                for f in pending:
                    f.cancel()
                raise WorkerCrashError(
                    f"benchmark runner hit the {deadline:.0f}s deadline with "
                    f"{len(pending)} cells still pending"
                )
            for future in done:
                job = futures[future]
                cell = f"{job[0]}/{job[1]} seed={job[2]}"
                try:
                    rows.append(future.result())
                except BrokenProcessPool as exc:
                    raise WorkerCrashError(
                        f"benchmark worker died while running {cell}"
                    ) from exc
                except BenchError:
                    raise
                except Exception as exc:
                    raise WorkerCrashError(
                        f"benchmark worker failed on {cell}: {exc}"
                    ) from exc
    return rows
