"""Declarative benchmark scenarios and the process-wide registry.

A :class:`BenchScenario` is pure data: it names *what* to run (workload
family, balancer variants, seeds, optional fault schedule, default scale
tier) and never touches the simulator itself — execution lives in
:mod:`repro.bench.execute` so the paper harness and the perf runner share
one path.

The built-in scenarios registered at import time subsume the
configurations that ``benchmarks/test_fig*.py`` used to hard-code;
``repro.harness.experiments`` iterates the same variant lists when it
regenerates the paper figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from repro.fs.elastic import AutoscaleSpec
from repro.fs.faults import Crash, FaultSchedule, Slowdown

__all__ = [
    "BenchVariant",
    "BenchScenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
    "VALID_KINDS",
]

#: workload families the harness knows how to build
VALID_KINDS = ("rw", "ro", "wi", "mdtest", "diurnal", "flash", "onboard")


@dataclass(frozen=True)
class BenchVariant:
    """One cell of a scenario's variant axis: a balancer configuration."""

    name: str
    #: strategy name as accepted by ``harness.experiments.make_policy``
    strategy: str
    #: cluster size; None uses the strategy's default (1 for Single, else 5)
    n_mds: Optional[int] = None
    #: client threads; None uses the scale profile's
    n_clients: Optional[int] = None
    #: near-root cache depth
    cache_depth: int = 2
    #: trace length as a fraction of the scale profile's ``n_ops``
    ops_factor: float = 1.0
    #: back every MDS with a durable store (WAL + SSTables + MANIFEST) in a
    #: run-scoped temporary directory; crashes then pay derived recovery
    durability: bool = False
    #: elastic-pool policy as a canonical :meth:`AutoscaleSpec.to_json`
    #: string (a string keeps the frozen dataclass hashable); None runs the
    #: variant statically provisioned, exactly as before the field existed
    autoscale: Optional[str] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("variant needs a name")
        if self.ops_factor <= 0:
            raise ValueError("ops_factor must be positive")
        if self.cache_depth < 0:
            raise ValueError("cache_depth must be non-negative")
        if self.autoscale is not None:
            AutoscaleSpec.from_json(self.autoscale)  # fail at definition time

    def autoscale_spec(self) -> Optional[AutoscaleSpec]:
        return None if self.autoscale is None else AutoscaleSpec.from_json(self.autoscale)

    def to_dict(self) -> Dict[str, Any]:
        d = {
            "name": self.name,
            "strategy": self.strategy,
            "n_mds": self.n_mds,
            "n_clients": self.n_clients,
            "cache_depth": self.cache_depth,
            "ops_factor": self.ops_factor,
            "durability": self.durability,
        }
        # key present only on elastic variants: pre-existing scenario
        # artifacts keep their byte-identical config blocks
        if self.autoscale is not None:
            d["autoscale"] = self.autoscale_spec().to_dict()
        return d


@dataclass(frozen=True)
class BenchScenario:
    """A named benchmark: workload family × variants × seeds (+ faults)."""

    name: str
    description: str
    #: workload family (see :data:`VALID_KINDS`)
    kind: str
    variants: Tuple[BenchVariant, ...]
    #: root seeds; each (variant, seed) cell is one independent run
    seeds: Tuple[int, ...] = (42,)
    #: default scale tier (overridable at run time)
    scale: str = "smoke"
    #: optional fault schedule injected into every run of the scenario
    faults: Optional[FaultSchedule] = None
    tags: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.kind not in VALID_KINDS:
            raise ValueError(f"unknown workload kind {self.kind!r}; choose from {VALID_KINDS}")
        if not self.variants:
            raise ValueError(f"scenario {self.name!r} needs at least one variant")
        names = [v.name for v in self.variants]
        if len(set(names)) != len(names):
            raise ValueError(f"scenario {self.name!r} has duplicate variant names")
        if not self.seeds:
            raise ValueError(f"scenario {self.name!r} needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(f"scenario {self.name!r} has duplicate seeds")

    # ------------------------------------------------------------- access
    def variant(self, name: str) -> BenchVariant:
        for v in self.variants:
            if v.name == name:
                return v
        raise KeyError(f"scenario {self.name!r} has no variant {name!r}")

    def runs(self, seeds: Optional[Sequence[int]] = None) -> Iterator[Tuple[BenchVariant, int]]:
        """The seed×variant matrix, in deterministic (variant, seed) order."""
        for v in self.variants:
            for s in seeds if seeds is not None else self.seeds:
                yield v, int(s)

    @property
    def n_runs(self) -> int:
        return len(self.variants) * len(self.seeds)

    def with_seeds(self, seeds: Sequence[int]) -> "BenchScenario":
        return replace(self, seeds=tuple(int(s) for s in seeds))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "kind": self.kind,
            "variants": [v.to_dict() for v in self.variants],
            "seeds": list(self.seeds),
            "scale": self.scale,
            "faults": self.faults.to_dict() if self.faults is not None else None,
            "tags": list(self.tags),
        }


# =====================================================================
# Registry
# =====================================================================

_REGISTRY: Dict[str, BenchScenario] = {}


def register_scenario(scenario: BenchScenario, replace: bool = False) -> BenchScenario:
    """Add a scenario to the registry (``replace=True`` to overwrite)."""
    if not replace and scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> BenchScenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {', '.join(scenario_names())}"
        ) from None


def scenario_names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def iter_scenarios() -> Iterator[BenchScenario]:
    for name in scenario_names():
        yield _REGISTRY[name]


# =====================================================================
# Built-in scenarios (subsume the benchmarks/test_fig*.py configs)
# =====================================================================

#: figure-legend strategy order shared with the paper harness
FIGURE_STRATEGIES = ("Single", "C-Hash", "F-Hash", "ML-tree", "Origami")

register_scenario(
    BenchScenario(
        name="fig2_even_partitioning",
        description="Fig 2 motivation: 1 MDS vs 5-MDS even split on the web trace",
        kind="ro",
        variants=(
            BenchVariant("Single", strategy="Single"),
            BenchVariant("Even", strategy="Even"),
        ),
        seeds=(42, 43),
        scale="smoke",
        tags=("paper", "figure"),
    )
)

register_scenario(
    BenchScenario(
        name="fig5_overall",
        description="Fig 5a: aggregate throughput under high load, all strategies (Trace-RW)",
        kind="rw",
        variants=tuple(BenchVariant(s, strategy=s) for s in FIGURE_STRATEGIES),
        seeds=(42,),
        scale="default",
        tags=("paper", "figure"),
    )
)

register_scenario(
    BenchScenario(
        name="fig8_scalability",
        description="Fig 8: normalised throughput as the cluster grows 1..5 MDSs (Trace-RW)",
        kind="rw",
        variants=(
            BenchVariant("Single-1mds", strategy="Single", n_mds=1),
            *(
                BenchVariant(f"{s}-{m}mds", strategy=s, n_mds=m)
                for s in ("C-Hash", "F-Hash", "ML-tree", "Origami")
                for m in (2, 3, 4, 5)
            ),
        ),
        seeds=(42,),
        scale="default",
        tags=("paper", "figure"),
    )
)

register_scenario(
    BenchScenario(
        name="scale_large_hotpath",
        description=(
            "million-entity hot path: ~1.01M inodes (cloud tree x256), 64 MDSs, "
            "100k closed-loop clients on write-intensive Trace-WI"
        ),
        kind="wi",
        variants=(
            BenchVariant("lunule-64mds", strategy="Lunule", n_mds=64),
            BenchVariant("chash-64mds", strategy="C-Hash", n_mds=64),
        ),
        seeds=(42,),
        scale="large",
        tags=("perf", "hotpath", "large"),
    )
)

register_scenario(
    BenchScenario(
        name="crash_failover_rw",
        description="Lunule on Trace-RW through an MDS crash+restart plus a slowdown window",
        kind="rw",
        variants=(BenchVariant("Lunule", strategy="Lunule", n_mds=3, ops_factor=0.5),),
        seeds=(0, 1),
        scale="smoke",
        faults=FaultSchedule(
            [
                Crash(mds=0, start_ms=40.0, end_ms=90.0, warmup_ms=15.0, warmup_factor=2.0),
                Slowdown(mds=1, start_ms=150.0, end_ms=200.0, factor=3.0),
            ]
        ),
        tags=("faults",),
    )
)

register_scenario(
    BenchScenario(
        name="crash_recovery",
        description="Durable Lunule cluster through a crash: WAL volume vs derived recovery cost",
        kind="rw",
        variants=(
            BenchVariant("wal-small", strategy="Lunule", n_mds=3,
                         ops_factor=0.25, durability=True),
            BenchVariant("wal-large", strategy="Lunule", n_mds=3,
                         ops_factor=0.75, durability=True),
        ),
        seeds=(0,),
        scale="smoke",
        faults=FaultSchedule(
            [Crash(mds=0, start_ms=40.0, end_ms=90.0, warmup_factor=2.0)]
        ),
        tags=("faults", "durability"),
    )
)

register_scenario(
    BenchScenario(
        name="mdtest_uniform",
        description="Uniform mdtest microbenchmark: balancers must converge and settle",
        kind="mdtest",
        variants=(
            BenchVariant("Even", strategy="Even"),
            BenchVariant("C-Hash", strategy="C-Hash"),
            BenchVariant("Lunule", strategy="Lunule"),
        ),
        seeds=(42,),
        scale="smoke",
        tags=("calibration",),
    )
)

#: the autoscaler configurations the elastic_diurnal frontier compares;
#: canonical JSON so the variant dataclasses stay frozen/hashable
_ELASTIC_THRESHOLD = AutoscaleSpec(
    policy="threshold", min_mds=1, max_mds=4, warmup_ms=5.0, warmup_factor=2.0,
    cooldown_epochs=1, scale_out_util=0.5, scale_in_util=0.35,
).to_json()
_ELASTIC_PREDICTIVE = AutoscaleSpec(
    policy="predictive", min_mds=1, max_mds=4, warmup_ms=5.0, warmup_factor=2.0,
    cooldown_epochs=1, scale_out_util=0.5, scale_in_util=0.35, horizon_epochs=3,
).to_json()

register_scenario(
    BenchScenario(
        name="elastic_diurnal",
        description=(
            "cost/latency frontier on a two-day diurnal load: static 4-MDS "
            "provisioning vs threshold and predictive autoscaling from 2 MDSs"
        ),
        kind="diurnal",
        variants=(
            # ops_factor 3: enough rebalance epochs per simulated day that
            # the autoscaler can actually track the sinusoid
            BenchVariant("static-4", strategy="Lunule", n_mds=4, ops_factor=3.0),
            BenchVariant("threshold", strategy="Lunule", n_mds=2, ops_factor=3.0,
                         autoscale=_ELASTIC_THRESHOLD),
            BenchVariant("predictive", strategy="Lunule", n_mds=2, ops_factor=3.0,
                         autoscale=_ELASTIC_PREDICTIVE),
        ),
        seeds=(42,),
        scale="smoke",
        tags=("elastic",),
    )
)

register_scenario(
    BenchScenario(
        name="cache_depth_origami",
        description="Origami with the near-root cache off (depth 0) vs on (depth 2)",
        kind="rw",
        variants=(
            BenchVariant("depth0", strategy="Origami", cache_depth=0),
            BenchVariant("depth2", strategy="Origami", cache_depth=2),
        ),
        seeds=(42,),
        scale="default",
        tags=("paper", "ablation"),
    )
)
