"""Artifact comparator: diff two ``BENCH_*.json`` files and gate regressions.

Thresholds are a mapping ``metric -> max allowed regression fraction``,
applied to each variant's *mean* aggregate.  Direction matters: for
lower-is-better metrics (latency, RPC fan-out, imbalance) a regression is
the candidate exceeding baseline×(1+frac); for higher-is-better metrics
(throughput, cache hit rate) it is the candidate falling below
baseline×(1−frac).  Metrics not in the threshold map are reported as
informational rows but never gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.bench.store import ArtifactError

__all__ = [
    "DEFAULT_THRESHOLDS",
    "SMOKE_THRESHOLDS",
    "THRESHOLD_PROFILES",
    "CompareResult",
    "compare_artifacts",
    "is_higher_better",
]

#: the comparator's strict profile — e.g. mean RCT +5%, p99 +10%
DEFAULT_THRESHOLDS: Dict[str, float] = {
    "mean_latency_ms": 0.05,
    "p99_latency_ms": 0.10,
    "steady_state_throughput": 0.05,
    "throughput_ops_per_sec": 0.05,
    "rpcs_per_request": 0.05,
    # engine-event counts are a pure function of the simulation, so a
    # virtual-time rate shift means the code now schedules more events for
    # the same work — gate it tightly in both profiles
    "engine_events_per_virtual_sec": 0.10,
    # wall-clock simulator speed (volatile "perf" section): only meaningful
    # when baseline and candidate ran on the same machine, so gate it in
    # the default (local) profile with generous headroom and leave it out
    # of smoke, where CI compares against committed cross-machine baselines
    "engine_events_per_wall_sec": 0.30,
}

#: relaxed profile for CI smoke runs (tiny traces are noisier)
SMOKE_THRESHOLDS: Dict[str, float] = {
    "mean_latency_ms": 0.25,
    "p99_latency_ms": 0.40,
    "steady_state_throughput": 0.25,
    "throughput_ops_per_sec": 0.25,
    "rpcs_per_request": 0.20,
    "engine_events_per_virtual_sec": 0.10,
}

THRESHOLD_PROFILES: Dict[str, Dict[str, float]] = {
    "default": DEFAULT_THRESHOLDS,
    "smoke": SMOKE_THRESHOLDS,
}

#: metrics where larger values are an improvement
_HIGHER_IS_BETTER_PREFIXES = (
    "throughput",
    "steady_state_throughput",
    "ops_completed",
    "cache_hit_rate",
)

#: exact names that invert the prefix rule — engine_events* is otherwise
#: lower-better (fewer events for the same work = cheaper simulation), but
#: the *wall* rate measures simulator speed, where more events/sec wins
_HIGHER_IS_BETTER_NAMES = frozenset(
    {
        "engine_events_per_wall_sec",
        "timeline.peak_ops_per_sec",
    }
)


def is_higher_better(metric: str) -> bool:
    if metric in _HIGHER_IS_BETTER_NAMES:
        return True
    return metric.startswith(_HIGHER_IS_BETTER_PREFIXES)


@dataclass
class CompareRow:
    variant: str
    metric: str
    baseline: float
    candidate: float
    #: signed regression fraction: positive = got worse, direction-adjusted
    regression_frac: float
    threshold: Optional[float]
    regressed: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "variant": self.variant,
            "metric": self.metric,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "regression_frac": self.regression_frac,
            "threshold": self.threshold,
            "regressed": self.regressed,
        }


@dataclass
class CompareResult:
    scenario: str
    rows: List[CompareRow] = field(default_factory=list)
    #: variants present in only one artifact (never gate, always reported)
    missing_in_candidate: List[str] = field(default_factory=list)
    missing_in_baseline: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[CompareRow]:
        return [r for r in self.rows if r.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        from repro.harness.report import format_table

        gated = [r for r in self.rows if r.threshold is not None]
        lines = [f"=== bench compare — {self.scenario} ==="]
        if gated:
            table_rows = [
                [
                    r.variant,
                    r.metric,
                    r.baseline,
                    r.candidate,
                    f"{r.regression_frac * 100:+.1f}%",
                    f"{r.threshold * 100:.0f}%",
                    "REGRESSED" if r.regressed else "ok",
                ]
                for r in gated
            ]
            lines.append(
                format_table(
                    ["variant", "metric", "baseline", "candidate", "worse by", "limit", "verdict"],
                    table_rows,
                )
            )
        for name in self.missing_in_candidate:
            lines.append(f"! variant {name!r} missing from the candidate artifact")
        for name in self.missing_in_baseline:
            lines.append(f"! variant {name!r} missing from the baseline artifact")
        n = len(self.regressions)
        lines.append(
            "PASS — no gated metric regressed beyond its threshold"
            if self.ok
            else f"FAIL — {n} gated metric{'s' if n != 1 else ''} regressed"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "rows": [r.to_dict() for r in self.rows],
            "missing_in_candidate": self.missing_in_candidate,
            "missing_in_baseline": self.missing_in_baseline,
        }


def _regression_fraction(metric: str, baseline: float, candidate: float) -> float:
    """Positive fraction = candidate is worse, whatever the metric's direction."""
    if baseline == 0.0:
        if candidate == 0.0:
            return 0.0
        return float("inf") if not is_higher_better(metric) else -1.0
    delta = (candidate - baseline) / abs(baseline)
    return -delta if is_higher_better(metric) else delta


def compare_artifacts(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    thresholds: Optional[Mapping[str, float]] = None,
) -> CompareResult:
    """Diff two loaded artifacts; gate on ``thresholds`` (default profile
    when None).  Raises :class:`ArtifactError` if the artifacts describe
    different scenarios."""
    if baseline["scenario"] != candidate["scenario"]:
        raise ArtifactError(
            f"cannot compare different scenarios: baseline is "
            f"{baseline['scenario']!r}, candidate is {candidate['scenario']!r}"
        )
    limits = dict(DEFAULT_THRESHOLDS if thresholds is None else thresholds)
    base_agg = baseline["aggregates"]
    cand_agg = candidate["aggregates"]
    result = CompareResult(scenario=baseline["scenario"])
    result.missing_in_candidate = sorted(set(base_agg) - set(cand_agg))
    result.missing_in_baseline = sorted(set(cand_agg) - set(base_agg))
    for variant in sorted(set(base_agg) & set(cand_agg)):
        _diff_metrics(result, limits, variant, base_agg[variant], cand_agg[variant])
    # the volatile "perf" section (engine events per wall second) never
    # enters the deterministic core, but when BOTH artifacts carry it —
    # i.e. both were produced by this runner, typically on one machine —
    # its per-variant means are diffed like any other aggregate; whether
    # they *gate* is up to the profile (default: yes, smoke: no)
    base_perf = baseline.get("perf") or {}
    cand_perf = candidate.get("perf") or {}
    for variant in sorted(set(base_perf) & set(cand_perf)):
        _diff_metrics(result, limits, variant, base_perf[variant], cand_perf[variant])
    return result


def _diff_metrics(
    result: CompareResult,
    limits: Mapping[str, float],
    variant: str,
    b_metrics: Mapping[str, Any],
    c_metrics: Mapping[str, Any],
) -> None:
    """Diff one variant's metric->summary maps into ``result.rows``."""
    for metric in sorted(set(b_metrics) & set(c_metrics)):
        b_mean = float(b_metrics[metric]["mean"])
        c_mean = float(c_metrics[metric]["mean"])
        frac = _regression_fraction(metric, b_mean, c_mean)
        limit = limits.get(metric)
        result.rows.append(
            CompareRow(
                variant=variant,
                metric=metric,
                baseline=b_mean,
                candidate=c_mean,
                regression_frac=frac,
                threshold=limit,
                regressed=limit is not None and frac > limit,
            )
        )
