"""Aggregate statistics for benchmark artifacts.

Mean / percentiles plus a bootstrap confidence interval on the mean.  The
bootstrap is seeded through :class:`repro.sim.rng.SeedSequenceFactory`
keyed by the (scenario, variant, metric) triple, so aggregation is
bit-reproducible and — because it always happens in the parent after the
runs are sorted — independent of how many workers produced the samples.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Sequence

import numpy as np

from repro.sim.rng import SeedSequenceFactory

__all__ = ["summarize", "aggregate_runs", "BOOTSTRAP_RESAMPLES"]

#: resamples for the CI on the mean (plenty for the seed counts we run)
BOOTSTRAP_RESAMPLES = 200

#: root seed for every bootstrap stream (namespaced per metric by name)
_BOOT_ROOT_SEED = 20250806


def summarize(values: Sequence[float], stream_name: str = "bench-ci") -> Dict[str, float]:
    """Mean/p50/p95/p99/min/max/std plus a 95% bootstrap CI on the mean."""
    arr = np.asarray([float(v) for v in values], dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    out = {
        "n": float(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
    }
    if arr.size == 1:
        out["ci95_lo"] = out["ci95_hi"] = out["mean"]
        return out
    rng = SeedSequenceFactory(_BOOT_ROOT_SEED).stream(stream_name)
    idx = rng.integers(0, arr.size, size=(BOOTSTRAP_RESAMPLES, arr.size))
    means = arr[idx].mean(axis=1)
    out["ci95_lo"] = float(np.percentile(means, 2.5))
    out["ci95_hi"] = float(np.percentile(means, 97.5))
    return out


def aggregate_runs(
    runs: Iterable[Mapping[str, Any]], scenario_name: str
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-variant per-metric summaries over the per-seed runs.

    Only metrics present in *every* run of a variant are aggregated, so a
    faulted seed exposing extra counters cannot skew cross-seed stats.
    """
    by_variant: Dict[str, list] = {}
    for run in runs:
        by_variant.setdefault(run["variant"], []).append(run)
    aggregates: Dict[str, Dict[str, Dict[str, float]]] = {}
    for variant, cells in sorted(by_variant.items()):
        common = set(cells[0]["metrics"])
        for c in cells[1:]:
            common &= set(c["metrics"])
        aggregates[variant] = {
            metric: summarize(
                [c["metrics"][metric] for c in cells],
                stream_name=f"bench-ci/{scenario_name}/{variant}/{metric}",
            )
            for metric in sorted(common)
        }
    return aggregates
