"""Human-readable rendering of a benchmark artifact."""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["render_artifact", "HEADLINE_COLUMNS"]

#: (metric key, column header, scale factor) for the summary table
HEADLINE_COLUMNS = (
    ("steady_state_throughput", "kops/s", 1e-3),
    ("mean_latency_ms", "lat us", 1e3),
    ("p99_latency_ms", "p99 us", 1e3),
    ("rpcs_per_request", "rpc/req", 1.0),
    ("migrations", "migr", 1.0),
    ("cache_hit_rate", "hit", 1.0),
    ("engine_events_per_virtual_sec", "kev/vs", 1e-3),
)


def render_artifact(artifact: Dict[str, Any]) -> str:
    from repro.harness.report import format_table

    env = artifact.get("environment", {})
    header = [
        f"=== BENCH {artifact['scenario']} (schema v{artifact['schema_version']}) ===",
        f"scale {artifact['scale']} · seeds {artifact['seeds']} · "
        f"{len(artifact['runs'])} runs · "
        f"git {str(env.get('git_sha'))[:10]} · python {env.get('python')}",
    ]
    rows: List[List[Any]] = []
    for variant, metrics in artifact["aggregates"].items():
        row: List[Any] = [variant]
        for key, _hdr, factor in HEADLINE_COLUMNS:
            agg = metrics.get(key)
            row.append(agg["mean"] * factor if agg is not None else "-")
        tput = metrics.get("steady_state_throughput")
        if tput is not None and tput["n"] > 1:
            row.append(f"[{tput['ci95_lo'] / 1e3:.1f}, {tput['ci95_hi'] / 1e3:.1f}]")
        else:
            row.append("-")
        rows.append(row)
    table = format_table(
        ["variant", *[hdr for _k, hdr, _f in HEADLINE_COLUMNS], "tput 95% CI"],
        rows,
        "per-variant aggregates (mean over seeds)",
    )
    lines = [*header, "", table]
    perf = artifact.get("perf")
    if perf:
        lines.append("")
        lines.append("engine throughput (volatile, this machine):")
        for variant, summaries in perf.items():
            rate = summaries.get("engine_events_per_wall_sec")
            wall = summaries.get("wall_s")
            if rate is None or wall is None:
                continue
            lines.append(
                f"  {variant}: {rate['mean'] / 1e3:,.0f} kevents/wall s "
                f"(min {rate['min'] / 1e3:,.0f}, max {rate['max'] / 1e3:,.0f}; "
                f"{wall['mean']:.2f} s/run)"
            )
    return "\n".join(lines)
