"""The paper's primary contribution: Meta-OPT, benefit labels, Origami policy.

* :mod:`~repro.core.metaopt` — Algorithm 1: greedy near-optimal subtree
  migration search against a known future request sequence, with the Δ
  imbalance guard; plus an exhaustive oracle for small instances.
* :mod:`~repro.core.theory` — Appendix A's benefit formulas and the
  Theorem 1 sub-optimality bound, checkable numerically.
* :mod:`~repro.core.labels` — per-subtree migration-benefit labels for ML
  training (§4.3 "Label generation").
* :mod:`~repro.core.origami` — the online Origami policy: predicted benefits
  (from a trained model) fed into the same greedy migrate-highest-benefit
  loop OrigamiFS's Metadata Balancer runs.
"""

from repro.core.labels import LabelledEpoch, generate_labels
from repro.core.metaopt import MetaOptResult, exhaustive_opt, meta_opt
from repro.core.origami import OrigamiPolicy
from repro.core.theory import greedy_benefit, optimal_nested_benefit, theorem1_gap_bound_holds

__all__ = [
    "meta_opt",
    "exhaustive_opt",
    "MetaOptResult",
    "generate_labels",
    "LabelledEpoch",
    "OrigamiPolicy",
    "greedy_benefit",
    "optimal_nested_benefit",
    "theorem1_gap_bound_holds",
]
