"""Per-subtree migration-benefit labels (§4.3, "Label generation").

Bélády-style supervision: with the next window of requests known, the ledger
computes — for every candidate subtree — the JCT benefit of its best
admissible migration.  Those benefits are the regression targets the ML
models learn to predict from the (past-epoch) features of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.partition import PartitionMap
from repro.costmodel.ledger import SubtreeLedger
from repro.costmodel.params import CostParams
from repro.namespace.tree import NamespaceTree
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # type-only: avoids a package-import cycle with repro.workloads
    from repro.workloads.trace import Trace

__all__ = ["LabelledEpoch", "generate_labels"]


@dataclass
class LabelledEpoch:
    """Benefit labels for one epoch's candidate subtrees."""

    epoch: int
    #: candidate subtree-root inos
    candidates: np.ndarray
    #: best admissible JCT benefit per candidate (>= 0; 0 = don't migrate)
    benefits: np.ndarray
    #: destination achieving that benefit (-1 where benefit == 0)
    best_dst: np.ndarray
    #: JCT of the window under the unmodified partition
    base_jct: float

    def positive_fraction(self) -> float:
        """Fraction of candidates with a strictly beneficial migration."""
        if self.candidates.size == 0:
            return 0.0
        return float((self.benefits > 0).mean())


def generate_labels(
    window: "Trace",
    tree: NamespaceTree,
    pmap: PartitionMap,
    params: CostParams,
    delta: float,
    epoch: int = 0,
) -> LabelledEpoch:
    """Compute benefit labels for every candidate under the current partition.

    A candidate's label is its best benefit over all destinations that pass
    the Δ guard; inadmissible or harmful moves label 0 (the model should
    learn "leave it alone").
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    ledger = SubtreeLedger(window, tree, pmap, params)
    cands = ledger.candidates
    best_benefit = np.zeros(cands.shape[0], dtype=np.float64)
    best_dst = np.full(cands.shape[0], -1, dtype=np.int64)
    for dst in range(pmap.n_mds):
        ev = ledger.evaluate_dst(dst)
        admissible = ev.valid & (ev.dst_minus_src < delta) & (ev.benefit > 0)
        better = admissible & (ev.benefit > best_benefit)
        best_benefit[better] = ev.benefit[better]
        best_dst[better] = dst
    return LabelledEpoch(
        epoch=epoch,
        candidates=cands,
        benefits=best_benefit,
        best_dst=best_dst,
        base_jct=ledger.base.jct,
    )
