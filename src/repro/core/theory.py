"""Appendix A: benefit formulas and the Theorem 1 sub-optimality bound.

Setting: machine A is overloaded, machine B underloaded, load difference
``D = A.rct - B.rct``.  Migrating subtree ``s`` removes load ``l_s`` from A
and adds ``l_s + o_s`` to B (``o_s`` = new boundary overhead).  The benefit
(reduction of max(A, B)) is::

    b = l_s               if D >= 2*l_s + o_s    (A still the max)
        D - (l_s + o_s)   otherwise              (B became the max)

Theorem 1: if disjoint subtrees k_1..k_N nested inside s would have been
migrated instead (cumulative load/overhead strictly smaller than s's), the
greedy choice of s loses at most Δ: ``b0 - b1 > -Δ``, where Δ bounds the
post-move imbalance (Algorithm 1, line 9: ``Δ > 2*l_s + o_s - D``).

These functions make the theorem numerically checkable; the property-based
tests sweep random instances, and a benchmark compares the greedy and
exhaustive searches on real small worlds.
"""

from __future__ import annotations

from typing import Sequence, Tuple

__all__ = [
    "greedy_benefit",
    "optimal_nested_benefit",
    "delta_constraint_satisfied",
    "theorem1_gap_bound_holds",
]


def greedy_benefit(l_s: float, o_s: float, d: float) -> float:
    """Benefit ``b0`` of migrating subtree s given load difference ``d``."""
    if l_s < 0 or o_s < 0:
        raise ValueError("load and overhead must be non-negative")
    if d >= 2 * l_s + o_s:
        return l_s
    return d - (l_s + o_s)


def optimal_nested_benefit(
    loads: Sequence[float], overheads: Sequence[float], d: float
) -> float:
    """Benefit ``b1`` of migrating disjoint nested subtrees k_1..k_N instead."""
    if len(loads) != len(overheads):
        raise ValueError("loads and overheads must pair up")
    lsum = float(sum(loads))
    osum = float(sum(overheads))
    if any(x < 0 for x in loads) or any(x < 0 for x in overheads):
        raise ValueError("load and overhead must be non-negative")
    if d >= 2 * lsum + osum:
        return lsum
    return d - (lsum + osum)


def delta_constraint_satisfied(l_s: float, o_s: float, d: float, delta: float) -> bool:
    """Algorithm 1's line-9 guard for migrating s: ``Δ > 2*l_s + o_s - D``."""
    return delta > 2 * l_s + o_s - d


def theorem1_gap_bound_holds(
    l_s: float,
    o_s: float,
    nested_loads: Sequence[float],
    nested_overheads: Sequence[float],
    d: float,
    delta: float,
) -> Tuple[bool, float]:
    """Check Theorem 1 on one instance.

    Preconditions (the theorem's hypotheses): the nested subtrees are
    strictly contained in s, so ``l_s > Σ l_k`` and ``o_s > Σ o_k``; and the
    Δ guard admits migrating s.  Returns ``(bound_holds, gap)`` with
    ``gap = b0 - b1``; the theorem asserts ``gap > -Δ``.
    """
    lsum = float(sum(nested_loads))
    osum = float(sum(nested_overheads))
    if not (l_s > lsum and o_s > osum):
        raise ValueError("nested subtrees must have strictly smaller load and overhead")
    if not delta_constraint_satisfied(l_s, o_s, d, delta):
        raise ValueError("Δ guard rejects migrating s; theorem preconditions unmet")
    b0 = greedy_benefit(l_s, o_s, d)
    b1 = optimal_nested_benefit(nested_loads, nested_overheads, d)
    gap = b0 - b1
    return gap > -delta, gap
