"""Meta-OPT (Algorithm 1): near-optimal migration search with known future.

Given a request sequence ``N``, the current MDS assignment, and the imbalance
guard ``Δ``, repeatedly pick the subtree migration with the largest JCT
benefit until no candidate improves JCT by at least ``stop_threshold``.

The inner ``JCT(N, M.migrate(s, i, k))`` evaluations (lines 6–8) run through
the :class:`~repro.costmodel.SubtreeLedger`, making each what-if O(#MDS)
instead of O(|N|); tests verify the ledger equals full re-evaluation, so this
is an exact implementation of the algorithm, only faster.

``exhaustive_opt`` searches migration *sequences* outright (exponential; for
tiny instances) and anchors the Theorem 1 empirical gap checks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.migration import MigrationDecision
from repro.cluster.partition import PartitionMap
from repro.costmodel.evaluate import evaluate_trace
from repro.costmodel.ledger import SubtreeLedger
from repro.costmodel.params import CostParams
from repro.namespace.tree import NamespaceTree
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # type-only: avoids a package-import cycle with repro.workloads
    from repro.workloads.trace import Trace

__all__ = ["meta_opt", "exhaustive_opt", "MetaOptResult"]


@dataclass
class MetaOptResult:
    """Outcome of a Meta-OPT run."""

    decisions: List[MigrationDecision]
    #: partition after applying all decisions (input pmap is left untouched)
    final_partition: PartitionMap
    jct_before: float
    jct_after: float
    #: JCT after each applied decision (length == len(decisions))
    jct_history: List[float] = field(default_factory=list)
    #: admissible (valid & improving & Δ-safe) candidate moves evaluated per
    #: greedy iteration — the search's decision-audit trail; the final entry
    #: is the iteration that found nothing and stopped
    candidates_considered: List[int] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Fractional JCT reduction."""
        if self.jct_before == 0:
            return 0.0
        return 1.0 - self.jct_after / self.jct_before


def meta_opt(
    trace: "Trace",
    tree: NamespaceTree,
    pmap: PartitionMap,
    params: CostParams,
    delta: float,
    stop_threshold: float = 0.0,
    max_migrations: Optional[int] = None,
) -> MetaOptResult:
    """Run Algorithm 1 and return the migration decision list.

    ``delta`` — the imbalance guard Δ: a move is admissible only if, after
    it, ``dst.rct - src.rct < Δ`` (line 9).  ``stop_threshold`` — stop when
    the best benefit drops to or below this (line 16); the paper leaves the
    threshold free, 0 means "any strict improvement".
    """
    if delta <= 0:
        raise ValueError("delta must be positive (it bounds post-move imbalance)")
    work = pmap.copy()
    base = evaluate_trace(trace, tree, work, params)
    result = MetaOptResult(
        decisions=[], final_partition=work, jct_before=base.jct, jct_after=base.jct
    )
    if len(trace) == 0:
        return result

    while max_migrations is None or len(result.decisions) < max_migrations:
        ledger = SubtreeLedger(trace, tree, work, params)
        best: Optional[Tuple[float, int, int, int]] = None  # (benefit, s, src, dst)
        n_admissible = 0
        for dst in range(work.n_mds):
            ev = ledger.evaluate_dst(dst)
            mask = ev.valid & (ev.benefit > stop_threshold) & (ev.dst_minus_src < delta)
            n_admissible += int(mask.sum())
            if not mask.any():
                continue
            idx = np.nonzero(mask)[0]
            j = idx[np.argmax(ev.benefit[idx])]
            cand_benefit = float(ev.benefit[j])
            if best is None or cand_benefit > best[0]:
                best = (
                    cand_benefit,
                    int(ev.candidates[j]),
                    int(ledger.cand_owner[j]),
                    dst,
                )
        result.candidates_considered.append(n_admissible)
        if best is None:
            break
        benefit, s, src, dst = best
        work.migrate_subtree(s, dst)
        result.decisions.append(
            MigrationDecision(subtree_root=s, src=src, dst=dst, predicted_benefit=benefit)
        )
        result.jct_after = ledger.base.jct - benefit
        result.jct_history.append(result.jct_after)

    # recompute exactly (guards against accumulated drift in long runs)
    result.jct_after = evaluate_trace(trace, tree, work, params).jct
    return result


def exhaustive_opt(
    trace: "Trace",
    tree: NamespaceTree,
    pmap: PartitionMap,
    params: CostParams,
    delta: float,
    max_depth: int = 3,
    candidate_limit: int = 12,
) -> MetaOptResult:
    """Brute-force the best migration *sequence* up to ``max_depth`` moves.

    Exponential — ``O((candidates × MDS)^depth)``; refuses instances with
    more than ``candidate_limit`` candidates.  Used to measure Meta-OPT's
    optimality gap (Theorem 1) on small worlds.
    """
    base = evaluate_trace(trace, tree, pmap, params)

    def candidates_of(pm: PartitionMap) -> List[int]:
        uniform = pm.uniform_subtree_mask()
        uniform[0] = False
        out = np.nonzero(uniform)[0].tolist()
        if len(out) > candidate_limit:
            raise ValueError(
                f"{len(out)} candidates exceed exhaustive limit {candidate_limit}"
            )
        return out

    best_decisions: List[MigrationDecision] = []
    best_jct = base.jct
    best_pmap = pmap.copy()

    def recurse(pm: PartitionMap, decisions: List[MigrationDecision], depth: int) -> None:
        nonlocal best_decisions, best_jct, best_pmap
        load = evaluate_trace(trace, tree, pm, params)
        if load.jct < best_jct - 1e-12:
            best_jct = load.jct
            best_decisions = list(decisions)
            best_pmap = pm.copy()
        if depth >= max_depth:
            return
        for s in candidates_of(pm):
            src = pm.owner(s)
            for dst in range(pm.n_mds):
                if dst == src:
                    continue
                nxt = pm.copy()
                nxt.migrate_subtree(s, dst)
                after = evaluate_trace(trace, tree, nxt, params)
                if after.jct >= load.jct:  # line 9: require strict improvement
                    continue
                if after.rct_per_mds[dst] - after.rct_per_mds[src] >= delta:
                    continue
                decisions.append(MigrationDecision(s, src, dst))
                recurse(nxt, decisions, depth + 1)
                decisions.pop()

    recurse(pmap.copy(), [], 0)
    return MetaOptResult(
        decisions=best_decisions,
        final_partition=best_pmap,
        jct_before=base.jct,
        jct_after=best_jct,
        jct_history=[best_jct] if best_decisions else [],
    )
