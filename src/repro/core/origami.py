"""The Origami online balancing policy (§4.2's Metadata Balancer).

At each triggered epoch the policy:

1. extracts Table-1 features for every candidate subtree from the Data
   Collector's snapshot;
2. asks the trained model for each subtree's predicted *migration benefit*;
3. greedily takes the highest-predicted-benefit subtree, sends it to the
   currently least-loaded MDS, updates its load estimate, and repeats until
   predictions fall below the threshold (or the per-epoch migration cap).

This is deliberately simpler than Meta-OPT's search — the paper notes the
rebalancing loop is "much more intuitive" than bin-packing because the model
already folded locality costs into the benefit scores.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

import numpy as np

from repro.balancers.base import (
    BalancePolicy,
    EpochContext,
    LunuleTrigger,
    plan_evacuations,
    subtree_loads,
)
from repro.cluster.migration import MigrationDecision
from repro.ml.dataset import FeatureExtractor

__all__ = ["OrigamiPolicy"]


class _Regressor(Protocol):
    def predict(self, X: np.ndarray) -> np.ndarray: ...


class OrigamiPolicy(BalancePolicy):
    """Predicted-benefit balancer (the paper's system)."""

    name = "Origami"

    def __init__(
        self,
        model: _Regressor,
        trigger: LunuleTrigger | None = None,
        benefit_threshold_frac: float = 0.005,
        max_moves_per_epoch: int = 6,
        cooldown_epochs: int = 3,
        fallback_to_load_planning: bool = True,
    ):
        """``model`` maps Table-1 features to predicted migration benefit
        (trained on Meta-OPT labels).  ``benefit_threshold_frac`` sets the
        stop threshold as a fraction of the hottest MDS's epoch load — the
        "repeat until benefits fall below a specified threshold" knob.

        ``cooldown_epochs`` keeps a recently-migrated subtree pinned for a
        few epochs: under saturation, last-epoch completions understate true
        demand, and re-deciding on a subtree before its new home's load is
        observed causes hotspot ping-pong (the "progressive" transfer of
        §5.5 is exactly the absence of that thrash).

        ``fallback_to_load_planning``: when the trigger demands rebalancing
        but no predicted-benefit move qualifies (a cold or out-of-domain
        model), fall back to observed-load export planning — the Lunule
        machinery underneath the ML layer never goes away."""
        self.model = model
        self.trigger = trigger or LunuleTrigger()
        self.benefit_threshold_frac = benefit_threshold_frac
        self.max_moves = max_moves_per_epoch
        self.cooldown_epochs = cooldown_epochs
        self.fallback_to_load_planning = fallback_to_load_planning
        #: subtree root -> epoch of its last migration
        self._last_moved: dict = {}

    def rebalance(self, ctx: EpochContext) -> List[MigrationDecision]:
        # degraded mode: dead MDSs are evacuated first and masked out of the
        # candidate machinery below (never a source worth scoring, never a
        # destination)
        evacuations = plan_evacuations(ctx)
        live = ctx.live_mds()
        # stricter than `live`: also excludes draining/parked elastic members
        src_ok = ctx.dst_mask()
        dst_idx = ctx.dst_eligible()
        if not self.trigger.should_rebalance(ctx.mds_load, ctx.pool_mask()):
            return evacuations
        pmap, tree = ctx.pmap, ctx.tree
        loads = np.asarray(ctx.mds_load, dtype=np.float64).copy()
        mean_load = loads.mean() if live is None else loads[live].mean()

        uniform = pmap.uniform_subtree_mask()
        uniform[0] = False
        cands = np.nonzero(uniform)[0]
        if cands.size == 0:
            return evacuations
        X = FeatureExtractor(tree).extract(cands, ctx.snapshot)
        benefit = self.model.predict(X)
        ctx.note_candidates(cands, benefit)
        sub_load = subtree_loads(ctx)
        # convert op counts to busy-ms so load bookkeeping shares units
        total_ops = float(ctx.snapshot.total_ops) or 1.0
        sub_load = sub_load * (loads.sum() / total_ops)
        owner = pmap.owner_array()
        threshold = float(loads.max()) * self.benefit_threshold_frac

        idx = tree.dfs_index()
        order = np.argsort(-benefit)
        decisions: List[MigrationDecision] = []
        taken: List[int] = []
        for j in order:
            j = int(j)
            if benefit[j] <= threshold:
                break
            if len(decisions) >= self.max_moves:
                break
            s = int(cands[j])
            last = self._last_moved.get(s)
            if last is not None and ctx.epoch - last < self.cooldown_epochs:
                continue  # let the previous move's effect become observable
            src = int(owner[s])
            if src_ok is not None and not src_ok[src]:
                continue  # dead/draining sources are the evacuation pass's business
            # only shed load from above-average MDSs; moving work onto the
            # hottest machine can't shrink the largest bin
            if loads[src] <= mean_load:
                continue
            if any(
                idx.tin[c] <= idx.tin[s] < idx.tout[c]
                or idx.tin[s] <= idx.tin[c] < idx.tout[s]
                for c in taken
            ):
                continue  # overlaps (either way) with an already-moved subtree
            dst = (
                int(np.argmin(loads))
                if dst_idx is None
                else int(dst_idx[np.argmin(loads[dst_idx])])
            )
            if dst == src:
                continue
            moved = float(sub_load[s])
            surplus = loads[src] - mean_load
            if moved > surplus * 1.10:
                continue  # moving more than the surplus only relocates the hotspot
            if loads[dst] + moved >= loads[src]:
                continue
            decisions.append(
                MigrationDecision(s, src, dst, predicted_benefit=float(benefit[j]))
            )
            taken.append(s)
            self._last_moved[s] = ctx.epoch
            loads[src] -= moved
            loads[dst] += moved
        if not decisions and self.fallback_to_load_planning:
            from repro.balancers.lunule import plan_exports

            raw = subtree_loads(ctx)
            observed = np.asarray(ctx.mds_load, dtype=np.float64)
            if src_ok is not None:
                observed = np.where(src_ok, observed, -np.inf)
            src = int(np.argmax(observed))
            if np.isfinite(observed[src]):
                moves = plan_exports(ctx, raw, src, self.max_moves)
                decisions = [
                    MigrationDecision(s, src, dst, predicted_benefit=float(raw[s]))
                    for s, dst in moves
                    if ctx.epoch - self._last_moved.get(s, -(10**9)) >= self.cooldown_epochs
                ]
                for d in decisions:
                    self._last_moved[d.subtree_root] = ctx.epoch
        return evacuations + decisions
