"""The Origami training workflow (§4.3).

Label generation replays a trace epoch by epoch against the analytic model:
the epoch's Data-Collector statistics become Table-1 features, the *next*
window's Meta-OPT benefits become the labels (Bélády-style supervision), and
the highest-benefit decisions are applied so later epochs contribute samples
from progressively rebalanced states — "repeated iteratively to
progressively enrich the training dataset".

Offline training then fits the three model families the paper compares
(LightGBM-style GBDT, depth-wise GBDT, 4-hidden-layer MLP) and reports both
accuracy metrics and the decision-level agreement (§4.3's observation that
all three pick the same high-benefit subtrees).
"""

from repro.training.labelgen import collect_training_data, record_window
from repro.training.online import OnlineOrigamiPolicy
from repro.training.pipeline import ModelReport, train_models, train_origami_model

__all__ = [
    "collect_training_data",
    "record_window",
    "train_models",
    "train_origami_model",
    "ModelReport",
    "OnlineOrigamiPolicy",
]
