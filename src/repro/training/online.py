"""Online continual learning: Origami without an offline training phase.

The paper trains the benefit model offline from collector dumps (§4.3) and
validates it online.  A natural extension — flagged by the paper's framing
of OrigamiFS as "ML-native" — is to close the loop entirely: generate the
Bélády-style labels *during* the run (at each epoch boundary, the window
that just replayed is a known "future" for the previous epoch's features)
and periodically retrain the model in place.

:class:`OnlineOrigamiPolicy` does exactly that.  It starts cold (no model:
the first epochs fall back to observed-load export planning, i.e. Lunule
behaviour), accumulates hindsight-labelled samples every epoch, trains its
first GBDT once enough samples exist, and refreshes it periodically — so it
adapts to workload families it has never seen.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.balancers.base import EpochContext, LunuleTrigger, subtree_loads
from repro.balancers.lunule import plan_exports
from repro.cluster.migration import MigrationDecision
from repro.core.labels import generate_labels
from repro.core.origami import OrigamiPolicy
from repro.ml.dataset import FeatureExtractor, TrainingSet
from repro.ml.gbdt import GBDTRegressor
from repro.namespace.stats import EpochSnapshot

__all__ = ["OnlineOrigamiPolicy"]


class OnlineOrigamiPolicy(OrigamiPolicy):
    """Origami that trains (and keeps retraining) itself during the run."""

    name = "Origami-online"

    def __init__(
        self,
        delta: float = 50.0,
        trigger: Optional[LunuleTrigger] = None,
        retrain_every: int = 4,
        min_samples: int = 500,
        gbdt_rounds: int = 60,
        max_samples: int = 50_000,
        **origami_kwargs,
    ):
        """``delta`` — the Δ guard used when labelling hindsight windows;
        ``retrain_every`` — epochs between model refreshes; ``min_samples``
        — samples required before the first model trains (until then the
        policy plans exports from observed load)."""
        if delta <= 0:
            raise ValueError("delta must be positive")
        super().__init__(model=None, trigger=trigger, **origami_kwargs)  # type: ignore[arg-type]
        self.delta = delta
        self.retrain_every = retrain_every
        self.min_samples = min_samples
        self.gbdt_rounds = gbdt_rounds
        self.max_samples = max_samples
        self.dataset = TrainingSet()
        self.retrain_count = 0
        self._prev_snapshot: Optional[EpochSnapshot] = None
        self._last_trained_epoch = -(10**9)

    # ------------------------------------------------------------- learning
    def _learn_from_hindsight(self, ctx: EpochContext) -> None:
        """Label the window that just replayed against the partition it ran
        under; features come from the *previous* epoch's snapshot — the same
        (features @ t-1, benefit over window t) pairing the offline pipeline
        produces."""
        window = ctx.completed_window
        if window is None or len(window) == 0 or self._prev_snapshot is None:
            return
        labelled = generate_labels(
            window, ctx.tree, ctx.pmap, ctx.params, delta=self.delta, epoch=ctx.epoch
        )
        if labelled.candidates.size == 0:
            return
        X = FeatureExtractor(ctx.tree).extract(labelled.candidates, self._prev_snapshot)
        self.dataset.add(X, labelled.benefits)
        # bound memory: drop the oldest epochs once past the sample cap
        while self.dataset.n_samples > self.max_samples and len(self.dataset.X_parts) > 1:
            self.dataset.X_parts.pop(0)
            self.dataset.y_parts.pop(0)

    def _maybe_retrain(self, ctx: EpochContext) -> None:
        due = ctx.epoch - self._last_trained_epoch >= self.retrain_every
        ready = self.dataset.n_samples >= self.min_samples
        if not (due and ready):
            return
        X, y = self.dataset.matrices()
        model = GBDTRegressor(
            n_estimators=self.gbdt_rounds, max_leaves=32, learning_rate=0.1, growth="leaf"
        )
        model.fit(X, y)
        self.model = model
        self.retrain_count += 1
        self._last_trained_epoch = ctx.epoch

    # ------------------------------------------------------------ rebalance
    def rebalance(self, ctx: EpochContext) -> List[MigrationDecision]:
        self._learn_from_hindsight(ctx)
        self._maybe_retrain(ctx)
        snapshot = ctx.snapshot
        try:
            if self.model is not None:
                return super().rebalance(ctx)
            # cold start: observed-load export planning until a model exists
            if not self.trigger.should_rebalance(ctx.mds_load):
                return []
            loads = np.asarray(ctx.mds_load, dtype=np.float64)
            src = int(np.argmax(loads))
            sub = subtree_loads(ctx)
            moves = plan_exports(ctx, sub, src, self.max_moves)
            return [
                MigrationDecision(s, src, dst, predicted_benefit=float(sub[s]))
                for s, dst in moves
            ]
        finally:
            self._prev_snapshot = snapshot
