"""Epoch-driven label generation against the analytic cost model.

The DES is the measurement instrument; training data comes from this much
faster analytic replay (the same Eq. 1/2 costs, no queueing), because Meta-
OPT label generation needs hundreds of epoch evaluations.  The features are
computed from the *ended* epoch's statistics and the labels from the *next*
window's Meta-OPT benefits — the model learns "given what the collector just
dumped, how much would migrating this subtree help the immediate future".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.partition import PartitionMap
from repro.core.labels import generate_labels
from repro.core.metaopt import meta_opt
from repro.costmodel.optypes import CATEGORY_ARRAY, CATEGORY_LSDIR, CATEGORY_NSMUT
from repro.costmodel.params import CostParams
from repro.ml.dataset import FeatureExtractor, TrainingSet
from repro.namespace.stats import AccessStats
from repro.namespace.tree import NamespaceTree
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.workloads.trace import Trace

__all__ = ["collect_training_data", "record_window"]


def record_window(stats: AccessStats, window: "Trace") -> None:
    """Charge a trace window's ops into the collector counters (vectorised)."""
    views = stats.views()
    cap = views["reads"].shape[0]
    dirs = np.clip(window.dir_ino, 0, cap - 1)
    cats = CATEGORY_ARRAY[window.op]
    is_write = cats == CATEGORY_NSMUT
    is_lsdir = cats == CATEGORY_LSDIR
    np.add.at(views["writes"], dirs[is_write], 1)
    np.add.at(views["reads"], dirs[~is_write], 1)
    np.add.at(views["lsdirs"], dirs[is_lsdir], 1)


def collect_training_data(
    tree: NamespaceTree,
    trace: "Trace",
    n_mds: int,
    params: CostParams,
    delta: float,
    ops_per_epoch: int = 5000,
    apply_migrations: bool = True,
    max_migrations_per_epoch: int = 8,
    max_epochs: Optional[int] = None,
) -> Tuple[TrainingSet, PartitionMap]:
    """Run the §4.3 label-generation loop; returns the dataset and the final
    partition (useful for warm-starting validation runs).

    Per epoch ``e``: features ← epoch ``e``'s collector stats; labels ←
    Meta-OPT benefits on window ``e+1``; then (optionally) apply the best
    decisions so epoch ``e+1`` is observed under the improved partition.
    """
    pmap = PartitionMap(tree, n_mds=n_mds)  # OrigamiFS initial state: all on MDS 0
    stats = AccessStats(tree)
    extractor = FeatureExtractor(tree)
    dataset = TrainingSet()

    windows: List["Trace"] = [w for _, w in trace.epochs(ops_per_epoch)]
    n_epochs = len(windows) - 1  # the last window has no "next" to label from
    if max_epochs is not None:
        n_epochs = min(n_epochs, max_epochs)

    for e in range(n_epochs):
        record_window(stats, windows[e])
        snapshot = stats.snapshot_and_reset()
        future = windows[e + 1]
        labelled = generate_labels(future, tree, pmap, params, delta=delta, epoch=e)
        if labelled.candidates.size:
            X = extractor.extract(labelled.candidates, snapshot)
            dataset.add(X, labelled.benefits)
        if apply_migrations:
            result = meta_opt(
                future,
                tree,
                pmap,
                params,
                delta=delta,
                max_migrations=max_migrations_per_epoch,
            )
            for d in result.decisions:
                pmap.migrate_subtree(d.subtree_root, d.dst)
    return dataset, pmap
