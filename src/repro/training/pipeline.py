"""Offline model training and comparison (§4.3 "Model training").

``train_origami_model`` fits the production configuration (LightGBM-style:
leaf-wise growth, 32 leaves; 400 rounds at paper scale, fewer by default
here so the full pipeline stays interactive — the ablation bench sweeps
this).  ``train_models`` fits all three families and reports accuracy *and*
top-k decision agreement, reproducing the paper's observation that the
models disagree on accuracy but agree on which subtrees to migrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.ml.dataset import TrainingSet
from repro.ml.gbdt import GBDTRegressor
from repro.ml.linear import RidgeRegressor
from repro.ml.metrics import r2_score, rmse, spearman_rank_correlation, top_k_overlap
from repro.ml.mlp import MLPRegressor

__all__ = ["ModelReport", "train_models", "train_origami_model"]


@dataclass
class ModelReport:
    """Held-out evaluation of one trained model."""

    name: str
    model: object
    rmse: float
    r2: float
    spearman: float
    #: agreement with ground truth on the top-10% highest-benefit subtrees
    top_decile_overlap: float


def train_origami_model(
    dataset: TrainingSet,
    n_estimators: int = 120,
    max_leaves: int = 32,
    learning_rate: float = 0.1,
    seed: int = 0,
) -> GBDTRegressor:
    """Fit the production benefit predictor (LightGBM-style GBDT).

    The paper ships 400 rounds / 32 leaves; 120 rounds is within noise of
    that on these dataset sizes (see the model ablation bench) and keeps the
    end-to-end pipeline fast.  Pass ``n_estimators=400`` for paper parity.
    """
    X, y = dataset.matrices()
    if X.shape[0] == 0:
        raise ValueError("empty training set")
    model = GBDTRegressor(
        n_estimators=n_estimators,
        max_leaves=max_leaves,
        learning_rate=learning_rate,
        growth="leaf",
    )
    model.fit(X, y)
    return model


def _evaluate(name: str, model, Xte: np.ndarray, yte: np.ndarray) -> ModelReport:
    pred = model.predict(Xte)
    k = max(1, yte.shape[0] // 10)
    return ModelReport(
        name=name,
        model=model,
        rmse=rmse(yte, pred),
        r2=r2_score(yte, pred),
        spearman=spearman_rank_correlation(yte, pred),
        top_decile_overlap=top_k_overlap(yte, pred, k),
    )


def train_models(
    dataset: TrainingSet,
    seed: int = 0,
    test_fraction: float = 0.25,
    gbdt_rounds: int = 120,
    mlp_epochs: int = 60,
) -> Dict[str, ModelReport]:
    """Train and compare all model families on a held-out split."""
    Xtr, ytr, Xte, yte = dataset.train_test_split(test_fraction=test_fraction, seed=seed)
    if Xtr.shape[0] == 0 or Xte.shape[0] == 0:
        raise ValueError("dataset too small to split")
    out: Dict[str, ModelReport] = {}

    leafwise = GBDTRegressor(
        n_estimators=gbdt_rounds, max_leaves=32, learning_rate=0.1, growth="leaf"
    ).fit(Xtr, ytr)
    out["LightGBM-style"] = _evaluate("LightGBM-style", leafwise, Xte, yte)

    levelwise = GBDTRegressor(
        n_estimators=gbdt_rounds, max_depth=5, learning_rate=0.1, growth="level"
    ).fit(Xtr, ytr)
    out["GBDT"] = _evaluate("GBDT", levelwise, Xte, yte)

    mlp = MLPRegressor(epochs=mlp_epochs, seed=seed).fit(Xtr, ytr)
    out["MLP"] = _evaluate("MLP", mlp, Xte, yte)

    ridge = RidgeRegressor(alpha=1.0).fit(Xtr, ytr)
    out["Ridge"] = _evaluate("Ridge", ridge, Xte, yte)
    return out
