"""Shared resources for DES processes: counted resources, stores, FIFO queues.

These model the contended components of the metadata cluster:

* :class:`Resource` — an MDS worker pool (capacity = service concurrency);
  requests queue FIFO, which is exactly the single-queue model Eq. (1)'s
  ``Q_i`` term assumes.
* :class:`Store` — an unbounded message mailbox (RPC delivery, migration
  pipeline between the balancer and the Migrator).
* :class:`FifoQueue` — a thin deque with waiter hand-off, used where the
  overhead of ``Store`` events is unnecessary.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Optional

from repro.sim.engine import Environment, Event, _NORMAL_KEY

__all__ = ["Resource", "Store", "FifoQueue"]


class _Request(Event):
    """Pending acquisition of a :class:`Resource` slot (use as context manager)."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        # flat init (no super() chain): one _Request per RPC service hold
        self.env = resource.env
        self.callbacks = []
        self._value = Event._PENDING
        self._ok = True
        self._triggered = False
        self._processed = False
        self.resource = resource

    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with a FIFO wait queue.

    ``queue_len`` and the cumulative ``wait_time`` statistic feed the
    queueing-delay component of the cost model validation tests.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: set = set()
        self.waiters: deque = deque()
        self._wait_started: dict = {}
        self.total_wait_time = 0.0
        self.total_grants = 0
        self.peak_queue_len = 0

    @property
    def queue_len(self) -> int:
        return len(self.waiters)

    @property
    def in_use(self) -> int:
        return len(self.users)

    def request(self) -> _Request:
        req = _Request(self)
        users = self.users
        if len(users) < self.capacity:
            users.add(req)
            self.total_grants += 1
            # inlined req.succeed(None): grants dominate the hot path and the
            # request is born untriggered, so the state guard is dead weight
            req._value = None
            req._triggered = True
            env = self.env
            env._seq = seq = env._seq + 1
            queue = env._queue
            heappush(queue, (env._now, _NORMAL_KEY | seq, req))
            if len(queue) > env._peak_queue:
                env._peak_queue = len(queue)
        else:
            waiters = self.waiters
            waiters.append(req)
            self._wait_started[req] = self.env._now
            if len(waiters) > self.peak_queue_len:
                self.peak_queue_len = len(waiters)
        return req

    def release(self, req: _Request) -> None:
        users = self.users
        try:
            users.remove(req)
        except KeyError:
            if req in self._wait_started:
                # Released while still queued (cancelled request).
                self.waiters.remove(req)
                del self._wait_started[req]
            return
        waiters = self.waiters
        while waiters and len(users) < self.capacity:
            nxt = waiters.popleft()
            started = self._wait_started.pop(nxt)
            self.total_wait_time += self.env._now - started
            self.total_grants += 1
            users.add(nxt)
            nxt.succeed()


class Store:
    """Unbounded item store with FIFO put/get semantics (a mailbox)."""

    def __init__(self, env: Environment):
        self.env = env
        self.items: deque = deque()
        self._getters: deque = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self.items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = Event(self.env)
        if self.items:
            ev.succeed(self.items.popleft())
        else:
            self._getters.append(ev)
        return ev


class FifoQueue:
    """Minimal deque wrapper tracking peak occupancy (for metrics)."""

    def __init__(self) -> None:
        self._items: deque = deque()
        self.peak = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(self, item: Any) -> None:
        self._items.append(item)
        if len(self._items) > self.peak:
            self.peak = len(self._items)

    def pop(self) -> Any:
        return self._items.popleft()

    def peek(self) -> Optional[Any]:
        return self._items[0] if self._items else None
