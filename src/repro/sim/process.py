"""Generator-backed processes for the DES kernel.

A process is a Python generator that ``yield``s :class:`~repro.sim.engine.Event`
objects; the process resumes when the yielded event fires, receiving the
event's value at the ``yield`` expression (or its exception raised in place).
A :class:`Process` is itself an event that fires when the generator returns,
so processes can wait on each other (fork/join) with plain ``yield child``.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.engine import Environment, Event, Interrupt

__all__ = ["Process"]


class Process(Event):
    """Drives a generator; fires (as an event) with the generator's return value."""

    __slots__ = ("_generator", "_waiting_on", "name", "_cb")

    def __init__(self, env: Environment, generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # one bound method for the whole lifetime (a fresh one per yield is
        # measurable on the hot path); interrupt()'s __self__ filter still
        # matches it
        self._cb = self._on_event
        # Bootstrap: resume once at the current time.
        env._immediate(self._bootstrap)

    def _bootstrap(self) -> None:
        self._resume(None, ok=True)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self._triggered:
            raise RuntimeError(f"{self.name} has already terminated")
        if self._waiting_on is None:
            raise RuntimeError(f"{self.name} is not waiting on an event yet")
        target = self._waiting_on
        # Detach from whatever it waited on so the original event firing
        # later does not double-resume the process.
        if target.callbacks is not None:
            target.callbacks = [cb for cb in target.callbacks if getattr(cb, "__self__", None) is not self]
        self._waiting_on = None
        exc = Interrupt(cause)
        self.env._immediate(lambda: self._resume(exc, ok=False))

    # -- generator stepping -------------------------------------------------
    def _resume(self, value: Any, ok: bool) -> None:
        if self._triggered:
            return
        gen = self._generator
        send = gen.send
        throw = gen.throw
        cb = self._cb
        while True:
            try:
                target = send(value) if ok else throw(value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Interrupt:
                # An unhandled interrupt terminates the process quietly; the
                # interrupter decided the work is moot.
                self.succeed(None)
                return
            except BaseException as exc:
                # An uncaught exception fails the process event: waiters see
                # it raised at their yield; if nobody waits, the engine
                # surfaces it when the failed event fires unobserved.
                self.fail(exc)
                return

            # duck-typed event check: slot access doubles as the type guard
            try:
                if target._processed:
                    # Already over: continue synchronously with its outcome.
                    value, ok = target._value, target._ok
                    continue
            except AttributeError:
                gen.throw(TypeError(f"process yielded non-event {target!r}"))
                return

            self._waiting_on = target
            target.callbacks.append(cb)
            return

    def _on_event(self, event: Event) -> None:
        # body of _resume(event._value, event._ok) copied inline: this is
        # the engine's per-event callback, and the extra frame is measurable
        # at millions of events — keep the two loops in lockstep
        self._waiting_on = None
        if self._triggered:
            return
        value, ok = event._value, event._ok
        gen = self._generator
        send = gen.send
        throw = gen.throw
        cb = self._cb
        while True:
            try:
                target = send(value) if ok else throw(value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Interrupt:
                self.succeed(None)
                return
            except BaseException as exc:
                self.fail(exc)
                return

            try:
                if target._processed:
                    value, ok = target._value, target._ok
                    continue
            except AttributeError:
                gen.throw(TypeError(f"process yielded non-event {target!r}"))
                return

            self._waiting_on = target
            target.callbacks.append(cb)
            return
