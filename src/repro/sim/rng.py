"""Deterministic, hierarchically-named random number streams.

Every stochastic component in the reproduction (trace generators, network
jitter, service-time noise, ML initialisation) draws from its own named child
stream, derived from a root seed with :class:`numpy.random.SeedSequence`
spawning keyed by a stable string.  Two properties follow:

* runs are bit-reproducible given the root seed;
* adding or removing one component does not shift any other component's
  sequence (no shared global stream), which keeps A/B experiment comparisons
  honest.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["SeedSequenceFactory", "RngStream"]


def _stable_key(name: str) -> int:
    """Map a stream name to a stable 64-bit integer (independent of PYTHONHASHSEED)."""
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class RngStream:
    """A named wrapper around :class:`numpy.random.Generator`."""

    __slots__ = ("name", "generator")

    def __init__(self, name: str, generator: np.random.Generator):
        self.name = name
        self.generator = generator

    # Convenience passthroughs used across the codebase; anything exotic can
    # go straight to ``.generator``.
    def random(self, size=None):
        return self.generator.random(size)

    def integers(self, low, high=None, size=None):
        return self.generator.integers(low, high=high, size=size)

    def choice(self, a, size=None, replace=True, p=None):
        return self.generator.choice(a, size=size, replace=replace, p=p)

    def exponential(self, scale=1.0, size=None):
        return self.generator.exponential(scale, size)

    def normal(self, loc=0.0, scale=1.0, size=None):
        return self.generator.normal(loc, scale, size)

    def lognormal(self, mean=0.0, sigma=1.0, size=None):
        return self.generator.lognormal(mean, sigma, size)

    def permutation(self, x):
        return self.generator.permutation(x)

    def shuffle(self, x) -> None:
        self.generator.shuffle(x)

    def zipf_weights(self, n: int, alpha: float) -> np.ndarray:
        """Normalised Zipf(alpha) probabilities over ranks ``1..n`` (no draw)."""
        if n <= 0:
            raise ValueError("n must be positive")
        ranks = np.arange(1, n + 1, dtype=np.float64)
        w = ranks ** (-float(alpha))
        w /= w.sum()
        return w

    def __repr__(self) -> str:
        return f"RngStream({self.name!r})"


class SeedSequenceFactory:
    """Derives named, independent :class:`RngStream` children from a root seed."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._cache: Dict[str, RngStream] = {}

    def stream(self, name: str) -> RngStream:
        """Return the (cached) stream for ``name``."""
        got = self._cache.get(name)
        if got is None:
            seq = np.random.SeedSequence([self.root_seed, _stable_key(name)])
            got = RngStream(name, np.random.default_rng(seq))
            self._cache[name] = got
        return got

    def fresh(self, name: str) -> RngStream:
        """Return a *new* stream for ``name`` (restarts its sequence)."""
        self._cache.pop(name, None)
        return self.stream(name)

    def spawn(self, names: Sequence[str]) -> Dict[str, RngStream]:
        return {n: self.stream(n) for n in names}
