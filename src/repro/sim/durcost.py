"""Durability cost model: WAL/fsync/recovery work as modeled latency terms.

The durability layer (``repro.durability``) executes synchronously for
correctness; this model converts the *work it reports* — bytes appended,
group commits fsynced, bytes replayed at recovery — into virtual
milliseconds the DES charges, the same separation the cost model uses for
every other latency term.  Defaults are NVMe-class: a flush costs ~100 µs,
log replay streams at ~200 MB/s of virtual time.

Two consumers:

* the write path: each durable ``kv_put``/``kv_delete`` accrues
  ``append_cost_ms`` plus ``fsync_ms`` per group commit it triggered, and
  the client drains the accrued cost as extra MDS service time;
* the restart path: a crashed MDS's warm-up window is
  ``recovery_cost_ms(report)`` — *derived* from the recovery work actually
  performed (WAL bytes scanned + SSTables reloaded + manifest edits), not
  the fixed ``warmup_ms`` constant of the pre-durability fault model.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict

__all__ = ["DurabilityCostModel"]

_MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class DurabilityCostModel:
    """Virtual-time prices for durability work (all outputs in ms)."""

    #: CPU cost of encoding + buffering one KiB into the WAL batch
    wal_append_us_per_kb: float = 1.0
    #: one group-commit device flush
    fsync_ms: float = 0.1
    #: streaming WAL replay (read + CRC + memtable insert)
    replay_ms_per_mb: float = 5.0
    #: reloading one MiB of live SSTables (read + CRC + index build)
    sstable_load_ms_per_mb: float = 2.0
    #: applying one MANIFEST edit during recovery
    manifest_edit_ms: float = 0.001
    #: process restart + directory open overhead, paid once per recovery
    restart_fixed_ms: float = 0.5

    def __post_init__(self):
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ValueError(f"{f.name} must be non-negative")

    # ------------------------------------------------------------ write path
    def append_cost_ms(self, nbytes: int) -> float:
        """Encode/buffer cost for ``nbytes`` of WAL records."""
        return nbytes / 1024.0 * self.wal_append_us_per_kb / 1000.0

    def sync_cost_ms(self, n_syncs: int = 1) -> float:
        return n_syncs * self.fsync_ms

    # ---------------------------------------------------------- restart path
    def recovery_cost_ms(self, report) -> float:
        """Warm-up time implied by one recovery's work.

        ``report`` is a :class:`repro.durability.recovery.RecoveryReport`
        (anything with ``wal_bytes_scanned`` / ``sst_bytes_loaded`` /
        ``manifest_edits`` attributes works).
        """
        return (
            self.restart_fixed_ms
            + report.wal_bytes_scanned / _MB * self.replay_ms_per_mb
            + report.sst_bytes_loaded / _MB * self.sstable_load_ms_per_mb
            + report.manifest_edits * self.manifest_edit_ms
        )

    def as_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}
