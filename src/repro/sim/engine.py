"""Event loop and primitive events for the DES kernel.

The design follows the classic event-calendar pattern: a binary heap of
``(time, key, event)`` tuples, where ``key`` packs the priority and a
monotonically increasing sequence number into one integer
(``priority << 62 | sequence``).  Because the sequence is unique, the packed
key totally orders same-time entries exactly as the unpacked
``(priority, sequence)`` pair would — events at the same virtual time with
the same priority always fire in the order they were scheduled, and the
event object itself is never compared.  Determinism of the whole simulation
reduces to determinism of the model code plus seeded RNG streams
(:mod:`repro.sim.rng`).

Virtual time is a float; the reproduction uses **milliseconds** throughout
(see ``repro.costmodel.params`` for the unit conventions).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Iterable, Optional

__all__ = ["Environment", "Event", "Timeout", "Interrupt", "StopSimulation"]

#: priority for ordinary events
NORMAL = 1
#: priority for "urgent" bookkeeping events (fire before normal ones at t)
URGENT = 0

#: pre-shifted heap-key bases; sequence numbers stay far below 2**62 (a run
#: issuing a billion events per second would take a century to overflow)
_NORMAL_KEY = NORMAL << 62
_URGENT_KEY = URGENT << 62

#: lazily bound Process class (circular import; see Environment.process)
_Process = None


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    ``cause`` carries whatever the interrupter supplied.  The metadata
    simulator uses interrupts to cancel in-flight client requests when a run
    is truncated at a deadline.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at ``until``."""


class Event:
    """A one-shot occurrence that callbacks (usually processes) wait on.

    An event moves through three states: *pending* (created), *triggered*
    (scheduled on the calendar with a value), and *processed* (callbacks ran).
    Waiting on an already-processed event is allowed and resumes the waiter
    immediately at the current time — the simulator relies on this for cache
    hits that complete "instantly".
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    _PENDING = object()

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = Event._PENDING
        self._ok = True
        self._triggered = False
        self._processed = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is Event._PENDING:
            raise AttributeError("event value is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        env = self.env
        env._seq = seq = env._seq + 1
        queue = env._queue
        heappush(queue, (env._now, _NORMAL_KEY | seq, self))
        if len(queue) > env._peak_queue:
            env._peak_queue = len(queue)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters see it raised."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._triggered = True
        self._ok = False
        self._value = exception
        env = self.env
        env._seq = seq = env._seq + 1
        queue = env._queue
        heappush(queue, (env._now, _NORMAL_KEY | seq, self))
        if len(queue) > env._peak_queue:
            env._peak_queue = len(queue)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome (used by condition events)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self._processed
            else ("triggered" if self._triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # flat init (no super() chain): a Timeout is born triggered, and this
        # constructor is the single hottest allocation site in the simulator
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self.delay = delay
        env._seq = seq = env._seq + 1
        queue = env._queue
        heappush(queue, (env._now + delay, _NORMAL_KEY | seq, self))
        if len(queue) > env._peak_queue:
            env._peak_queue = len(queue)


class AllOf(Event):
    """Fires when all child events have fired; value is the list of values."""

    __slots__ = ("_remaining", "_values")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        events = list(events)
        self._values: list = [None] * len(events)
        self._remaining = len(events)
        if self._remaining == 0:
            self.succeed([])
            return
        for idx, ev in enumerate(events):
            self._subscribe(idx, ev)

    def _subscribe(self, idx: int, ev: Event) -> None:
        def on_done(done: Event, _idx: int = idx) -> None:
            if self._triggered:
                return
            if not done._ok:
                self.fail(done._value)
                return
            self._values[_idx] = done._value
            self._remaining -= 1
            if self._remaining == 0:
                self.succeed(list(self._values))

        if ev._processed:
            # Already over: fold its outcome in via an immediate callback.
            self.env._immediate(lambda: on_done(ev))
        else:
            ev.callbacks.append(on_done)


class AnyOf(Event):
    """Fires when the first child event fires; value is that event's value."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        events = list(events)
        if not events:
            self.succeed(None)
            return

        def on_done(done: Event) -> None:
            if self._triggered:
                return
            self.trigger(done)

        for ev in events:
            if ev._processed:
                self.env._immediate(lambda e=ev: on_done(e))
            else:
                ev.callbacks.append(on_done)


class Environment:
    """The event calendar plus factory helpers for events and processes."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        self._seq = 0
        self._event_count = 0
        self._peak_queue = 0
        #: optional TimelineCollector; window roll-over piggybacks on clock
        #: advance so telemetry never schedules events of its own (parity)
        self.timeline: Optional[Any] = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time (milliseconds by project convention)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far (diagnostics)."""
        return self._event_count

    @property
    def queue_len(self) -> int:
        """Events currently on the calendar (diagnostics)."""
        return len(self._queue)

    @property
    def peak_queue_len(self) -> int:
        """High-water mark of the event calendar (memory-pressure signal)."""
        return self._peak_queue

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, generator) -> "Process":
        # late import (circular: process.py imports engine.py), cached in a
        # module global — spawning 10^5 clients pays the sys.modules lookup
        # per call otherwise
        global _Process
        if _Process is None:
            from repro.sim.process import Process as _Process
        return _Process(self, generator)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        self._seq = seq = self._seq + 1
        queue = self._queue
        heappush(queue, (self._now + delay, (priority << 62) | seq, event))
        if len(queue) > self._peak_queue:
            self._peak_queue = len(queue)

    def _immediate(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` as an urgent zero-delay event (keeps causality ordering)."""
        ev = Event(self)
        ev._triggered = True
        ev._ok = True
        ev._value = None
        ev.callbacks.append(lambda _e: fn())
        self._schedule(ev, URGENT, 0.0)

    # -- main loop ----------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event. Raises IndexError if the calendar is empty."""
        t, _key, event = heappop(self._queue)
        self._now = t
        tl = self.timeline
        if tl is not None and t >= tl.window_end_ms:
            tl.advance(t)
        self._event_count += 1
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for cb in callbacks:
            cb(event)
        if not event._ok and not callbacks:
            # A failed event nobody waited on would silently swallow the
            # exception; surface it instead.
            raise event._value

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the calendar is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def warp(self, to_time: float) -> None:
        """Jump the clock forward on an *empty* calendar (checkpoint restore).

        A checkpoint captures a quiescent simulation — nothing scheduled —
        so restoring one only needs the clock moved to the capture time.
        Warping with pending events would fire them in the past, so that is
        rejected outright."""
        to_time = float(to_time)
        if self._queue:
            raise RuntimeError("cannot warp a calendar with pending events")
        if to_time < self._now:
            raise ValueError(f"warp target {to_time} lies in the past (now={self._now})")
        self._now = to_time

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar drains or virtual time reaches ``until``.

        When ``until`` is given, the clock is advanced exactly to ``until``
        even if the last event fires earlier, so post-run statistics can
        normalise by the intended horizon.
        """
        if until is not None:
            until = float(until)
            if until < self._now:
                raise ValueError(f"until={until} lies in the past (now={self._now})")
        # Inlined step(): one Python frame per event (not two) and local
        # bindings for the queue and event counter.  ``count`` is flushed
        # back before every timeline roll-over — window-close telemetry
        # reads ``events_processed`` — and unconditionally on the way out.
        queue = self._queue
        pop = heappop
        count = self._event_count
        # the collector is attached before the run and never swapped mid-run,
        # so it can be bound once outside the loop
        tl = self.timeline
        try:
            if until is None:
                while queue:
                    t, _key, event = pop(queue)
                    self._now = t
                    if tl is not None and t >= tl.window_end_ms:
                        self._event_count = count
                        tl.advance(t)
                    count += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
                    elif not event._ok:
                        raise event._value
            else:
                while queue:
                    if queue[0][0] > until:
                        self._now = until
                        return
                    t, _key, event = pop(queue)
                    self._now = t
                    if tl is not None and t >= tl.window_end_ms:
                        self._event_count = count
                        tl.advance(t)
                    count += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
                    elif not event._ok:
                        raise event._value
        except StopSimulation:
            return
        finally:
            self._event_count = count
        if until is not None:
            self._now = until
