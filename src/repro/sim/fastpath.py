"""Vectorized replay fast path for deterministic million-entity runs.

The general client loop (:meth:`repro.fs.client.ClientWorker._run_general`)
pays, per op, a delegation chain of generator frames (``run`` →
``_attempt`` → ``server.service``), a partition-map ``_sync`` probe, a
fresh cost computation, and three per-op counter-array writes.  None of
that is necessary on the overwhelmingly common configuration — no faults,
no tracer, no datapath, no durability, near-root cache, constant RTT,
fixed pool — where every one of those steps is a pure function of state
that only changes at coarse boundaries.

:func:`run_client` is a drop-in replacement generator for that
configuration.  It produces the **bit-identical event sequence**: the same
``Timeout``/request events in the same order with the same float service
times, and the same counter mutations at every event boundary (the
windowed timeline flushes between events, so counters must be correct not
just at epoch ends).  The speed comes from:

* **flattened execution** — ``_attempt`` and ``MdsServer.service`` are
  inlined into the loop body, so each engine resume re-enters exactly one
  frame instead of walking a delegation chain;
* **batched op planning** — per ``(dir_ino, lsdir?)`` the RPC schedule is
  compiled once per stable ``(pmap.dir_version, tree.version)`` window
  into ``(server, resource, svc_base, is_primary)`` steps with the
  ``T_inode``/``T_rpc`` arithmetic pre-folded (floats are reproduced
  exactly: ``svc_base + t_exec`` performs the identical final addition the
  general path performs); cache hit/miss deltas are replayed per use, as
  the memoised slow plan already does;
* **vectorised per-trace precompute** — op categories and ``T_exec``
  lookups are resolved for the whole trace in two numpy gathers at
  construction instead of per op per worker;
* **deferred stats** — per-directory access counts append a bare ino to
  :class:`~repro.namespace.stats.AccessStats` buffers; epoch readers fold
  them with one ``np.add.at`` (nothing reads those counters mid-epoch);
* **deferred owner syncs** — the general path resyncs the partition map
  every op via ``owner_array()``; the fast path consults the map only
  when planning, listing (``lsdir_owners`` syncs internally) or resolving
  a split partner.  The fill is deterministic and order-independent, so
  deferral cannot change any owner the run observes.

Eligibility is decided once per run (:func:`engaged`); anything the fast
loop cannot reproduce bit-for-bit (faults, tracing spans, lease caches,
RTT jitter, kvstore, durability drains, data path, elastic pools) falls
back to the general loop.  The switch: ``SimConfig.fastpath`` when set,
else the ``REPRO_FASTPATH`` environment variable (default on; ``0``,
``false``, ``off``, ``no`` disable — CI runs the golden suite both ways).
"""

from __future__ import annotations

import os
from typing import Generator

import numpy as np

from repro.costmodel.optypes import (
    CATEGORY_LSDIR,
    CATEGORY_NSMUT,
    CATEGORY_TUPLE,
    OpType,
)
from repro.fs.cache import NearRootCache
from repro.namespace.tree import _DIR
from repro.sim.engine import Timeout

__all__ = ["enabled_from_env", "engaged", "prepare", "run_client"]

_MKDIR = int(OpType.MKDIR)
_RMDIR = int(OpType.RMDIR)
_RENAME = int(OpType.RENAME)
_CREATE = int(OpType.CREATE)
_UNLINK = int(OpType.UNLINK)

_OFF_VALUES = ("0", "false", "off", "no")


def enabled_from_env() -> bool:
    """The ``REPRO_FASTPATH`` switch (default: enabled)."""
    return os.environ.get("REPRO_FASTPATH", "1").strip().lower() not in _OFF_VALUES


def engaged(fs) -> bool:
    """Decide once, at construction, whether this run takes the fast path.

    Every condition gates a feature the fast loop does not replicate; the
    check is intentionally conservative — a ``False`` costs nothing but
    speed.
    """
    cfg = fs.config
    want = cfg.fastpath if cfg.fastpath is not None else enabled_from_env()
    if not want:
        return False
    return (
        fs.faults is None
        and not fs.obs.tracer.enabled
        and fs.datapath is None
        and not fs.use_kvstore
        and fs.durability is None
        and fs.cache.__class__ is NearRootCache
        and fs._rtt_const is not None
        and fs.elastic is None
    )


def prepare(fs) -> None:
    """Whole-trace precompute + the shared fast-plan cache (on the fs).

    Everything a client generator needs is packed into one tuple
    (``fs._fast_shared``) so the generator prologue is a single unpack:
    with ``n_clients`` in the hundred-thousands the per-client attribute
    walk is itself a measurable slice of the run.
    """
    ops = fs.trace.op
    fs._fast_cats = np.asarray(CATEGORY_TUPLE, dtype=np.int64)[ops].tolist()
    fs._fast_texec = np.asarray(fs.params.t_exec_table, dtype=np.float64)[ops].tolist()
    #: compiled RPC schedules keyed ``dir_ino << 1 | lsdir?``, valid for one
    #: (pmap.dir_version, tree.version) window — same stamp discipline as
    #: fs._plan_cache, shared by every worker
    fs._fast_plans = {}
    fs._fast_dv = -1
    fs._fast_tv = -1
    params = fs.params
    timeline = fs.obs.timeline if fs.obs.timeline.enabled else None
    pmap = fs.pmap
    fs._fast_shared = (
        fs.env,
        fs.tree,
        pmap,
        fs.cache,
        fs.servers,
        params.t_inode,
        params.t_rpc,
        params.t_coor,
        fs._rtt_const,
        # pre-resolved metric children: the family-level inc/observe pays a
        # label-key construction per call (the null registry's labels() is
        # a self-returning no-op, so this is safe either way)
        fs.m_ops.labels().inc,
        fs.m_latency.labels().observe,
        timeline.record_op if timeline is not None else None,
        fs.latency.record,
        fs._ops,
        fs._dir_inos,
        fs._aux,
        fs._op_names,
        fs._think,
        fs._fast_cats,
        fs._fast_texec,
        fs._fast_plans,
        fs._plan_cache,
        fs.stats._buf_reads.append,
        fs.stats._buf_writes.append,
        fs.stats._buf_lsdirs.append,
        # placement shortcuts: with the default colocated/subtree placements
        # the split partner of file ops (and mkdir) is the primary → None
        pmap.file_placement is None,
        pmap.placement is None,
        len(fs.trace),
    )


def run_client(worker) -> Generator:
    """The flattened closed-loop client (see module docstring).

    Structured as one generator so every engine resume re-enters a single
    frame.  The body mirrors ``ClientWorker._run_general`` +
    ``ClientWorker._attempt`` + ``MdsServer.service`` with the
    span/fault/durability branches removed — when editing either side,
    keep the event order and counter grouping in lockstep (the golden
    suite and the fastpath parity test enforce it).
    """
    fs = worker.fs
    (
        env,
        tree,
        pmap,
        cache,
        servers,
        t_inode,
        t_rpc,
        t_coor,
        rtt,
        m_ops_inc,
        m_latency_observe,
        timeline_record,
        latency_record,
        ops,
        dir_inos,
        auxs,
        names,
        thinks,
        cats,
        texecs,
        fast_plans,
        plan_cache,
        buf_read,
        buf_write,
        buf_lsdir,
        colocated_files,
        subtree_dirs,
        n_ops,
    ) = fs._fast_shared
    TO = Timeout
    # completion totals nothing reads mid-run (the windowed timeline reads
    # per-server and cache counters only, the epoch driver reads fs.cursor)
    # accumulate locally and flush when this client drains — the run always
    # waits for every client, so the flush is unconditional
    my_rpcs = 0
    my_ops = 0
    last_now = 0.0

    while True:
        i = fs.cursor
        if i >= n_ops:
            fs.replay_done = True
            break
        fs.cursor = i + 1
        op = ops[i]
        dir_ino = dir_inos[i]
        if thinks is not None:
            t = thinks[i]
            if t > 0.0:
                yield TO(env, t)
        # inline _mark_vanished_if_dead: arrays re-fetched per op because
        # growth reallocates them (slack beyond _n is zeroed = dead file)
        if not (tree._alive[dir_ino] and tree._ftype[dir_ino] == _DIR):
            fs.failed_ops += 1
            fs.vanished_ops += 1
            latency = 0.0
        else:
            start = env._now
            cat = cats[i]
            is_lsdir = cat == CATEGORY_LSDIR
            dv = pmap.dir_version
            tv = tree.version
            if dv != fs._fast_dv or tv != fs._fast_tv:
                fast_plans.clear()
                fs._fast_dv = dv
                fs._fast_tv = tv
                entry = None
            else:
                entry = fast_plans.get((dir_ino << 1) | is_lsdir)
            if entry is None:
                # the memoised slow planner replays (or freshly counts) the
                # cache hit/miss deltas and leaves its entry behind; compile
                # its visits into direct steps with the per-visit server
                # methods (request/release/counter incs) pre-bound
                visits, primary = worker._plan(op, dir_ino, None)
                n_hits, n_misses = plan_cache[(dir_ino, is_lsdir)][2:]
                steps = []
                for mds, n_reads in visits:
                    sv = servers[mds]
                    res = sv.resource
                    steps.append(
                        (
                            sv,
                            res.request,
                            res.release,
                            sv._m_rpcs.inc,
                            sv._m_busy.inc,
                            t_inode * (n_reads + 1) + t_rpc,
                            mds == primary,
                        )
                    )
                steps = tuple(steps)
                pserver = servers[primary]
                pres = pserver.resource
                p_requests_inc = pserver._m_requests.inc
                p_request = pres.request
                p_release = pres.release
                p_busy_inc = pserver._m_busy.inc
                fast_plans[(dir_ino << 1) | is_lsdir] = (
                    steps,
                    pserver,
                    primary,
                    n_hits,
                    n_misses,
                    p_requests_inc,
                    p_request,
                    p_release,
                    p_busy_inc,
                )
            else:
                (
                    steps,
                    pserver,
                    primary,
                    n_hits,
                    n_misses,
                    p_requests_inc,
                    p_request,
                    p_release,
                    p_busy_inc,
                ) = entry
                cache.hits += n_hits
                cache.misses += n_misses
            t_exec = texecs[i]
            pserver.epoch_qps += 1
            pserver.total_requests += 1
            p_requests_inc()
            for server, request, release, rpcs_inc, busy_inc, svc_base, isp in steps:
                server.epoch_rpcs += 1
                server.total_rpcs += 1
                rpcs_inc()
                my_rpcs += 1
                yield TO(env, rtt)
                svc = svc_base + t_exec if isp else svc_base
                req = request()
                try:
                    yield req
                    if svc > 0:
                        yield TO(env, svc)
                    server.epoch_busy_ms += svc
                    server.total_busy_ms += svc
                    busy_inc(svc)
                finally:
                    release(req)
            if is_lsdir:
                # lsdir_owners cannot be folded into the plan entry: file
                # creates change it without moving either stamp component
                for o in sorted(pmap.lsdir_owners(dir_ino)):
                    oserver = servers[o]
                    ores = oserver.resource
                    oserver.epoch_rpcs += 1
                    oserver.total_rpcs += 1
                    oserver._m_rpcs.inc()
                    my_rpcs += 1
                    yield TO(env, rtt)
                    req = ores.request()
                    try:
                        yield req
                        if t_rpc > 0:
                            yield TO(env, t_rpc)
                        oserver.epoch_busy_ms += t_rpc
                        oserver.total_busy_ms += t_rpc
                        oserver._m_busy.inc(t_rpc)
                    finally:
                        ores.release(req)
                buf_lsdir(dir_ino)
            elif cat == CATEGORY_NSMUT:
                # near-root cache: recall_if_leased is always 0 → skipped
                partner = None
                if op == _CREATE or op == _UNLINK or (op == _RENAME and auxs[i] < 0):
                    if not colocated_files:
                        partner = worker._split_partner(
                            op, dir_ino, names[i] if names is not None else "", auxs[i]
                        )
                elif op == _MKDIR:
                    if not subtree_dirs:
                        o = pmap.new_dir_owner(
                            dir_ino, names[i] if names is not None else ""
                        )
                        if o != primary:
                            partner = o
                else:  # RMDIR / dir RENAME carry the target dir in aux
                    aux = auxs[i]
                    if aux >= 0 and tree._alive[aux]:
                        o = int(pmap.owner_array()[aux])
                        if o >= 0 and o != primary:
                            partner = o
                if partner is not None:
                    xserver = servers[partner]
                    xserver.epoch_rpcs += 1
                    xserver.total_rpcs += 1
                    xserver._m_rpcs.inc()
                    my_rpcs += 1
                    # the coordination RTT is already inside T_coor: the
                    # general path yields no network hop here either
                    req = p_request()
                    try:
                        yield req
                        if t_coor > 0:
                            yield TO(env, t_coor)
                        pserver.epoch_busy_ms += t_coor
                        pserver.total_busy_ms += t_coor
                        p_busy_inc(t_coor)
                    finally:
                        p_release(req)
                worker._apply_mutation(
                    op, dir_ino, names[i] if names is not None else "", auxs[i], None
                )
                buf_write(dir_ino)
            else:
                buf_read(dir_ino)
            last_now = now = env._now
            latency = now - start
            my_ops += 1
        latency_record(latency)
        m_ops_inc()
        m_latency_observe(latency)
        if timeline_record is not None:
            timeline_record(latency)

    fs.total_rpcs += my_rpcs
    fs.ops_completed += my_ops
    worker.ops_done += my_ops
    if last_now > fs.last_completion_ms:
        fs.last_completion_ms = last_now
