"""Deterministic discrete-event simulation (DES) kernel.

This package is the substrate every timed component of the reproduction runs
on: metadata servers, clients, the network, and the data path are all
generator-based processes scheduled by :class:`~repro.sim.engine.Environment`.

The kernel is intentionally SimPy-flavoured (``env.process``, ``env.timeout``,
``yield event``) so the simulator code in :mod:`repro.fs` reads like standard
DES code, but it is self-contained, deterministic, and tuned for the event
rates this workload produces (millions of events per run):

* the event heap stores plain tuples, no per-event object churn beyond the
  :class:`~repro.sim.engine.Event` instances the model already needs;
* same-time events fire in strict FIFO order of scheduling (a monotone
  sequence number breaks ties), which makes every run bit-reproducible;
* randomness is never global — components draw from named
  :class:`~repro.sim.rng.RngStream` children so adding a component never
  perturbs another component's random sequence.
"""

from repro.sim.durcost import DurabilityCostModel
from repro.sim.engine import Environment, Event, Interrupt, Timeout
from repro.sim.process import Process
from repro.sim.resources import FifoQueue, Resource, Store
from repro.sim.rng import RngStream, SeedSequenceFactory

__all__ = [
    "DurabilityCostModel",
    "Environment",
    "Event",
    "Interrupt",
    "Timeout",
    "Process",
    "Resource",
    "Store",
    "FifoQueue",
    "RngStream",
    "SeedSequenceFactory",
]
