"""Slash-path utilities (no OS dependence; namespace paths are always POSIX)."""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["normalize", "components", "join", "basename", "dirname", "split"]


def normalize(path: str) -> str:
    """Canonicalise a path: leading slash, no empty / '.' segments, no trailing slash.

    ``..`` is rejected — the metadata protocol resolves paths top-down and
    never emits parent references.
    """
    parts = components(path)
    return "/" + "/".join(parts) if parts else "/"


def components(path: str) -> List[str]:
    """Split into non-empty segments; rejects '..'."""
    out: List[str] = []
    for seg in path.split("/"):
        if seg in ("", "."):
            continue
        if seg == "..":
            raise ValueError(f"parent references not allowed: {path!r}")
        out.append(seg)
    return out


def join(*parts: str) -> str:
    """Join segments and normalise."""
    return normalize("/".join(parts))


def split(path: str) -> Tuple[str, str]:
    """Return ``(dirname, basename)`` of a normalised path."""
    parts = components(path)
    if not parts:
        return "/", ""
    head = "/" + "/".join(parts[:-1]) if len(parts) > 1 else "/"
    return head, parts[-1]


def basename(path: str) -> str:
    return split(path)[1]


def dirname(path: str) -> str:
    return split(path)[0]
