"""Array-backed hierarchical namespace tree.

Inode numbers are dense non-negative integers (root = 0), so per-inode fields
live in parallel growable numpy arrays indexed by ino (amortized-doubling
capacity; ``capacity`` is the logical size, the physical allocation is
``_cap``).  The structures every upper layer leans on:

* ``resolve(path)`` — the component-by-component walk clients perform; the
  returned ancestor chain is what the cost model charges ``T_inode`` reads
  and partition crossings against.
* :class:`DfsIndex` — a lazily (re)built preorder index over *directories*.
  It turns "is directory ``d`` inside subtree ``s``" into an O(1) interval
  test and subtree aggregation of any per-directory value array into one
  vectorised prefix-sum — the hot path of both the Meta-OPT ledger and the
  Table-1 feature extractor.

Structural directory mutations (mkdir / rmdir / rename of a directory)
invalidate the cached index; file creation only touches per-directory
counters, so replaying file-heavy traces does not thrash the index.

Scalar accessors return plain Python ints/bools (numpy scalars would leak
into JSON exports and hash-placement arithmetic); bulk views return
read-only zero-copy slices of the backing arrays.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.namespace.inode import FileType, Inode
from repro.namespace.path import components

__all__ = ["NamespaceTree", "DfsIndex", "ROOT_INO"]

ROOT_INO = 0

#: plain-int directory tag — the IntEnum→int conversion is measurable on the
#: per-op accessor hot path (hundreds of thousands of calls per run)
_DIR = int(FileType.DIRECTORY)
_REGULAR = int(FileType.REGULAR)

#: initial physical capacity of the per-ino arrays
_INITIAL_CAP = 1024


class DfsIndex:
    """Preorder (Euler-interval) index over the live directories of a tree.

    ``order[i]`` is the ino of the i-th directory in preorder; ``tin[ino]``
    and ``tout[ino]`` delimit the half-open interval of preorder positions
    occupied by ``ino``'s directory subtree.  Non-directories and dead inodes
    have ``tin == -1``.
    """

    __slots__ = ("order", "tin", "tout")

    def __init__(self, order: np.ndarray, tin: np.ndarray, tout: np.ndarray):
        self.order = order
        self.tin = tin
        self.tout = tout

    def contains(self, subtree_root: int, dir_ino: int) -> bool:
        """True iff ``dir_ino`` lies in the directory subtree rooted at ``subtree_root``."""
        pos = self.tin[dir_ino]
        if pos < 0:
            raise ValueError(f"ino {dir_ino} is not an indexed directory")
        return self.tin[subtree_root] <= pos < self.tout[subtree_root]

    def subtree_size(self, subtree_root: int) -> int:
        """Number of directories (including the root) in the subtree."""
        return int(self.tout[subtree_root] - self.tin[subtree_root])

    def subtree_sum(self, per_dir: np.ndarray) -> np.ndarray:
        """Aggregate ``per_dir`` (indexed by ino) over every directory subtree.

        Returns an array indexed by ino: ``out[d]`` is the sum of ``per_dir``
        over all directories in ``d``'s subtree.  One gather + one prefix sum;
        O(#dirs) regardless of how many subtrees are queried afterwards.
        """
        vals = per_dir[self.order]
        prefix = np.concatenate(([0.0], np.cumsum(vals, dtype=np.float64)))
        out = np.zeros(per_dir.shape[0], dtype=np.float64)
        live = self.order
        out[live] = prefix[self.tout[live]] - prefix[self.tin[live]]
        return out

    def dirs_in_subtree(self, subtree_root: int) -> np.ndarray:
        """Array of dir inos inside the subtree (preorder)."""
        return self.order[self.tin[subtree_root] : self.tout[subtree_root]]


class NamespaceTree:
    """The directory tree plus file entries; the single source of truth."""

    def __init__(self) -> None:
        cap = _INITIAL_CAP
        # per-ino numpy columns; [0, _n) is the logical extent, the rest is
        # zero slack so stale reads past the end see "dead file" not garbage
        self._parent = np.zeros(cap, dtype=np.int64)
        self._ftype = np.zeros(cap, dtype=np.int8)
        self._depth = np.zeros(cap, dtype=np.int64)
        self._alive = np.zeros(cap, dtype=bool)
        self._size = np.zeros(cap, dtype=np.int64)
        self._n_child_files = np.zeros(cap, dtype=np.int64)
        self._n_child_dirs = np.zeros(cap, dtype=np.int64)
        self._cap = cap
        self._n = 1
        # ragged columns stay Python lists: names are interned strings (the
        # name table), children maps exist only for directories
        self._name: List[str] = [""]
        self._children: List[Optional[Dict[str, int]]] = [{}]
        self._parent[ROOT_INO] = ROOT_INO
        self._ftype[ROOT_INO] = _DIR
        self._alive[ROOT_INO] = True
        self._num_dirs = 1
        self._num_files = 0
        self._dfs_cache: Optional[DfsIndex] = None
        #: bumped on every structural directory mutation; consumers that keep
        #: derived state (partition maps) watch this to know when to refresh.
        self.version = 0

    # ------------------------------------------------------------------ sizes
    def __len__(self) -> int:
        return self._num_dirs + self._num_files

    @property
    def capacity(self) -> int:
        """One past the largest ino ever allocated (array sizing)."""
        return self._n

    @property
    def num_dirs(self) -> int:
        return self._num_dirs

    @property
    def num_files(self) -> int:
        return self._num_files

    # -------------------------------------------------------------- accessors
    # The liveness check is inlined in the hot accessors below (is_alive /
    # is_dir / parent / depth / resolve each fire hundreds of thousands of
    # times per run; a _check() call per access doubles their cost).
    def is_alive(self, ino: int) -> bool:
        return 0 <= ino < self._n and bool(self._alive[ino])

    def _check(self, ino: int) -> None:
        if not (0 <= ino < self._n and self._alive[ino]):
            raise KeyError(f"ino {ino} does not exist")

    def is_dir(self, ino: int) -> bool:
        if 0 <= ino < self._n and self._alive[ino]:
            return bool(self._ftype[ino] == _DIR)
        raise KeyError(f"ino {ino} does not exist")

    def parent(self, ino: int) -> int:
        if 0 <= ino < self._n and self._alive[ino]:
            return int(self._parent[ino])
        raise KeyError(f"ino {ino} does not exist")

    def name(self, ino: int) -> str:
        self._check(ino)
        return self._name[ino]

    def depth(self, ino: int) -> int:
        if 0 <= ino < self._n and self._alive[ino]:
            return int(self._depth[ino])
        raise KeyError(f"ino {ino} does not exist")

    def n_child_files(self, ino: int) -> int:
        self._check_dir(ino)
        return int(self._n_child_files[ino])

    def n_child_dirs(self, ino: int) -> int:
        self._check_dir(ino)
        return int(self._n_child_dirs[ino])

    def children(self, ino: int) -> Dict[str, int]:
        self._check_dir(ino)
        return self._children[ino]  # type: ignore[return-value]

    def inode(self, ino: int) -> Inode:
        """Materialise an :class:`Inode` view of ``ino``."""
        self._check(ino)
        return Inode(
            ino=ino,
            parent=int(self._parent[ino]),
            name=self._name[ino],
            ftype=FileType(int(self._ftype[ino])),
            depth=int(self._depth[ino]),
            size=int(self._size[ino]),
        )

    def _check_dir(self, ino: int) -> None:
        self._check(ino)
        if self._ftype[ino] != _DIR:
            raise NotADirectoryError(f"ino {ino} ({self.path_of(ino)}) is not a directory")

    # ------------------------------------------------------------- mutations
    def _grow(self) -> None:
        """Double the physical capacity of every per-ino column."""
        new_cap = self._cap * 2
        for attr in (
            "_parent",
            "_ftype",
            "_depth",
            "_alive",
            "_size",
            "_n_child_files",
            "_n_child_dirs",
        ):
            old = getattr(self, attr)
            grown = np.zeros(new_cap, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, attr, grown)
        self._cap = new_cap

    def _alloc(self, parent: int, name: str, ftype: int) -> int:
        # _check_dir is inlined: a million-entity build (and a write-heavy
        # replay) calls this once per created entity
        if not (0 <= parent < self._n and self._alive[parent]):
            raise KeyError(f"ino {parent} does not exist")
        if self._ftype[parent] != _DIR:
            raise NotADirectoryError(
                f"ino {parent} ({self.path_of(parent)}) is not a directory"
            )
        if not name or "/" in name:
            raise ValueError(f"invalid entry name {name!r}")
        kids = self._children[parent]
        if name in kids:
            raise FileExistsError(f"{self.path_of(parent)}/{name} already exists")
        ino = self._n
        if ino == self._cap:
            self._grow()
        self._parent[ino] = parent
        self._name.append(sys.intern(name))
        self._depth[ino] = self._depth[parent] + 1
        self._alive[ino] = True
        # _size and the child counters keep the column's zero slack: inos are
        # never reused, so the slot is guaranteed fresh
        self._n = ino + 1
        kids[name] = ino
        if ftype == _DIR:
            self._ftype[ino] = _DIR
            self._children.append({})
            self._n_child_dirs[parent] += 1
            self._num_dirs += 1
            self._invalidate()
        else:
            self._ftype[ino] = ftype
            self._children.append(None)
            self._n_child_files[parent] += 1
            self._num_files += 1
        return ino

    def create_dir(self, parent: int, name: str) -> int:
        """mkdir: create a directory under ``parent``; returns the new ino."""
        return self._alloc(parent, name, _DIR)

    def create_file(self, parent: int, name: str, size: int = 0) -> int:
        """create: add a regular file under ``parent``; returns the new ino."""
        ino = self._alloc(parent, name, _REGULAR)
        if size:
            self._size[ino] = size
        return ino

    def makedirs(self, path: str) -> int:
        """Create every missing directory along ``path``; returns the leaf ino."""
        cur = ROOT_INO
        for seg in components(path):
            kids = self._children[cur]
            assert kids is not None
            nxt = kids.get(seg)
            if nxt is None:
                cur = self.create_dir(cur, seg)
            else:
                if self._ftype[nxt] != _DIR:
                    raise NotADirectoryError(f"{seg} along {path} is a file")
                cur = nxt
        return cur

    def remove(self, ino: int) -> None:
        """Unlink a file or an *empty* directory (rmdir semantics)."""
        self._check(ino)
        if ino == ROOT_INO:
            raise ValueError("cannot remove the root")
        if self._ftype[ino] == _DIR:
            kids = self._children[ino]
            assert kids is not None
            if kids:
                raise OSError(f"directory not empty: {self.path_of(ino)}")
        parent = int(self._parent[ino])
        pk = self._children[parent]
        assert pk is not None
        del pk[self._name[ino]]
        self._alive[ino] = False
        if self._ftype[ino] == _DIR:
            self._n_child_dirs[parent] -= 1
            self._num_dirs -= 1
            self._children[ino] = None
            self._invalidate()
        else:
            self._n_child_files[parent] -= 1
            self._num_files -= 1

    def rename(self, ino: int, new_parent: int, new_name: str) -> None:
        """Move/rename an entry; rejects moving a directory under itself."""
        self._check(ino)
        self._check_dir(new_parent)
        if ino == ROOT_INO:
            raise ValueError("cannot rename the root")
        if self._ftype[ino] == _DIR:
            # cycle check: walk new_parent's ancestors
            cur = new_parent
            while cur != ROOT_INO:
                if cur == ino:
                    raise ValueError("cannot move a directory into its own subtree")
                cur = int(self._parent[cur])
            if new_parent == ino:
                raise ValueError("cannot move a directory into itself")
        dest_kids = self._children[new_parent]
        assert dest_kids is not None
        if new_name in dest_kids:
            raise FileExistsError(f"{self.path_of(new_parent)}/{new_name} already exists")
        old_parent = int(self._parent[ino])
        src_kids = self._children[old_parent]
        assert src_kids is not None
        del src_kids[self._name[ino]]
        dest_kids[new_name] = ino
        self._parent[ino] = new_parent
        self._name[ino] = sys.intern(new_name)
        if self._ftype[ino] == _DIR:
            self._n_child_dirs[old_parent] -= 1
            self._n_child_dirs[new_parent] += 1
            self._refresh_depths(ino)
            self._invalidate()
        else:
            self._n_child_files[old_parent] -= 1
            self._n_child_files[new_parent] += 1
            self._depth[ino] = self._depth[new_parent] + 1

    def _refresh_depths(self, root: int) -> None:
        stack = [root]
        while stack:
            ino = stack.pop()
            self._depth[ino] = self._depth[self._parent[ino]] + 1
            kids = self._children[ino]
            if kids:
                stack.extend(kids.values())

    def _invalidate(self) -> None:
        self._dfs_cache = None
        self.version += 1

    # ------------------------------------------------------------ navigation
    def lookup(self, path: str) -> int:
        """Resolve ``path`` to an ino; KeyError if any component is missing."""
        cur = ROOT_INO
        for seg in components(path):
            if self._ftype[cur] != _DIR:
                raise NotADirectoryError(f"{seg} under a file in {path!r}")
            kids = self._children[cur]
            assert kids is not None
            try:
                cur = kids[seg]
            except KeyError:
                raise KeyError(f"{path!r}: component {seg!r} not found") from None
        return cur

    def try_lookup(self, path: str) -> Optional[int]:
        try:
            return self.lookup(path)
        except (KeyError, NotADirectoryError):
            return None

    def resolve(self, ino: int) -> List[int]:
        """Ancestor chain root → ``ino`` inclusive (the path-resolution walk)."""
        self._check(ino)
        parent = self._parent
        chain: List[int] = []
        append = chain.append
        cur = ino
        while cur:
            append(cur)
            cur = int(parent[cur])
        append(ROOT_INO)
        chain.reverse()
        return chain

    def path_of(self, ino: int) -> str:
        self._check(ino)
        if ino == ROOT_INO:
            return "/"
        parts: List[str] = []
        cur = ino
        while cur != ROOT_INO:
            parts.append(self._name[cur])
            cur = int(self._parent[cur])
        return "/" + "/".join(reversed(parts))

    def ancestors(self, ino: int) -> Iterator[int]:
        """Yield proper ancestors of ``ino``, nearest first, ending at root."""
        self._check(ino)
        cur = int(self._parent[ino])
        while True:
            yield cur
            if cur == ROOT_INO:
                return
            cur = int(self._parent[cur])

    def iter_dirs(self) -> Iterator[int]:
        """All live directory inos (ascending ino order)."""
        n = self._n
        mask = self._alive[:n] & (self._ftype[:n] == _DIR)
        yield from np.nonzero(mask)[0].tolist()

    def iter_subtree_dirs(self, root: int) -> Iterator[int]:
        """Directories in ``root``'s subtree, preorder (root first)."""
        self._check_dir(root)
        ftype = self._ftype
        stack = [root]
        while stack:
            ino = stack.pop()
            yield ino
            kids = self._children[ino]
            assert kids is not None
            for child in kids.values():
                if ftype[child] == _DIR:
                    stack.append(child)

    # ------------------------------------------------------------ bulk views
    def dfs_index(self) -> DfsIndex:
        """Return the (cached) preorder index over live directories."""
        if self._dfs_cache is None:
            self._dfs_cache = self._build_dfs()
        return self._dfs_cache

    def _build_dfs(self) -> DfsIndex:
        n = self._n
        tin = np.full(n, -1, dtype=np.int64)
        tout = np.full(n, -1, dtype=np.int64)
        order = np.empty(self._num_dirs, dtype=np.int64)
        # vectorised child-list construction: every live non-root directory,
        # grouped by parent with names in ascending order (numpy '<U'
        # comparison is code-point order, identical to Python's str order)
        live_dir = self._alive[:n] & (self._ftype[:n] == _DIR)
        dirs = np.nonzero(live_dir)[0]
        nonroot = dirs[dirs != ROOT_INO]
        parents = self._parent[nonroot]
        names = np.array([self._name[i] for i in nonroot.tolist()], dtype=str)
        grouped = np.lexsort((names, parents))
        sorted_children = nonroot[grouped].tolist()
        sorted_parents = parents[grouped]
        cstart = np.searchsorted(sorted_parents, dirs, side="left")
        cend = np.searchsorted(sorted_parents, dirs, side="right")
        # CSR slice bounds indexed by ino
        start_of = np.zeros(n, dtype=np.int64)
        end_of = np.zeros(n, dtype=np.int64)
        start_of[dirs] = cstart
        end_of[dirs] = cend
        start_l = start_of.tolist()
        end_l = end_of.tolist()
        order_l: List[int] = []
        pos = 0
        # preorder: pop smallest-name child first (slices are name-ascending,
        # so push each reversed)
        stack = [ROOT_INO]
        while stack:
            ino = stack.pop()
            order_l.append(ino)
            pos += 1
            lo = start_l[ino]
            hi = end_l[ino]
            if lo != hi:
                kids = sorted_children[lo:hi]
                kids.reverse()
                stack.extend(kids)
        assert pos == self._num_dirs
        order[:] = order_l
        tin[order] = np.arange(pos, dtype=np.int64)
        # tout = tin + subtree size; in reverse preorder every child is seen
        # before its parent, so one backward accumulation folds sizes upward
        sizes = [1] * pos
        parent_pos = tin[self._parent[order]].tolist()
        for i in range(pos - 1, 0, -1):
            sizes[parent_pos[i]] += sizes[i]
        tout[order] = tin[order] + np.asarray(sizes, dtype=np.int64)
        return DfsIndex(order, tin, tout)

    def _view(self, arr: np.ndarray) -> np.ndarray:
        view = arr[: self._n]
        view.flags.writeable = False
        return view

    def depth_array(self) -> np.ndarray:
        """Depths indexed by ino (dead inodes included; check liveness separately).

        Zero-copy read-only view; copy before mutating.
        """
        return self._view(self._depth)

    def parent_array(self) -> np.ndarray:
        return self._view(self._parent)

    def child_file_counts(self) -> np.ndarray:
        return self._view(self._n_child_files)

    def child_dir_counts(self) -> np.ndarray:
        return self._view(self._n_child_dirs)

    def dir_mask(self) -> np.ndarray:
        """Boolean array indexed by ino: live directory?  (Fresh, writable.)"""
        n = self._n
        return self._alive[:n] & (self._ftype[:n] == _DIR)

    # ------------------------------------------------------------- utilities
    def owning_dir(self, ino: int) -> int:
        """The directory whose partition owns this entry: itself if a dir, else parent."""
        self._check(ino)
        if self._ftype[ino] == _DIR:
            return ino
        return int(self._parent[ino])

    def validate(self) -> None:
        """Internal consistency check (tests and failure-injection hooks)."""
        n_dirs = 0
        n_files = 0
        assert len(self._name) == self._n and len(self._children) == self._n
        for ino in range(self._n):
            if not self._alive[ino]:
                continue
            if self._ftype[ino] == _DIR:
                n_dirs += 1
                kids = self._children[ino]
                assert kids is not None, f"dir {ino} lost its child map"
                nf = sum(
                    1 for c in kids.values() if self._ftype[c] != _DIR
                )
                nd = len(kids) - nf
                assert nf == self._n_child_files[ino], f"file count drift at {ino}"
                assert nd == self._n_child_dirs[ino], f"dir count drift at {ino}"
                for name, c in kids.items():
                    assert self._alive[c], f"dead child {c} linked at {ino}"
                    assert self._parent[c] == ino, f"parent drift at {c}"
                    assert self._name[c] == name, f"name drift at {c}"
                    assert self._depth[c] == self._depth[ino] + 1, f"depth drift at {c}"
            else:
                n_files += 1
        assert n_dirs == self._num_dirs, "dir counter drift"
        assert n_files == self._num_files, "file counter drift"
