"""Hierarchical file-system namespace substrate.

The namespace is the directory tree every other layer partitions, migrates,
and charges costs against.  Directories are the unit of load balancing (per
the paper, file-level metadata is never migrated independently); files are
still materialised as inodes so traces and the KV store exercise realistic
lookups.

Key pieces:

* :class:`~repro.namespace.tree.NamespaceTree` — array-backed tree with O(1)
  parent/depth access, per-directory child maps, and an invalidate-on-mutation
  DFS (Euler interval) index that makes "is ``d`` inside subtree ``s``" an O(1)
  interval test and subtree rollups a vectorised segment sum.
* :mod:`~repro.namespace.builder` — seeded synthetic namespace generators
  matching the three workload families of the paper's evaluation.
* :mod:`~repro.namespace.stats` — per-directory access counters with subtree
  rollups (the Data Collector's raw material, Table 1 features).
"""

from repro.namespace.inode import FileType, Inode
from repro.namespace.path import basename, components, dirname, join, normalize
from repro.namespace.stats import AccessStats
from repro.namespace.tree import ROOT_INO, NamespaceTree

__all__ = [
    "FileType",
    "Inode",
    "NamespaceTree",
    "ROOT_INO",
    "AccessStats",
    "components",
    "normalize",
    "join",
    "basename",
    "dirname",
]
