"""Seeded synthetic namespace generators.

One builder per workload family in the paper's evaluation (§5.1), plus
generic balanced/random trees for unit tests and micro-benchmarks.  Every
builder takes an :class:`~repro.sim.rng.RngStream` and is fully deterministic
given it.

Shape targets (drawn from the papers the traces come from):

* **software project** (Trace-RW source [34]): moderate depth (~6), wide
  module directories, many small source/header files, per-module build output
  directories that the compilation phase writes into.
* **web tree** (Trace-RO source [4, 39]): deep (10+ levels, the paper notes
  namespaces "exceeding ten levels"), heavy-tailed fanout, read-only.
* **cloud tree** (Trace-WI source [40]): per-tenant home directories with
  date-partitioned sub-directories that receive bursts of file creation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.namespace.tree import NamespaceTree
from repro.sim.rng import RngStream

__all__ = [
    "BuiltNamespace",
    "build_balanced",
    "build_random",
    "build_software_project",
    "build_web_tree",
    "build_cloud_tree",
]


@dataclass
class BuiltNamespace:
    """A generated tree plus the role annotations trace generators need."""

    tree: NamespaceTree
    #: directories a workload's read phase targets (e.g. source dirs)
    read_dirs: List[int] = field(default_factory=list)
    #: directories a workload's write phase targets (e.g. build output dirs)
    write_dirs: List[int] = field(default_factory=list)
    #: free-form extras (per-builder)
    info: Dict[str, object] = field(default_factory=dict)


def build_balanced(depth: int, fanout: int, files_per_dir: int = 0) -> BuiltNamespace:
    """A perfectly balanced tree: every internal dir has ``fanout`` dir children."""
    if depth < 0 or fanout < 0:
        raise ValueError("depth and fanout must be non-negative")
    tree = NamespaceTree()
    frontier = [0]
    all_dirs = [0]
    for level in range(depth):
        nxt: List[int] = []
        for d in frontier:
            for j in range(fanout):
                c = tree.create_dir(d, f"d{level}_{j}")
                nxt.append(c)
                all_dirs.append(c)
        frontier = nxt
    for d in all_dirs:
        for j in range(files_per_dir):
            tree.create_file(d, f"f{j}")
    return BuiltNamespace(tree=tree, read_dirs=list(all_dirs), write_dirs=list(frontier))


def build_random(
    rng: RngStream,
    n_dirs: int,
    files_per_dir_mean: float = 4.0,
    depth_bias: float = 0.7,
) -> BuiltNamespace:
    """Random tree by preferential attachment with a depth-decaying bias.

    ``depth_bias`` < 1 makes shallow directories more likely parents, giving
    the bushy-near-root shape real namespaces show.
    """
    if n_dirs < 1:
        raise ValueError("need at least the root")
    tree = NamespaceTree()
    dirs = [0]
    weights = [1.0]
    for i in range(1, n_dirs):
        w = np.asarray(weights)
        w = w / w.sum()
        parent = dirs[int(rng.choice(len(dirs), p=w))]
        d = tree.create_dir(parent, f"dir{i}")
        dirs.append(d)
        weights.append(depth_bias ** tree.depth(d))
    n_files = rng.generator.poisson(files_per_dir_mean, size=len(dirs))
    for d, nf in zip(dirs, n_files):
        for j in range(int(nf)):
            tree.create_file(d, f"f{j}")
    return BuiltNamespace(tree=tree, read_dirs=list(dirs), write_dirs=list(dirs))


def build_software_project(
    rng: RngStream,
    n_modules: int = 40,
    dirs_per_module: int = 8,
    files_per_dir: int = 10,
    headers_per_module: int = 8,
    max_depth: int = 8,
) -> BuiltNamespace:
    """A build-tree namespace for Trace-RW (compilation workload).

    Layout::

        /src/<mod>/<sub>/<sub>/...   source files (depths reaching ~8, the
                                     "exceeding ten levels" shape of §2.4)
        /include/<mod>/              headers stat()ed by every dependent module
        /build/<mod>/<sub>/...       object-file output dirs mirroring src
        /tests/<mod>/                test sources

    Source subdirectories form chains biased toward depth so hash
    partitioning pays real path-resolution penalties; each source dir has a
    mirrored build output dir at the same relative path.
    """
    tree = NamespaceTree()
    src_root = tree.makedirs("/src")
    inc_root = tree.makedirs("/include")
    build_root = tree.makedirs("/build")
    tests_root = tree.makedirs("/tests")

    read_dirs: List[int] = []
    write_dirs: List[int] = []
    header_dirs: List[int] = []
    #: per-module list of (source dir, mirrored build dir) pairs
    module_dirs: List[List[tuple]] = []
    module_names = [f"mod{m:03d}" for m in range(n_modules)]

    for mod in module_names:
        m_src = tree.create_dir(src_root, mod)
        m_build = tree.create_dir(build_root, mod)
        read_dirs.append(m_src)
        write_dirs.append(m_build)
        pairs = [(m_src, m_build)]
        # grow nested subdirectories, biased to extend the deepest chain
        for s in range(dirs_per_module):
            if rng.random() < 0.6:
                parent_src, parent_build = pairs[-1]  # extend the chain
            else:
                parent_src, parent_build = pairs[int(rng.integers(0, len(pairs)))]
            if tree.depth(parent_src) >= max_depth:
                parent_src, parent_build = pairs[0]
            d_src = tree.create_dir(parent_src, f"sub{s}")
            d_build = tree.create_dir(parent_build, f"sub{s}")
            pairs.append((d_src, d_build))
            read_dirs.append(d_src)
            write_dirs.append(d_build)
        for d_src, _ in pairs:
            nf = max(1, int(rng.generator.poisson(files_per_dir)))
            for j in range(nf):
                tree.create_file(d_src, f"{mod}_{j}.c", size=int(rng.integers(512, 65536)))
        module_dirs.append(pairs)

        m_inc = tree.create_dir(inc_root, mod)
        header_dirs.append(m_inc)
        for j in range(headers_per_module):
            tree.create_file(m_inc, f"{mod}_{j}.h", size=int(rng.integers(256, 8192)))

        m_tests = tree.create_dir(tests_root, mod)
        read_dirs.append(m_tests)
        for j in range(max(1, files_per_dir // 3)):
            tree.create_file(m_tests, f"test_{j}.c")

    return BuiltNamespace(
        tree=tree,
        read_dirs=read_dirs,
        write_dirs=write_dirs,
        info={
            "header_dirs": header_dirs,
            "module_names": module_names,
            "module_dirs": module_dirs,
            "build_root": build_root,
            "src_root": src_root,
        },
    )


def build_web_tree(
    rng: RngStream,
    n_dirs: int = 4000,
    target_depth: int = 12,
    files_per_dir_mean: float = 6.0,
    fanout_tail: float = 1.4,
) -> BuiltNamespace:
    """A deep, heavy-tailed content tree for Trace-RO (web access log replay).

    Directory parents are drawn Zipf-style over existing directories so a few
    directories grow enormous fanout, while a biased random walk keeps pushing
    chains deeper until ``target_depth`` is regularly exceeded.
    """
    tree = NamespaceTree()
    top = [tree.create_dir(0, name) for name in ("static", "media", "docs", "api", "archive")]
    dirs: List[int] = [0, *top]

    # Phase 1: grow deep chains so the tree reaches the target depth.
    chain_budget = max(1, n_dirs // 6)
    made = len(top)
    for c in range(5):
        cur = top[c % len(top)]
        for lvl in range(target_depth - 1):
            if made >= chain_budget:
                break
            cur = tree.create_dir(cur, f"lvl{lvl}")
            dirs.append(cur)
            made += 1

    # Phase 2: heavy-tailed attachment for the remaining directories.
    i = 0
    while made < n_dirs - 1:
        w = rng.zipf_weights(len(dirs), fanout_tail)
        parent = dirs[int(rng.choice(len(dirs), p=w))]
        d = tree.create_dir(parent, f"p{i}")
        dirs.append(d)
        made += 1
        i += 1

    n_files = rng.generator.poisson(files_per_dir_mean, size=len(dirs))
    for d, nf in zip(dirs, n_files):
        for j in range(int(nf)):
            tree.create_file(d, f"page{j}.html", size=int(rng.integers(1024, 1 << 20)))

    # Read popularity will be Zipf over directories sorted by ino (builder
    # order), so earlier (shallower, near-root-chained) dirs are hotter.
    return BuiltNamespace(tree=tree, read_dirs=dirs, write_dirs=[], info={"top": top})


def build_cloud_tree(
    rng: RngStream,
    n_tenants: int = 50,
    days: int = 6,
    shards_per_day: int = 4,
    seed_files: int = 2,
) -> BuiltNamespace:
    """A multi-tenant tree for Trace-WI (write-intensive cloud FS).

    Layout: ``/tenants/<t>/<day>/<shard>/``.  The write-intensive trace
    creates files into the shard directories with a skew over tenants that
    drifts over time (hotspot churn, per the CFS characterisation).
    """
    tree = NamespaceTree()
    tenants_root = tree.makedirs("/tenants")
    shared_root = tree.makedirs("/shared")
    write_dirs: List[int] = []
    read_dirs: List[int] = [shared_root]
    tenant_shards: List[List[int]] = []
    for t in range(n_tenants):
        t_dir = tree.create_dir(tenants_root, f"tenant{t:03d}")
        shards: List[int] = []
        for d in range(days):
            day_dir = tree.create_dir(t_dir, f"2026-06-{d + 1:02d}")
            for s in range(shards_per_day):
                shard = tree.create_dir(day_dir, f"shard{s}")
                shards.append(shard)
                write_dirs.append(shard)
                for j in range(seed_files):
                    tree.create_file(shard, f"obj{j:04d}")
        tenant_shards.append(shards)
    for j in range(200):
        tree.create_file(shared_root, f"dataset{j:03d}", size=int(rng.integers(1 << 16, 1 << 24)))
    return BuiltNamespace(
        tree=tree,
        read_dirs=read_dirs,
        write_dirs=write_dirs,
        info={"tenant_shards": tenant_shards, "tenants_root": tenants_root},
    )
