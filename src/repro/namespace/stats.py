"""Per-directory access statistics (the Data Collector's raw counters).

The paper's Data Collector dumps, per directory and per epoch, the number of
metadata *read* ops (open/stat/lsdir) and *write* ops (create/mkdir/rmdir/
rename) charged to the subtree.  :class:`AccessStats` keeps the per-directory
counters; subtree totals come from the tree's DFS index in one vectorised
pass, because migration (and therefore the features in Table 1) operates on
subtrees, not single directories.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.namespace.tree import NamespaceTree

__all__ = ["AccessStats", "EpochSnapshot"]


class EpochSnapshot:
    """Frozen per-epoch counters (arrays indexed by ino)."""

    __slots__ = ("epoch", "reads", "writes", "lsdirs")

    def __init__(self, epoch: int, reads: np.ndarray, writes: np.ndarray, lsdirs: np.ndarray):
        self.epoch = epoch
        self.reads = reads
        self.writes = writes
        self.lsdirs = lsdirs

    @property
    def total_ops(self) -> int:
        return int(self.reads.sum() + self.writes.sum())


class AccessStats:
    """Accumulates per-directory read/write/lsdir counts for the current epoch.

    Counts are charged to the *owning directory* of the accessed entry (files
    charge their parent), matching the directory-granularity collection the
    paper uses to keep collector overhead low.
    """

    def __init__(self, tree: NamespaceTree):
        self._tree = tree
        cap = max(tree.capacity, 16)
        self._reads = np.zeros(cap, dtype=np.int64)
        self._writes = np.zeros(cap, dtype=np.int64)
        self._lsdirs = np.zeros(cap, dtype=np.int64)
        self._epoch = 0
        #: number of times the counter arrays were physically reallocated;
        #: doubling keeps this O(log capacity) regardless of op count
        self.growths = 0
        # deferred per-epoch op buffers (the vectorised replay path appends
        # bare dir inos here instead of incrementing counters per op); any
        # counter read flushes them first via np.add.at
        self._buf_reads: list = []
        self._buf_writes: list = []
        self._buf_lsdirs: list = []

    @property
    def epoch(self) -> int:
        return self._epoch

    def _ensure(self, ino: int) -> None:
        if ino >= self._reads.shape[0]:
            new_cap = max(ino + 1, self._reads.shape[0] * 2)
            for attr in ("_reads", "_writes", "_lsdirs"):
                old = getattr(self, attr)
                grown = np.zeros(new_cap, dtype=np.int64)
                grown[: old.shape[0]] = old
                setattr(self, attr, grown)
            self.growths += 1

    def _flush_buffers(self) -> None:
        """Fold the deferred op buffers into the counter arrays."""
        for buf, arrs in (
            (self._buf_reads, ("_reads",)),
            (self._buf_writes, ("_writes",)),
            (self._buf_lsdirs, ("_reads", "_lsdirs")),
        ):
            if not buf:
                continue
            self._ensure(max(buf))
            idx = np.asarray(buf, dtype=np.int64)
            for attr in arrs:
                np.add.at(getattr(self, attr), idx, 1)
            buf.clear()

    # ------------------------------------------------------------- recording
    def record_read(self, dir_ino: int, n: int = 1) -> None:
        self._ensure(dir_ino)
        self._reads[dir_ino] += n

    def record_write(self, dir_ino: int, n: int = 1) -> None:
        self._ensure(dir_ino)
        self._writes[dir_ino] += n

    def record_lsdir(self, dir_ino: int, n: int = 1) -> None:
        """lsdir counts as a read but is also tracked separately: its extra
        cost term in Eq. (2) scales with how many MDSs hold the children."""
        self._ensure(dir_ino)
        self._reads[dir_ino] += n
        self._lsdirs[dir_ino] += n

    # -------------------------------------------------------------- snapshot
    def views(self) -> Dict[str, np.ndarray]:
        """Live (mutable) views of the counters, sized to tree capacity."""
        self._flush_buffers()
        self._ensure(self._tree.capacity - 1)
        cap = self._tree.capacity
        return {
            "reads": self._reads[:cap],
            "writes": self._writes[:cap],
            "lsdirs": self._lsdirs[:cap],
        }

    def snapshot_and_reset(self) -> EpochSnapshot:
        """Freeze the epoch's counters, advance the epoch, zero the live ones."""
        self._flush_buffers()
        self._ensure(self._tree.capacity - 1)
        cap = self._tree.capacity
        snap = EpochSnapshot(
            self._epoch,
            self._reads[:cap].copy(),
            self._writes[:cap].copy(),
            self._lsdirs[:cap].copy(),
        )
        self._reads[:] = 0
        self._writes[:] = 0
        self._lsdirs[:] = 0
        self._epoch += 1
        return snap

    # --------------------------------------------------------------- rollups
    def subtree_totals(
        self, snapshot: Optional[EpochSnapshot] = None
    ) -> Dict[str, np.ndarray]:
        """Subtree-aggregated reads/writes per directory (indexed by ino).

        Uses the tree's DFS prefix-sum index; the result covers every live
        directory in one pass.
        """
        idx = self._tree.dfs_index()
        if snapshot is None:
            v = self.views()
            reads, writes, lsdirs = v["reads"], v["writes"], v["lsdirs"]
        else:
            reads, writes, lsdirs = snapshot.reads, snapshot.writes, snapshot.lsdirs
        cap = self._tree.capacity

        def pad(a: np.ndarray) -> np.ndarray:
            if a.shape[0] == cap:
                return a
            out = np.zeros(cap, dtype=a.dtype)
            out[: a.shape[0]] = a[:cap] if a.shape[0] > cap else a
            return out

        return {
            "reads": idx.subtree_sum(pad(reads).astype(np.float64)),
            "writes": idx.subtree_sum(pad(writes).astype(np.float64)),
            "lsdirs": idx.subtree_sum(pad(lsdirs).astype(np.float64)),
        }
