"""Inode record types.

The tree in :mod:`repro.namespace.tree` stores inode fields in parallel
arrays for speed; :class:`Inode` is the materialised view handed to user code
(the KV store values, collector dumps, example scripts).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["FileType", "Inode"]


class FileType(enum.IntEnum):
    """POSIX-ish file type; only the two the metadata path distinguishes."""

    DIRECTORY = 0
    REGULAR = 1


@dataclass
class Inode:
    """A materialised inode (directory entry + attributes).

    ``fake`` marks the *fake inode* replicas the paper introduces: when a
    subtree is migrated, its new owner stores lightweight ancestor entries so
    forwarded path resolutions can be answered without another hop; Eq. (2)'s
    ``T_inode * (m + k)`` term charges one extra inode read per partition
    boundary precisely for these.
    """

    ino: int
    parent: int
    name: str
    ftype: FileType
    depth: int
    size: int = 0
    mode: int = 0o755
    uid: int = 0
    gid: int = 0
    nlink: int = 1
    fake: bool = False
    xattrs: Dict[str, str] = field(default_factory=dict)

    @property
    def is_dir(self) -> bool:
        return self.ftype == FileType.DIRECTORY

    def key(self) -> bytes:
        """KV-store key: ``(parent inode number, name)`` per InfiniFS/CFS layout."""
        return b"%020d/%s" % (self.parent, self.name.encode("utf-8"))

    def encode(self) -> bytes:
        """Compact value encoding for the KV store."""
        return "|".join(
            [
                str(self.ino),
                str(self.parent),
                self.name,
                str(int(self.ftype)),
                str(self.depth),
                str(self.size),
                str(self.mode),
                str(self.uid),
                str(self.gid),
                str(self.nlink),
                "1" if self.fake else "0",
            ]
        ).encode("utf-8")

    @classmethod
    def decode(cls, raw: bytes) -> "Inode":
        parts = raw.decode("utf-8").split("|")
        if len(parts) != 11:
            raise ValueError(f"corrupt inode record: {raw!r}")
        return cls(
            ino=int(parts[0]),
            parent=int(parts[1]),
            name=parts[2],
            ftype=FileType(int(parts[3])),
            depth=int(parts[4]),
            size=int(parts[5]),
            mode=int(parts[6]),
            uid=int(parts[7]),
            gid=int(parts[8]),
            nlink=int(parts[9]),
            fake=parts[10] == "1",
        )
