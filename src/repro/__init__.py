"""Origami reproduction: ML-driven metadata load balancing for distributed FS.

Reproduces Wang et al., *"Origami: Efficient ML-Driven Metadata Load
Balancing for Distributed File Systems"* (ICPP 2025) as a pure-Python
system: the analytic RCT/JCT cost model (§3.1), the Meta-OPT migration
search (§3.2, Algorithm 1), the OrigamiFS metadata cluster as a
discrete-event simulation (§4.2), the full training workflow (§4.3), the
paper's baselines, and a benchmark per evaluation figure/table.

Quick tour::

    from repro import (
        SeedSequenceFactory, generate_trace_rw, CostParams,
        SimConfig, run_simulation, OrigamiPolicy, CoarseHashPolicy,
        collect_training_data, train_origami_model,
    )

    ssf = SeedSequenceFactory(0)
    built, trace = generate_trace_rw(ssf.stream("w"), n_ops=50_000)

    # train the benefit model (Meta-OPT labels, Table-1 features)
    data, _ = collect_training_data(built.tree, trace, n_mds=5,
                                    params=CostParams(cache_depth=2), delta=50.0)
    model = train_origami_model(data)

    # replay under Origami on a simulated 5-MDS cluster
    built, trace = generate_trace_rw(SeedSequenceFactory(1).stream("w"))
    result = run_simulation(built.tree, trace, OrigamiPolicy(model),
                            SimConfig(n_mds=5))
    print(result.steady_state_throughput())

See ``examples/`` for runnable end-to-end scripts and ``benchmarks/`` for
the per-figure reproduction harness.
"""

from repro.balancers import (
    AdamRLPolicy,
    BalancePolicy,
    CoarseHashPolicy,
    EvenPartitionPolicy,
    FineHashPolicy,
    LunulePolicy,
    MetaOptOraclePolicy,
    MLTreePolicy,
    OrigamiPolicy,
    SingleMdsPolicy,
)
from repro.cluster import ImbalanceReport, MigrationDecision, PartitionMap, imbalance_factor
from repro.core import MetaOptResult, exhaustive_opt, generate_labels, meta_opt
from repro.costmodel import ClusterLoad, CostParams, OpType, SubtreeLedger, evaluate_trace
from repro.fs import OrigamiFS, SimConfig, SimResult, run_simulation
from repro.ml import FEATURE_NAMES, FeatureExtractor, GBDTRegressor, MLPRegressor, TrainingSet
from repro.namespace import NamespaceTree
from repro.sim import Environment, SeedSequenceFactory
from repro.training import OnlineOrigamiPolicy, collect_training_data, train_models, train_origami_model
from repro.workloads import (
    Trace,
    TraceBuilder,
    generate_trace_ro,
    generate_trace_rw,
    generate_trace_wi,
)
from repro.workloads.serialize import load_bundle, save_bundle

__version__ = "1.0.0"

__all__ = [
    # simulation substrate
    "Environment",
    "SeedSequenceFactory",
    # namespace & cluster
    "NamespaceTree",
    "PartitionMap",
    "MigrationDecision",
    "imbalance_factor",
    "ImbalanceReport",
    # cost model
    "CostParams",
    "OpType",
    "evaluate_trace",
    "ClusterLoad",
    "SubtreeLedger",
    # the contribution
    "meta_opt",
    "exhaustive_opt",
    "MetaOptResult",
    "generate_labels",
    # ML
    "GBDTRegressor",
    "MLPRegressor",
    "FeatureExtractor",
    "TrainingSet",
    "FEATURE_NAMES",
    # training workflow
    "collect_training_data",
    "train_origami_model",
    "train_models",
    # workloads
    "Trace",
    "TraceBuilder",
    "generate_trace_rw",
    "generate_trace_ro",
    "generate_trace_wi",
    # simulator
    "OrigamiFS",
    "SimConfig",
    "SimResult",
    "run_simulation",
    # policies
    "BalancePolicy",
    "SingleMdsPolicy",
    "EvenPartitionPolicy",
    "CoarseHashPolicy",
    "FineHashPolicy",
    "LunulePolicy",
    "MLTreePolicy",
    "AdamRLPolicy",
    "OrigamiPolicy",
    "OnlineOrigamiPolicy",
    "MetaOptOraclePolicy",
    # tooling
    "save_bundle",
    "load_bundle",
    "__version__",
]
