"""Trace-RO: a read-only web access trace (skewed, deep, drifting).

Models the Apache-access-log replay of [4, 39]: only read-type metadata
operations (stat/open/readdir), a pronounced Zipf skew over directories,
paths extending "to a considerable depth", and hotspot drift across time
segments (Lunule's motivation: temporal locality shifts).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.namespace.builder import BuiltNamespace, build_web_tree
from repro.sim.rng import RngStream
from repro.workloads.trace import Trace, TraceBuilder
from repro.workloads.zipfian import DriftingZipf

__all__ = ["generate_trace_ro"]


def generate_trace_ro(
    rng: RngStream,
    n_ops: int = 100_000,
    n_dirs: int = 3000,
    alpha: float = 1.15,
    segments: int = 8,
    drift: float = 0.15,
    readdir_fraction: float = 0.08,
) -> Tuple[BuiltNamespace, Trace]:
    """Build the web namespace and a read-only access trace."""
    built = build_web_tree(rng, n_dirs=n_dirs)
    tree = built.tree
    # only directories that contain files can serve page requests
    page_dirs = [d for d in built.read_dirs if tree.n_child_files(d) > 0]
    sampler = DriftingZipf(rng, page_dirs, alpha=alpha, drift=drift)
    # The tree is static during generation, so the per-directory file-name
    # lists are precomputed once instead of being rebuilt per sampled op.
    # RNG-free: the draw sequence (and hence the trace) is unchanged.
    files_of = {
        d: [n for n, i in tree.children(d).items() if not tree.is_dir(i)]
        for d in page_dirs
    }

    tb = TraceBuilder(label="Trace-RO")
    per_seg = max(1, n_ops // segments)
    for seg in range(segments):
        want = per_seg if seg < segments - 1 else n_ops - len(tb)
        dirs = sampler.sample(want)
        rolls = rng.random(want)
        for d, roll in zip(dirs, rolls):
            d = int(d)
            if roll < readdir_fraction:
                tb.readdir(d)
            else:
                names = files_of[d]
                name = names[int(rng.integers(0, len(names)))]
                if roll < readdir_fraction + (1 - readdir_fraction) * 0.6:
                    tb.stat(d, name)
                else:
                    tb.open(d, name)
        sampler.advance()
    trace = tb.build()
    assert trace.write_fraction() == 0.0
    return built, trace
