"""Trace/namespace bundle serialization (compact ``.npz`` + embedded JSON).

A bundle stores everything needed to replay an experiment elsewhere: the
namespace tree (parallel arrays) and the trace columns.  Useful for sharing
generated workloads, pinning a workload across code versions, or feeding the
simulator from externally converted real traces.

Format: a single NumPy ``.npz`` containing the tree's parallel arrays (names
joined with ``\\x00``), the trace columns, and a JSON header with versioning.
"""

from __future__ import annotations

import json
from typing import Optional, Tuple

import numpy as np

from repro.namespace.inode import FileType
from repro.namespace.tree import NamespaceTree
from repro.workloads.trace import Trace

__all__ = ["save_bundle", "load_bundle", "BUNDLE_VERSION"]

BUNDLE_VERSION = 1
_SEP = "\x00"


def save_bundle(path: str, tree: NamespaceTree, trace: Optional[Trace] = None) -> None:
    """Write tree (+ optional trace) to ``path`` as an ``.npz`` bundle."""
    header = {
        "version": BUNDLE_VERSION,
        "num_dirs": tree.num_dirs,
        "num_files": tree.num_files,
        "has_trace": trace is not None,
        "trace_label": trace.label if trace is not None else "",
        "trace_has_names": trace is not None and trace.names is not None,
        "trace_has_think": trace is not None and trace.think_ms is not None,
    }
    cap = tree.capacity  # logical extent; physical arrays carry slack beyond it
    arrays = {
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        "parent": np.asarray(tree._parent[:cap], dtype=np.int64),
        "ftype": np.asarray(tree._ftype[:cap], dtype=np.int8),
        "alive": np.asarray(tree._alive[:cap], dtype=bool),
        "size": np.asarray(tree._size[:cap], dtype=np.int64),
        "names": np.frombuffer(_SEP.join(tree._name).encode("utf-8"), dtype=np.uint8),
    }
    if trace is not None:
        arrays["trace_op"] = trace.op
        arrays["trace_dir"] = trace.dir_ino
        arrays["trace_aux"] = trace.aux
        if trace.names is not None:
            arrays["trace_names"] = np.frombuffer(
                _SEP.join(trace.names).encode("utf-8"), dtype=np.uint8
            )
        if trace.think_ms is not None:
            arrays["trace_think"] = trace.think_ms
    np.savez_compressed(path, **arrays)


def load_bundle(path: str) -> Tuple[NamespaceTree, Optional[Trace]]:
    """Reconstruct a tree (+ trace) saved by :func:`save_bundle`."""
    with np.load(path) as z:
        header = json.loads(bytes(z["header"]).decode("utf-8"))
        if header.get("version") != BUNDLE_VERSION:
            raise ValueError(f"unsupported bundle version {header.get('version')}")
        parent = z["parent"]
        ftype = z["ftype"]
        alive = z["alive"]
        size = z["size"]
        names = bytes(z["names"]).decode("utf-8").split(_SEP)
        tree = _rebuild_tree(parent, ftype, alive, size, names)
        if tree.num_dirs != header["num_dirs"] or tree.num_files != header["num_files"]:
            raise ValueError("bundle is corrupt: entity counts do not match header")
        trace = None
        if header["has_trace"]:
            tnames = None
            if header["trace_has_names"]:
                tnames = bytes(z["trace_names"]).decode("utf-8").split(_SEP)
            # .get(): bundles written before the think column existed
            think = z["trace_think"] if header.get("trace_has_think") else None
            trace = Trace(
                z["trace_op"],
                z["trace_dir"],
                z["trace_aux"],
                tnames,
                header["trace_label"],
                think,
            )
    return tree, trace


def _rebuild_tree(parent, ftype, alive, size, names) -> NamespaceTree:
    """Replay creations in ino order (parents always precede children).

    Dead inos are materialised then removed so ino numbering is preserved —
    traces reference inos, so numbering must survive the round trip.
    """
    n = parent.shape[0]
    if not (ftype.shape[0] == alive.shape[0] == size.shape[0] == n and len(names) == n):
        raise ValueError("bundle is corrupt: array lengths disagree")
    tree = NamespaceTree()
    dead = []
    for ino in range(1, n):
        p = int(parent[ino])
        name = names[ino]
        if not alive[ino]:
            # a removed entry's name may have been reused by a live one;
            # dead entries get placeholder names (they are removed below)
            name = f"__dead_{ino}"
        if ftype[ino] == int(FileType.DIRECTORY):
            got = tree.create_dir(p, name)
        else:
            got = tree.create_file(p, name, size=int(size[ino]))
        if got != ino:
            raise ValueError(f"bundle is corrupt: ino drift at {ino}")
        if not alive[ino]:
            dead.append(ino)
    # remove dead entries deepest-first so directories empty out before rmdir
    for ino in sorted(dead, key=tree.depth, reverse=True):
        tree.remove(ino)
    return tree
