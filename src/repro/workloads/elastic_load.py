"""Elasticity scenario traces: diurnal load, flash crowds, onboarding waves.

The fixed-pool workloads saturate the cluster end to end — the right regime
for comparing balancers, but one where a pool that cannot shrink is never
wasteful and a pool that cannot grow is never behind.  These generators
shape *offered load* through the trace's ``think_ms`` column (client idle
time before issue), giving the elastic subsystem something realistic to
chase:

* **diurnal** — a sinusoidal day/night cycle over ``days`` simulated days:
  think time breathes between ``think_max_ms`` (trough) and
  ``think_min_ms`` (peak), the λFS motivation case.
* **flash** — a modest base load punctuated by short crowds: think time
  collapses by ``crowd_boost`` and ops concentrate on one crowd tenant.
* **onboard** — tenants arrive in waves; each wave adds tenants and
  shortens think time, so demand ratchets upward in steps.

Think time is a deterministic function of the op index (the RNG is spent
only on content — tenants, shards, names), so load shape is identical
across seeds while the namespace churn still varies.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.namespace.builder import BuiltNamespace, build_cloud_tree
from repro.sim.rng import RngStream
from repro.workloads.trace import Trace, TraceBuilder
from repro.workloads.zipfian import DriftingZipf

__all__ = [
    "generate_trace_diurnal",
    "generate_trace_flash",
    "generate_trace_onboard",
]


def _emit_tenant_burst(
    tb: TraceBuilder,
    rng: RngStream,
    shard: int,
    created: Dict[int, List[str]],
    uid: int,
    burst: int,
    write_fraction: float,
    shared_root: int,
    shared_files: List[str],
) -> int:
    """Emit one tenant burst into ``shard``; returns the advanced uid."""
    for _ in range(burst):
        if rng.random() < write_fraction:
            names = created.get(shard)
            if rng.random() < 0.85 or not names:
                name = f"obj_{uid:08d}"
                uid += 1
                tb.create(shard, name)
                created.setdefault(shard, []).append(name)
            else:
                tb.unlink(shard, names.pop())
        else:
            sub = rng.random()
            if sub < 0.3:
                tb.readdir(shard)
            elif sub < 0.8 and created.get(shard):
                names = created[shard]
                tb.stat(shard, names[int(rng.integers(0, len(names)))])
            else:
                name = shared_files[int(rng.integers(0, len(shared_files)))]
                tb.open(shared_root, name)
    return uid


def generate_trace_diurnal(
    rng: RngStream,
    n_ops: int = 60_000,
    n_tenants: int = 24,
    days: float = 2.0,
    alpha: float = 1.1,
    drift: float = 0.25,
    write_fraction: float = 0.45,
    burst_mean: float = 10.0,
    think_min_ms: float = 0.05,
    think_max_ms: float = 12.0,
    sharpness: float = 2.0,
) -> Tuple[BuiltNamespace, Trace]:
    """Sinusoidal day/night offered load over ``days`` simulated days.

    Op index stands in for wall-clock phase: op ``i`` sits at cycle phase
    ``2*pi*days*i/n_ops``, with the run starting at a trough (night).
    ``sharpness > 1`` narrows the peak, as real diurnal curves do.
    """
    built = build_cloud_tree(rng, n_tenants=n_tenants)
    tree = built.tree
    tenant_shards: List[List[int]] = built.info["tenant_shards"]
    shared_root = built.read_dirs[0]
    shared_files = [
        n for n, i in tree.children(shared_root).items() if not tree.is_dir(i)
    ]
    shards_per_day = 4  # builder layout: 4 date shards per tenant-day
    n_days_avail = max(1, len(tenant_shards[0]) // shards_per_day)

    tenants = DriftingZipf(rng, list(range(n_tenants)), alpha=alpha, drift=drift)
    tb = TraceBuilder(label="Trace-Diurnal")
    created: Dict[int, List[str]] = {}
    uid = 0
    span = think_max_ms - think_min_ms
    seg_ops = max(1, n_ops // 16)  # drift the tenant skew ~16x per run
    while len(tb) < n_ops:
        i = len(tb)
        # depth of night in [0, 1]: 1 at the trough (op 0), 0 at midday
        depth = (0.5 * (1.0 + math.cos(2.0 * math.pi * days * i / n_ops))) ** sharpness
        think = think_min_ms + span * depth
        day = int(days * i / n_ops) % n_days_avail
        t = int(tenants.sample(1)[0])
        todays = tenant_shards[t][day * shards_per_day : (day + 1) * shards_per_day]
        shard = int(todays[int(rng.integers(0, len(todays)))])
        burst = min(n_ops - i, max(1, int(rng.exponential(burst_mean))))
        before = len(tb)
        uid = _emit_tenant_burst(
            tb, rng, shard, created, uid, burst,
            write_fraction, shared_root, shared_files,
        )
        tb.set_think(before, think)
        if i // seg_ops != len(tb) // seg_ops:
            tenants.advance()
    return built, tb.build()


def generate_trace_flash(
    rng: RngStream,
    n_ops: int = 60_000,
    n_tenants: int = 24,
    n_crowds: int = 3,
    crowd_frac: float = 0.08,
    crowd_boost: float = 40.0,
    base_think_ms: float = 2.0,
    alpha: float = 1.1,
    drift: float = 0.25,
    write_fraction: float = 0.3,
    burst_mean: float = 8.0,
) -> Tuple[BuiltNamespace, Trace]:
    """Quiet base load punctuated by ``n_crowds`` flash crowds.

    Crowd windows are evenly spaced, each covering ``crowd_frac`` of the
    trace; inside one, think time divides by ``crowd_boost`` and 80% of
    ops pile onto a single (rng-chosen) crowd tenant — the
    news-event/viral-object shape flash provisioning must absorb.
    """
    built = build_cloud_tree(rng, n_tenants=n_tenants)
    tree = built.tree
    tenant_shards: List[List[int]] = built.info["tenant_shards"]
    shared_root = built.read_dirs[0]
    shared_files = [
        n for n, i in tree.children(shared_root).items() if not tree.is_dir(i)
    ]

    crowd_len = max(1, int(n_ops * crowd_frac))
    windows = []
    for c in range(n_crowds):
        start = int(n_ops * (c + 1) / (n_crowds + 1))
        target = int(rng.integers(0, n_tenants))
        windows.append((start, start + crowd_len, target))

    tenants = DriftingZipf(rng, list(range(n_tenants)), alpha=alpha, drift=drift)
    tb = TraceBuilder(label="Trace-Flash")
    created: Dict[int, List[str]] = {}
    uid = 0
    seg_ops = max(1, n_ops // 12)
    while len(tb) < n_ops:
        i = len(tb)
        crowd = next((w for w in windows if w[0] <= i < w[1]), None)
        if crowd is not None:
            think = base_think_ms / crowd_boost
            t = crowd[2] if rng.random() < 0.8 else int(tenants.sample(1)[0])
        else:
            think = base_think_ms
            t = int(tenants.sample(1)[0])
        shards = tenant_shards[t]
        shard = int(shards[int(rng.integers(0, len(shards)))])
        burst = min(n_ops - i, max(1, int(rng.exponential(burst_mean))))
        before = len(tb)
        uid = _emit_tenant_burst(
            tb, rng, shard, created, uid, burst,
            write_fraction, shared_root, shared_files,
        )
        tb.set_think(before, think)
        if i // seg_ops != len(tb) // seg_ops:
            tenants.advance()
    return built, tb.build()


def generate_trace_onboard(
    rng: RngStream,
    n_ops: int = 60_000,
    n_tenants: int = 24,
    waves: int = 4,
    base_think_ms: float = 3.0,
    onboard_write_fraction: float = 0.8,
    steady_write_fraction: float = 0.35,
    burst_mean: float = 10.0,
) -> Tuple[BuiltNamespace, Trace]:
    """Tenant-onboarding waves: demand ratchets up in steps.

    The trace is split into ``waves`` equal segments; wave ``w`` activates
    the next ``n_tenants/waves`` tenants, think time shrinks to
    ``base_think_ms/(w+1)`` (more tenants, more aggregate demand), and the
    *newest* tenants write-heavily (initial data ingest) while established
    ones settle into a read-mostly mix.
    """
    if waves < 1:
        raise ValueError("waves must be >= 1")
    built = build_cloud_tree(rng, n_tenants=n_tenants)
    tree = built.tree
    tenant_shards: List[List[int]] = built.info["tenant_shards"]
    shared_root = built.read_dirs[0]
    shared_files = [
        n for n, i in tree.children(shared_root).items() if not tree.is_dir(i)
    ]

    tb = TraceBuilder(label="Trace-Onboard")
    created: Dict[int, List[str]] = {}
    uid = 0
    per_wave_tenants = max(1, n_tenants // waves)
    per_wave_ops = max(1, n_ops // waves)
    while len(tb) < n_ops:
        i = len(tb)
        wave = min(waves - 1, i // per_wave_ops)
        n_active = min(n_tenants, per_wave_tenants * (wave + 1))
        newest_lo = per_wave_tenants * wave
        think = base_think_ms / (wave + 1)
        # half the traffic is the arriving cohort's ingest, half the base
        if rng.random() < 0.5 and newest_lo < n_active:
            t = newest_lo + int(rng.integers(0, n_active - newest_lo))
            wf = onboard_write_fraction
        else:
            t = int(rng.integers(0, n_active))
            wf = steady_write_fraction
        shards = tenant_shards[t]
        shard = int(shards[int(rng.integers(0, len(shards)))])
        burst = min(n_ops - i, max(1, int(rng.exponential(burst_mean))))
        before = len(tb)
        uid = _emit_tenant_burst(
            tb, rng, shard, created, uid, burst,
            wf, shared_root, shared_files,
        )
        tb.set_think(before, think)
    return built, tb.build()
