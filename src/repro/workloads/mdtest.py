"""mdtest-style metadata microbenchmark workload.

mdtest is the standard tool for saturating metadata services (used by the
IO500 and by most metadata papers for peak-throughput numbers): each of N
"ranks" owns a private directory and runs phased create → stat → readdir →
unlink sweeps over its files.  Unlike the three paper traces this workload
is perfectly regular — every rank-dir carries identical load — which makes
it ideal for calibrating peak per-MDS throughput and for testing that
balancers neither help nor hurt an already-uniform workload.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.namespace.builder import BuiltNamespace
from repro.namespace.tree import NamespaceTree
from repro.sim.rng import RngStream
from repro.workloads.trace import Trace, TraceBuilder

__all__ = ["generate_trace_mdtest"]


def generate_trace_mdtest(
    rng: RngStream,
    n_ops: int = 100_000,
    n_ranks: int = 32,
    files_per_rank: int = 64,
    depth: int = 3,
    interleave_ranks: bool = True,
) -> Tuple[BuiltNamespace, Trace]:
    """Build the per-rank directory tree and the phased op stream.

    ``depth`` nests each rank directory that many levels under ``/mdtest``
    (mdtest's ``-z``), so path-resolution costs are uniform but non-trivial.
    With ``interleave_ranks`` the phases interleave ops across ranks (the
    concurrent setting); otherwise each rank completes its phase alone.
    """
    if n_ranks < 1 or files_per_rank < 1:
        raise ValueError("need at least one rank and one file per rank")
    tree = NamespaceTree()
    rank_dirs: List[int] = []
    for r in range(n_ranks):
        path = "/mdtest/" + "/".join(f"z{r:03d}.{lvl}" for lvl in range(depth))
        rank_dirs.append(tree.makedirs(path))

    tb = TraceBuilder(label="mdtest")
    cycle = 0
    while len(tb) < n_ops:
        suffix = f".c{cycle}"
        phases = []
        for phase in ("create", "stat", "readdir", "unlink"):
            ops: List[Tuple[int, str, str]] = []
            for f in range(files_per_rank):
                for r, d in enumerate(rank_dirs):
                    ops.append((d, f"file.{f:05d}{suffix}", phase))
            phases.append(ops)
        for ops in phases:
            if not interleave_ranks:
                ops = sorted(ops, key=lambda t: t[0])
            for d, name, phase in ops:
                if len(tb) >= n_ops:
                    break
                if phase == "create":
                    tb.create(d, name)
                elif phase == "stat":
                    tb.stat(d, name)
                elif phase == "readdir":
                    tb.readdir(d)
                else:
                    tb.unlink(d, name)
        cycle += 1

    built = BuiltNamespace(tree=tree, read_dirs=list(rank_dirs), write_dirs=list(rank_dirs))
    return built, tb.build()
