"""Trace-WI: a write-intensive cloud file-system trace.

Reproduced from the characteristics in the CFS paper [40] the way the
authors did ("we reproduced based on the characteristics described in the
paper"): namespace mutations dominate (>70% of metadata ops), writes arrive
in per-tenant bursts into date-sharded directories, and the hot tenant set
churns quickly — the "highly dynamic and skewed load" the paper says makes
Trace-WI the hardest case for every balancer.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.namespace.builder import BuiltNamespace, build_cloud_tree
from repro.sim.rng import RngStream
from repro.workloads.trace import Trace, TraceBuilder
from repro.workloads.zipfian import DriftingZipf

__all__ = ["generate_trace_wi"]


def generate_trace_wi(
    rng: RngStream,
    n_ops: int = 100_000,
    n_tenants: int = 50,
    alpha: float = 1.3,
    segments: int = 10,
    drift: float = 0.35,
    write_fraction: float = 0.75,
    burst_mean: float = 24.0,
) -> Tuple[BuiltNamespace, Trace]:
    """Build the multi-tenant namespace and a create-heavy trace."""
    built = build_cloud_tree(rng, n_tenants=n_tenants)
    tree = built.tree
    tenant_shards: List[List[int]] = built.info["tenant_shards"]
    shared_root = built.read_dirs[0]
    shared_files = [n for n, i in tree.children(shared_root).items() if not tree.is_dir(i)]

    tenants = DriftingZipf(rng, list(range(n_tenants)), alpha=alpha, drift=drift)
    tb = TraceBuilder(label="Trace-WI")
    created: Dict[int, List[str]] = {}
    uid = 0

    # shards are date-partitioned: writes land in the *current* day's shards
    # (cloud ingest always appends to today's partition), so at any moment
    # each tenant has a handful of hot shard directories — the fine-grained,
    # moving write hotspot that static partitioning cannot follow
    days = max(1, len(tenant_shards[0]) // 4)  # builder: 4 shards per day
    per_seg = max(1, n_ops // segments)
    for seg in range(segments):
        day = seg % days
        budget = per_seg if seg < segments - 1 else n_ops - len(tb)
        while budget > 0:
            t = int(tenants.sample(1)[0])
            todays = tenant_shards[t][day * 4 : day * 4 + 4]
            shard = int(todays[int(rng.integers(0, len(todays)))])
            burst = min(budget, max(1, int(rng.exponential(burst_mean))))
            for _ in range(burst):
                roll = rng.random()
                if roll < write_fraction:
                    sub = rng.random()
                    names = created.get(shard)
                    if sub < 0.85 or not names:
                        name = f"obj_{uid:08d}"
                        uid += 1
                        tb.create(shard, name)
                        created.setdefault(shard, []).append(name)
                    else:
                        # churn: delete a recently written object
                        tb.unlink(shard, names.pop())
                else:
                    sub = rng.random()
                    if sub < 0.25:
                        tb.readdir(shard)
                    elif sub < 0.75 and created.get(shard):
                        names = created[shard]
                        tb.stat(shard, names[int(rng.integers(0, len(names)))])
                    else:
                        name = shared_files[int(rng.integers(0, len(shared_files)))]
                        tb.open(shared_root, name)
            budget -= burst
        tenants.advance()

    trace = tb.build()
    return built, trace
