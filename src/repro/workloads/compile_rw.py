"""Trace-RW: a large parallel compilation job (mixed metadata reads/writes).

Models the trace of [34] (Mantle's compilation workload) as a ``make -j``
style job pool: many module compilations run concurrently, each stat-ing the
headers of its (Zipf-popular) dependencies, listing and opening its sources,
and creating object files in the module's mirrored build directory; finished
modules are replaced by new ones drawn from a drifting Zipf over modules, so
both *which* modules are hot and *where* writes land shift over the run.

The resulting stream has the three properties the paper's analysis leans on:
a read-leaning but write-substantial op mix, strong spatial locality inside
module subtrees (what hashing destroys), and temporal hotspot drift (what
static partitions cannot follow).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.namespace.builder import BuiltNamespace, build_software_project
from repro.sim.rng import RngStream
from repro.workloads.trace import Trace, TraceBuilder
from repro.workloads.zipfian import DriftingZipf

__all__ = ["generate_trace_rw"]


def _compile_job(
    tb: TraceBuilder,
    module: int,
    header_listing: List[Tuple[int, List[str]]],
    source_listing: List[List[Tuple[int, int, List[str]]]],
    deps: np.ndarray,
    uid_start: int,
) -> Iterator[int]:
    """Yield after each small burst of ops; drives one module's compilation.

    The directory listings are precomputed by the caller (the tree is static
    during generation), so each job replays plain lists instead of re-walking
    the namespace — RNG-free, the emitted trace is unchanged.
    """
    uid = uid_start
    # dependency header stats, a few dirs per burst
    for dep in deps:
        hdir, hnames = header_listing[int(dep)]
        for hname in hnames:
            tb.stat(hdir, hname)
        yield 0
    # per source dir: list, open each source, create the object file
    for sdir, bdir, fnames in source_listing[module]:
        tb.readdir(sdir)
        for fname in fnames:
            tb.open(sdir, fname)
            tb.create(bdir, f"{fname}.{uid}.o")
            uid += 1
        yield 0
    return


def generate_trace_rw(
    rng: RngStream,
    n_ops: int = 100_000,
    n_modules: int = 32,
    header_fanout: int = 6,
    dep_alpha: float = 1.5,
    parallel_jobs: int = 32,
    module_alpha: float = 1.0,
    module_drift: float = 0.3,
) -> Tuple[BuiltNamespace, Trace]:
    """Build the project namespace and a parallel-compilation trace.

    ``dep_alpha`` — Zipf skew of dependency module popularity (a few header
    directories are included by almost everyone: the stable hotspot);
    ``module_alpha``/``module_drift`` — skew and drift of which modules get
    (re)compiled: the moving hotspot.
    """
    built = build_software_project(rng, n_modules=n_modules)
    tree = built.tree
    header_dirs = list(built.info["header_dirs"])
    module_dirs: List[List[Tuple[int, int]]] = built.info["module_dirs"]
    # one-time listings of the static namespace (see _compile_job)
    header_listing = [(h, list(tree.children(h))) for h in header_dirs]
    source_listing = [
        [
            (
                sdir,
                bdir,
                [f for f, ino in tree.children(sdir).items() if not tree.is_dir(ino)],
            )
            for sdir, bdir in dirs
        ]
        for dirs in module_dirs
    ]

    tb = TraceBuilder(label="Trace-RW")
    module_picker = DriftingZipf(
        rng, list(range(n_modules)), alpha=module_alpha, drift=module_drift
    )
    dep_weights = rng.zipf_weights(n_modules, dep_alpha)
    uid = 0

    def new_job() -> Iterator[int]:
        nonlocal uid
        m = int(module_picker.sample(1)[0])
        deps = np.unique(
            np.concatenate(
                [[m], rng.choice(n_modules, size=header_fanout, p=dep_weights)]
            )
        )
        job = _compile_job(tb, m, header_listing, source_listing, deps, uid)
        uid += 10_000  # disjoint object-name ranges per job
        return job

    jobs: List[Iterator[int]] = [new_job() for _ in range(parallel_jobs)]
    ops_since_drift = 0
    drift_every = max(1, n_ops // 12)
    while len(tb) < n_ops:
        j = int(rng.integers(0, len(jobs)))
        try:
            next(jobs[j])
        except StopIteration:
            jobs[j] = new_job()
        ops_since_drift = len(tb)
        if ops_since_drift >= drift_every:
            module_picker.advance()
            drift_every += max(1, n_ops // 12)

    trace = tb.build()
    return built, trace[:n_ops]
