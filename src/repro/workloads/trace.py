"""Column-oriented metadata operation traces.

Each operation is described by:

* ``op`` — an :class:`~repro.costmodel.optypes.OpType`;
* ``dir_ino`` — the *owning directory* of the operation's target: the parent
  directory for entry ops (stat/open/create/unlink/mkdir/rmdir/rename), the
  directory itself for ``READDIR``;
* ``aux`` — the existing target directory's ino for ``RMDIR``/dir-``RENAME``
  (needed for split-mutation detection), ``-1`` otherwise;
* ``name`` — the entry name (DES replay materialises it; the analytic model
  ignores it except for hash placement of ``MKDIR``).

This split keeps the analytic cost model fully vectorisable (three int
arrays) while the DES replay retains everything it needs to mutate a live
namespace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.optypes import CATEGORY_NSMUT, CATEGORY_ARRAY, OpType

__all__ = ["Trace", "TraceBuilder"]


class Trace:
    """An immutable sequence of metadata operations (column arrays)."""

    __slots__ = ("op", "dir_ino", "aux", "names", "label", "think_ms")

    def __init__(
        self,
        op: np.ndarray,
        dir_ino: np.ndarray,
        aux: np.ndarray,
        names: Optional[List[str]] = None,
        label: str = "",
        think_ms: Optional[np.ndarray] = None,
    ):
        op = np.asarray(op, dtype=np.int8)
        dir_ino = np.asarray(dir_ino, dtype=np.int64)
        aux = np.asarray(aux, dtype=np.int64)
        if not (op.shape == dir_ino.shape == aux.shape):
            raise ValueError("trace columns must have equal length")
        if names is not None and len(names) != op.shape[0]:
            raise ValueError("names column length mismatch")
        if think_ms is not None:
            think_ms = np.asarray(think_ms, dtype=np.float64)
            if think_ms.shape != op.shape:
                raise ValueError("think_ms column length mismatch")
        self.op = op
        self.dir_ino = dir_ino
        self.aux = aux
        self.names = names
        self.label = label
        #: optional per-op client idle time before issue (ms) — the offered-
        #: load shaping column the diurnal/flash-crowd generators emit.
        #: None (every pre-existing trace) replays bit-identically to before
        #: the column existed.
        self.think_ms = think_ms

    def __len__(self) -> int:
        return int(self.op.shape[0])

    def __getitem__(self, sl) -> "Trace":
        """Slice into a sub-trace (epoch windows)."""
        if isinstance(sl, int):
            sl = slice(sl, sl + 1)
        names = self.names[sl] if self.names is not None else None
        think = self.think_ms[sl] if self.think_ms is not None else None
        return Trace(
            self.op[sl], self.dir_ino[sl], self.aux[sl], names, self.label, think
        )

    def categories(self) -> np.ndarray:
        """Per-op cost category (read / lsdir / ns-mutation)."""
        return CATEGORY_ARRAY[self.op]

    def write_fraction(self) -> float:
        """Fraction of ops that are namespace mutations."""
        if len(self) == 0:
            return 0.0
        return float((self.categories() == CATEGORY_NSMUT).mean())

    def op_mix(self) -> dict:
        """Histogram of op types (for trace characterisation tests/docs)."""
        vals, counts = np.unique(self.op, return_counts=True)
        return {OpType(int(v)).name: int(c) for v, c in zip(vals, counts)}

    def epochs(self, ops_per_epoch: int) -> Iterator[Tuple[int, "Trace"]]:
        """Split into fixed-size epochs (the 10-second windows of §4.3,
        expressed in operation counts for the analytic pipeline)."""
        if ops_per_epoch < 1:
            raise ValueError("ops_per_epoch must be >= 1")
        n = len(self)
        for e, start in enumerate(range(0, n, ops_per_epoch)):
            yield e, self[start : start + ops_per_epoch]

    def concat(self, other: "Trace") -> "Trace":
        return Trace.concat_many([self, other])

    @staticmethod
    def concat_many(traces: Sequence["Trace"]) -> "Trace":
        """Concatenate any number of traces with one allocation per column.

        Chained pairwise ``concat`` copies every earlier column again for
        each appended trace — O(k²) bytes for k pieces; this is the O(k)
        version composite scenario builders should use.  Column semantics
        match ``concat``: names survive only when every piece carries them,
        and a think column on *any* piece zero-fills the pieces without one.
        """
        traces = list(traces)
        if not traces:
            raise ValueError("concat_many needs at least one trace")
        names = None
        if all(t.names is not None for t in traces):
            names = [n for t in traces for n in t.names]
        think = None
        if any(t.think_ms is not None for t in traces):
            # a piece missing the column means "no think time": zero-fill
            think = np.concatenate(
                [
                    t.think_ms
                    if t.think_ms is not None
                    else np.zeros(len(t), dtype=np.float64)
                    for t in traces
                ]
            )
        label = next((t.label for t in traces if t.label), "")
        return Trace(
            np.concatenate([t.op for t in traces]),
            np.concatenate([t.dir_ino for t in traces]),
            np.concatenate([t.aux for t in traces]),
            names,
            label,
            think,
        )


class TraceBuilder:
    """Accumulates operations then freezes them into a :class:`Trace`."""

    def __init__(self, label: str = ""):
        self._op: List[int] = []
        self._dir: List[int] = []
        self._aux: List[int] = []
        self._names: List[str] = []
        self._think: List[float] = []
        self.label = label

    def __len__(self) -> int:
        return len(self._op)

    def add(
        self,
        op: OpType,
        dir_ino: int,
        name: str = "",
        aux: int = -1,
        think_ms: float = 0.0,
    ) -> None:
        self._op.append(int(op))
        self._dir.append(int(dir_ino))
        self._aux.append(int(aux))
        self._names.append(name)
        self._think.append(float(think_ms))

    def think(self, ms: float) -> None:
        """Attach client idle time before the most recently added op issues."""
        if self._think and ms > 0:
            self._think[-1] += float(ms)

    def set_think(self, start: int, ms: float) -> None:
        """Set think time on every op added since index ``start`` (burst
        emitters stamp a whole burst with one phase's think time)."""
        ms = float(ms)
        for j in range(start, len(self._think)):
            self._think[j] = ms

    # convenience emitters -------------------------------------------------
    def stat(self, dir_ino: int, name: str) -> None:
        self.add(OpType.STAT, dir_ino, name)

    def open(self, dir_ino: int, name: str) -> None:
        self.add(OpType.OPEN, dir_ino, name)

    def readdir(self, dir_ino: int) -> None:
        self.add(OpType.READDIR, dir_ino)

    def create(self, dir_ino: int, name: str) -> None:
        self.add(OpType.CREATE, dir_ino, name)

    def unlink(self, dir_ino: int, name: str) -> None:
        self.add(OpType.UNLINK, dir_ino, name)

    def mkdir(self, parent_ino: int, name: str) -> None:
        self.add(OpType.MKDIR, parent_ino, name)

    def rmdir(self, parent_ino: int, target_dir: int) -> None:
        self.add(OpType.RMDIR, parent_ino, "", aux=target_dir)

    def rename(self, dir_ino: int, name: str) -> None:
        self.add(OpType.RENAME, dir_ino, name)

    def build(self) -> Trace:
        think = np.array(self._think, dtype=np.float64)
        return Trace(
            np.array(self._op, dtype=np.int8),
            np.array(self._dir, dtype=np.int64),
            np.array(self._aux, dtype=np.int64),
            list(self._names),
            self.label,
            # all-zero think collapses to "no column": pre-existing
            # generators keep producing traces identical to before
            think if think.any() else None,
        )
