"""Skewed samplers shared by the trace generators.

Real metadata traces are Zipf-like over directories, and their hotspot set
*drifts* over time (the paper stresses "diverse and dynamic" workloads and
attributes Trace-WI's difficulty to "highly dynamic and skewed load").
:class:`DriftingZipf` models exactly that: Zipf ranks over a population, with
the rank→item assignment re-permuted (fully or partially) at segment
boundaries.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.sim.rng import RngStream

__all__ = ["DriftingZipf", "zipf_sample"]


def zipf_sample(rng: RngStream, items: Sequence[int], alpha: float, size: int) -> np.ndarray:
    """Draw ``size`` items Zipf(alpha)-skewed over ``items`` (rank = position)."""
    items = np.asarray(items)
    w = rng.zipf_weights(len(items), alpha)
    idx = rng.choice(len(items), size=size, p=w)
    return items[idx]


class DriftingZipf:
    """Zipf sampler whose hot set drifts across segments.

    ``drift`` in [0, 1]: fraction of the rank assignment re-shuffled at each
    :meth:`advance` — 0 keeps hotspots fixed, 1 re-draws them completely.
    """

    def __init__(self, rng: RngStream, items: Sequence[int], alpha: float, drift: float = 0.3):
        if not 0.0 <= drift <= 1.0:
            raise ValueError("drift must be in [0, 1]")
        if len(items) == 0:
            raise ValueError("need at least one item")
        self._rng = rng
        self._items = np.asarray(items).copy()
        self._rng.shuffle(self._items)
        self._weights = rng.zipf_weights(len(self._items), alpha)
        self.drift = drift
        self.segments_advanced = 0

    @property
    def current_hot(self) -> int:
        """The currently hottest item (rank 1)."""
        return int(self._items[0])

    def hot_set(self, k: int) -> List[int]:
        return [int(x) for x in self._items[:k]]

    def sample(self, size: int) -> np.ndarray:
        idx = self._rng.choice(len(self._items), size=size, p=self._weights)
        return self._items[idx]

    def advance(self) -> None:
        """Move to the next segment: re-shuffle ``drift`` of the rank map."""
        n = len(self._items)
        k = int(round(self.drift * n))
        if k >= 2:
            pos = self._rng.choice(n, size=k, replace=False)
            vals = self._items[pos]
            self._rng.shuffle(vals)
            self._items[pos] = vals
        self.segments_advanced += 1
