"""Workload traces: container, samplers, and the three paper workloads.

The evaluation replays three real-world-shaped traces (§5.1):

* **Trace-RW** (:mod:`~repro.workloads.compile_rw`) — a large compilation
  job: header stats fan out across modules, object files are created into
  per-module build directories; mixed reads/writes.
* **Trace-RO** (:mod:`~repro.workloads.web_ro`) — a web-server access log:
  read-only, heavily Zipf-skewed, deep paths, hotspot drift over time.
* **Trace-WI** (:mod:`~repro.workloads.cloud_wi`) — a write-intensive cloud
  file system: bursts of file creation into tenant shard directories with a
  rapidly shifting tenant skew.

A :class:`~repro.workloads.trace.Trace` is column-oriented (NumPy arrays) so
the analytic cost model evaluates it vectorised; names are kept alongside for
the DES replay, which materialises creations/deletions in the namespace.
"""

from repro.workloads.cloud_wi import generate_trace_wi
from repro.workloads.compile_rw import generate_trace_rw
from repro.workloads.elastic_load import (
    generate_trace_diurnal,
    generate_trace_flash,
    generate_trace_onboard,
)
from repro.workloads.mdtest import generate_trace_mdtest
from repro.workloads.trace import Trace, TraceBuilder
from repro.workloads.web_ro import generate_trace_ro

__all__ = [
    "Trace",
    "TraceBuilder",
    "generate_trace_rw",
    "generate_trace_ro",
    "generate_trace_wi",
    "generate_trace_mdtest",
    "generate_trace_diurnal",
    "generate_trace_flash",
    "generate_trace_onboard",
]
