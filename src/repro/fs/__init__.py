"""OrigamiFS: a discrete-event simulation of the paper's metadata service.

This package replaces the Go prototype the paper builds (§4.2) with a DES of
the same architecture, running on the cost model of §3.1:

* :class:`~repro.fs.server.MdsServer` — one process per MDS: a FIFO service
  queue (queueing is emergent, Eq. 1's ``Q_i``), an LSM inode store
  (:mod:`repro.kvstore`, the PebblesDB stand-in), busy-time and RPC
  accounting.
* :class:`~repro.fs.client.ClientWorker` — the OrigamiFS SDK: recursive path
  resolution with the near-root metadata cache, closed-loop replay of a
  shared trace (50 client threads saturate the cluster exactly as in §5.2).
* :class:`~repro.fs.migrator.Migrator` — applies external migration
  decisions (the pluggable pipeline of §4.1), charging migration busy time
  to both ends and moving the KV records.
* :class:`~repro.fs.driver.EpochDriver` — the Data Collector + Metadata
  Balancer loop: every epoch it snapshots per-directory statistics, asks the
  plugged-in policy for decisions, and pipes them to the Migrator.
* :class:`~repro.fs.datapath.DataCluster` — bandwidth-modelled data servers
  for end-to-end (metadata + data) runs (Fig. 9b).
* :func:`~repro.fs.filesystem.run_simulation` — assembles everything from a
  :class:`~repro.fs.filesystem.SimConfig` and returns a
  :class:`~repro.fs.metrics.SimResult`.
"""

from repro.fs.cache import NearRootCache
from repro.fs.filesystem import OrigamiFS, SimConfig, run_simulation
from repro.fs.metrics import EpochMetrics, SimResult

__all__ = [
    "SimConfig",
    "SimResult",
    "EpochMetrics",
    "OrigamiFS",
    "run_simulation",
    "NearRootCache",
]
