"""Epoch driver: Data Collector + Metadata Balancer loop (§4.2/§4.3).

Every ``epoch_ms`` of virtual time the driver snapshots the per-directory
access statistics, drains the per-MDS counters, hands everything to the
plugged-in policy, and pipes the returned decisions through the Migrator.
This is the pipeline that makes OrigamiFS "ML-native": the policy is an
arbitrary external algorithm consuming collector dumps and emitting
decisions.

The driver is also where the balancer audit closes its loop: each epoch's
load observation resolves the *realized* benefit of the previous epoch's
migrations, and each applied decision batch is logged with the candidate
set the policy scored (posted via ``EpochContext.obs``).
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.balancers.base import BalancePolicy, EpochContext
from repro.fs.metrics import EpochMetrics

__all__ = ["EpochDriver"]


class EpochDriver:
    """Periodic collector/balancer process."""

    def __init__(self, fs, policy: BalancePolicy, oracle_window_ops: int = 5000):
        self.fs = fs
        self.policy = policy
        self.oracle_window_ops = oracle_window_ops
        # resume-aware starting points: a warm-restarted run carries prior
        # epochs, a warped clock, and an advanced cursor (all zero on a
        # fresh run, so this is the classic initialisation then)
        self.epoch = len(fs.epochs)
        self._last_flush_ms = fs.env.now
        self._last_cursor = fs.cursor

    def flush_epoch(self) -> EpochMetrics:
        """Drain counters into an EpochMetrics record (no balancing)."""
        fs = self.fs
        n = len(fs.servers)
        busy = np.zeros(n)
        rpcs = np.zeros(n)
        qps = np.zeros(n)
        for i, server in enumerate(fs.servers):
            busy[i], rpcs[i], qps[i] = server.drain_epoch()
        now = fs.env.now
        em = EpochMetrics(
            epoch=self.epoch,
            duration_ms=max(now - self._last_flush_ms, 1e-9),
            busy_ms=busy,
            qps=qps,
            rpcs=rpcs,
            inodes=fs.pmap.inodes_per_mds().astype(np.float64),
        )
        audit = fs.obs.audit
        if audit is not None:
            # this epoch's observed load resolves earlier epochs' migrations
            audit.observe_epoch(em.epoch, em.busy_ms, em.duration_ms)
        self._last_flush_ms = now
        fs.epochs.append(em)
        self.epoch += 1
        return em

    def run(self) -> Generator:
        fs = self.fs
        env = fs.env
        audit = fs.obs.audit
        elastic = getattr(fs, "elastic", None)
        liveness = fs.liveness if elastic is not None else None
        m_epochs = fs.obs.registry.counter("epochs_total", "epoch boundaries crossed")
        while True:
            yield env.timeout(fs.config.epoch_ms)
            snapshot = fs.stats.snapshot_and_reset()
            em = self.flush_epoch()
            m_epochs.inc()
            completed = fs.trace[self._last_cursor : fs.cursor]
            self._last_cursor = fs.cursor
            ctx = EpochContext(
                tree=fs.tree,
                pmap=fs.pmap,
                epoch=em.epoch,
                snapshot=snapshot,
                mds_load=em.busy_ms,
                params=fs.params,
                rng=fs.rng,
                oracle_window=fs.upcoming(self.oracle_window_ops),
                completed_window=completed,
                obs=fs.obs,
                mds_up=(
                    liveness.serving_mask()
                    if liveness is not None
                    else fs.faults.up_mask() if fs.faults is not None else None
                ),
                liveness=liveness,
            )
            decisions = self.policy.rebalance(ctx)
            if decisions:
                before = fs.migrator.log.total_migrations
                yield from fs.migrator.apply(decisions, epoch=em.epoch)
                em.migrations = fs.migrator.log.total_migrations - before
                if audit is not None and em.migrations:
                    audit.record_decisions(
                        em.epoch,
                        em.busy_ms,
                        em.duration_ms,
                        fs.migrator.log.applied[before:],
                        tree=fs.tree,
                    )
            if elastic is not None:
                # autoscaling runs after the balancer so scale decisions see
                # this epoch's load and drains reuse its evacuation machinery
                yield from elastic.step(ctx, em)
            if fs.replay_done:
                return
