"""Measurement plumbing for the DES: per-epoch and whole-run metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.imbalance import ImbalanceReport

__all__ = ["EpochMetrics", "SimResult", "LatencyRecorder"]


@dataclass
class EpochMetrics:
    """What each MDS did during one epoch (Fig. 6 and Fig. 7 inputs)."""

    epoch: int
    #: actual virtual duration of the epoch (>= the nominal epoch_ms when
    #: migrations stretched it; the Migrator runs inside the driver loop)
    duration_ms: float
    #: virtual ms each MDS spent servicing metadata work this epoch
    busy_ms: np.ndarray
    #: requests whose primary MDS was this MDS
    qps: np.ndarray
    #: RPC messages handled (resolution hops, gathers, forwards)
    rpcs: np.ndarray
    #: metadata entries stored per MDS at the epoch boundary
    inodes: np.ndarray
    #: migrations applied at this epoch boundary
    migrations: int = 0

    def to_dict(self) -> Dict:
        """JSON-ready form (arrays become lists)."""
        return {
            "epoch": self.epoch,
            "duration_ms": self.duration_ms,
            "busy_ms": self.busy_ms.tolist(),
            "qps": self.qps.tolist(),
            "rpcs": self.rpcs.tolist(),
            "inodes": self.inodes.tolist(),
            "migrations": self.migrations,
        }


class LatencyRecorder:
    """Streaming latency statistics without keeping every sample.

    Keeps a bounded reservoir for percentiles plus exact count/mean.
    """

    #: reservoir slots drawn per RNG round-trip once the reservoir is full
    _BLOCK = 4096

    def __init__(self, reservoir: int = 20000, seed: int = 0):
        self._res = np.empty(reservoir, dtype=np.float64)
        self._cap = reservoir
        self.count = 0
        self.total = 0.0
        self._rng = np.random.default_rng(seed)
        self._randint = self._rng.integers  # bound-method hoist (hot path)
        # pre-drawn replacement slots: numpy's bounded-integer draw consumes
        # the bitstream identically element-wise whether called per scalar or
        # with a vector of bounds, so drawing a block of slots for counts
        # [c, c+B) yields exactly the per-sample sequence — at a fraction of
        # the per-call cost
        self._slots: list = []
        self._slot_i = 0

    def record(self, latency_ms: float) -> None:
        count = self.count
        if count < self._cap:
            self._res[count] = latency_ms
        else:
            i = self._slot_i
            slots = self._slots
            if i >= len(slots):
                block = self._BLOCK
                slots = self._slots = self._randint(
                    0, np.arange(count + 1, count + 1 + block)
                ).tolist()
                i = 0
            j = slots[i]
            self._slot_i = i + 1
            if j < self._cap:
                self._res[j] = latency_ms
        self.count = count + 1
        self.total += latency_ms

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        n = min(self.count, self._cap)
        if n == 0:
            return 0.0
        return float(np.percentile(self._res[:n], q))


@dataclass
class SimResult:
    """Everything a run of :func:`repro.fs.filesystem.run_simulation` yields."""

    strategy: str
    n_mds: int
    #: epoch length used by the run (ms); needed for per-epoch rates
    epoch_ms: float
    #: metadata operations completed
    ops_completed: int
    #: virtual milliseconds the run covered
    duration_ms: float
    #: client-observed mean metadata latency (ms)
    mean_latency_ms: float
    p50_latency_ms: float
    p99_latency_ms: float
    #: total RPC messages sent / per completed request
    total_rpcs: int
    per_epoch: List[EpochMetrics] = field(default_factory=list)
    #: total migrations and inodes moved
    migrations: int = 0
    inodes_migrated: int = 0
    #: operations that failed best-effort semantics (races during replay)
    failed_ops: int = 0
    #: failed_ops sub-counts: target directory vanished under a concurrent
    #: mutation / retry budget exhausted against a faulty cluster
    vanished_ops: int = 0
    fault_failed_ops: int = 0
    cache_hit_rate: float = 0.0
    #: end-to-end file throughput when the data path is active (ops/s)
    data_ops_completed: int = 0
    #: events processed by the DES kernel (diagnostics)
    engine_events: int = 0
    #: aggregated LSM StoreStats across MDSs (None when kvstore is off):
    #: raw counters plus read/write amplification and total run count
    kvstore: Optional[Dict[str, float]] = None
    #: flat FaultInjector.summary() counters (None when no faults installed)
    faults: Optional[Dict[str, float]] = None
    #: wall-clock seconds the DES event loop ran (simulator speed, not a
    #: model output; volatile — excluded from determinism comparisons)
    wall_s: float = 0.0
    #: TimelineCollector.summary() when simulate ran with a timeline (None
    #: otherwise); deterministic scalars only
    timeline: Optional[Dict[str, float]] = None
    #: MDSPoolController.summary() when an elastic pool was active (None
    #: otherwise).  Unlike kvstore/faults/timeline this key is *omitted*
    #: from to_dict() when absent: pre-elastic golden baselines pin the
    #: exact key set, and autoscaling-off runs must stay bit-identical
    elastic: Optional[Dict[str, float]] = None

    def to_dict(self) -> Dict:
        """Full JSON-ready serialisation, including the per-epoch arrays."""
        d = {
            "strategy": self.strategy,
            "n_mds": self.n_mds,
            "epoch_ms": self.epoch_ms,
            "ops_completed": self.ops_completed,
            "duration_ms": self.duration_ms,
            "mean_latency_ms": self.mean_latency_ms,
            "p50_latency_ms": self.p50_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "total_rpcs": self.total_rpcs,
            "rpcs_per_request": self.rpcs_per_request,
            "throughput_ops_per_sec": self.throughput_ops_per_sec,
            "steady_state_throughput": self.steady_state_throughput(),
            "migrations": self.migrations,
            "inodes_migrated": self.inodes_migrated,
            "failed_ops": self.failed_ops,
            "vanished_ops": self.vanished_ops,
            "fault_failed_ops": self.fault_failed_ops,
            "cache_hit_rate": self.cache_hit_rate,
            "data_ops_completed": self.data_ops_completed,
            "engine_events": self.engine_events,
            "engine_events_per_virtual_sec": self.engine_events_per_virtual_sec,
            # wall_s / engine_events_per_wall_sec are deliberately absent:
            # to_dict() must be bit-identical across machines and runs
            "kvstore": self.kvstore,
            "faults": self.faults,
            "timeline": self.timeline,
            "per_epoch": [e.to_dict() for e in self.per_epoch],
        }
        if self.elastic is not None:
            d["elastic"] = self.elastic
        return d

    @property
    def throughput_ops_per_sec(self) -> float:
        """Aggregated metadata throughput over the whole run (ops / virtual s)."""
        if self.duration_ms <= 0:
            return 0.0
        return self.ops_completed / (self.duration_ms / 1000.0)

    @property
    def end_to_end_throughput(self) -> float:
        if self.duration_ms <= 0:
            return 0.0
        return self.data_ops_completed / (self.duration_ms / 1000.0)

    @property
    def rpcs_per_request(self) -> float:
        return self.total_rpcs / self.ops_completed if self.ops_completed else 0.0

    @property
    def engine_events_per_virtual_sec(self) -> float:
        """DES events per *virtual* second — deterministic engine-load signal."""
        if self.duration_ms <= 0:
            return 0.0
        return self.engine_events / (self.duration_ms / 1000.0)

    @property
    def engine_events_per_wall_sec(self) -> float:
        """DES events per *wall-clock* second — simulator speed (volatile)."""
        if self.wall_s <= 0:
            return 0.0
        return self.engine_events / self.wall_s

    def steady_state_throughput(self, skip_fraction: float = 0.3) -> float:
        """Aggregated metadata throughput *post-rebalancing* (ops / virtual s).

        The paper measures average throughput after the balancing mechanism
        has acted (§5.2); the first ``skip_fraction`` of epochs (the
        all-on-MDS-0 warmup for subtree strategies) is excluded.  The last
        (possibly partial) epoch is excluded too.
        """
        if len(self.per_epoch) <= 2:
            return self.throughput_ops_per_sec
        full = self.per_epoch[:-1]  # drop the trailing partial epoch
        skip = min(int(len(full) * skip_fraction), len(full) - 1)
        tail = full[skip:]
        ops = sum(float(e.qps.sum()) for e in tail)
        span_ms = sum(e.duration_ms for e in tail)
        if span_ms <= 0:
            return 0.0
        return ops / (span_ms / 1000.0)

    # ------------------------------------------------------- aggregate views
    def _stack(self, attr: str) -> np.ndarray:
        if not self.per_epoch:
            return np.zeros((0, self.n_mds))
        return np.stack([getattr(e, attr) for e in self.per_epoch])

    def total_busy_per_mds(self) -> np.ndarray:
        return self._stack("busy_ms").sum(axis=0)

    def total_qps_per_mds(self) -> np.ndarray:
        return self._stack("qps").sum(axis=0)

    def total_rpcs_per_mds(self) -> np.ndarray:
        return self._stack("rpcs").sum(axis=0)

    def final_inodes_per_mds(self) -> np.ndarray:
        if not self.per_epoch:
            return np.zeros(self.n_mds)
        return self.per_epoch[-1].inodes

    def imbalance(self) -> ImbalanceReport:
        """Fig. 6's four imbalance factors, aggregated over the run."""
        return ImbalanceReport.from_loads(
            qps=self.total_qps_per_mds(),
            rpcs=self.total_rpcs_per_mds(),
            inodes=self.final_inodes_per_mds(),
            busytime=self.total_busy_per_mds(),
        )

    def efficiency_series(self) -> np.ndarray:
        """Fig. 7's efficiency: mean fraction of each epoch MDSs spent busy."""
        if not self.per_epoch:
            return np.zeros(0)
        return np.array(
            [
                float(e.busy_ms.mean()) / e.duration_ms if e.duration_ms > 0 else 0.0
                for e in self.per_epoch
            ]
        )
