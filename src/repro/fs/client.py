"""Client workers: the OrigamiFS SDK replaying the shared trace.

Each worker is a closed-loop client thread: fetch the next operation from
the shared cursor, resolve the path (consulting the near-root cache),
contact each involved MDS in path order, apply the namespace mutation, then
immediately fetch the next operation.  Fifty workers against five MDSs is
the saturation setup of §5.2; one worker gives the single-thread latency
measurement of Fig. 5b.

The per-owner service times are the exact DES realisation of Eq. (2): each
contacted MDS reads its share of the path's inodes plus one fake inode, the
primary additionally pays ``T_exec`` and the op-specific extra.  With an
uncontended server the client-observed latency reproduces the analytic RCT
to float precision (asserted in tests/test_fs_parity.py).

When tracing is enabled each operation carries a
:class:`~repro.obs.tracing.Span` decomposing its latency into queue wait,
MDS service, and network time; recording is passive (no RNG draws, no
events), so traced runs replay bit-identically to untraced ones.

When a fault schedule is installed the client grows the robustness layer of
a real SDK: every RPC passes the injector's gate (timeouts, drops, refused
connections), a failed attempt is retried with bounded exponential backoff
and seeded jitter, and each retry re-plans the op from the *current*
partition map — so when the balancer evacuates a crashed MDS's subtrees the
client fails over to the new owner.  An op that exhausts its retry budget
surfaces a typed failure (``span.fault``); it is never silently lost.  With
no faults installed the fault path costs one ``None`` check per op and the
replay is bit-identical to pre-fault builds (tests/test_golden_baseline.py).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.costmodel.optypes import (
    CATEGORY_LSDIR,
    CATEGORY_NSMUT,
    CATEGORY_TUPLE,
    OpType,
    category_of,
)
from repro.fs.cache import NearRootCache
from repro.fs.faults.errors import FaultError
from repro.sim.engine import Timeout
from repro.sim.fastpath import run_client as fastpath_run_client

__all__ = ["ClientWorker"]

# plain-int op tags: IntEnum→int conversion is measurable per-op
_MKDIR = int(OpType.MKDIR)
_RMDIR = int(OpType.RMDIR)
_RENAME = int(OpType.RENAME)
_CREATE = int(OpType.CREATE)
_UNLINK = int(OpType.UNLINK)


class ClientWorker:
    """One closed-loop client thread."""

    def __init__(self, fs, worker_id: int):
        self.fs = fs
        self.worker_id = worker_id
        self.ops_done = 0

    # ------------------------------------------------------------- planning
    def _plan(self, op: int, dir_ino: int, span=None) -> Tuple[List[Tuple[int, int]], int]:
        """Plan the RPC sequence for a request targeting ``dir_ino``.

        Returns ``(visits, primary)`` where visits is an ordered list of
        ``(mds, n_inode_reads)`` — one entry per contacted MDS in path order
        — covering the uncached path components plus the target entry.

        Plans against a steady-state near-root cache are pure functions of
        ``(dir_ino, lsdir?)`` — coverage is structural (depth threshold),
        ``grant()`` is a no-op, and ownership/structure churn is captured by
        ``(pmap.dir_version, tree.version)`` — so they are memoised on the
        fs, with the hit/miss deltas replayed on each reuse to keep every
        counter bit-identical to the unmemoised walk.  Lease caches (grants
        and TTLs are stateful) and crash-voided windows (coverage is
        time-dependent) always take the slow path.
        """
        fs = self.fs
        tree = fs.tree
        cache = fs.cache
        now = fs.env._now

        cacheable = cache.__class__ is NearRootCache and now >= cache.invalid_until
        if cacheable:
            key = (dir_ino, CATEGORY_TUPLE[op] == CATEGORY_LSDIR)
            stamp = (fs.pmap.dir_version, tree.version)
            plan_cache = fs._plan_cache
            if stamp == fs._plan_cache_stamp:
                entry = plan_cache.get(key)
                if entry is not None:
                    visits, primary, n_hits, n_misses = entry
                    cache.hits += n_hits
                    cache.misses += n_misses
                    if span is not None:
                        span.cache_hits += n_hits
                        span.cache_misses += n_misses
                    return visits, primary
            else:
                plan_cache.clear()
                fs._plan_cache_stamp = stamp

        owner_arr = fs.pmap.owner_array()
        primary = int(owner_arr[dir_ino])

        # non-root chain dirs, root-first
        chain = tree.resolve(dir_ino)[1:]
        reads: Dict[int, int] = {}
        order: List[int] = []
        n_hits = 0
        n_misses = 0
        for d in chain:
            if cache.covers(d, now):
                n_hits += 1
                continue
            n_misses += 1
            cache.grant(d, now)  # fetched below; lease caches remember it
            o = int(owner_arr[d])
            if o not in reads:
                reads[o] = 0
                order.append(o)
            reads[o] += 1
        if CATEGORY_TUPLE[op] != CATEGORY_LSDIR:
            # the target entry itself (depth = dir depth + 1)
            if not fs.cache_covers_depth(tree.depth(dir_ino) + 1):
                if primary not in reads:
                    reads[primary] = 0
                    order.append(primary)
                reads[primary] += 1
        if primary not in reads:
            reads[primary] = 0
            order.append(primary)
        if span is not None:
            span.cache_hits += n_hits
            span.cache_misses += n_misses
        visits = [(o, reads[o]) for o in order]
        if cacheable:
            fs._plan_cache[key] = (visits, primary, n_hits, n_misses)
        return visits, primary

    # ------------------------------------------------------------ execution
    def _mark_vanished_if_dead(self, dir_ino: int, span) -> bool:
        """False when the target directory died under a concurrent mutation;
        the op is counted as a cheap failed lookup."""
        fs = self.fs
        if fs.tree.is_alive(dir_ino) and fs.tree.is_dir(dir_ino):
            return True
        fs.failed_ops += 1
        fs.vanished_ops += 1
        if span is not None:
            span.failed = True
            span.fault = "vanished"
        return False

    def _attempt_with_retries(
        self, op: int, dir_ino: int, aux: int, name: str, cat: int, span
    ) -> Generator:
        """Fault-tolerant execution: retry with backoff, failover on re-plan.

        Returns True when the op completed, False when it surfaced a typed
        failure (retry budget exhausted) or vanished between retries.
        """
        fs = self.fs
        env = fs.env
        inj = fs.faults
        retry = inj.retry
        attempt = 1
        while True:
            attempt_primary = int(fs.pmap.owner_array()[dir_ino])
            try:
                yield from self._attempt(op, dir_ino, aux, name, cat, span)
            except FaultError as exc:
                if attempt >= retry.max_attempts:
                    inj.count_op_failed(exc)
                    fs.fault_failed_ops += 1
                    if span is not None:
                        span.failed = True
                        span.fault = exc.reason
                    return False
                inj.count_retry()
                wait = inj.backoff_ms(attempt)
                if span is not None:
                    span.retries += 1
                    span.fault_wait_ms += wait
                yield env.timeout(wait)
                attempt += 1
                # the backoff may span epoch boundaries: the balancer can
                # have evacuated the failed MDS's subtrees meanwhile, and a
                # concurrent mutation can have removed the directory
                if not self._mark_vanished_if_dead(dir_ino, span):
                    return False
                if int(fs.pmap.owner_array()[dir_ino]) != attempt_primary:
                    inj.count_failover()
                    if span is not None:
                        span.failovers += 1
            else:
                if attempt > 1:
                    inj.count_recovered()
                return True

    def _attempt(
        self, op: int, dir_ino: int, aux: int, name: str, cat: int, span
    ) -> Generator:
        """One full execution attempt against the current partition map."""
        fs = self.fs
        env = fs.env
        params = fs.params
        inj = fs.faults

        visits, primary = self._plan(op, dir_ino, span)
        servers = fs.servers
        pserver = servers[primary]
        pserver.count_request()
        if span is not None:
            span.primary = primary

        t_inode = params.t_inode
        t_rpc = params.t_rpc
        t_exec = params.t_exec_table[op]
        rtt_const = fs._rtt_const
        for mds, n_reads in visits:
            server = servers[mds]
            if inj is not None:
                yield from inj.rpc_gate(mds, span)
            server.count_rpc()
            fs.total_rpcs += 1
            # network round trip to this MDS
            rtt = rtt_const if rtt_const is not None else fs.network_rtt()
            if span is not None:
                span.net_ms += rtt
                span.rpcs += 1
                span.mds_visited.append(mds)
            yield Timeout(env, rtt)
            # +1 fake/anchor inode read, plus the RPC handling cost itself
            service = t_inode * (n_reads + 1) + t_rpc
            if mds == primary:
                service += t_exec
            yield from server.service(service, span)

        # ---- op-specific extras ----
        if cat == CATEGORY_LSDIR:
            others = sorted(fs.pmap.lsdir_owners(dir_ino))
            for o in others:
                if inj is not None:
                    yield from inj.rpc_gate(o, span)
                fs.servers[o].count_rpc()
                fs.total_rpcs += 1
                rtt = rtt_const if rtt_const is not None else fs.network_rtt()
                if span is not None:
                    span.net_ms += rtt
                    span.rpcs += 1
                    span.mds_visited.append(o)
                yield Timeout(env, rtt)
                yield from fs.servers[o].service(params.t_rpc, span)
            fs.stats.record_lsdir(dir_ino)
        elif cat == CATEGORY_NSMUT:
            # lease consistency: mutating a leased directory recalls the lease
            recall = fs.cache.recall_if_leased(dir_ino, env.now)
            if recall > 0:
                if span is not None:
                    span.migration_recalls += 1
                yield from pserver.service(recall, span)
            split_partner = self._split_partner(op, dir_ino, name, aux)
            if split_partner is not None:
                fs.servers[split_partner].count_rpc()
                fs.total_rpcs += 1
                if span is not None:
                    span.rpcs += 1
                yield from pserver.service(params.t_coor, span)
            self._apply_mutation(op, dir_ino, name, aux, span)
            if fs.durability is not None:
                # the mutation's WAL append (and any group commit it forced)
                # is served by the primary as extra hold time
                dcost = pserver.take_durability_cost()
                if dcost > 0:
                    if span is not None:
                        span.wal_ms += dcost
                    yield from pserver.service(dcost, span)
            fs.stats.record_write(dir_ino)
        else:
            if fs.use_kvstore:
                pserver.kv_get(b"%020d/%s" % (dir_ino, name.encode()), span)
            fs.stats.record_read(dir_ino)

    def _split_partner(self, op: int, dir_ino: int, name: str, aux: int) -> Optional[int]:
        """The other MDS of a split namespace mutation, if any (Eq. 2 ns-m)."""
        fs = self.fs
        owner_arr = fs.pmap.owner_array()
        primary = int(owner_arr[dir_ino])
        if op == _MKDIR:
            o = fs.pmap.new_dir_owner(dir_ino, name)
            return o if o != primary else None
        if (op == _RMDIR or op == _RENAME) and aux >= 0:
            if fs.tree.is_alive(aux) and owner_arr[aux] >= 0:
                o = int(owner_arr[aux])
                return o if o != primary else None
        if op == _CREATE or op == _UNLINK or (op == _RENAME and aux < 0):
            o = fs.pmap.file_owner(dir_ino, name)
            return o if o != primary else None
        return None

    def _apply_mutation(self, op: int, dir_ino: int, name: str, aux: int, span=None) -> None:
        """Materialise the namespace mutation (best effort under races)."""
        fs = self.fs
        tree = fs.tree
        try:
            if op == _CREATE:
                ino = tree.create_file(dir_ino, name)
                if fs.use_kvstore:
                    fs.servers[fs.pmap.owner(dir_ino)].kv_put(
                        b"%020d/%s" % (dir_ino, name.encode()), b"inode", span
                    )
                fs.created_files.append(ino)
            elif op == _UNLINK:
                kids = tree.children(dir_ino)
                ino = kids.get(name)
                if ino is not None and not tree.is_dir(ino):
                    tree.remove(ino)
                    if fs.use_kvstore:
                        fs.servers[fs.pmap.owner(dir_ino)].kv_delete(
                            b"%020d/%s" % (dir_ino, name.encode()), span
                        )
            elif op == _MKDIR:
                tree.create_dir(dir_ino, name)
            elif op == _RMDIR:
                if aux >= 0 and tree.is_alive(aux) and tree.is_dir(aux):
                    if not tree.children(aux):
                        tree.remove(aux)
            # RENAME: cost-only (the traces rename entries in place)
        except (FileExistsError, OSError, KeyError, NotADirectoryError, ValueError):
            # concurrent replay can race mutations; semantics stay best-effort
            fs.failed_ops += 1

    # ----------------------------------------------------------------- loop
    def run(self) -> Generator:
        """The client process: the flattened fast loop when the run is
        eligible (decided once at construction — see
        :mod:`repro.sim.fastpath`), the general loop otherwise.  Both
        produce the bit-identical event sequence on eligible
        configurations; the golden suite runs with the fast path forced
        both ways to prove it."""
        if self.fs.fastpath_engaged:
            return fastpath_run_client(self)
        return self._run_general()

    def _run_general(self) -> Generator:
        """Closed-loop replay until the shared trace is exhausted.

        Per-op execution is inlined here (not a ``yield from`` into a
        sub-generator): every engine resume walks the full delegation chain,
        so one fewer frame saves a hop on every event of the run.

        Every issued op is accounted exactly once: it completes
        (``fs.ops_completed``), vanishes under a concurrent mutation
        (``fs.vanished_ops``), or fails typed after exhausting its fault
        retries (``fs.fault_failed_ops``) — the zero-lost-ops invariant the
        property suite asserts.
        """
        fs = self.fs
        env = fs.env
        tracer = fs.obs.tracer
        tracing = tracer.enabled
        # resolved children, not families: the family-level inc/observe
        # rebuilds a label key per call (null-registry labels() is a no-op)
        m_ops = fs.m_ops.labels()
        m_latency = fs.m_latency.labels()
        timeline = fs.obs.timeline if fs.obs.timeline.enabled else None
        latency_record = fs.latency.record
        next_op_index = fs.next_op_index
        # pre-listified trace columns: plain-int reads, no numpy scalar boxing
        ops = fs._ops
        dir_inos = fs._dir_inos
        auxs = fs._aux
        names = fs._op_names
        thinks = fs._think  # None for every trace without a think column
        faulty = fs.faults is not None
        datapath = fs.datapath
        data_ops = fs.DATA_OPS
        while True:
            i = next_op_index()
            if i is None:
                return
            op = ops[i]
            dir_ino = dir_inos[i]
            if thinks is not None:
                # offered-load shaping: the client idles before issuing, so
                # think time is *not* part of the op's measured latency
                t = thinks[i]
                if t > 0.0:
                    yield Timeout(env, t)
            if tracing:
                span = tracer.start(
                    i,
                    op,
                    self.worker_id,
                    dir_ino,
                    fs.tree.depth(dir_ino) if fs.tree.is_alive(dir_ino) else -1,
                    env._now,
                )
            else:
                span = None
            if not self._mark_vanished_if_dead(dir_ino, span):
                latency = 0.0
            else:
                start = env._now
                if faulty:
                    completed = yield from self._attempt_with_retries(
                        op, dir_ino, auxs[i], names[i] if names is not None else "",
                        CATEGORY_TUPLE[op], span,
                    )
                else:
                    completed = True
                    yield from self._attempt(
                        op, dir_ino, auxs[i], names[i] if names is not None else "",
                        CATEGORY_TUPLE[op], span,
                    )
                if completed:
                    self.ops_done += 1
                    fs.ops_completed += 1
                fs.last_completion_ms = now = env._now
                latency = now - start
            if span is not None:
                tracer.finish(span, env._now)
            latency_record(latency)
            m_ops.inc()
            m_latency.observe(latency)
            if timeline is not None:
                timeline.record_op(latency)
            if datapath is not None and op in data_ops:
                yield from datapath.transfer(fs, dir_ino)
