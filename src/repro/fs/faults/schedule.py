"""Declarative fault schedules: what goes wrong, where, and when.

A :class:`FaultSchedule` is a plain list of window-scoped fault events plus
the client-side :class:`RetryPolicy`, serialisable to/from JSON so a whole
resilience experiment is one ``simulate --faults schedule.json`` flag.  The
schedule is *pure data*: every query (``is_down``, ``slowdown_factor``, …)
is a function of ``(mds, now)`` only, which is what keeps fault runs
deterministic — the only RNG the fault layer touches are the dedicated
seeded streams the injector owns (drop coin flips, backoff jitter).

Event kinds
-----------

* :class:`Slowdown` — service times on one MDS multiplied by ``factor``;
* :class:`Crash` — the MDS is down for the window: in-flight requests are
  aborted, its queue drains by failing, and after restart it serves at
  ``warmup_factor``x for ``warmup_ms`` (cold caches);
* :class:`RpcDrop` — each RPC to the MDS is dropped with ``probability``
  (the client waits out its RPC timeout before retrying);
* :class:`RpcDelay` — each RPC to the MDS pays ``extra_ms`` on top of the
  normal round trip;
* :class:`Partition` — the MDS is unreachable (every RPC times out) while
  the server itself keeps running — the classic "it's not dead, you just
  can't talk to it" failure a load-driven balancer cannot see directly.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "FaultEvent",
    "Slowdown",
    "Crash",
    "RpcDrop",
    "RpcDelay",
    "Partition",
    "RetryPolicy",
    "FaultSchedule",
    "SCHEDULE_SCHEMA_VERSION",
]

#: bump when the JSON schema changes incompatibly
SCHEDULE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FaultEvent:
    """Base event: something bad happens to ``mds`` in ``[start_ms, end_ms)``."""

    mds: int
    start_ms: float
    end_ms: float

    def __post_init__(self):
        if self.mds < 0:
            raise ValueError(f"mds must be non-negative, got {self.mds}")
        if self.start_ms < 0:
            raise ValueError(f"start_ms must be non-negative, got {self.start_ms}")
        if self.end_ms <= self.start_ms:
            raise ValueError("end must come after start")

    def active(self, now: float) -> bool:
        return self.start_ms <= now < self.end_ms

    @property
    def kind(self) -> str:
        return _KIND_BY_TYPE[type(self)]

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            v = getattr(self, f.name)
            d[f.name] = "inf" if isinstance(v, float) and math.isinf(v) else v
        return d


@dataclass(frozen=True)
class Slowdown(FaultEvent):
    """Degrade ``mds`` by ``factor``x between ``start_ms`` and ``end_ms``."""

    factor: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1 (a slowdown)")


@dataclass(frozen=True)
class Crash(FaultEvent):
    """``mds`` is down for the window; ``end_ms=inf`` means no restart.

    After restart the server runs at ``warmup_factor``x service times for
    ``warmup_ms`` (journal replay, cold caches) before returning to full
    speed.
    """

    warmup_ms: float = 0.0
    warmup_factor: float = 2.0

    def __post_init__(self):
        super().__post_init__()
        if self.warmup_ms < 0:
            raise ValueError("warmup_ms must be non-negative")
        if self.warmup_factor < 1.0:
            raise ValueError("warmup_factor must be >= 1")

    @property
    def restarts(self) -> bool:
        return not math.isinf(self.end_ms)


@dataclass(frozen=True)
class RpcDrop(FaultEvent):
    """Drop each RPC to ``mds`` with ``probability`` during the window."""

    probability: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")


@dataclass(frozen=True)
class RpcDelay(FaultEvent):
    """Add ``extra_ms`` to every RPC round trip to ``mds`` in the window."""

    extra_ms: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        if self.extra_ms <= 0:
            raise ValueError("extra_ms must be positive")


@dataclass(frozen=True)
class Partition(FaultEvent):
    """``mds`` is unreachable over the network for the window."""


_KIND_BY_TYPE: Dict[type, str] = {
    Slowdown: "slowdown",
    Crash: "crash",
    RpcDrop: "rpc_drop",
    RpcDelay: "rpc_delay",
    Partition: "partition",
}
_TYPE_BY_KIND: Dict[str, type] = {v: k for k, v in _KIND_BY_TYPE.items()}


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side robustness knobs: per-RPC timeout + bounded backoff.

    Backoff for attempt ``k`` (1-based) is
    ``min(base * 2**(k-1), max) * (1 + jitter * u)`` with ``u`` drawn from
    the injector's seeded retry stream — deterministic given the run seed.
    """

    #: how long a client waits on an unanswered RPC before declaring it lost
    rpc_timeout_ms: float = 5.0
    #: first-retry backoff
    backoff_base_ms: float = 0.25
    #: exponential backoff cap
    backoff_max_ms: float = 4.0
    #: attempts per op before surfacing a typed failure (1 = no retries)
    max_attempts: int = 8
    #: jitter fraction on top of the deterministic backoff
    jitter: float = 0.5

    def __post_init__(self):
        if self.rpc_timeout_ms <= 0:
            raise ValueError("rpc_timeout_ms must be positive")
        if self.backoff_base_ms < 0 or self.backoff_max_ms < self.backoff_base_ms:
            raise ValueError("need 0 <= backoff_base_ms <= backoff_max_ms")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def backoff_ms(self, attempt: int, u: float) -> float:
        """Wait before retry number ``attempt`` (1-based); ``u`` in [0, 1)."""
        raw = self.backoff_base_ms * (2.0 ** (attempt - 1))
        return min(raw, self.backoff_max_ms) * (1.0 + self.jitter * u)

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultSchedule:
    """An ordered set of fault events plus the client retry policy."""

    def __init__(self, events: Sequence[FaultEvent] = (), retry: Optional[RetryPolicy] = None):
        self.events: List[FaultEvent] = sorted(events, key=lambda e: (e.start_ms, e.mds))
        self.retry = retry if retry is not None else RetryPolicy()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self.events == other.events and self.retry == other.retry

    def __repr__(self) -> str:
        kinds: Dict[str, int] = {}
        for e in self.events:
            kinds[e.kind] = kinds.get(e.kind, 0) + 1
        return f"FaultSchedule({kinds or 'empty'})"

    # ---------------------------------------------------------------- checks
    def validate(self, n_mds: int) -> None:
        """Raise ValueError if any event targets an MDS outside ``[0, n_mds)``."""
        for e in self.events:
            if not 0 <= e.mds < n_mds:
                raise ValueError(f"{e.kind} targets unknown MDS {e.mds} (cluster has {n_mds})")
        down = [e for e in self.events if isinstance(e, Crash)]
        for t in (e.start_ms for e in down):
            # a schedule that crashes every MDS at once has no live server to
            # fail over to; reject it early instead of deadlocking the run
            if len({e.mds for e in down if e.active(t)}) >= n_mds:
                raise ValueError("schedule crashes every MDS simultaneously")

    # --------------------------------------------------------------- queries
    def slowdown_factor(self, mds: int, now: float, include_warmup: bool = True) -> float:
        """Service-time multiplier: worst active slowdown or restart warm-up.

        ``include_warmup=False`` excludes the fixed post-crash warm-up window
        — used by durable runs, where the injector derives the warm-up from
        the recovery work the restarted MDS actually performed."""
        f = 1.0
        for e in self.events:
            if e.mds != mds:
                continue
            if isinstance(e, Slowdown) and e.active(now):
                f = max(f, e.factor)
            elif include_warmup and isinstance(e, Crash) and e.restarts and e.warmup_ms > 0:
                if e.end_ms <= now < e.end_ms + e.warmup_ms:
                    f = max(f, e.warmup_factor)
        return f

    def is_down(self, mds: int, now: float) -> bool:
        return any(e.mds == mds and isinstance(e, Crash) and e.active(now) for e in self.events)

    def partitioned(self, mds: int, now: float) -> bool:
        return any(
            e.mds == mds and isinstance(e, Partition) and e.active(now) for e in self.events
        )

    def drop_probability(self, mds: int, now: float) -> float:
        p = 0.0
        for e in self.events:
            if e.mds == mds and isinstance(e, RpcDrop) and e.active(now):
                p = max(p, e.probability)
        return p

    def extra_delay_ms(self, mds: int, now: float) -> float:
        return sum(
            e.extra_ms
            for e in self.events
            if e.mds == mds and isinstance(e, RpcDelay) and e.active(now)
        )

    def crash_edges(self) -> List[Tuple[float, str, Crash]]:
        """Chronological ``(time, "crash"|"restart", event)`` control points."""
        edges: List[Tuple[float, str, Crash]] = []
        for e in self.events:
            if not isinstance(e, Crash):
                continue
            edges.append((e.start_ms, "crash", e))
            if e.restarts:
                edges.append((e.end_ms, "restart", e))
        edges.sort(key=lambda t: (t[0], t[1] == "crash", t[2].mds))
        return edges

    @property
    def has_crashes(self) -> bool:
        return any(isinstance(e, Crash) for e in self.events)

    # ----------------------------------------------------------- persistence
    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SCHEDULE_SCHEMA_VERSION,
            "retry": self.retry.to_dict(),
            "faults": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSchedule":
        version = data.get("version", SCHEDULE_SCHEMA_VERSION)
        if version > SCHEDULE_SCHEMA_VERSION:
            raise ValueError(f"fault schedule version {version} is newer than supported")
        retry = RetryPolicy(**data["retry"]) if "retry" in data else None
        events = []
        for raw in data.get("faults", []):
            raw = dict(raw)
            kind = raw.pop("kind", None)
            etype = _TYPE_BY_KIND.get(kind)
            if etype is None:
                raise ValueError(f"unknown fault kind {kind!r}")
            for k, v in raw.items():
                if v == "inf":
                    raw[k] = math.inf
            try:
                events.append(etype(**raw))
            except TypeError as exc:
                raise ValueError(f"bad {kind} event {raw}: {exc}") from None
        return cls(events, retry=retry)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())
            f.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultSchedule":
        with open(path) as f:
            return cls.from_json(f.read())
