"""Runtime fault injection: wires a :class:`FaultSchedule` into a live run.

The injector owns three things:

* the **crash timeline** — one DES control process that walks the schedule's
  crash/restart edges, flips the target :class:`~repro.fs.server.MdsServer`
  down/up, and invalidates the clients' near-root cache (a restarted MDS
  cannot honour leases granted before it died);
* the **client-side gate** — :meth:`rpc_gate` runs before every RPC and
  models the failure a client actually observes: connection refused after
  one round trip for a crashed server, a full RPC-timeout wait for a
  partitioned or dropping one, extra per-RPC delay for a slow link;
* the **accounting** — every fault, retry, failover, and typed op failure
  counts here and into the PR-1 metrics registry (``faults_*`` families),
  so a traced faulty run fully explains its latency.

Determinism: the injector draws randomness only from two dedicated streams
("fault-drop" for drop coin flips, "fault-retry" for backoff jitter) derived
from the run seed, and only *when a matching fault window is active* — a run
with an empty schedule is bit-identical to a run with no schedule at all
(asserted by tests/test_fs_parity.py).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

import numpy as np

from repro.fs.faults.errors import (
    FaultError,
    MdsUnavailableError,
    RpcDroppedError,
    RpcTimeoutError,
)
from repro.fs.faults.schedule import FaultSchedule, RetryPolicy
from repro.sim import SeedSequenceFactory

__all__ = ["FaultInjector"]


class FaultInjector:
    """Installs a fault schedule on an :class:`~repro.fs.filesystem.OrigamiFS`."""

    def __init__(self, fs, schedule: FaultSchedule):
        schedule.validate(len(fs.servers))
        self.fs = fs
        self.schedule = schedule
        self.retry: RetryPolicy = schedule.retry
        ssf = SeedSequenceFactory(fs.config.seed)
        self._drop_rng = ssf.stream("fault-drop")
        self._retry_rng = ssf.stream("fault-retry")

        #: durable runs derive restart warm-up from recovery work instead of
        #: the schedule's fixed warmup_ms constant
        self._derived_warmup_mode = getattr(fs.config, "data_dir", None) is not None
        #: mds -> (warm until, factor) windows installed at restart time
        self._derived_warmup: Dict[int, tuple] = {}

        # run-scoped totals (mirrored into the registry live)
        self.crashes = 0
        self.restarts = 0
        self.rpc_drops = 0
        self.rpc_timeouts = 0
        self.connection_refusals = 0
        self.aborted_in_service = 0
        self.retries = 0
        self.failovers = 0
        self.ops_failed = 0
        self.ops_recovered = 0
        self.backoff_wait_ms = 0.0
        self.failed_by_reason: Dict[str, int] = {}

        reg = fs.obs.registry
        self._m_crashes = reg.counter("faults_crashes_total", "MDS crash events injected")
        self._m_restarts = reg.counter("faults_restarts_total", "MDS restarts completed")
        self._m_drops = reg.counter("faults_rpc_drops_total", "RPCs dropped in flight")
        self._m_timeouts = reg.counter("faults_rpc_timeouts_total", "RPCs timed out (partition)")
        self._m_refused = reg.counter("faults_connection_refused_total", "RPCs refused by a down MDS")
        self._m_aborted = reg.counter("faults_service_aborted_total", "requests lost to a mid-service crash")
        self._m_retries = reg.counter("faults_retries_total", "client op retries")
        self._m_failovers = reg.counter("faults_failovers_total", "retries that re-resolved to a new primary")
        self._m_failed = reg.counter("faults_ops_failed_total", "ops that exhausted their retry budget")
        self._m_recovered = reg.counter("faults_ops_recovered_total", "ops that succeeded after retrying")
        self._m_backoff = reg.counter("faults_backoff_wait_ms_total", "client virtual ms spent backing off")

        for server in fs.servers:
            server.attach_faults(self)
        fs.faults = self
        # an injector installed after construction (the legacy
        # SlowdownInjector shim) must void the fast path: engagement was
        # decided while fs.faults was still None, and the inlined replay
        # loop never consults the injector.  Clients dispatch on this flag
        # at run() time, so clearing it here is sufficient.
        fs.fastpath_engaged = False
        self.control_procs: List = []
        edges = schedule.crash_edges()
        if edges:
            self.control_procs.append(fs.env.process(self._control(edges)))

    # ------------------------------------------------------------- timeline
    def _control(self, edges) -> Generator:
        fs = self.fs
        env = fs.env
        for t, kind, ev in edges:
            if t < env.now:
                # a warm-restarted run (checkpoint resume with a warped
                # clock) has already lived through this edge.  A past crash
                # whose window is still open must still take the server
                # down — its restart edge lies ahead and will price the
                # recovery; everything else is history.
                if kind == "crash" and (not ev.restarts or ev.end_ms > env.now):
                    fs.servers[ev.mds].crash()
                    self.crashes += 1
                    self._m_crashes.inc()
                    until = float("inf") if not ev.restarts else (
                        ev.end_ms if self._derived_warmup_mode
                        else ev.end_ms + ev.warmup_ms
                    )
                    fs.cache.on_mds_crash(env.now, until)
                continue
            if t > env.now:
                yield env.timeout(t - env.now)
            server = fs.servers[ev.mds]
            if kind == "crash":
                server.crash()
                self.crashes += 1
                self._m_crashes.inc()
                # leases/near-root entries granted by the dead MDS are void
                # until it is back and warm (conservatively: all of them —
                # the DES models one coherent client-population cache); in
                # derived mode the warm extension is added at restart, once
                # the recovery cost is known
                if not ev.restarts:
                    until = float("inf")
                elif self._derived_warmup_mode:
                    until = ev.end_ms
                else:
                    until = ev.end_ms + ev.warmup_ms
                fs.cache.on_mds_crash(env.now, until)
            else:
                rec_ms = server.restart()
                self.restarts += 1
                self._m_restarts.inc()
                if self._derived_warmup_mode and rec_ms > 0:
                    # warm-up window sized by the recovery work performed
                    self._derived_warmup[ev.mds] = (env.now + rec_ms, ev.warmup_factor)
                    fs.cache.on_mds_crash(env.now, env.now + rec_ms)

    def cancel(self) -> None:
        """Stop pending timeline events so a drained run can end (idempotent)."""
        for p in self.control_procs:
            if p.is_alive:
                try:
                    p.interrupt("replay-complete")
                except RuntimeError:
                    pass

    # ------------------------------------------------------ server-side view
    def service_factor(self, mds: int, now: float) -> float:
        f = self.schedule.slowdown_factor(
            mds, now, include_warmup=not self._derived_warmup_mode
        )
        if self._derived_warmup_mode:
            window = self._derived_warmup.get(mds)
            if window is not None and now < window[0]:
                f = max(f, window[1])
        return f

    def up_mask(self) -> np.ndarray:
        """Boolean per-MDS liveness (the balancers' degraded-mode input).

        Deprecation shim: membership is now owned by the filesystem's
        :class:`~repro.fs.elastic.liveness.MDSLiveness` view, which folds
        this injector's crash flags together with voluntary elastic states
        (warming/draining/gone).  Prefer ``fs.liveness.serving_mask()``.
        With no elastic pool the two are identical, bit for bit.
        """
        liveness = getattr(self.fs, "liveness", None)
        if liveness is not None:
            return liveness.serving_mask()
        return np.array([s.up for s in self.fs.servers], dtype=bool)

    def count_service_abort(self) -> None:
        self.aborted_in_service += 1
        self._m_aborted.inc()

    # ------------------------------------------------------ client-side gate
    def rpc_gate(self, mds: int, span=None) -> Generator:
        """Model the network leg of one RPC to ``mds``; raises typed faults.

        All fault-attributable waiting (timeout waits, refused-connection
        round trips, injected delays) is charged to ``span.fault_wait_ms`` so
        the span identity ``queue + service + net + fault_wait == latency``
        keeps holding under faults.
        """
        fs = self.fs
        env = fs.env
        now = env.now
        sched = self.schedule
        if sched.partitioned(mds, now):
            wait = self.retry.rpc_timeout_ms
            self.rpc_timeouts += 1
            self._m_timeouts.inc()
            if span is not None:
                span.fault_wait_ms += wait
            yield env.timeout(wait)
            raise RpcTimeoutError(mds, "partitioned")
        if not fs.servers[mds].up:
            wait = fs.network_rtt()  # connection refused costs one round trip
            self.connection_refusals += 1
            self._m_refused.inc()
            if span is not None:
                span.fault_wait_ms += wait
            yield env.timeout(wait)
            raise MdsUnavailableError(mds)
        p = sched.drop_probability(mds, now)
        if p > 0.0 and float(self._drop_rng.random()) < p:
            wait = self.retry.rpc_timeout_ms
            self.rpc_drops += 1
            self._m_drops.inc()
            if span is not None:
                span.fault_wait_ms += wait
            yield env.timeout(wait)
            raise RpcDroppedError(mds)
        extra = sched.extra_delay_ms(mds, now)
        if extra > 0.0:
            if span is not None:
                span.fault_wait_ms += extra
            yield env.timeout(extra)

    # --------------------------------------------------------- retry support
    def backoff_ms(self, attempt: int) -> float:
        """Seeded-jitter backoff before retry ``attempt`` (1-based)."""
        wait = self.retry.backoff_ms(attempt, float(self._retry_rng.random()))
        self.backoff_wait_ms += wait
        self._m_backoff.inc(wait)
        return wait

    def count_retry(self) -> None:
        self.retries += 1
        self._m_retries.inc()

    def count_failover(self) -> None:
        self.failovers += 1
        self._m_failovers.inc()

    def count_recovered(self) -> None:
        self.ops_recovered += 1
        self._m_recovered.inc()

    def count_op_failed(self, exc: FaultError) -> None:
        self.ops_failed += 1
        self._m_failed.inc()
        self.failed_by_reason[exc.reason] = self.failed_by_reason.get(exc.reason, 0) + 1

    # -------------------------------------------------------------- summary
    def summary(self) -> Dict[str, float]:
        """Flat counters for SimResult / the metrics snapshot / the CLI."""
        out: Dict[str, float] = {
            "events_scheduled": float(len(self.schedule)),
            "crashes": float(self.crashes),
            "restarts": float(self.restarts),
            "rpc_drops": float(self.rpc_drops),
            "rpc_timeouts": float(self.rpc_timeouts),
            "connection_refusals": float(self.connection_refusals),
            "service_aborts": float(self.aborted_in_service),
            "retries": float(self.retries),
            "failovers": float(self.failovers),
            "ops_failed": float(self.ops_failed),
            "ops_recovered": float(self.ops_recovered),
            "backoff_wait_ms": self.backoff_wait_ms,
        }
        for reason, n in sorted(self.failed_by_reason.items()):
            out[f"failed_{reason}"] = float(n)
        if self._derived_warmup_mode:
            out["recovery_ms"] = sum(s.recovery_ms_total for s in self.fs.servers)
        return out
