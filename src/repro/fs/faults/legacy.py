"""Deprecated pre-schedule API: :class:`SlowdownInjector`.

The original fault layer knew exactly one fault (service slowdowns) and was
installed imperatively by monkey-patching ``server.service``.  It is kept as
a thin shim over the schedule model — same constructor, same ``factor_for``
query, same semantics (worst active factor wins, applied when the request
*enters* service) — so existing callers keep working while emitting a
:class:`DeprecationWarning`.  New code should build a
:class:`~repro.fs.faults.schedule.FaultSchedule` instead (either via
``SimConfig(faults=...)`` or ``FaultInjector(fs, schedule)``).
"""

from __future__ import annotations

import warnings
from typing import List

from repro.fs.faults.injector import FaultInjector
from repro.fs.faults.schedule import FaultSchedule, Slowdown

__all__ = ["SlowdownInjector"]


class SlowdownInjector:
    """Deprecated: installs service-time degradation on an OrigamiFS instance."""

    def __init__(self, fs, slowdowns: List[Slowdown]):
        warnings.warn(
            "SlowdownInjector is deprecated; pass a FaultSchedule via "
            "SimConfig(faults=...) or install a FaultInjector instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if getattr(fs, "faults", None) is not None:
            raise RuntimeError("fs already has a fault injector installed")
        self.fs = fs
        self.slowdowns = list(slowdowns)
        self._injector = FaultInjector(fs, FaultSchedule(self.slowdowns))

    def factor_for(self, mds: int, now: float) -> float:
        """Worst slowdown factor active on ``mds`` at ``now`` (legacy query)."""
        return self._injector.service_factor(mds, now)
