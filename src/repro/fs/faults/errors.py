"""Typed fault failures surfaced to clients.

Every fault the injector raises derives from :class:`FaultError` and carries
the target MDS plus a stable ``reason`` slug.  The client's retry loop
catches :class:`FaultError` (and only that), so a bug that raises anything
else still crashes the run loudly instead of being retried into silence.
``reason`` strings are part of the span schema (``span.fault``) and of the
``faults`` section of :class:`~repro.fs.metrics.SimResult`.
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "MdsUnavailableError",
    "MdsCrashedError",
    "RpcTimeoutError",
    "RpcDroppedError",
    "RetriesExhaustedError",
]


class FaultError(Exception):
    """Base class for injected failures; ``reason`` is a stable slug."""

    reason = "fault"

    def __init__(self, mds: int, detail: str = ""):
        self.mds = int(mds)
        self.detail = detail
        super().__init__(f"MDS {mds}: {self.reason}" + (f" ({detail})" if detail else ""))


class MdsUnavailableError(FaultError):
    """The target MDS is down (connection refused after one round trip)."""

    reason = "mds_down"


class MdsCrashedError(MdsUnavailableError):
    """The MDS crashed while this request was queued or in service."""

    reason = "service_aborted"


class RpcTimeoutError(FaultError):
    """No response within the per-RPC timeout (network partition window)."""

    reason = "rpc_timeout"


class RpcDroppedError(FaultError):
    """The RPC was dropped in flight; the client waited out its timeout."""

    reason = "rpc_dropped"


class RetriesExhaustedError(FaultError):
    """The op-level retry budget ran out; carries the last underlying fault."""

    reason = "retries_exhausted"

    def __init__(self, mds: int, attempts: int, last: FaultError):
        self.attempts = attempts
        self.last = last
        super().__init__(mds, f"{attempts} attempts, last: {last.reason}")
