"""Fault injection: deterministic failures for the metadata cluster.

Real clusters do not run at uniform speed — compaction stalls, noisy
neighbours, crashed daemons, and partitioned racks degrade individual MDSs.
A balancer that only understands *load* cannot tell an overloaded server
from a degraded one, and the paper's evaluation never stresses that edge;
this subsystem makes failure a first-class, scriptable input:

* :mod:`~repro.fs.faults.schedule` — the declarative model: window-scoped
  :class:`Slowdown`/:class:`Crash`/:class:`RpcDrop`/:class:`RpcDelay`/
  :class:`Partition` events plus the client :class:`RetryPolicy`, JSON
  round-trippable (``simulate --faults schedule.json``);
* :mod:`~repro.fs.faults.injector` — :class:`FaultInjector` wires a schedule
  into a live run: crash timeline, per-RPC client gate, fault accounting;
* :mod:`~repro.fs.faults.errors` — the typed failures clients observe;
* :mod:`~repro.fs.faults.legacy` — the deprecated :class:`SlowdownInjector`
  shim over the schedule model.
"""

from repro.fs.faults.errors import (
    FaultError,
    MdsCrashedError,
    MdsUnavailableError,
    RetriesExhaustedError,
    RpcDroppedError,
    RpcTimeoutError,
)
from repro.fs.faults.injector import FaultInjector
from repro.fs.faults.legacy import SlowdownInjector
from repro.fs.faults.schedule import (
    SCHEDULE_SCHEMA_VERSION,
    Crash,
    FaultEvent,
    FaultSchedule,
    Partition,
    RetryPolicy,
    RpcDelay,
    RpcDrop,
    Slowdown,
)

__all__ = [
    "FaultEvent",
    "Slowdown",
    "Crash",
    "RpcDrop",
    "RpcDelay",
    "Partition",
    "RetryPolicy",
    "FaultSchedule",
    "FaultInjector",
    "SlowdownInjector",
    "FaultError",
    "MdsUnavailableError",
    "MdsCrashedError",
    "RpcTimeoutError",
    "RpcDroppedError",
    "RetriesExhaustedError",
    "SCHEDULE_SCHEMA_VERSION",
]
