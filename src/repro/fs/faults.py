"""Fault injection: transient MDS slowdowns during a run.

Real clusters do not run at uniform speed — compaction stalls, noisy
neighbours, and partial failures slow individual MDSs.  A balancer that only
understands *load* cannot tell an overloaded server from a degraded one; a
balancer driven by busy time (Origami, Lunule) routes work away from both.

:class:`SlowdownInjector` multiplies one MDS's service times by a factor for
a window of virtual time, by wrapping the server's ``service`` generator.
Used by the failure-injection tests and the resilience example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

__all__ = ["Slowdown", "SlowdownInjector"]


@dataclass(frozen=True)
class Slowdown:
    """Degrade ``mds`` by ``factor``× between ``start_ms`` and ``end_ms``."""

    mds: int
    start_ms: float
    end_ms: float
    factor: float

    def __post_init__(self):
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1 (a slowdown)")
        if self.end_ms <= self.start_ms:
            raise ValueError("end must come after start")


class SlowdownInjector:
    """Installs service-time degradation on an OrigamiFS instance."""

    def __init__(self, fs, slowdowns: List[Slowdown]):
        self.fs = fs
        self.slowdowns = list(slowdowns)
        for s in self.slowdowns:
            if not 0 <= s.mds < len(fs.servers):
                raise ValueError(f"slowdown targets unknown MDS {s.mds}")
        self._install()

    def factor_for(self, mds: int, now: float) -> float:
        f = 1.0
        for s in self.slowdowns:
            if s.mds == mds and s.start_ms <= now < s.end_ms:
                f = max(f, s.factor)
        return f

    def _install(self) -> None:
        fs = self.fs
        injector = self

        for server in fs.servers:
            original = server.service

            def degraded(
                duration_ms: float, span=None, _orig=original, _srv=server
            ) -> Generator:
                factor = injector.factor_for(_srv.mds_id, fs.env.now)
                yield from _orig(duration_ms * factor, span)

            server.service = degraded  # type: ignore[method-assign]
