"""Data cluster for end-to-end runs (Fig. 9b).

After the metadata phase of an ``open``/``create`` completes, the client
transfers the file body against a bandwidth-modelled data server chosen by
hash.  The paper's end-to-end numbers are metadata-bound (files are small —
"over 90% of files ... smaller than 1MB"), so the data path mostly adds a
per-op floor that compresses relative gaps exactly as Fig. 9b shows relative
to Fig. 9a.
"""

from __future__ import annotations

from typing import Generator

from repro.sim import Environment, Resource

__all__ = ["DataCluster"]


class DataCluster:
    """Fixed pool of data servers with per-server bandwidth."""

    def __init__(
        self,
        env: Environment,
        n_servers: int = 5,
        bandwidth_mb_per_s: float = 400.0,
        per_op_overhead_ms: float = 0.02,
        mean_file_kb: float = 64.0,
    ):
        if n_servers < 1:
            raise ValueError("need at least one data server")
        if bandwidth_mb_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.servers = [Resource(env, capacity=1) for _ in range(n_servers)]
        self.bandwidth = bandwidth_mb_per_s
        self.per_op_overhead_ms = per_op_overhead_ms
        self.mean_file_kb = mean_file_kb
        self.transfers = 0
        self.bytes_moved = 0

    def transfer(self, fs, key: int) -> Generator:
        """Move one file body; server selected by key hash."""
        size_kb = fs.rng.exponential(self.mean_file_kb)
        server = self.servers[key % len(self.servers)]
        duration = self.per_op_overhead_ms + (size_kb / 1024.0) / self.bandwidth * 1000.0
        with server.request() as req:
            yield req
            yield self.env.timeout(duration)
        self.transfers += 1
        self.bytes_moved += int(size_kb * 1024)
        fs.data_ops_completed += 1
        fs.last_completion_ms = self.env.now
