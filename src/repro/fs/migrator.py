"""Migrator: applies external migration decisions to the live cluster (§4.1).

A migration (1) repins the subtree in the partition map, (2) moves the KV
records between the two MDS stores when stores are enabled, and (3) charges
both MDSs migration busy time proportional to the metadata moved — the
source packs and sends, the destination unpacks and indexes.  That busy time
is the "migration is not free" cost that makes over-aggressive balancing
(ML-tree's failure mode, §5.2) visible in the simulation.
"""

from __future__ import annotations

from typing import Generator, List

from repro.cluster.migration import MigrationDecision, MigrationLog
from repro.fs.faults.errors import FaultError

__all__ = ["Migrator"]


class Migrator:
    """Applies decisions produced by the plugged-in balancing policy."""

    def __init__(self, fs, cost_per_inode_ms: float = 0.002):
        if cost_per_inode_ms < 0:
            raise ValueError("cost_per_inode_ms must be non-negative")
        self.fs = fs
        self.cost_per_inode_ms = cost_per_inode_ms
        self.log = MigrationLog()
        reg = fs.obs.registry
        self._m_migrations = reg.counter("migrations_applied_total", "subtree moves applied")
        self._m_inodes = reg.counter("migration_inodes_moved_total", "inodes relocated")
        self._m_stale = reg.counter("migration_stale_total", "decisions dropped as stale")

    def apply(self, decisions: List[MigrationDecision], epoch: int) -> Generator:
        """Apply a batch of decisions; yields while charging migration time."""
        fs = self.fs
        for d in decisions:
            try:
                d.validate(fs.pmap)
            except ValueError:
                # the subtree moved (or vanished) since the policy looked;
                # stale decisions are dropped, as in any async pipeline
                fs.stale_decisions += 1
                self._m_stale.inc()
                continue
            liveness = getattr(fs, "liveness", None)
            if (
                not fs.servers[d.dst].up
                if liveness is None
                else not liveness.can_receive(d.dst)
            ):
                # the destination crashed — or started draining out of an
                # elastic pool — between planning and apply: the export
                # cannot land, so authority stays where it is
                fs.stale_decisions += 1
                self._m_stale.inc()
                continue
            if fs.use_kvstore:
                self._move_records(d)
            rec = self.log.apply(fs.pmap, d, epoch=epoch)
            self._m_migrations.inc()
            self._m_inodes.inc(rec.inodes_moved)
            fs.obs.timeline.record_migration(d.src, d.dst, rec.inodes_moved)
            cost = rec.inodes_moved * self.cost_per_inode_ms
            if cost > 0:
                # source packs, destination ingests — both are busy.  A dead
                # source cannot pack: its subtrees are *evacuated* from the
                # surviving replica of the partition map, so only the
                # destination's ingest cost is charged.  A crash edge landing
                # mid-charge forfeits the remaining pack/ingest time: the
                # repin above is already authoritative, journal replay covers
                # the rest on restart.
                for mds in (d.src, d.dst):
                    if not fs.servers[mds].up:
                        continue
                    try:
                        yield from fs.servers[mds].service(cost)
                    except FaultError:
                        pass

    def _move_records(self, d: MigrationDecision) -> None:
        """Move every directory's records from its *current* owner to the dst.

        Scanning per-directory (rather than only the decision's src store)
        keeps the stores exact even when a policy migrates a subtree whose
        interior was previously re-pinned elsewhere.
        """
        fs = self.fs
        dst_store = fs.servers[d.dst].store
        if dst_store is None:
            return
        tree = fs.tree
        idx = tree.dfs_index()
        owner_arr = fs.pmap.owner_array()
        for dir_ino in idx.dirs_in_subtree(d.subtree_root):
            dir_ino = int(dir_ino)
            cur = int(owner_arr[dir_ino])
            if cur < 0 or cur == d.dst:
                continue
            src_store = fs.servers[cur].store
            if src_store is None:
                continue
            lo = b"%020d/" % dir_ino
            hi = b"%020d0" % dir_ino  # '0' sorts just after '/'
            for k, v in list(src_store.scan(lo, hi)):
                dst_store.put(k, v)
                src_store.delete(k)
