"""Client metadata caches: the paper's near-root design and a lease cache.

OrigamiFS clients cache metadata entries whose depth is below a configured
threshold (§4.2).  Because near-root metadata is a sliver of the namespace
(<1%, per InfiniFS) yet sits on every path, this one cache removes most
resolution RPCs and neutralises the near-root hotspot — without lease
machinery: near-root entries are effectively read-only during a run.

The paper *claims* the alternative — caching everything under leases —
carries "significant consistency overhead associated with cache
synchronization or lease management" but never measures it.
:class:`LeaseCache` implements that alternative so the claim becomes an
ablation (`benchmarks/test_ablations.py::test_ablation_cache_design`):
every resolved directory is cached under a TTL lease; namespace mutations
into a leased directory must recall the lease first, charging the owning
MDS a synchronisation cost and invalidating the entry.
"""

from __future__ import annotations

from typing import Dict

from repro.namespace.tree import NamespaceTree

__all__ = ["NearRootCache", "LeaseCache"]


class NearRootCache:
    """Depth-thresholded client cache with hit/miss accounting."""

    def __init__(self, tree: NamespaceTree, depth_threshold: int = 0):
        if depth_threshold < 0:
            raise ValueError("depth_threshold must be non-negative")
        self.tree = tree
        self.depth_threshold = depth_threshold
        self.hits = 0
        self.misses = 0
        #: near-root entries are void until this virtual time (an MDS crash
        #: invalidates them: a restarted server cannot vouch for entries it
        #: handed out before dying)
        self.invalid_until = 0.0

    @property
    def enabled(self) -> bool:
        return self.depth_threshold > 0

    def covers(self, dir_ino: int, now: float = 0.0) -> bool:
        """Would this directory's entry be served from the client cache?"""
        if not self.enabled or now < self.invalid_until:
            self.misses += 1
            return False
        if self.tree.depth(dir_ino) < self.depth_threshold:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def grant(self, dir_ino: int, now: float) -> None:
        """No-op: near-root coverage is structural, not per-fetch."""

    def recall_if_leased(self, dir_ino: int, now: float) -> float:
        """No-op: near-root entries are never leased (read-only by design)."""
        return 0.0

    def on_mds_crash(self, now: float, until: float) -> None:
        """Void near-root coverage until the crashed MDS is back and warm."""
        self.invalid_until = max(self.invalid_until, until)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> tuple:
        """Cumulative ``(hits, misses)`` — the timeline's delta source."""
        return (self.hits, self.misses)

    def stats_dict(self) -> Dict[str, float]:
        """Counters for the metrics registry / run snapshot."""
        return {
            "hits_total": float(self.hits),
            "misses_total": float(self.misses),
            "hit_rate": self.hit_rate,
        }


class LeaseCache:
    """Full metadata cache under TTL leases (the design the paper avoids).

    Semantics (aggregated over the client population, which shares one
    coherent cache in the DES):

    * a read resolution of directory ``d`` is a hit while ``d`` holds a live
      lease; otherwise the owner is contacted and a lease is granted;
    * a namespace mutation whose owning directory holds a live lease must
      *recall* it first: the owning MDS pays ``recall_cost_ms`` of
      synchronisation work and the entry is invalidated (the next reader
      re-fetches and re-leases).

    Counters expose the consistency traffic so the ablation can report it.
    """

    def __init__(self, tree: NamespaceTree, ttl_ms: float = 50.0, recall_cost_ms: float = 0.05):
        if ttl_ms <= 0:
            raise ValueError("ttl_ms must be positive")
        if recall_cost_ms < 0:
            raise ValueError("recall_cost_ms must be non-negative")
        self.tree = tree
        self.ttl_ms = ttl_ms
        self.recall_cost_ms = recall_cost_ms
        self._expiry: Dict[int, float] = {}
        self.hits = 0
        self.misses = 0
        self.grants = 0
        self.recalls = 0

    @property
    def enabled(self) -> bool:
        return True

    def covers(self, dir_ino: int, now: float = 0.0) -> bool:
        """Read-path check: is ``dir_ino`` leased right now? Counts hit/miss."""
        exp = self._expiry.get(dir_ino)
        if exp is not None and exp > now:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def grant(self, dir_ino: int, now: float) -> None:
        """Lease ``dir_ino`` for ``ttl_ms`` (after a miss fetched it)."""
        self._expiry[dir_ino] = now + self.ttl_ms
        self.grants += 1

    def recall_if_leased(self, dir_ino: int, now: float) -> float:
        """Mutation-path check: returns the synchronisation cost to charge
        the owning MDS (0 when no live lease exists)."""
        exp = self._expiry.pop(dir_ino, None)
        if exp is not None and exp > now:
            self.recalls += 1
            return self.recall_cost_ms
        return 0.0

    def on_mds_crash(self, now: float, until: float) -> None:
        """Drop every live lease: the dead MDS can no longer honour recalls."""
        self._expiry.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> tuple:
        """Cumulative ``(hits, misses)`` — the timeline's delta source."""
        return (self.hits, self.misses)

    def stats_dict(self) -> Dict[str, float]:
        """Counters for the metrics registry / run snapshot (incl. leases)."""
        return {
            "hits_total": float(self.hits),
            "misses_total": float(self.misses),
            "hit_rate": self.hit_rate,
            "lease_grants_total": float(self.grants),
            "lease_recalls_total": float(self.recalls),
        }
