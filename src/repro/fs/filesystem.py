"""OrigamiFS assembly: configuration, the cluster object, and ``run_simulation``.

A run wires together: the namespace tree, a trace, a balancing policy, the
MDS servers, client workers, the near-root cache, the Data Collector
(:class:`~repro.namespace.stats.AccessStats`), the Migrator, and the epoch
driver — then advances virtual time until the trace is fully replayed.

Time scale: epochs default to 250 ms of virtual time.  The paper uses 10 s
epochs against a ~20k ops/s cluster; the cost model's absolute scale makes a
250 ms epoch carry a few thousand operations, preserving the
ops-per-epoch ratio the balancer reacts to while keeping runs fast (the
compression is documented in DESIGN.md).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.balancers.base import BalancePolicy
from repro.costmodel.optypes import OpType
from repro.fs.elastic.controller import MDSPoolController
from repro.fs.elastic.liveness import MDSLiveness
from repro.costmodel.params import CostParams
from repro.fs.cache import LeaseCache, NearRootCache
from repro.fs.client import ClientWorker
from repro.fs.datapath import DataCluster
from repro.fs.driver import EpochDriver
from repro.fs.faults.injector import FaultInjector
from repro.fs.faults.schedule import FaultSchedule
from repro.fs.metrics import LatencyRecorder, SimResult
from repro.fs.migrator import Migrator
from repro.fs.server import MdsServer
from repro.namespace.stats import AccessStats
from repro.namespace.tree import NamespaceTree
from repro.obs import NULL_OBS, Observability
from repro.sim import DurabilityCostModel, Environment, SeedSequenceFactory
from repro.sim import fastpath
from repro.workloads.trace import Trace

__all__ = ["SimConfig", "OrigamiFS", "run_simulation"]


@dataclass
class SimConfig:
    """Knobs for one simulation run (defaults = the paper's §5.1 setup)."""

    n_mds: int = 5
    n_clients: int = 50
    epoch_ms: float = 250.0
    params: CostParams = field(default_factory=lambda: CostParams(cache_depth=3))
    seed: int = 0
    #: store inodes in per-MDS LSM stores and move them on migration
    use_kvstore: bool = False
    migration_cost_per_inode_ms: float = 0.002
    service_concurrency: int = 1
    #: lognormal-ish RTT jitter fraction (0 = deterministic network)
    rtt_jitter: float = 0.0
    #: client cache design: "near-root" (the paper's, driven by
    #: params.cache_depth), "lease" (full TTL-lease cache — the alternative
    #: the paper rejects; DES-only), or "none"
    cache_mode: str = "near-root"
    lease_ttl_ms: float = 50.0
    lease_recall_cost_ms: float = 0.05
    #: how many upcoming ops the oracle policy may see
    oracle_window_ops: int = 5000
    #: attach a data cluster (kwargs for DataCluster) for end-to-end runs
    datapath: Optional[Dict] = None
    #: observability bundle (metrics registry + tracer + balancer audit);
    #: None means the shared all-disabled bundle — zero overhead, identical
    #: behaviour (asserted by tests/test_obs_parity.py)
    obs: Optional[Observability] = None
    #: declarative fault schedule (crashes, slowdowns, drops, partitions);
    #: None — and an *empty* schedule — are bit-identical to a healthy run
    #: (asserted by tests/test_fs_parity.py)
    faults: Optional[FaultSchedule] = None
    #: root directory for durable per-MDS stores (WAL + SSTables + MANIFEST);
    #: setting it turns on use_kvstore and the durability cost model, and
    #: makes crash/restart pay real recovery work instead of fixed warm-up
    data_dir: Optional[str] = None
    #: durability latency prices; defaulted when data_dir is set
    durability: Optional[DurabilityCostModel] = None
    #: elastic-pool spec (repro.fs.elastic.AutoscaleSpec); None (the
    #: default) keeps the historical fixed pool, bit-identically.  When set,
    #: ``n_mds`` is the *initial* pool size and the cluster is provisioned
    #: at ``autoscale.max_mds`` capacity with the surplus parked
    autoscale: Optional[object] = None
    #: vectorized replay fast path (repro.sim.fastpath): True/False force
    #: it on/off, None defers to the REPRO_FASTPATH env var (default on).
    #: Either way it only engages on configurations it reproduces
    #: bit-identically — see fastpath.engaged for the eligibility list
    fastpath: Optional[bool] = None

    def __post_init__(self):
        if self.n_mds < 1 or self.n_clients < 1:
            raise ValueError("need at least one MDS and one client")
        if self.autoscale is not None:
            self.autoscale.validate(self.n_mds)
        if self.epoch_ms <= 0:
            raise ValueError("epoch_ms must be positive")
        if self.cache_mode not in ("near-root", "lease", "none"):
            raise ValueError(f"unknown cache_mode {self.cache_mode!r}")
        if self.durability is not None and self.data_dir is None:
            raise ValueError("durability cost model requires data_dir")
        if self.data_dir is not None:
            self.use_kvstore = True
            if self.durability is None:
                self.durability = DurabilityCostModel()


class OrigamiFS:
    """A live simulated metadata cluster."""

    #: ops that touch file bodies when the data path is on
    DATA_OPS = frozenset({int(OpType.OPEN), int(OpType.CREATE)})

    def __init__(
        self,
        tree: NamespaceTree,
        trace: Trace,
        policy: BalancePolicy,
        config: Optional[SimConfig] = None,
        restore_from=None,
    ):
        #: SimCheckpoint being warm-restarted (None for a fresh run).  Built
        #: via Checkpointer.restore(); the hooks run at fixed points below so
        #: ordering holds: owners land before store population, the clock
        #: warps onto the still-empty calendar before the fault injector
        #: schedules its timeline.
        self.config = config or SimConfig()
        self.tree = tree
        self.trace = trace
        self.policy = policy
        self.params = self.config.params
        self.env = Environment()
        ssf = SeedSequenceFactory(self.config.seed)
        self._ssf = ssf  # retained so the Checkpointer can snapshot streams
        self.rng = ssf.stream("fs")
        self._net_rng = ssf.stream("network")

        self.obs = self.config.obs if self.config.obs is not None else NULL_OBS
        #: live per-op metrics children (no-op singletons when metrics off)
        self.m_ops = self.obs.registry.counter("client_ops_total", "metadata ops completed")
        self.m_latency = self.obs.registry.histogram(
            "client_latency_ms", "client-observed metadata latency (ms)"
        )

        #: pool capacity: with an elastic pool the cluster is provisioned at
        #: ``autoscale.max_mds`` (servers + partition-map width) and members
        #: beyond ``n_mds`` start parked; without one this is just ``n_mds``
        autoscale = self.config.autoscale
        self.pool_capacity = (
            self.config.n_mds if autoscale is None else autoscale.max_mds
        )
        self.pmap = policy.setup(tree, self.pool_capacity, ssf.stream("policy"))
        if restore_from is not None:
            restore_from.apply_partition(self)
        if autoscale is not None:
            owners = self.pmap.owner_array()
            owners = owners[owners >= 0]
            if self.pmap.placement is not None or (
                owners.size and int(owners.max()) >= self.config.n_mds
            ):
                raise ValueError(
                    "autoscaling requires a subtree-placement policy whose "
                    "initial partition fits on the initially active MDSs "
                    f"(0..{self.config.n_mds - 1}); hash placements pin "
                    "directories across the whole pool and cannot drain"
                )
        self.use_kvstore = self.config.use_kvstore
        self.durability = self.config.durability
        self.servers = [
            MdsServer(
                self.env,
                i,
                service_concurrency=self.config.service_concurrency,
                use_kvstore=self.use_kvstore,
                registry=self.obs.registry,
                data_dir=(
                    os.path.join(self.config.data_dir, f"mds-{i}")
                    if self.config.data_dir is not None
                    else None
                ),
                durability=self.durability,
            )
            for i in range(self.pool_capacity)
        ]
        #: combined voluntary + involuntary membership view (always present;
        #: with no elastic pool every member is UP and the view reduces to
        #: the servers' crash flags)
        self.liveness = MDSLiveness(self.servers, n_active=self.config.n_mds)
        if self.use_kvstore:
            if restore_from is not None and self.config.data_dir is not None:
                # durable warm restart: the reopened stores already replayed
                # their WAL tails — the disk copy is authoritative, so the
                # in-memory population pass must not run (it would re-log
                # every live entry)
                pass
            else:
                self._populate_stores()
            if self.config.data_dir is not None:
                # setup population is not charged: flush it into SSTables and
                # drop the accrued WAL cost so the run starts from a clean,
                # checkpointed data directory
                for s in self.servers:
                    s.store.flush()
                    s.store.sync()
                    s.take_durability_cost()
                    s.durability_ms_total = 0.0
        if self.config.cache_mode == "lease":
            self.cache = LeaseCache(
                tree,
                ttl_ms=self.config.lease_ttl_ms,
                recall_cost_ms=self.config.lease_recall_cost_ms,
            )
        elif self.config.cache_mode == "none":
            self.cache = NearRootCache(tree, 0)
        else:
            self.cache = NearRootCache(tree, self.params.cache_depth)
        self.stats = AccessStats(tree)
        self.migrator = Migrator(self, self.config.migration_cost_per_inode_ms)
        self.latency = LatencyRecorder(seed=self.config.seed)
        self.datapath = (
            DataCluster(self.env, **self.config.datapath)
            if self.config.datapath is not None
            else None
        )

        # ---- hot-path acceleration state (pure caches, never results) ----
        #: trace columns as plain Python lists: per-op reads skip numpy
        #: scalar boxing (one box + int() per field per op otherwise)
        self._ops = trace.op.tolist()
        self._dir_inos = trace.dir_ino.tolist()
        self._aux = trace.aux.tolist()
        self._op_names = trace.names
        #: per-op client think time (offered-load shaping); None — the
        #: overwhelmingly common case — keeps the client loop unchanged
        self._think = trace.think_ms.tolist() if trace.think_ms is not None else None
        #: constant RTT when jitter is off (the default) — no RNG either way
        self._rtt_const = self.params.rtt if self.config.rtt_jitter == 0 else None
        #: memoised client plans, keyed (dir_ino, lsdir?); flushed whenever
        #: the stamp (pmap.dir_version, tree.version) moves — see
        #: ClientWorker._plan for the exact validity argument
        self._plan_cache: Dict[tuple, tuple] = {}
        self._plan_cache_stamp = (-1, -1)

        self.cursor = 0
        self.replay_done = len(trace) == 0
        self.ops_completed = 0
        self.failed_ops = 0
        #: failed_ops sub-counts: directory vanished under a concurrent
        #: mutation vs. retry budget exhausted against a faulty cluster
        self.vanished_ops = 0
        self.fault_failed_ops = 0
        self.total_rpcs = 0
        self.stale_decisions = 0
        self.data_ops_completed = 0
        #: virtual time of the most recent completed operation (run duration)
        self.last_completion_ms = 0.0
        self.created_files: List[int] = []
        self.epochs: List = []

        if restore_from is not None:
            # counters, RNG streams, latency/cache state, and the clock warp —
            # before the injector below puts its timeline on the calendar
            restore_from.apply_runtime(self)

        #: fault injector (installed last: it touches servers and cache)
        self.faults: Optional[FaultInjector] = None
        if self.config.faults is not None:
            FaultInjector(self, self.config.faults)  # sets self.faults
        if restore_from is not None:
            restore_from.apply_fault_rng(self)

        #: elastic pool controller (None = historical fixed pool)
        self.elastic: Optional[MDSPoolController] = None
        if autoscale is not None:
            self.elastic = MDSPoolController(self, autoscale)

        #: decided once everything the eligibility check inspects is built;
        #: clients dispatch on this flag (see repro.sim.fastpath)
        self.fastpath_engaged = fastpath.engaged(self)
        if self.fastpath_engaged:
            fastpath.prepare(self)

        # bind the timeline last: the clock has already warped (restores) and
        # the setup-population WAL activity is behind the snapshot baseline,
        # so window deltas cover exactly the run itself
        if self.obs.timeline.enabled:
            self.obs.timeline.bind(self)
            self.env.timeline = self.obs.timeline

    # -------------------------------------------------------------- plumbing
    def _populate_stores(self) -> None:
        owner_arr = self.pmap.owner_array()
        tree = self.tree
        for d in tree.iter_dirs():
            o = int(owner_arr[d])
            store = self.servers[o]
            for name, child in tree.children(d).items():
                store.kv_put(b"%020d/%s" % (d, name.encode()), b"inode")

    def next_op_index(self) -> Optional[int]:
        if self.cursor >= len(self.trace):
            self.replay_done = True
            return None
        i = self.cursor
        self.cursor += 1
        return i

    def upcoming(self, n: int) -> Trace:
        """The next ``n`` not-yet-issued operations (oracle's view)."""
        return self.trace[self.cursor : self.cursor + n]

    def network_rtt(self) -> float:
        rtt = self.params.rtt
        if self.config.rtt_jitter > 0:
            rtt *= 1.0 + self.config.rtt_jitter * float(self._net_rng.exponential(1.0))
        return rtt

    def cache_covers_depth(self, depth: int) -> bool:
        """Near-root coverage of the *target entry* (files are never leased)."""
        if self.config.cache_mode != "near-root":
            return False
        if self.env.now < self.cache.invalid_until:  # crash voided the cache
            return False
        return 0 < self.params.cache_depth and depth < self.params.cache_depth

    # ------------------------------------------------------------------ run
    def run(self) -> SimResult:
        driver = EpochDriver(self, self.policy, self.config.oracle_window_ops)
        clients = [
            self.env.process(ClientWorker(self, w).run())
            for w in range(self.config.n_clients)
        ]
        driver_proc = self.env.process(driver.run())

        def terminator():
            # when the last client drains, cancel the driver's pending epoch
            # timeout so virtual time stops at the last completed operation
            yield self.env.all_of(clients)
            if driver_proc.is_alive:
                driver_proc.interrupt("replay-complete")
            if self.faults is not None:
                self.faults.cancel()

        self.env.process(terminator())
        wall_t0 = time.perf_counter()
        self.env.run()
        wall_s = time.perf_counter() - wall_t0
        # duration = when the last operation completed (the driver's cancelled
        # epoch timeout may have dragged env.now further; ignore it)
        duration = self.last_completion_ms
        if any(s.epoch_busy_ms > 0 or s.epoch_qps > 0 for s in self.servers):
            driver.flush_epoch()
        if self.config.data_dir is not None:
            # clean shutdown: sync WAL tails and release file handles before
            # the stats are aggregated so the final fsyncs are counted
            for s in self.servers:
                if s.store is not None:
                    s.store.close()
        if self.elastic is not None:
            self.elastic.finalize(duration)
        self.obs.finalize(self)
        kv_stats = None
        if self.use_kvstore:
            from repro.kvstore import StoreStats

            agg = StoreStats()
            total_runs = 0
            for s in self.servers:
                if s.store is not None:
                    agg.merge(s.store.stats)
                    total_runs += s.store.run_count()
            kv_stats = agg.as_dict()
            kv_stats["run_count"] = float(total_runs)
            if self.config.data_dir is not None:
                kv_stats["recovery_ms"] = sum(s.recovery_ms_total for s in self.servers)
        return SimResult(
            strategy=self.policy.name,
            n_mds=self.config.n_mds,
            epoch_ms=self.config.epoch_ms,
            ops_completed=self.ops_completed,
            duration_ms=duration,
            mean_latency_ms=self.latency.mean,
            p50_latency_ms=self.latency.percentile(50),
            p99_latency_ms=self.latency.percentile(99),
            total_rpcs=self.total_rpcs,
            per_epoch=self.epochs,
            migrations=self.migrator.log.total_migrations,
            inodes_migrated=self.migrator.log.total_inodes_moved,
            failed_ops=self.failed_ops,
            vanished_ops=self.vanished_ops,
            fault_failed_ops=self.fault_failed_ops,
            cache_hit_rate=self.cache.hit_rate,
            data_ops_completed=self.data_ops_completed,
            engine_events=self.env.events_processed,
            kvstore=kv_stats,
            faults=self.faults.summary() if self.faults is not None else None,
            elastic=self.elastic.summary() if self.elastic is not None else None,
            wall_s=wall_s,
            timeline=(
                self.obs.timeline.summary() if self.obs.timeline.enabled else None
            ),
        )


def run_simulation(
    tree: NamespaceTree,
    trace: Trace,
    policy: BalancePolicy,
    config: Optional[SimConfig] = None,
) -> SimResult:
    """Build an OrigamiFS cluster, replay ``trace`` under ``policy``, return metrics."""
    return OrigamiFS(tree, trace, policy, config).run()
