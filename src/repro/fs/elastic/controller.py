"""Deterministic executor of autoscaling decisions on the DES.

The :class:`MDSPoolController` runs inside the epoch driver, *after* the
balancing policy has applied its migrations for the boundary.  Each step:

1. promotes warmed-up joiners (``WARMING`` → ``UP``);
2. completes graceful drains — a ``DRAINING`` MDS leaves the pool
   (``GONE``) only once it owns no directories *and* its service queue is
   quiescent, so no in-flight op is ever lost to a voluntary departure;
3. asks the spec's :class:`~repro.fs.elastic.spec.AutoscalePolicy` for a
   pool-size delta and executes it under the min/max bounds and the
   cooldown gate.

Scale-out marks the lowest-index parked server ``WARMING`` and arms its
warm-up slowdown (``warm_until``/``warm_factor`` on the server — the same
degradation shape as the fault schedule's crash-restart warm-up).  A fresh
member carries zero load, so the balancer's own argmin destination choice
seeds it on the next trigger; no special seeding pass is needed.

Scale-in marks the least-loaded eligible member ``DRAINING`` (never MDS 0,
the subtree-placement root anchor).  The balancing policies treat draining
members like dead ones for evacuation purposes (``plan_evacuations``) while
they keep serving; if the policy's trigger never fires, the controller runs
the evacuation itself so a drain always completes.

Everything is driven by virtual time and the run's seeded RNG streams —
same seed and spec replay byte-identically.

Cost accounting: ``mds_seconds`` integrates the active pool size over
virtual time (provisioned capacity you would pay for), the denominator of
the cost/latency frontier the ``elastic_diurnal`` bench scenario evaluates.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

import numpy as np

from repro.balancers.base import EpochContext, plan_evacuations
from repro.fs.elastic.liveness import DRAINING, GONE, UP, WARMING
from repro.fs.elastic.spec import AutoscaleSignal, AutoscaleSpec

__all__ = ["MDSPoolController"]


class MDSPoolController:
    """Owns the elastic pool's membership transitions and cost accounting."""

    def __init__(self, fs, spec: AutoscaleSpec):
        spec.validate(fs.config.n_mds)
        self.fs = fs
        self.spec = spec
        self.policy = spec.make_policy()
        self.liveness = fs.liveness
        # decision accounting
        self.scale_outs = 0
        self.drains_started = 0
        self.drains_completed = 0
        self.cooldown_blocked = 0
        self.pool_initial = fs.config.n_mds
        self.pool_peak = fs.config.n_mds
        self.pool_min = fs.config.n_mds
        self._cooldown_until_epoch = -1
        # MDS-seconds integral: active members x virtual time
        self._mds_ms = 0.0
        self._billed = fs.config.n_mds
        self._last_change_ms = float(fs.env.now)
        self._finalized = False
        reg = fs.obs.registry
        self._m_out = reg.counter(
            "elastic_scale_out_total", "MDSs provisioned by the autoscaler"
        )
        self._m_in = reg.counter(
            "elastic_drains_started_total", "graceful MDS drains initiated"
        )
        self._m_done = reg.counter(
            "elastic_drains_completed_total", "drained MDSs removed from the pool"
        )

    # ------------------------------------------------------------ accounting
    def _rebill(self, now: float) -> None:
        """Close the integral at ``now`` and track pool-size extremes."""
        self._mds_ms += self._billed * (now - self._last_change_ms)
        self._last_change_ms = now
        self._billed = self.liveness.n_active()
        self.pool_peak = max(self.pool_peak, self._billed)
        self.pool_min = min(self.pool_min, self._billed)

    def finalize(self, end_ms: float) -> None:
        """Flush the MDS-seconds integral to the end of the run."""
        if self._finalized:
            return
        self._finalized = True
        if end_ms > self._last_change_ms:
            self._mds_ms += self._billed * (end_ms - self._last_change_ms)
            self._last_change_ms = end_ms

    def summary(self) -> Dict[str, float]:
        """Flat float metrics for ``SimResult.elastic``."""
        return {
            "scale_outs": float(self.scale_outs),
            "drains_started": float(self.drains_started),
            "drains_completed": float(self.drains_completed),
            "cooldown_blocked": float(self.cooldown_blocked),
            "pool_initial": float(self.pool_initial),
            "pool_final": float(self.liveness.n_active()),
            "pool_peak": float(self.pool_peak),
            "pool_min": float(self.pool_min),
            "mds_seconds": self._mds_ms / 1000.0,
        }

    # ------------------------------------------------------------- the step
    def step(self, ctx: EpochContext, em) -> Generator:
        """One autoscaling round at an epoch boundary (runs on the DES)."""
        fs = self.fs
        lv = self.liveness
        now = float(fs.env.now)

        # 1. promote joiners whose warm-up window has elapsed
        for i, server in enumerate(fs.servers):
            if lv.state(i) == WARMING and now >= server.warm_until:
                lv.set_state(i, UP)

        # 2. complete drains: evacuated + quiescent members leave the pool
        draining = np.nonzero(lv.draining_mask())[0]
        if draining.size:
            yield from self._finish_drains(ctx, draining, now)

        # 3. policy decision under bounds + cooldown
        duration = max(float(em.duration_ms), 1e-9)
        active = lv.active_mask()
        per_util = np.asarray(em.busy_ms, dtype=np.float64)[active] / duration
        signal = AutoscaleSignal(
            epoch=ctx.epoch,
            utilization=float(per_util.mean()) if per_util.size else 0.0,
            per_mds_util=per_util,
            n_active=lv.n_active(),
            min_mds=self.spec.min_mds,
            max_mds=self.spec.max_mds,
            window_util=self._window_util(),
        )
        delta = self.policy.decide(signal)
        if delta == 0:
            return
        if self.policy.respects_cooldown and ctx.epoch < self._cooldown_until_epoch:
            self.cooldown_blocked += 1
            return
        acted = False
        if delta > 0:
            for _ in range(delta):
                if not self._scale_out(now):
                    break
                acted = True
        else:
            for _ in range(-delta):
                if not self._start_drain(ctx):
                    break
                acted = True
        if acted:
            self._cooldown_until_epoch = ctx.epoch + self.spec.cooldown_epochs

    def _finish_drains(self, ctx: EpochContext, draining, now: float) -> Generator:
        """Move fully evacuated, quiescent drainers to ``GONE``.

        The balancing policy usually evacuates drainers as part of its own
        ``plan_evacuations`` pass this epoch; when it didn't (its trigger
        never fired), the controller plans and applies the evacuation here
        so a drain cannot stall forever.
        """
        fs = self.fs
        lv = self.liveness
        owner = fs.pmap.owner_array()
        still_owning = [int(i) for i in draining if bool((owner == int(i)).any())]
        if still_owning:
            decisions = plan_evacuations(ctx)
            if decisions:
                yield from fs.migrator.apply(decisions, epoch=ctx.epoch)
            owner = fs.pmap.owner_array()
        for i in draining:
            i = int(i)
            server = fs.servers[i]
            if bool((owner == i).any()):
                continue  # evacuation still pending (e.g. migrator dst died)
            if server.resource.queue_len > 0 or server.resource.in_use > 0:
                continue  # in-flight ops finish first: zero-lost-ops
            lv.set_state(i, GONE)
            self.drains_completed += 1
            self._m_done.inc()
            self._rebill(float(fs.env.now))

    # ------------------------------------------------------------- actions
    def _scale_out(self, now: float) -> bool:
        lv = self.liveness
        if lv.n_active() >= self.spec.max_mds:
            return False
        states = lv.states()
        parked = np.nonzero(states == GONE)[0]
        if parked.size == 0:
            return False
        i = int(parked[0])  # lowest parked index joins first (deterministic)
        server = self.fs.servers[i]
        if self.spec.warmup_ms > 0:
            server.warm_until = now + self.spec.warmup_ms
            server.warm_factor = self.spec.warmup_factor
            lv.set_state(i, WARMING)
        else:
            lv.set_state(i, UP)
        self.scale_outs += 1
        self._m_out.inc()
        self._rebill(now)
        return True

    def _start_drain(self, ctx: EpochContext) -> bool:
        lv = self.liveness
        if lv.n_active() <= self.spec.min_mds:
            return False
        states = lv.states()
        servers = self.fs.servers
        # candidates: UP, not crashed, never MDS 0 (subtree root anchor)
        candidates = [
            i
            for i in range(1, len(states))
            if states[i] == UP and servers[i].up
        ]
        if not candidates:
            return False
        loads = np.asarray(ctx.mds_load, dtype=np.float64)
        # drain the least-loaded member (least authority to evacuate);
        # ties break toward the highest index (LIFO relative to join order)
        victim = min(candidates, key=lambda j: (loads[j], -j))
        lv.set_state(int(victim), DRAINING)
        self.drains_started += 1
        self._m_in.inc()
        return True

    # -------------------------------------------------------------- signals
    def _window_util(self) -> np.ndarray:
        """Recent per-window cluster utilization from the telemetry timeline."""
        timeline = getattr(self.fs.obs, "timeline", None)
        recent = getattr(timeline, "recent_cluster_busy", None)
        if recent is None:
            return np.zeros(0, dtype=np.float64)
        busy = recent(4 * self.spec.horizon_epochs)
        if busy.size == 0:
            return busy
        denom = max(float(timeline.window_ms), 1e-9) * max(self.liveness.n_active(), 1)
        return busy / denom
