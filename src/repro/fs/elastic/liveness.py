"""The single per-MDS liveness view shared by faults and elasticity.

Before this module the only cluster-membership signal was the fault
injector's boolean ``up_mask()`` — enough for *involuntary* departure
(crashes), but voluntary elasticity needs more states: a provisioning MDS
is **warming** (serving slowly, a valid migration destination), a departing
one is **draining** (still serving, never a destination), and a parked or
removed one is **gone** (not a pool member at all).  :class:`MDSLiveness`
folds both signals into one view:

* involuntary state (crashed / restarted) stays authoritative on
  ``MdsServer.up`` — the fault injector keeps flipping it;
* voluntary state (warming / draining / gone) lives in this class's state
  array — the elastic pool controller drives it.

``FaultInjector.up_mask()`` is now a deprecation shim over
:meth:`serving_mask`; with no elastic pool every member is ``UP`` and the
combined view degenerates to exactly the old ``[s.up for s in servers]``
boolean mask, bit for bit.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["MDSLiveness", "UP", "WARMING", "DRAINING", "GONE", "STATE_NAMES"]

#: voluntary membership states (int8-encoded, ordered by "how alive")
UP = 0
WARMING = 1
DRAINING = 2
GONE = 3

STATE_NAMES = ("up", "warming", "draining", "gone")


class MDSLiveness:
    """Combined voluntary + involuntary per-MDS liveness over a server pool.

    The pool is sized at its *capacity* (``autoscale.max_mds`` when elastic,
    else ``n_mds``); the first ``n_active`` members start ``UP`` and the
    rest start ``GONE`` (parked, waiting to be provisioned).
    """

    def __init__(self, servers: List, n_active: int = None):
        n = len(servers)
        if n_active is None:
            n_active = n
        if not 0 < n_active <= n:
            raise ValueError(f"n_active must be in [1, {n}], got {n_active}")
        self.servers = servers
        self._state = np.full(n, GONE, dtype=np.int8)
        self._state[:n_active] = UP

    def __len__(self) -> int:
        return len(self.servers)

    # ------------------------------------------------------------- mutation
    def state(self, mds: int) -> int:
        return int(self._state[mds])

    def set_state(self, mds: int, state: int) -> None:
        if not UP <= state <= GONE:
            raise ValueError(f"unknown liveness state {state}")
        self._state[mds] = state

    # ---------------------------------------------------------------- views
    def states(self) -> np.ndarray:
        """Copy of the voluntary state array (int8)."""
        return self._state.copy()

    def up_array(self) -> np.ndarray:
        """Involuntary liveness only: the servers' crash flags."""
        return np.fromiter(
            (s.up for s in self.servers), dtype=bool, count=len(self.servers)
        )

    def serving_mask(self) -> np.ndarray:
        """Members currently able to serve requests: not crashed, not gone.

        Warming and draining MDSs serve (slowly / while evacuating); this is
        the mask ``EpochContext.mds_up`` carries and the old ``up_mask()``
        shim returns.
        """
        return self.up_array() & (self._state != GONE)

    def dst_mask(self) -> np.ndarray:
        """Members eligible as migration *destinations*: up and not leaving.

        Draining MDSs are excluded — an export landing on a server mid-
        departure would immediately need re-evacuating.  Warming members
        are included: seeding a fresh MDS is exactly how scale-out works.
        """
        return self.up_array() & (self._state <= WARMING)

    def draining_mask(self) -> np.ndarray:
        return self._state == DRAINING

    def active_mask(self) -> np.ndarray:
        """Pool membership regardless of crash state (everything not GONE)."""
        return self._state != GONE

    def n_active(self) -> int:
        return int((self._state != GONE).sum())

    def can_receive(self, mds: int) -> bool:
        """May a migration land on ``mds`` right now? (Migrator's check.)"""
        return bool(self.servers[mds].up) and int(self._state[mds]) <= WARMING

    def __repr__(self) -> str:
        counts = {
            name: int((self._state == code).sum())
            for code, name in enumerate(STATE_NAMES)
            if int((self._state == code).sum())
        }
        return f"MDSLiveness({counts})"
