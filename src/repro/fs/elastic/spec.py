"""Declarative autoscaling specs and the policies they instantiate.

An :class:`AutoscaleSpec` is the JSON-round-trippable description of an
elastic MDS pool — capacity bounds, warm-up model, and the policy that
decides when the pool grows or shrinks.  It mirrors the fault framework's
``FaultSchedule``: frozen dataclasses, eager validation, a stable schema
version, and ``to_json``/``from_json`` so a spec can live in a file and be
passed to ``repro simulate --autoscale spec.json``.

Three policies (``AutoscaleSpec.policy``):

``threshold``
    Hysteresis on mean active-MDS utilization: grow above
    ``scale_out_util``, shrink below ``scale_in_util``.  The gap between
    the two thresholds plus the controller's ``cooldown_epochs`` is what
    prevents flapping.
``predictive``
    Same thresholds, applied to a linear forecast of utilization one
    horizon ahead.  The signal is the telemetry timeline's per-window
    cluster busy series when the timeline is enabled (finer-grained than
    epochs), else the policy's own per-epoch utilization history.
``schedule``
    Explicit ``events`` — ``{"epoch": e, "action": "join"|"drain",
    "count": k}`` — for scripted capacity changes (ignores utilization and
    the cooldown; useful for tests and known maintenance windows).

Policies only *propose* a pool-size delta; the
:class:`~repro.fs.elastic.controller.MDSPoolController` owns execution,
bounds, and cooldown.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "AUTOSCALE_SCHEMA_VERSION",
    "ScaleEvent",
    "AutoscaleSpec",
    "AutoscaleSignal",
    "AutoscalePolicy",
    "ThresholdPolicy",
    "PredictivePolicy",
    "SchedulePolicy",
]

AUTOSCALE_SCHEMA_VERSION = 1

_POLICIES = ("threshold", "predictive", "schedule")


@dataclass(frozen=True)
class ScaleEvent:
    """One scripted capacity change for the ``schedule`` policy."""

    epoch: int
    action: str  # "join" | "drain"
    count: int = 1

    def __post_init__(self):
        if self.epoch < 0:
            raise ValueError(f"ScaleEvent.epoch must be >= 0, got {self.epoch}")
        if self.action not in ("join", "drain"):
            raise ValueError(f"ScaleEvent.action must be join|drain, got {self.action!r}")
        if self.count < 1:
            raise ValueError(f"ScaleEvent.count must be >= 1, got {self.count}")

    def to_dict(self) -> Dict:
        return {"epoch": self.epoch, "action": self.action, "count": self.count}

    @classmethod
    def from_dict(cls, d: Dict) -> "ScaleEvent":
        return cls(epoch=int(d["epoch"]), action=d["action"], count=int(d.get("count", 1)))


@dataclass(frozen=True)
class AutoscaleSpec:
    """Everything the pool controller needs, in one frozen value."""

    policy: str = "threshold"
    #: pool-size bounds; the run's ``SimConfig.n_mds`` is the *initial* size
    #: and must lie within them
    min_mds: int = 1
    max_mds: int = 8
    #: a freshly provisioned MDS serves at ``warmup_factor``x service time
    #: for ``warmup_ms`` of virtual time (cold caches), mirroring the fault
    #: schedule's crash-restart warm-up
    warmup_ms: float = 20.0
    warmup_factor: float = 2.0
    #: epochs to hold after any scale action before the next one
    cooldown_epochs: int = 2
    #: hysteresis band on mean active-MDS utilization
    scale_out_util: float = 0.75
    scale_in_util: float = 0.30
    #: forecast lookahead (predictive policy), in decision points
    horizon_epochs: int = 3
    #: scripted events (schedule policy only)
    events: Tuple[ScaleEvent, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {self.policy!r}")
        if not 1 <= self.min_mds <= self.max_mds:
            raise ValueError(
                f"need 1 <= min_mds <= max_mds, got [{self.min_mds}, {self.max_mds}]"
            )
        if self.warmup_ms < 0:
            raise ValueError(f"warmup_ms must be >= 0, got {self.warmup_ms}")
        if self.warmup_factor < 1.0:
            raise ValueError(f"warmup_factor must be >= 1, got {self.warmup_factor}")
        if self.cooldown_epochs < 0:
            raise ValueError(f"cooldown_epochs must be >= 0, got {self.cooldown_epochs}")
        if not 0.0 < self.scale_in_util < self.scale_out_util <= 1.0:
            raise ValueError(
                "need 0 < scale_in_util < scale_out_util <= 1, got "
                f"({self.scale_in_util}, {self.scale_out_util})"
            )
        if self.horizon_epochs < 1:
            raise ValueError(f"horizon_epochs must be >= 1, got {self.horizon_epochs}")
        object.__setattr__(self, "events", tuple(self.events))

    # ----------------------------------------------------------- validation
    def validate(self, initial_mds: int) -> None:
        """Check the spec against the run's initial pool size."""
        if not self.min_mds <= initial_mds <= self.max_mds:
            raise ValueError(
                f"initial n_mds={initial_mds} outside autoscale bounds "
                f"[{self.min_mds}, {self.max_mds}]"
            )
        if self.policy == "schedule" and not self.events:
            raise ValueError("schedule policy requires at least one event")

    # ---------------------------------------------------------- round trip
    def to_dict(self) -> Dict:
        d = {
            "schema_version": AUTOSCALE_SCHEMA_VERSION,
            "policy": self.policy,
            "min_mds": self.min_mds,
            "max_mds": self.max_mds,
            "warmup_ms": self.warmup_ms,
            "warmup_factor": self.warmup_factor,
            "cooldown_epochs": self.cooldown_epochs,
            "scale_out_util": self.scale_out_util,
            "scale_in_util": self.scale_in_util,
            "horizon_epochs": self.horizon_epochs,
        }
        if self.events:
            d["events"] = [e.to_dict() for e in self.events]
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "AutoscaleSpec":
        version = d.get("schema_version", AUTOSCALE_SCHEMA_VERSION)
        if version != AUTOSCALE_SCHEMA_VERSION:
            raise ValueError(f"unsupported autoscale schema version {version}")
        kwargs = {}
        for f in fields(cls):
            if f.name == "events":
                continue
            if f.name in d:
                kwargs[f.name] = d[f.name]
        events = tuple(ScaleEvent.from_dict(e) for e in d.get("events", ()))
        return cls(events=events, **kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AutoscaleSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "AutoscaleSpec":
        with open(path) as f:
            return cls.from_json(f.read())

    # -------------------------------------------------------------- factory
    def make_policy(self) -> "AutoscalePolicy":
        if self.policy == "threshold":
            return ThresholdPolicy(self.scale_out_util, self.scale_in_util)
        if self.policy == "predictive":
            return PredictivePolicy(
                self.scale_out_util, self.scale_in_util, self.horizon_epochs
            )
        return SchedulePolicy(self.events)


@dataclass
class AutoscaleSignal:
    """What a policy sees at one epoch boundary."""

    epoch: int
    #: mean busy fraction of the epoch across active (non-gone) members
    utilization: float
    #: per-active-member busy fractions (order follows pool indices)
    per_mds_util: np.ndarray
    n_active: int
    min_mds: int
    max_mds: int
    #: recent per-window cluster utilization from the telemetry timeline
    #: (empty array when the timeline is off)
    window_util: np.ndarray


class AutoscalePolicy:
    """Decide a desired pool-size delta; the controller executes it."""

    name = "base"
    #: scripted policies opt out of the controller's cooldown gate
    respects_cooldown = True

    def decide(self, signal: AutoscaleSignal) -> int:
        """Return +k to grow, -k to shrink, 0 to hold."""
        raise NotImplementedError


class ThresholdPolicy(AutoscalePolicy):
    """Hysteresis band on mean active utilization."""

    name = "threshold"

    def __init__(self, scale_out_util: float, scale_in_util: float):
        self.scale_out_util = scale_out_util
        self.scale_in_util = scale_in_util

    def _from_util(self, util: float, signal: AutoscaleSignal) -> int:
        if util > self.scale_out_util and signal.n_active < signal.max_mds:
            return 1
        if util < self.scale_in_util and signal.n_active > signal.min_mds:
            return -1
        return 0

    def decide(self, signal: AutoscaleSignal) -> int:
        return self._from_util(signal.utilization, signal)


class PredictivePolicy(ThresholdPolicy):
    """Threshold on a linear forecast, one horizon ahead.

    Uses the timeline's per-window utilization series when available (more
    samples per decision than the epoch series), else its own utilization
    history.  The forecast is ``last + horizon * mean(diff(tail))`` — a
    deliberately simple trend extrapolation, so a rising edge triggers
    scale-out a few epochs before the threshold policy would.
    """

    name = "predictive"

    def __init__(self, scale_out_util: float, scale_in_util: float, horizon: int):
        super().__init__(scale_out_util, scale_in_util)
        self.horizon = horizon
        self._history: List[float] = []

    def _forecast(self, series: np.ndarray) -> float:
        tail = series[-(self.horizon + 1):]
        if tail.size < 2:
            return float(tail[-1]) if tail.size else 0.0
        slope = float(np.diff(tail).mean())
        return float(tail[-1]) + self.horizon * slope

    def decide(self, signal: AutoscaleSignal) -> int:
        self._history.append(signal.utilization)
        series = signal.window_util
        if series.size < 2:
            series = np.asarray(self._history, dtype=np.float64)
        forecast = min(1.5, max(0.0, self._forecast(series)))
        return self._from_util(forecast, signal)


class SchedulePolicy(AutoscalePolicy):
    """Replay scripted join/drain events; utilization is ignored."""

    name = "schedule"
    respects_cooldown = False

    def __init__(self, events: Tuple[ScaleEvent, ...]):
        self._by_epoch: Dict[int, int] = {}
        for e in events:
            delta = e.count if e.action == "join" else -e.count
            self._by_epoch[e.epoch] = self._by_epoch.get(e.epoch, 0) + delta

    def decide(self, signal: AutoscaleSignal) -> int:
        return self._by_epoch.get(signal.epoch, 0)
