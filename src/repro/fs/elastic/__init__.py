"""Elastic MDS pool: autoscaling with graceful join/drain.

See :mod:`repro.fs.elastic.liveness` for the shared membership view,
:mod:`repro.fs.elastic.spec` for the declarative policy specs, and
:mod:`repro.fs.elastic.controller` for the DES-side executor.
``docs/elasticity.md`` documents the spec format and the drain protocol.
"""

from repro.fs.elastic.controller import MDSPoolController
from repro.fs.elastic.liveness import (
    DRAINING,
    GONE,
    STATE_NAMES,
    UP,
    WARMING,
    MDSLiveness,
)
from repro.fs.elastic.spec import (
    AUTOSCALE_SCHEMA_VERSION,
    AutoscalePolicy,
    AutoscaleSignal,
    AutoscaleSpec,
    PredictivePolicy,
    ScaleEvent,
    SchedulePolicy,
    ThresholdPolicy,
)

__all__ = [
    "MDSLiveness",
    "UP",
    "WARMING",
    "DRAINING",
    "GONE",
    "STATE_NAMES",
    "AUTOSCALE_SCHEMA_VERSION",
    "AutoscaleSpec",
    "ScaleEvent",
    "AutoscaleSignal",
    "AutoscalePolicy",
    "ThresholdPolicy",
    "PredictivePolicy",
    "SchedulePolicy",
    "MDSPoolController",
]
