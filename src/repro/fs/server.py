"""MDS server process: FIFO service queue + local inode store + accounting.

Each MDS is a single-server queue (capacity 1 — one metadata thread, the
saturation regime of §5.2); queueing delay is emergent, which is what makes
the DES results exhibit Eq. (1)'s ``Q_i`` term without modelling it.

Busy time, RPC counts, and request counts accumulate per epoch and are
drained by the epoch driver into :class:`~repro.fs.metrics.EpochMetrics`.
When observability is on, the same counters also publish into the metrics
registry (labelled by MDS id) and :meth:`service` decomposes each visit into
queue wait vs. service time on the caller's :class:`~repro.obs.tracing.Span`.

Crash semantics (active only when a :class:`~repro.fs.faults.FaultInjector`
is attached): a crashed server aborts the request it was servicing, drains
its queue by failing each waiter as its slot is granted, and — after
:meth:`restart` — serves at the schedule's warm-up factor until its caches
are hot again.  ``incarnation`` increments on every crash so a request that
straddles a crash+restart still observes the failure.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.fs.faults.errors import MdsCrashedError, MdsUnavailableError
from repro.kvstore import LSMStore
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.sim import Environment, Resource, Timeout

__all__ = ["MdsServer"]


class MdsServer:
    """One metadata server."""

    def __init__(
        self,
        env: Environment,
        mds_id: int,
        service_concurrency: int = 1,
        use_kvstore: bool = False,
        registry: Optional[MetricsRegistry] = None,
        data_dir: Optional[str] = None,
        durability=None,
    ):
        self.env = env
        self.mds_id = mds_id
        self.resource = Resource(env, capacity=service_concurrency)
        #: liveness + crash generation; only consulted when faults are attached
        self.up = True
        self.incarnation = 0
        self._faults = None
        #: voluntary-join warm-up (elastic scale-out): service is degraded by
        #: ``warm_factor`` until virtual time passes ``warm_until``.  The
        #: defaults make the check a single always-false compare, so runs
        #: without an elastic pool are bit-identical.
        self.warm_until = 0.0
        self.warm_factor = 1.0
        #: durability cost model (repro.sim.DurabilityCostModel) or None
        self.durability = durability
        self.data_dir = data_dir
        #: durable-write virtual ms accrued since the last drain
        self._pending_durability_ms = 0.0
        #: recovery report of the latest crash, consumed by restart()
        self._crash_recovery = None
        self.last_recovery_ms = 0.0
        self.recovery_ms_total = 0.0
        if not use_kvstore:
            self.store: Optional[LSMStore] = None
        elif data_dir is not None:
            self.store = LSMStore.open(
                data_dir, memtable_limit=512, sync_listener=self._on_group_commit
            )
        else:
            self.store = LSMStore(memtable_limit=512)
        # epoch-scoped counters (drained by the driver)
        self.epoch_busy_ms = 0.0
        self.epoch_rpcs = 0
        self.epoch_qps = 0
        # run-scoped totals
        self.total_busy_ms = 0.0
        self.total_rpcs = 0
        self.total_requests = 0
        #: cumulative modeled durable-write cost (never reset by drains)
        self.durability_ms_total = 0.0
        # live metrics children (no-op singletons when the registry is off)
        reg = registry if registry is not None else NULL_REGISTRY
        label = str(mds_id)
        self._m_rpcs = reg.counter("mds_rpcs_live_total", "RPCs handled (live)").labels(mds=label)
        self._m_requests = reg.counter(
            "mds_requests_live_total", "requests with this MDS as primary (live)"
        ).labels(mds=label)
        self._m_busy = reg.counter(
            "mds_busy_ms_live_total", "service busy-ms accumulated (live)"
        ).labels(mds=label)
        self._m_group_commit = reg.histogram(
            "kv_wal_group_commit_size", "records per WAL group commit"
        ).labels(mds=label)
        self._m_recovery = reg.histogram(
            "mds_recovery_ms", "modeled recovery warm-up per restart (ms)"
        ).labels(mds=label)

    def _on_group_commit(self, batch_records: int) -> None:
        self._m_group_commit.observe(batch_records)

    # ------------------------------------------------------------ fault hooks
    def attach_faults(self, injector) -> None:
        """Install the run's fault injector view (slowdowns, crash checks)."""
        self._faults = injector

    def crash(self) -> None:
        """Go down: in-flight service is aborted, queued waiters fail on grant.

        With a durable store the crash is real: unacknowledged (unsynced)
        writes are dropped, and the store is immediately rebuilt from disk —
        WAL replay plus MANIFEST/SSTable reload — so the acknowledged state
        stays queryable (the Migrator evacuating a dead MDS's subtrees reads
        from its recovered journal, as a real takeover would).  The recovery
        *work* is recorded and priced into the restart warm-up by
        :meth:`restart`."""
        self.up = False
        self.incarnation += 1
        if self.store is not None and self.store.backend is not None:
            stats = self.store.stats  # counter continuity across incarnations
            self.store.crash()
            self.store = LSMStore.open(
                self.data_dir,
                memtable_limit=512,
                stats=stats,
                sync_listener=self._on_group_commit,
            )
            self._crash_recovery = self.store.last_recovery
            self._pending_durability_ms = 0.0

    def restart(self) -> float:
        """Come back up; returns the modeled recovery warm-up in ms.

        Non-durable servers return 0.0 and warm-up degradation stays the
        schedule's concern (the fixed ``warmup_ms`` constant).  Durable
        servers price the recovery work their crash actually performed."""
        self.up = True
        rec_ms = 0.0
        if self.durability is not None and self._crash_recovery is not None:
            rec_ms = self.durability.recovery_cost_ms(self._crash_recovery)
            self._crash_recovery = None
            self.last_recovery_ms = rec_ms
            self.recovery_ms_total += rec_ms
            self._m_recovery.observe(rec_ms)
        return rec_ms

    def count_rpc(self, n: int = 1) -> None:
        self.epoch_rpcs += n
        self.total_rpcs += n
        self._m_rpcs.inc(n)

    def count_request(self) -> None:
        self.epoch_qps += 1
        self.total_requests += 1
        self._m_requests.inc()

    def service(self, duration_ms: float, span=None) -> Generator:
        """Queue for the server thread, hold it for ``duration_ms``.

        When a :class:`~repro.obs.tracing.Span` is supplied the queue wait
        (time between requesting the worker slot and being granted it) and
        the service hold are added to it — measurement only, no extra events.

        With faults attached, raises :class:`~repro.fs.faults.errors.
        MdsUnavailableError` when the server is down (entry or grant — the
        latter is how a crashed server's queue drains) and :class:`~repro.fs.
        faults.errors.MdsCrashedError` when a crash lands mid-service; the
        lost hold time is charged to ``span.fault_wait_ms``, not busy time.
        """
        faults = self._faults
        env = self.env
        if faults is not None:
            if not self.up:
                raise MdsUnavailableError(self.mds_id)
            # degradation (slowdown window or restart warm-up) applies at the
            # moment the request enters service, as in the legacy injector
            duration_ms *= faults.service_factor(self.mds_id, env._now)
        if self.warm_until > env._now:
            # cold caches on a freshly provisioned elastic member: same
            # degradation shape as the fault schedule's restart warm-up
            duration_ms *= self.warm_factor
        resource = self.resource
        req = resource.request()
        try:  # try/finally, not `with`: skips the __enter__/__exit__ calls
            if span is not None:
                enqueued_at = env._now
                yield req
                span.queue_ms += env._now - enqueued_at
            else:
                yield req
            if faults is not None:
                if not self.up:
                    raise MdsUnavailableError(self.mds_id)
                incarnation = self.incarnation
            if duration_ms > 0:
                yield Timeout(env, duration_ms)
            if faults is not None and (not self.up or self.incarnation != incarnation):
                # the work is lost: the client paid the hold but the server
                # crashed under it — no busy time, a typed abort instead
                faults.count_service_abort()
                if span is not None:
                    span.fault_wait_ms += duration_ms
                raise MdsCrashedError(self.mds_id)
            if span is not None:
                span.service_ms += duration_ms
            self.epoch_busy_ms += duration_ms
            self.total_busy_ms += duration_ms
            self._m_busy.inc(duration_ms)
        finally:
            resource.release(req)

    def drain_epoch(self) -> tuple:
        """Return and reset this epoch's (busy, rpcs, qps)."""
        out = (self.epoch_busy_ms, self.epoch_rpcs, self.epoch_qps)
        self.epoch_busy_ms = 0.0
        self.epoch_rpcs = 0
        self.epoch_qps = 0
        return out

    # ------------------------------------------------------------- kv store
    def _accrue_durability(self, mutate, span) -> None:
        """Run one store mutation, pricing its WAL work into pending cost."""
        stats = self.store.stats
        bytes_before = stats.wal_bytes
        fsyncs_before = stats.fsyncs
        mutate()
        delta_bytes = stats.wal_bytes - bytes_before
        cost = self.durability.append_cost_ms(delta_bytes)
        cost += self.durability.sync_cost_ms(stats.fsyncs - fsyncs_before)
        self._pending_durability_ms += cost
        self.durability_ms_total += cost
        if span is not None:
            span.wal_appends += 1
            span.wal_bytes += delta_bytes

    def take_durability_cost(self) -> float:
        """Drain the accrued durable-write cost (charged as service time)."""
        cost = self._pending_durability_ms
        self._pending_durability_ms = 0.0
        return cost

    def kv_put(self, key: bytes, value: bytes, span=None) -> None:
        if self.store is None:
            return
        if self.durability is not None and self.store.backend is not None:
            self._accrue_durability(lambda: self.store.put(key, value), span)
        else:
            self.store.put(key, value)

    def kv_delete(self, key: bytes, span=None) -> None:
        if self.store is None:
            return
        if self.durability is not None and self.store.backend is not None:
            self._accrue_durability(lambda: self.store.delete(key), span)
        else:
            self.store.delete(key)

    def kv_get(self, key: bytes, span=None) -> Optional[bytes]:
        if self.store is None:
            return None
        if span is None:
            return self.store.get(key)
        stats = self.store.stats
        probes_before = stats.runs_probed
        value = self.store.get(key)
        span.kv_gets += 1
        span.kv_probes += stats.runs_probed - probes_before
        return value
