"""MDS server process: FIFO service queue + local inode store + accounting.

Each MDS is a single-server queue (capacity 1 — one metadata thread, the
saturation regime of §5.2); queueing delay is emergent, which is what makes
the DES results exhibit Eq. (1)'s ``Q_i`` term without modelling it.

Busy time, RPC counts, and request counts accumulate per epoch and are
drained by the epoch driver into :class:`~repro.fs.metrics.EpochMetrics`.
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.kvstore import LSMStore
from repro.sim import Environment, Resource

__all__ = ["MdsServer"]


class MdsServer:
    """One metadata server."""

    def __init__(
        self,
        env: Environment,
        mds_id: int,
        service_concurrency: int = 1,
        use_kvstore: bool = False,
    ):
        self.env = env
        self.mds_id = mds_id
        self.resource = Resource(env, capacity=service_concurrency)
        self.store: Optional[LSMStore] = LSMStore(memtable_limit=512) if use_kvstore else None
        # epoch-scoped counters (drained by the driver)
        self.epoch_busy_ms = 0.0
        self.epoch_rpcs = 0
        self.epoch_qps = 0
        # run-scoped totals
        self.total_busy_ms = 0.0
        self.total_rpcs = 0

    def count_rpc(self, n: int = 1) -> None:
        self.epoch_rpcs += n
        self.total_rpcs += n

    def count_request(self) -> None:
        self.epoch_qps += 1

    def service(self, duration_ms: float) -> Generator:
        """Queue for the server thread, hold it for ``duration_ms``."""
        with self.resource.request() as req:
            yield req
            if duration_ms > 0:
                yield self.env.timeout(duration_ms)
            self.epoch_busy_ms += duration_ms
            self.total_busy_ms += duration_ms

    def drain_epoch(self) -> tuple:
        """Return and reset this epoch's (busy, rpcs, qps)."""
        out = (self.epoch_busy_ms, self.epoch_rpcs, self.epoch_qps)
        self.epoch_busy_ms = 0.0
        self.epoch_rpcs = 0
        self.epoch_qps = 0
        return out

    # ------------------------------------------------------------- kv store
    def kv_put(self, key: bytes, value: bytes) -> None:
        if self.store is not None:
            self.store.put(key, value)

    def kv_delete(self, key: bytes) -> None:
        if self.store is not None:
            self.store.delete(key)

    def kv_get(self, key: bytes) -> Optional[bytes]:
        if self.store is not None:
            return self.store.get(key)
        return None
