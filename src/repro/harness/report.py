"""Plain-text reporting: aligned tables and labelled series.

Every experiment prints through these helpers so benchmark output reads as
rows directly comparable to the paper's figures, and results can also be
dumped as JSON for downstream plotting.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["format_table", "Report"]


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3f}"
    return str(v)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Report:
    """A named experiment result: tables, series, and raw values."""

    experiment: str
    description: str = ""
    tables: List[str] = field(default_factory=list)
    data: Dict[str, Any] = field(default_factory=dict)

    def add_table(
        self, headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
    ) -> None:
        self.tables.append(format_table(headers, rows, title))

    def add_series(self, name: str, values: Sequence[float]) -> None:
        self.data[name] = [float(v) for v in values]

    def put(self, key: str, value: Any) -> None:
        self.data[key] = value

    def render(self) -> str:
        parts = [f"=== {self.experiment} ==="]
        if self.description:
            parts.append(self.description)
        parts.extend(self.tables)
        return "\n\n".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "description": self.description,
            "data": self.data,
        }

    def to_json(self) -> str:
        return json.dumps(
            self.to_dict(),
            indent=2,
            default=lambda o: getattr(o, "tolist", lambda: str(o))(),
        )

    def __str__(self) -> str:
        return self.render()
